//! Offline stand-in for `criterion`.
//!
//! API-compatible with the subset the workspace's bench targets use, but
//! instead of statistical sampling it runs each routine a handful of times
//! and prints the median wall-clock time. Good enough to keep `cargo bench`
//! working (and the bench targets compiling) without the real dependency.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

const RUNS: usize = 5;

/// Benchmark driver. One per `criterion_group!`-generated function.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Run a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl AsRef<str>,
        mut f: F,
    ) -> &mut Self {
        let id = id.as_ref();
        let mut b = Bencher {
            elapsed: Duration::ZERO,
        };
        let mut times = Vec::with_capacity(RUNS);
        for _ in 0..RUNS {
            b.elapsed = Duration::ZERO;
            f(&mut b);
            times.push(b.elapsed);
        }
        times.sort();
        println!("bench {:<40} median {:?}", id, times[times.len() / 2]);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup { parent: self }
    }
}

/// A named collection of benchmarks.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sampling-count hint; ignored by this stub.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl AsRef<str>,
        f: F,
    ) -> &mut Self {
        self.parent.bench_function(id, f);
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// How much setup output to batch per timing run; irrelevant here since
/// the stub times each routine call individually.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Times routines handed to it by a benchmark closure.
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` (setup-free).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        black_box(routine());
        self.elapsed += start.elapsed();
    }

    /// Time `routine` on a fresh `setup()` output; setup is untimed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        self.elapsed += start.elapsed();
    }
}

/// Bundle benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut hits = 0u32;
        Criterion::default().bench_function("t", |b| b.iter(|| hits += 1));
        assert!(hits >= RUNS as u32);
    }

    #[test]
    fn group_and_batched_compile_and_run() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(10).bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u32; 8],
                |v| v.iter().sum::<u32>(),
                BatchSize::SmallInput,
            )
        });
        g.finish();
    }
}
