//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the narrow slice of `rand` it actually uses: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], the [`Rng`] sampling methods `gen`,
//! `gen_range`, and `gen_bool`, and [`seq::SliceRandom::shuffle`].
//!
//! The generator is SplitMix64 — deterministic, seed-stable, and
//! statistically fine for graph generation, but it is **not** the upstream
//! `StdRng` (ChaCha12): streams differ from real `rand`, so generated
//! graphs are reproducible only within this workspace.

/// Low-level generator interface: everything derives from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of [`next_u64`](Self::next_u64)).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of a [`Standard`]-distributed type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a range (`start..end` or `start..=end`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable uniformly over their "natural" domain (`[0,1)` for
/// floats, the full range for integers).
pub trait Standard {
    /// Draw one value from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 high bits into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a value can be drawn from uniformly.
pub trait SampleRange<T> {
    /// Draw one value from `rng`; panics on an empty range.
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64 + 1;
                if span == 0 {
                    // Full-width inclusive range of a 64-bit type.
                    return start + rng.next_u64() as $t;
                }
                start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64). Stands in for the
    /// upstream `StdRng`; streams are stable across runs and platforms.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

pub mod seq {
    //! Sequence-related sampling.

    use super::Rng;

    /// Random slice operations.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(1u32..=16);
            assert!((1..=16).contains(&w));
            let u = rng.gen_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..1000 {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut StdRng::seed_from_u64(3));
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should move something");
    }
}
