//! Offline stand-in for the `bytes` crate.
//!
//! `Bytes`/`BytesMut` are plain `Vec<u8>` wrappers (no refcounted
//! zero-copy slicing — the workspace never splits buffers), and `Buf` /
//! `BufMut` carry exactly the little-endian accessors the graph IO code
//! uses.

use std::ops::Deref;

/// Immutable byte buffer. Derefs to `[u8]`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// Copy into an owned `Vec` (also available through deref).
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

/// Growable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

/// Sequential big-buffer reader (little-endian accessors only).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Skip `n` bytes. Panics if fewer remain.
    fn advance(&mut self, n: usize);
    /// Borrow the unread bytes.
    fn chunk(&self) -> &[u8];

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }

    fn chunk(&self) -> &[u8] {
        self
    }
}

/// Sequential buffer writer (little-endian accessors only).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le_fields() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_slice(b"HDR");
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(0x0123_4567_89AB_CDEF);
        let frozen = buf.freeze();
        assert_eq!(frozen.len(), 3 + 4 + 8);

        let mut r: &[u8] = &frozen;
        assert_eq!(&r.chunk()[..3], b"HDR");
        r.advance(3);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn bytes_indexes_like_a_slice() {
        let b = Bytes::from(vec![1u8, 2, 3, 4]);
        assert_eq!(&b[1..3], &[2, 3]);
        assert_eq!(b.to_vec(), vec![1, 2, 3, 4]);
    }
}
