//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the `crossbeam::scope` API (the only part this workspace uses)
//! implemented on top of `std::thread::scope`, which has offered the same
//! borrow-the-stack guarantee since Rust 1.63. The shim keeps crossbeam's
//! calling convention: spawned closures receive a [`thread::Scope`]
//! argument, handles return [`thread::Result`], and `scope` itself returns
//! `Err` when a spawned thread panicked without being joined.

pub use thread::scope;

pub mod thread {
    //! Scoped threads.

    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Result of joining a scoped thread (the payload is the panic value).
    pub type Result<T> = std::thread::Result<T>;

    /// Handle to spawn further threads within a scope. Mirrors
    /// `crossbeam_utils::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle of a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread and return its result (`Err` on panic).
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread scoped to `'env` borrows. The closure receives
        /// this scope so workers can spawn further workers.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Run `f` with a scope in which borrowing threads can be spawned; all
    /// are joined before this returns. A panic escaping the scope (an
    /// unjoined panicking thread, or a panic in `f`) is returned as `Err`.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn workers_borrow_the_stack() {
        let data: Vec<u32> = (0..100).collect();
        let total = AtomicU32::new(0);
        super::scope(|s| {
            let mut handles = Vec::new();
            for chunk in data.chunks(30) {
                let total = &total;
                handles.push(s.spawn(move |_| {
                    total.fetch_add(chunk.iter().sum::<u32>(), Ordering::Relaxed);
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
        })
        .unwrap();
        assert_eq!(total.into_inner(), (0..100).sum::<u32>());
    }

    #[test]
    fn join_returns_value() {
        let out = super::scope(|s| {
            let h = s.spawn(|_| 40 + 2);
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(out, 42);
    }

    #[test]
    fn panic_in_worker_is_err_on_join() {
        super::scope(|s| {
            let h = s.spawn(|_| panic!("boom"));
            assert!(h.join().is_err());
        })
        .unwrap();
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let out = super::scope(|s| {
            s.spawn(|s2| s2.spawn(|_| 7).join().unwrap())
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(out, 7);
    }
}
