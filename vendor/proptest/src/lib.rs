//! Offline stand-in for `proptest`.
//!
//! Implements a real (if small) property-testing engine: strategies
//! generate random values from a per-test deterministic seed and the
//! `proptest!` macro runs each property for `Config::cases` cases. What it
//! does *not* do is shrink failing inputs — a failure reports the raw
//! counterexample via the standard panic message.
//!
//! Supported strategy surface (what this workspace uses):
//! integer ranges (`0u32..n`), [`any::<T>()`](arbitrary::any),
//! [`Just`](strategy::Just), tuples of strategies, `prop_map`,
//! `prop_flat_map`, and [`collection::vec`] with a fixed or ranged size.

pub mod test_runner {
    //! Run configuration.

    /// Subset of proptest's `Config`: only the case count.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // Upstream defaults to 256; this stub trades coverage for test
            // latency on small CI machines.
            Config { cases: 48 }
        }
    }

    /// Deterministic per-test generator (SplitMix64). Each property derives
    /// its seed from its own name, so adding a test never perturbs others.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from a test name (FNV-1a over the bytes).
        pub fn for_test(name: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw below `bound` (> 0).
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use super::test_runner::TestRng;

    /// A recipe for generating random values of `Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generate a value, then generate from the strategy `f` builds
        /// from it (dependent generation).
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Always generates a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + rng.below((self.end - self.start) as u64) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (s, e) = (*self.start(), *self.end());
                    assert!(s <= e, "empty range strategy");
                    s + rng.below((e - s) as u64 + 1) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+),)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0),
        (A.0, B.1),
        (A.0, B.1, C.2),
        (A.0, B.1, C.2, D.3),
    }
}

pub mod arbitrary {
    //! Type-driven generation (`any::<T>()`).

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary {
        /// Generate one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy generating any value of `T`.
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T` (full domain).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Element-count specification: a fixed size or a `start..end` range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from the range.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.max - self.size.min) as u64;
            let len = self.size.min
                + if span > 1 {
                    rng.below(span) as usize
                } else {
                    0
                };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `vec(element, size)`: a vector of `element`-generated values.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    //! Everything a `proptest!` test module needs.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assert a condition inside a property (panics with the message on
/// failure; this stub does not shrink).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `Config::cases` random cases from a
/// deterministic per-test seed.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @with_config ($cfg) $($rest)* }
    };
    (@with_config ($cfg:expr)
     $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::Config = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for _case in 0..cfg.cases {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            @with_config (<$crate::test_runner::Config as ::core::default::Default>::default())
            $($rest)*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 5u32..10, y in 0usize..3, z in 1u8..=4) {
            prop_assert!((5..10).contains(&x));
            prop_assert!(y < 3);
            prop_assert!((1..=4).contains(&z));
        }

        #[test]
        fn tuples_and_maps_compose((a, b) in (0u32..100, 0u32..100), c in any::<u32>().prop_map(|v| v % 7)) {
            prop_assert!(a < 100 && b < 100);
            prop_assert!(c < 7);
        }

        #[test]
        fn flat_map_makes_dependent_values((n, v) in (1u32..20).prop_flat_map(|n| (Just(n), crate::collection::vec(0u32..n, 0..8)))) {
            for x in v {
                prop_assert!(x < n);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        #[test]
        fn config_attribute_parses(x in 0u32..10) {
            prop_assert!(x < 10);
        }
    }

    #[test]
    fn vec_exact_size() {
        let mut rng = crate::test_runner::TestRng::for_test("vec_exact_size");
        let v = crate::strategy::Strategy::generate(&crate::collection::vec(0u32..5, 32), &mut rng);
        assert_eq!(v.len(), 32);
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::test_runner::TestRng::for_test("same");
        let mut b = crate::test_runner::TestRng::for_test("same");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
