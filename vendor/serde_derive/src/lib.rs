//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on a few structs but
//! never serializes through a format crate, so the derives expand to
//! nothing; the marker traits live in the sibling `serde` stub.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
