//! Offline stand-in for `serde`.
//!
//! Exposes `Serialize`/`Deserialize` as marker traits together with no-op
//! derive macros of the same names, which is all this workspace needs: the
//! types are annotated for future serialization but no format crate
//! (serde_json etc.) is in the dependency tree.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de> {}
