//! Quickstart: run BFS on a scale-free graph with the baseline and the
//! virtual warp-centric method, and compare what the simulator reports.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use maxwarp::{run_bfs, DeviceGraph, ExecConfig, Method};
use maxwarp_graph::{Dataset, DegreeStats, Scale};
use maxwarp_simt::{Gpu, GpuConfig};

fn main() {
    // 1. Build a graph. Dataset stand-ins are deterministic; `WikiTalkLike`
    //    is the extreme-hub class where the paper's method shines.
    let graph = Dataset::WikiTalkLike.build(Scale::Small);
    let src = Dataset::WikiTalkLike.source(&graph);
    let stats = DegreeStats::of(&graph);
    println!(
        "graph: {} vertices, {} edges, mean degree {:.1}, max degree {}, cv {:.2}",
        graph.num_vertices(),
        graph.num_edges(),
        stats.mean,
        stats.max,
        stats.cv
    );

    // 2. Create a simulated GPU and upload the CSR arrays.
    let cfg = GpuConfig::fermi_c2050();
    let clock = cfg.clock_hz;
    let mut gpu = Gpu::new(cfg);
    let dg = DeviceGraph::upload(&mut gpu, &graph);

    // 3. Run BFS with both methods. Same launch geometry, same answer —
    //    only the work-to-lane mapping differs.
    let exec = ExecConfig::default();
    let baseline = run_bfs(&mut gpu, &dg, src, Method::Baseline, &exec).unwrap();
    let warp = run_bfs(&mut gpu, &dg, src, Method::warp(32), &exec).unwrap();
    assert_eq!(baseline.levels, warp.levels, "both methods must agree");

    // 4. Compare the microarchitectural story.
    let report = |name: &str, out: &maxwarp::BfsOutput| {
        let s = &out.run.stats;
        println!(
            "{name:>10}: {:>12} cycles ({:.2} ms at {:.2} GHz) | lane-util {:>5.1}% | \
             {:.1} tx/mem-instr | {} levels",
            out.run.cycles(),
            out.run.cycles() as f64 / clock as f64 * 1e3,
            clock as f64 / 1e9,
            s.lane_utilization() * 100.0,
            s.tx_per_mem_instruction(),
            out.run.iterations,
        );
    };
    report("baseline", &baseline);
    report("vw32", &warp);
    println!(
        "speedup: {:.2}x",
        baseline.run.cycles() as f64 / warp.run.cycles() as f64
    );
}
