//! Road-network routing: the crossover case. On a low-degree mesh the
//! baseline kernel is already balanced, large virtual warps waste 7 of
//! every 8 lanes, and the right configuration is small-K or baseline —
//! exactly the trade-off the paper's warp-size figure shows.
//!
//! ```text
//! cargo run --release --example road_network
//! ```

use maxwarp::{run_bfs, run_sssp, DeviceGraph, ExecConfig, Method};
use maxwarp_graph::{grid2d, random_weights, DegreeStats};
use maxwarp_simt::{Gpu, GpuConfig};

fn main() {
    // A 160x160 city grid; edge weights are travel times in seconds.
    let grid = grid2d(160, 160);
    let weights = random_weights(&grid, 120, 42);
    let stats = DegreeStats::of(&grid);
    println!(
        "road grid: {} intersections, {} road segments, max degree {} (cv {:.2})",
        grid.num_vertices(),
        grid.num_edges(),
        stats.max,
        stats.cv
    );

    let exec = ExecConfig::default();
    let depot = 0u32; // north-west corner

    // --- BFS (hop counts) across methods: watch large K lose. ---
    println!("\nBFS hop-count sweep (note the inversion vs social graphs):");
    for method in [
        Method::Baseline,
        Method::warp(2),
        Method::warp(4),
        Method::warp(32),
    ] {
        let mut gpu = Gpu::new(GpuConfig::fermi_c2050());
        let dg = DeviceGraph::upload(&mut gpu, &grid);
        let out = run_bfs(&mut gpu, &dg, depot, method, &exec).unwrap();
        println!(
            "  {:>9}: {:>12} cycles, lane-util {:>5.1}%",
            method.label(),
            out.run.cycles(),
            out.run.stats.lane_utilization() * 100.0
        );
    }

    // --- Travel times from the depot with a sensible small-K choice. ---
    let method = Method::warp(4);
    let mut gpu = Gpu::new(GpuConfig::fermi_c2050());
    let dg = DeviceGraph::upload_weighted(&mut gpu, &grid, &weights);
    let sssp = run_sssp(&mut gpu, &dg, depot, method, &exec).unwrap();
    let far = (160 * 160) - 1;
    println!(
        "\nshortest travel time depot -> opposite corner: {} seconds \
         ({} relaxation rounds, {} cycles, {})",
        sssp.dist[far as usize],
        sssp.run.iterations,
        sssp.run.cycles(),
        method.label()
    );

    // Sanity: hop distance of the far corner is the Manhattan distance.
    let mut gpu = Gpu::new(GpuConfig::fermi_c2050());
    let dg = DeviceGraph::upload(&mut gpu, &grid);
    let bfs = run_bfs(&mut gpu, &dg, depot, method, &exec).unwrap();
    assert_eq!(bfs.levels[far as usize], 159 + 159);
    println!(
        "hop distance check passed: {} hops",
        bfs.levels[far as usize]
    );
}
