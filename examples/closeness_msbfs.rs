//! Approximate closeness centrality with batched multi-source BFS.
//!
//! Closeness(v) ≈ (reached − 1) / Σ dist(s, v) over a sample of sources.
//! One bitmask MS-BFS sweep answers all 32 sampled sources at once — the
//! batching extension built on top of the paper's warp-centric traversal.
//!
//! ```text
//! cargo run --release --example closeness_msbfs
//! ```

use maxwarp::{run_bfs, run_msbfs, DeviceGraph, ExecConfig, Method};
use maxwarp_graph::{Dataset, Scale};
use maxwarp_simt::{Gpu, GpuConfig};

fn main() {
    let graph = Dataset::SmallWorld.build(Scale::Small);
    let n = graph.num_vertices();
    println!("graph: {} vertices, {} edges", n, graph.num_edges());

    // 32 spread-out sample sources.
    let sources: Vec<u32> = (0..32u32).map(|s| s * (n / 33).max(1)).collect();

    // --- One batched sweep for all sources. ---
    let mut gpu = Gpu::new(GpuConfig::fermi_c2050());
    let dg = DeviceGraph::upload(&mut gpu, &graph);
    let exec = ExecConfig::default();
    let ms = run_msbfs(&mut gpu, &dg, &sources, Method::warp(8), &exec).unwrap();
    println!(
        "batched MS-BFS: {} cycles for {} sources ({} levels)",
        ms.run.cycles(),
        sources.len(),
        ms.run.iterations
    );

    // --- Compare with the cost of running them one by one. ---
    let mut sequential = 0u64;
    for &s in sources.iter().take(4) {
        let mut gpu = Gpu::new(GpuConfig::fermi_c2050());
        let dg = DeviceGraph::upload(&mut gpu, &graph);
        sequential += run_bfs(&mut gpu, &dg, s, Method::warp(8), &exec)
            .unwrap()
            .run
            .cycles();
    }
    let est_sequential = sequential * sources.len() as u64 / 4;
    println!(
        "sequential estimate: ~{est_sequential} cycles -> batching saves ~{:.1}x",
        est_sequential as f64 / ms.run.cycles() as f64
    );

    // --- Closeness from the batched levels. ---
    let mut closeness = vec![0.0f64; n as usize];
    for v in 0..n as usize {
        let mut sum = 0u64;
        let mut reached = 0u64;
        for lv in &ms.levels {
            if lv[v] != u32::MAX {
                sum += lv[v] as u64;
                reached += 1;
            }
        }
        if sum > 0 {
            closeness[v] = (reached as f64 - 1.0) / sum as f64;
        }
    }
    let mut ranked: Vec<u32> = (0..n).collect();
    ranked.sort_by(|&a, &b| closeness[b as usize].total_cmp(&closeness[a as usize]));
    println!("most central vertices (approx closeness):");
    for &v in ranked.iter().take(5) {
        println!(
            "  vertex {:>6}: closeness {:.4} (degree {})",
            v,
            closeness[v as usize],
            graph.degree(v)
        );
    }
}
