//! Writing your own virtual warp-centric kernel against the public API.
//!
//! This example implements a kernel the library does not ship: *neighbor
//! degree sums* (for each vertex, the sum of its neighbors' out-degrees —
//! the building block of assortativity measures). It shows the full
//! warp-synchronous programming model: masks, virtual-warp layout, the
//! memory-gathering SIMD phase, and segmented reductions.
//!
//! ```text
//! cargo run --release --example custom_kernel
//! ```

use maxwarp::{DeviceGraph, VirtualWarp, VwLayout};
use maxwarp_graph::{Dataset, Scale};
use maxwarp_simt::{Gpu, GpuConfig, Lanes, Mask, TaskSchedule};

fn main() {
    let graph = Dataset::Rmat.build(Scale::Small);
    let n = graph.num_vertices();
    println!(
        "computing neighbor-degree sums on {} vertices / {} edges",
        n,
        graph.num_edges()
    );

    let mut gpu = Gpu::new(GpuConfig::fermi_c2050());
    let dg = DeviceGraph::upload(&mut gpu, &graph);
    let out = gpu.mem.alloc::<u32>(n);

    // One virtual warp of K=8 lanes per vertex; each warp-task processes a
    // chunk of vertices, fetched dynamically from the global work counter.
    let vw = VirtualWarp::new(8);
    let layout = VwLayout::new(vw);
    let vpp = vw.per_physical(); // vertices per warp pass
    let chunk = 32u32;
    let tasks = n.div_ceil(chunk);

    let stats = gpu
        .launch_warp_tasks(84, 256, tasks, TaskSchedule::Dynamic, |w, task| {
            let chunk_base = task * chunk;
            let chunk_end = (chunk_base + chunk).min(n);
            let mut base = chunk_base;
            while base < chunk_end {
                // SISD phase: all K lanes of a virtual warp hold the same
                // vertex (replicated execution, as in the paper).
                let vids = layout.task_ids(base);
                let m = w.lt_scalar(Mask::FULL, &vids, chunk_end);
                if m.none() {
                    break;
                }
                let start = w.ld(m, dg.row_offsets, &vids);
                let vplus = w.add_scalar(m, &vids, 1);
                let end = w.ld(m, dg.row_offsets, &vplus);

                // SIMD phase: lanes stride the adjacency list together,
                // gathering each neighbor's degree.
                let mut acc = Lanes::splat(0u32);
                let mut i = w.add(m, &start, &layout.lane_in_vw);
                let mut act = w.lt(m, &i, &end);
                while act.any() {
                    let nbr = w.ld(act, dg.col_indices, &i);
                    let ns = w.ld(act, dg.row_offsets, &nbr);
                    let nplus = w.add_scalar(act, &nbr, 1);
                    let ne = w.ld(act, dg.row_offsets, &nplus);
                    let deg = w.alu2(act, &ne, &ns, |e, s| e - s);
                    // Accumulate only on live lanes.
                    let sum = w.add(act, &acc, &deg);
                    acc = sum.select(act, &acc);
                    i = w.add_scalar(act, &i, vw.k());
                    act = w.lt(act, &i, &end);
                }

                // Segment-reduce the K partial sums of each virtual warp and
                // let the leader lane write the result.
                let total = w.seg_reduce_add(m, &acc, vw.k() as usize);
                let leaders = m & layout.leaders;
                w.st(leaders, out, &vids, &total);
                base += vpp;
            }
        })
        .expect("launch failed");

    // Validate against a host-side computation.
    let host = gpu.mem.download(out);
    for v in 0..n {
        let want: u32 = graph.neighbors(v).iter().map(|&u| graph.degree(u)).sum();
        assert_eq!(host[v as usize], want, "vertex {v}");
    }
    println!(
        "verified all {} sums | {} simulated cycles | lane-util {:.1}% | {:.2} tx/mem",
        n,
        stats.cycles,
        stats.lane_utilization() * 100.0,
        stats.tx_per_mem_instruction()
    );
    let top = (0..n).max_by_key(|&v| host[v as usize]).unwrap();
    println!(
        "highest neighbor-degree sum: vertex {} with {}",
        top, host[top as usize]
    );
}
