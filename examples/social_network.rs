//! Social-network analysis: the motivating workload of the paper's
//! introduction. On a LiveJournal-class graph, sweep the virtual warp size
//! for BFS, then run connected components and PageRank with the best K.
//!
//! ```text
//! cargo run --release --example social_network
//! ```

use maxwarp::{run_bfs, run_cc, run_pagerank, DeviceGraph, ExecConfig, Method, VirtualWarp};
use maxwarp_graph::reference::count_distinct;
use maxwarp_graph::{Dataset, Scale};
use maxwarp_simt::{Gpu, GpuConfig};

fn main() {
    let graph = Dataset::LiveJournalLike.build(Scale::Small);
    let src = Dataset::LiveJournalLike.source(&graph);
    println!(
        "social graph: {} members, {} follow edges",
        graph.num_vertices(),
        graph.num_edges()
    );
    let exec = ExecConfig::default();

    // --- Pick K by sweeping BFS, exactly how a user of the library would
    //     tune for their graph. ---
    println!("\nBFS warp-size sweep:");
    let mut best = (Method::Baseline, u64::MAX);
    for method in std::iter::once(Method::Baseline).chain(
        VirtualWarp::PAPER_SWEEP
            .iter()
            .map(|vw| Method::warp(vw.k())),
    ) {
        let mut gpu = Gpu::new(GpuConfig::fermi_c2050());
        let dg = DeviceGraph::upload(&mut gpu, &graph);
        let out = run_bfs(&mut gpu, &dg, src, method, &exec).unwrap();
        println!(
            "  {:>9}: {:>12} cycles, lane-util {:>5.1}%",
            method.label(),
            out.run.cycles(),
            out.run.stats.lane_utilization() * 100.0
        );
        if out.run.cycles() < best.1 {
            best = (method, out.run.cycles());
        }
    }
    println!("  best: {}", best.0.label());

    // --- Community structure: connected components with the winner. ---
    let mut gpu = Gpu::new(GpuConfig::fermi_c2050());
    let dg = DeviceGraph::upload(&mut gpu, &graph);
    let cc = run_cc(&mut gpu, &dg, best.0, &exec).unwrap();
    println!(
        "\nconnected components: {} components in {} rounds ({} cycles)",
        count_distinct(&cc.labels),
        cc.run.iterations,
        cc.run.cycles()
    );

    // --- Influence: PageRank with the winner; print the top accounts. ---
    let mut gpu = Gpu::new(GpuConfig::fermi_c2050());
    let dg = DeviceGraph::upload(&mut gpu, &graph);
    let pr = run_pagerank(&mut gpu, &dg, 15, 0.85, best.0, &exec).unwrap();
    let mut ranked: Vec<(u32, f32)> = pr
        .ranks
        .iter()
        .copied()
        .enumerate()
        .map(|(v, r)| (v as u32, r))
        .collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!(
        "\ntop-5 PageRank members (15 iterations, {} cycles):",
        pr.run.cycles()
    );
    for (v, r) in ranked.iter().take(5) {
        println!(
            "  member {:>6}: rank {:.5} (degree {})",
            v,
            r,
            graph.degree(*v)
        );
    }
}
