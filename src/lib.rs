//! `maxwarp-suite` — umbrella crate for the maxwarp workspace.
//!
//! This crate only re-exports the workspace members so that the runnable
//! examples under `examples/` and the integration tests under `tests/` can
//! use every layer of the stack through one dependency. The real code lives
//! in:
//!
//! * [`maxwarp_simt`] — the SIMT GPU simulator substrate,
//! * [`maxwarp_graph`] — CSR graphs, generators, datasets, references,
//! * [`maxwarp_cpu`] — sequential and multicore CPU baselines,
//! * [`maxwarp`] — the virtual warp-centric programming method (the paper's
//!   contribution).

pub use maxwarp;
pub use maxwarp_cpu;
pub use maxwarp_graph;
pub use maxwarp_simt;
