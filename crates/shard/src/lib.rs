//! # maxwarp-shard — multi-device sharded execution
//!
//! Scales the single-device virtual warp-centric kernels across `N`
//! simulated GPUs: an edge-cut [`Partition`] gives each device a local
//! graph (owned vertices + empty-row ghosts), a BSP [`exec`] loop steps
//! the unmodified single-device rounds host-parallel, and an explicit
//! [`Interconnect`] model charges bandwidth, latency, and link-contention
//! cycles for every halo message — yielding a per-round compute/comms
//! breakdown and a modeled multi-device makespan.
//!
//! Correctness contract (asserted by `tests/identity.rs`): for every
//! shard count the merged per-vertex payloads (BFS levels, CC labels,
//! SSSP distances, PageRank fixed-point ranks) are **byte-identical** to
//! the single-device drivers, and a 1-shard partition reproduces the
//! single-device `AlgoRun` exactly. Merged `KernelStats` at `N > 1`
//! necessarily differ from the single device (different grids and
//! coalescing) but are deterministic run to run.
//!
//! ```
//! use maxwarp::{ExecConfig, Method};
//! use maxwarp_graph::{Dataset, Scale};
//! use maxwarp_shard::{LinkConfig, MultiDevice, Partition, PartitionSpec};
//! use maxwarp_simt::GpuConfig;
//!
//! let g = Dataset::Rmat.build(Scale::Tiny);
//! let part = Partition::new(&g, None, &PartitionSpec::block(4));
//! let mut md = MultiDevice::upload(&GpuConfig::tiny_test(), part);
//! let out = maxwarp_shard::run_bfs_sharded(
//!     &mut md, 0, Method::warp(32), &ExecConfig::default(),
//!     &LinkConfig::default(), None,
//! ).unwrap();
//! assert_eq!(out.values.len() as u32, g.num_vertices());
//! ```

pub mod exec;
pub mod interconnect;
pub mod partition;

pub use exec::{
    run_bfs_sharded, run_cc_sharded, run_pagerank_sharded, run_sssp_sharded, MultiDevice,
    ShardDevice, ShardedOutput, ShardedRun,
};
pub use interconnect::{Interconnect, LinkConfig, RoundBreakdown};
pub use partition::{CutStrategy, Ghost, Partition, PartitionSpec, Shard};
