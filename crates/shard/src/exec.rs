//! Multi-device BSP executor.
//!
//! Runs one simulated [`Gpu`] per shard, host-parallel, in bulk-synchronous
//! supersteps: every device executes one algorithm round on its local
//! graph, then the host performs the **halo exchange** — ghost values merge
//! into their owner slots and owner values scatter back to every ghost
//! copy — with each message charged to the [`Interconnect`] model. The
//! devices themselves are the *same* single-device kernels
//! (`maxwarp::bfs_round` & co.), stepped externally; a 1-shard partition
//! therefore reproduces the single-device `AlgoRun` exactly, and for any
//! shard count the merged payloads are byte-identical:
//!
//! * BFS / CC / SSSP are monotone `atomicMin` fixpoints — the exchange
//!   min-merges ghost copies, and the unique fixpoint is the single-device
//!   answer (the sharded run may take *more* BSP rounds, never different
//!   values);
//! * PageRank accumulates Q2.30 fixed-point integers, so per-shard partial
//!   sums added into the owner reproduce the single-device sums bit for
//!   bit (see `maxwarp::kernels::pagerank`).
//!
//! Host thread scheduling cannot perturb results: each device is a
//! deterministic simulator touching only its own state, and merges happen
//! in fixed shard order after the parallel section joins.

use crate::interconnect::{Interconnect, LinkConfig, RoundBreakdown};
use crate::partition::Partition;
use maxwarp::{
    bfs_round, cc_round, check_iteration_bound, pagerank_apply_round, pagerank_base_fp,
    pagerank_damping_fp, pagerank_fp_to_f32, pagerank_push_round, sssp_round, AlgoRun, BfsState,
    CcState, DeviceGraph, ExecConfig, Method, PagerankState, SsspState, BFS_INF, PR_SCALE,
    SSSP_INF,
};
use maxwarp_obs::Registry;
use maxwarp_simt::{DevPtr, Gpu, GpuConfig, LaunchError};

/// One shard's simulated device and its resident local graph.
pub struct ShardDevice {
    /// The simulated GPU.
    pub gpu: Gpu,
    /// The shard's local CSR on that device.
    pub dg: DeviceGraph,
}

/// A fleet of shard devices bound to one [`Partition`].
pub struct MultiDevice {
    /// The partition the fleet was built from.
    pub part: Partition,
    /// One device per shard, indexed by shard id.
    pub devices: Vec<ShardDevice>,
}

impl MultiDevice {
    /// Boot one device per shard (all with config `cfg`) and upload each
    /// shard's local graph (weighted when the partition carries weights).
    pub fn upload(cfg: &GpuConfig, part: Partition) -> MultiDevice {
        let devices = part
            .shards
            .iter()
            .map(|sh| {
                let mut gpu = Gpu::new(cfg.clone());
                let dg = match &sh.weights {
                    Some(w) => DeviceGraph::upload_weighted(&mut gpu, &sh.local, w),
                    None => DeviceGraph::upload(&mut gpu, &sh.local),
                };
                ShardDevice { gpu, dg }
            })
            .collect();
        MultiDevice { part, devices }
    }

    /// Shard count.
    pub fn num_shards(&self) -> u32 {
        self.devices.len() as u32
    }
}

/// Execution record of a sharded run.
#[derive(Clone, Debug)]
pub struct ShardedRun {
    /// Merged view: stats accumulate every device's work (shard order);
    /// `iterations` counts BSP rounds; `cycles_per_iteration[r]` is the
    /// round's critical path — max per-device compute plus interconnect
    /// cycles. For a 1-shard partition this equals the single-device
    /// [`AlgoRun`] field for field.
    pub run: AlgoRun,
    /// Each shard's own execution record.
    pub per_shard: Vec<AlgoRun>,
    /// Per-BSP-round compute/comms breakdown.
    pub rounds: Vec<RoundBreakdown>,
}

impl ShardedRun {
    /// Modeled wall-clock cycles: sum of per-round critical paths.
    pub fn makespan_cycles(&self) -> u64 {
        self.run.cycles_per_iteration.iter().sum()
    }

    /// Critical-path compute cycles across rounds.
    pub fn compute_cycles(&self) -> u64 {
        self.rounds.iter().map(|r| r.compute_cycles).sum()
    }

    /// Interconnect cycles across rounds.
    pub fn comm_cycles(&self) -> u64 {
        self.rounds.iter().map(|r| r.comm_cycles).sum()
    }

    /// Contention-only cycles across rounds.
    pub fn stall_cycles(&self) -> u64 {
        self.rounds.iter().map(|r| r.stall_cycles).sum()
    }

    /// Total halo bytes exchanged.
    pub fn halo_bytes(&self) -> u64 {
        self.rounds.iter().map(|r| r.halo_bytes).sum()
    }

    /// BSP superstep count.
    pub fn bsp_rounds(&self) -> u32 {
        self.rounds.len() as u32
    }
}

/// Payload plus execution record of one sharded algorithm run.
pub struct ShardedOutput<T> {
    /// Merged per-global-vertex result, identical to the single-device
    /// driver's output.
    pub values: Vec<T>,
    /// Execution record.
    pub run: ShardedRun,
}

/// Run each shard's round host-parallel; results come back in shard order
/// and the first error (by shard order) propagates.
fn par_shards<St: Sync>(
    devices: &mut [ShardDevice],
    states: &[St],
    runs: &mut [AlgoRun],
    f: impl Fn(usize, &mut ShardDevice, &St, &mut AlgoRun) -> Result<bool, LaunchError> + Sync,
) -> Result<Vec<bool>, LaunchError> {
    let f = &f;
    let results: Vec<Result<bool, LaunchError>> = std::thread::scope(|sc| {
        let handles: Vec<_> = devices
            .iter_mut()
            .zip(runs.iter_mut())
            .zip(states.iter())
            .enumerate()
            .map(|(i, ((dev, run), st))| sc.spawn(move || f(i, dev, st, run)))
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => r,
                Err(p) => std::panic::resume_unwind(p),
            })
            .collect()
    });
    results.into_iter().collect()
}

/// Min-merge ghost copies into owners, then sync owners back to ghosts.
/// 4 bytes per actually-moved value; returns whether any owner improved.
fn min_exchange(
    devices: &mut [ShardDevice],
    part: &Partition,
    values: &[DevPtr<u32>],
    ic: &mut Interconnect,
) -> bool {
    let mut improved = false;
    for s in 0..part.shards.len() {
        let no = part.shards[s].n_owned();
        for (gi, gh) in part.shards[s].ghosts.iter().enumerate() {
            let slot = no + gi as u32;
            let o = gh.owner as usize;
            let v = devices[s].gpu.mem.read(values[s], slot);
            let cur = devices[o].gpu.mem.read(values[o], gh.owner_local);
            if v < cur {
                devices[o].gpu.mem.write(values[o], gh.owner_local, v);
                ic.charge(s as u32, gh.owner, 4);
                improved = true;
            }
        }
    }
    for s in 0..part.shards.len() {
        let no = part.shards[s].n_owned();
        for (gi, gh) in part.shards[s].ghosts.iter().enumerate() {
            let slot = no + gi as u32;
            let o = gh.owner as usize;
            let ov = devices[o].gpu.mem.read(values[o], gh.owner_local);
            if devices[s].gpu.mem.read(values[s], slot) != ov {
                devices[s].gpu.mem.write(values[s], slot, ov);
                ic.charge(gh.owner, s as u32, 4);
            }
        }
    }
    improved
}

/// Read the merged per-global-vertex payload off the owner devices.
fn gather_u32(md: &MultiDevice, values: &[DevPtr<u32>]) -> Vec<u32> {
    (0..md.part.n)
        .map(|v| {
            let s = md.part.owner[v as usize] as usize;
            md.devices[s]
                .gpu
                .mem
                .read(values[s], md.part.local_id[v as usize])
        })
        .collect()
}

/// Merged run view (see [`ShardedRun::run`]).
fn merge_runs(per_shard: &[AlgoRun], rounds: &[RoundBreakdown]) -> AlgoRun {
    let mut merged = AlgoRun::default();
    for r in per_shard {
        merged.stats.accumulate(&r.stats);
    }
    merged.iterations = rounds.len() as u32;
    merged.cycles_per_iteration = rounds
        .iter()
        .map(|r| r.compute_cycles + r.comm_cycles)
        .collect();
    merged
}

/// Export shard metrics through a [`Registry`] (no-op without one).
fn record_obs(obs: Option<&Registry>, sr: &ShardedRun, ic: &Interconnect) {
    let Some(reg) = obs else { return };
    for (i, r) in sr.per_shard.iter().enumerate() {
        let tag = i.to_string();
        reg.counter_with("shard_cycles_total", &[("shard", &tag)])
            .add(r.cycles());
        reg.counter_with("shard_halo_bytes_total", &[("shard", &tag)])
            .add(ic.device_totals()[i]);
    }
    reg.counter("shard_interconnect_stall_cycles_total")
        .add(sr.stall_cycles());
    reg.counter("shard_bsp_rounds_total")
        .add(sr.rounds.len() as u64);
}

/// The critical-path compute of the most recent round.
fn last_round_compute(per_shard: &[AlgoRun]) -> u64 {
    per_shard
        .iter()
        .filter_map(|r| r.cycles_per_iteration.last().copied())
        .max()
        .unwrap_or(0)
}

/// Shared BSP loop for the monotone `atomicMin` fixpoint family
/// (BFS / CC / SSSP): round until no device changed and no ghost merge
/// improved an owner.
fn run_min_bsp<St: Sync>(
    md: &mut MultiDevice,
    name: &'static str,
    states: &[St],
    values: &[DevPtr<u32>],
    link: &LinkConfig,
    obs: Option<&Registry>,
    round_fn: impl Fn(usize, &mut ShardDevice, &St, u32, &mut AlgoRun) -> Result<bool, LaunchError>
        + Sync,
) -> Result<ShardedRun, LaunchError> {
    let nsh = md.devices.len();
    let mut per_shard = vec![AlgoRun::default(); nsh];
    let mut ic = Interconnect::new(*link, nsh as u32);
    let mut rounds: Vec<RoundBreakdown> = Vec::new();
    let mut round = 0u32;
    loop {
        let changed = par_shards(
            &mut md.devices,
            states,
            &mut per_shard,
            |i, dev, st, run| round_fn(i, dev, st, round, run),
        )?;
        let improved = min_exchange(&mut md.devices, &md.part, values, &mut ic);
        rounds.push(ic.settle(last_round_compute(&per_shard)));
        if !changed.iter().any(|&c| c) && !improved {
            break;
        }
        round += 1;
        check_iteration_bound(&md.devices[0].gpu, name, round, md.part.n)?;
    }
    let sr = ShardedRun {
        run: merge_runs(&per_shard, &rounds),
        per_shard,
        rounds,
    };
    record_obs(obs, &sr, &ic);
    Ok(sr)
}

/// Sharded BFS from global source `src`. Returns per-global-vertex levels
/// byte-identical to `maxwarp::run_bfs`.
pub fn run_bfs_sharded(
    md: &mut MultiDevice,
    src: u32,
    method: Method,
    exec: &ExecConfig,
    link: &LinkConfig,
    obs: Option<&Registry>,
) -> Result<ShardedOutput<u32>, LaunchError> {
    assert!(
        src < md.part.n,
        "source {src} out of range for n={}",
        md.part.n
    );
    let states: Vec<BfsState> = md
        .part
        .shards
        .iter()
        .zip(md.devices.iter_mut())
        .map(|(sh, dev)| {
            let init: Vec<u32> = (0..sh.n_local())
                .map(|l| if sh.global_of(l) == src { 0 } else { BFS_INF })
                .collect();
            BfsState::from_levels(&mut dev.gpu, &dev.dg, &init)
        })
        .collect();
    let values: Vec<DevPtr<u32>> = states.iter().map(|s| s.levels).collect();
    let run = run_min_bsp(
        md,
        "bfs",
        &states,
        &values,
        link,
        obs,
        |_, dev, st, cur, r| bfs_round(&mut dev.gpu, &dev.dg, st, cur, method, exec, r),
    )?;
    Ok(ShardedOutput {
        values: gather_u32(md, &values),
        run,
    })
}

/// Sharded connected components. Returns per-global-vertex labels
/// byte-identical to `maxwarp::run_cc`.
pub fn run_cc_sharded(
    md: &mut MultiDevice,
    method: Method,
    exec: &ExecConfig,
    link: &LinkConfig,
    obs: Option<&Registry>,
) -> Result<ShardedOutput<u32>, LaunchError> {
    let states: Vec<CcState> = md
        .part
        .shards
        .iter()
        .zip(md.devices.iter_mut())
        .map(|(sh, dev)| {
            let init: Vec<u32> = (0..sh.n_local()).map(|l| sh.global_of(l)).collect();
            CcState::with_labels(&mut dev.gpu, &dev.dg, &init)
        })
        .collect();
    let values: Vec<DevPtr<u32>> = states.iter().map(|s| s.labels).collect();
    let run = run_min_bsp(md, "cc", &states, &values, link, obs, |_, dev, st, _, r| {
        cc_round(&mut dev.gpu, &dev.dg, st, method, exec, r)
    })?;
    Ok(ShardedOutput {
        values: gather_u32(md, &values),
        run,
    })
}

/// Sharded SSSP from global source `src`. Requires a weighted partition;
/// returns distances byte-identical to `maxwarp::run_sssp`.
pub fn run_sssp_sharded(
    md: &mut MultiDevice,
    src: u32,
    method: Method,
    exec: &ExecConfig,
    link: &LinkConfig,
    obs: Option<&Registry>,
) -> Result<ShardedOutput<u32>, LaunchError> {
    assert!(
        src < md.part.n,
        "source {src} out of range for n={}",
        md.part.n
    );
    assert!(
        md.devices.iter().all(|d| d.dg.weights.is_some()),
        "run_sssp_sharded requires a weighted partition"
    );
    let states: Vec<SsspState> = md
        .part
        .shards
        .iter()
        .zip(md.devices.iter_mut())
        .map(|(sh, dev)| {
            let init: Vec<u32> = (0..sh.n_local())
                .map(|l| if sh.global_of(l) == src { 0 } else { SSSP_INF })
                .collect();
            SsspState::from_dist(&mut dev.gpu, &dev.dg, &init)
        })
        .collect();
    let values: Vec<DevPtr<u32>> = states.iter().map(|s| s.dist).collect();
    let run = run_min_bsp(
        md,
        "sssp",
        &states,
        &values,
        link,
        obs,
        |_, dev, st, cur, r| {
            let Some(w) = dev.dg.weights else {
                panic!("run_sssp_sharded requires a weighted partition");
            };
            sssp_round(&mut dev.gpu, &dev.dg, w, st, cur, method, exec, r)
        },
    )?;
    Ok(ShardedOutput {
        values: gather_u32(md, &values),
        run,
    })
}

/// Sharded PageRank: `iters` fixed iterations with damping `d`. Ranks are
/// byte-identical to `maxwarp::run_pagerank` (integer fixed-point halo
/// sums are order-independent).
pub fn run_pagerank_sharded(
    md: &mut MultiDevice,
    iters: u32,
    d: f32,
    method: Method,
    exec: &ExecConfig,
    link: &LinkConfig,
    obs: Option<&Registry>,
) -> Result<ShardedOutput<f32>, LaunchError> {
    assert!(md.part.n > 0, "pagerank needs a non-empty graph");
    let n = md.part.n;
    let d_fp = pagerank_damping_fp(d);
    let nsh = md.devices.len();
    let n_owned: Vec<u32> = md.part.shards.iter().map(|s| s.n_owned()).collect();
    let mut states: Vec<PagerankState> = md
        .part
        .shards
        .iter()
        .zip(md.devices.iter_mut())
        .map(|(sh, dev)| PagerankState::new(&mut dev.gpu, sh.n_local(), PR_SCALE / n))
        .collect();
    let mut per_shard = vec![AlgoRun::default(); nsh];
    let mut ic = Interconnect::new(*link, nsh as u32);
    let mut rounds: Vec<RoundBreakdown> = Vec::new();

    for it in 0..iters {
        // Superstep compute, part 1: push owned rows (ghost rows neither
        // push nor register as dangling).
        par_shards(
            &mut md.devices,
            &states,
            &mut per_shard,
            |i, dev, st, run| {
                pagerank_push_round(&mut dev.gpu, &dev.dg, st, n_owned[i], it, method, exec, run)
                    .map(|_| true)
            },
        )?;

        // Dangling allreduce: host-exact sum, modeled as a rank-0
        // reduce + broadcast on the fabric.
        let mut dang = 0u32;
        for (s, st) in states.iter().enumerate().take(nsh) {
            dang = dang.wrapping_add(md.devices[s].gpu.mem.read(st.dangling, 0));
            ic.charge(s as u32, 0, 4);
            ic.charge(0, s as u32, 4);
        }

        // Halo gather: add each shard's ghost partial sums into the
        // owner's accumulator — exact, order-independent integer adds.
        for s in 0..nsh {
            let no = n_owned[s];
            for (gi, gh) in md.part.shards[s].ghosts.iter().enumerate() {
                let slot = no + gi as u32;
                let o = gh.owner as usize;
                let partial = md.devices[s].gpu.mem.read(states[s].next, slot);
                let cur = md.devices[o].gpu.mem.read(states[o].next, gh.owner_local);
                md.devices[o].gpu.mem.write(
                    states[o].next,
                    gh.owner_local,
                    cur.wrapping_add(partial),
                );
                ic.charge(s as u32, gh.owner, 4);
            }
        }

        // Superstep compute, part 2: damping/teleport over owned rows with
        // the globally-agreed base term.
        let base_fp = pagerank_base_fp(n, d_fp, dang);
        par_shards(
            &mut md.devices,
            &states,
            &mut per_shard,
            |i, dev, st, run| {
                pagerank_apply_round(&mut dev.gpu, st, n_owned[i], base_fp, d_fp, exec, run)
                    .map(|_| true)
            },
        )?;
        for st in &mut states {
            st.swap();
        }

        // Halo scatter: refresh every ghost rank copy from its owner.
        for s in 0..nsh {
            let no = n_owned[s];
            for (gi, gh) in md.part.shards[s].ghosts.iter().enumerate() {
                let slot = no + gi as u32;
                let o = gh.owner as usize;
                let ov = md.devices[o].gpu.mem.read(states[o].rank, gh.owner_local);
                md.devices[s].gpu.mem.write(states[s].rank, slot, ov);
                ic.charge(gh.owner, s as u32, 4);
            }
        }

        rounds.push(ic.settle(last_round_compute(&per_shard)));
    }

    let values: Vec<DevPtr<u32>> = states.iter().map(|s| s.rank).collect();
    let ranks = gather_u32(md, &values)
        .into_iter()
        .map(pagerank_fp_to_f32)
        .collect();
    let sr = ShardedRun {
        run: merge_runs(&per_shard, &rounds),
        per_shard,
        rounds,
    };
    record_obs(obs, &sr, &ic);
    Ok(ShardedOutput {
        values: ranks,
        run: sr,
    })
}
