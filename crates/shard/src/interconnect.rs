//! Cost model for the inter-device fabric.
//!
//! The BSP executor is host-side and exact; what a real multi-GPU system
//! adds is the *interconnect* — finite per-link bandwidth, per-transfer
//! latency, and contention when several devices hang off one link (PCIe
//! switch / NVLink bridge style). This module charges those costs without
//! simulating wires: the executor reports every halo message
//! ([`Interconnect::charge`]) and, once per BSP round,
//! [`Interconnect::settle`] converts accumulated bytes into cycles:
//!
//! * `transfer = max over links of ceil(link_bytes / bytes_per_cycle)` —
//!   links move their queued bytes in parallel, each serializing its own
//!   traffic (an arbiter: two shards sharing a link halve its bandwidth);
//! * `ideal` is the same maximum computed per *device*, i.e. what a
//!   dedicated link per device would cost; `stall = transfer - ideal`
//!   isolates pure contention;
//! * `comm = transfer + latency_cycles` when any bytes moved, else 0.
//!
//! Devices map to links round-robin in groups of `devices_per_link`; a
//! message charges its bytes to both endpoint devices and to each
//! endpoint's link (once, when both ends share the link).

/// Interconnect shape and speed. Values resolve from the environment:
/// `MAXWARP_LINK_BW` (bytes/cycle), `MAXWARP_LINK_LAT` (cycles),
/// `MAXWARP_LINK_FANOUT` (devices per link).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkConfig {
    /// Link bandwidth in bytes per device cycle.
    pub bytes_per_cycle: u64,
    /// Fixed per-round transfer latency in cycles.
    pub latency_cycles: u64,
    /// Devices sharing one link (arbiter fan-in).
    pub devices_per_link: u32,
}

impl Default for LinkConfig {
    fn default() -> LinkConfig {
        // Roughly PCIe-gen3-x16 against a ~1 GHz device clock: 16 B/cycle,
        // with a microsecond-ish round setup cost.
        LinkConfig {
            bytes_per_cycle: 16,
            latency_cycles: 600,
            devices_per_link: 2,
        }
    }
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok().and_then(|v| v.trim().parse().ok())
}

impl LinkConfig {
    /// Defaults overridden by `MAXWARP_LINK_BW` / `MAXWARP_LINK_LAT` /
    /// `MAXWARP_LINK_FANOUT`. Zero values are clamped to 1.
    pub fn from_env() -> LinkConfig {
        let d = LinkConfig::default();
        LinkConfig {
            bytes_per_cycle: env_u64("MAXWARP_LINK_BW")
                .unwrap_or(d.bytes_per_cycle)
                .max(1),
            latency_cycles: env_u64("MAXWARP_LINK_LAT").unwrap_or(d.latency_cycles),
            devices_per_link: env_u64("MAXWARP_LINK_FANOUT")
                .unwrap_or(d.devices_per_link as u64)
                .max(1) as u32,
        }
    }
}

/// Per-BSP-round cost breakdown.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RoundBreakdown {
    /// Critical-path device compute for the round (max over shards).
    pub compute_cycles: u64,
    /// Interconnect cycles: serialized transfer plus latency.
    pub comm_cycles: u64,
    /// Portion of `comm_cycles` attributable to link contention.
    pub stall_cycles: u64,
    /// Total halo bytes moved this round.
    pub halo_bytes: u64,
}

/// Accumulates halo traffic between settles.
#[derive(Clone, Debug)]
pub struct Interconnect {
    cfg: LinkConfig,
    /// Bytes queued on each link this round.
    link_bytes: Vec<u64>,
    /// Bytes touching each device this round (sent + received).
    device_bytes: Vec<u64>,
    /// Cumulative bytes per device across the whole run (for metrics).
    device_total: Vec<u64>,
}

impl Interconnect {
    /// A fabric connecting `devices` devices per `cfg`.
    pub fn new(cfg: LinkConfig, devices: u32) -> Interconnect {
        let links = devices.div_ceil(cfg.devices_per_link).max(1) as usize;
        Interconnect {
            cfg,
            link_bytes: vec![0; links],
            device_bytes: vec![0; devices.max(1) as usize],
            device_total: vec![0; devices.max(1) as usize],
        }
    }

    /// The link device `dev` hangs off.
    pub fn link_of(&self, dev: u32) -> u32 {
        dev / self.cfg.devices_per_link
    }

    /// Record `bytes` moving from device `src` to device `dst`.
    pub fn charge(&mut self, src: u32, dst: u32, bytes: u64) {
        if src == dst || bytes == 0 {
            return;
        }
        self.device_bytes[src as usize] += bytes;
        self.device_bytes[dst as usize] += bytes;
        self.device_total[src as usize] += bytes;
        self.device_total[dst as usize] += bytes;
        let (ls, ld) = (self.link_of(src), self.link_of(dst));
        self.link_bytes[ls as usize] += bytes;
        if ld != ls {
            self.link_bytes[ld as usize] += bytes;
        }
    }

    /// Close the round: convert accumulated bytes into a breakdown (with
    /// the given critical-path `compute_cycles`) and reset per-round state.
    pub fn settle(&mut self, compute_cycles: u64) -> RoundBreakdown {
        let bw = self.cfg.bytes_per_cycle.max(1);
        let transfer = self
            .link_bytes
            .iter()
            .map(|b| b.div_ceil(bw))
            .max()
            .unwrap_or(0);
        let ideal = self
            .device_bytes
            .iter()
            .map(|b| b.div_ceil(bw))
            .max()
            .unwrap_or(0);
        let halo_bytes: u64 = self.device_bytes.iter().sum::<u64>() / 2;
        let comm_cycles = if halo_bytes > 0 {
            transfer + self.cfg.latency_cycles
        } else {
            0
        };
        for b in &mut self.link_bytes {
            *b = 0;
        }
        for b in &mut self.device_bytes {
            *b = 0;
        }
        RoundBreakdown {
            compute_cycles,
            comm_cycles,
            stall_cycles: transfer.saturating_sub(ideal),
            halo_bytes,
        }
    }

    /// Cumulative halo bytes touching each device over the whole run.
    pub fn device_totals(&self) -> &[u64] {
        &self.device_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(bw: u64, lat: u64, fanout: u32) -> LinkConfig {
        LinkConfig {
            bytes_per_cycle: bw,
            latency_cycles: lat,
            devices_per_link: fanout,
        }
    }

    #[test]
    fn silent_round_costs_nothing() {
        let mut ic = Interconnect::new(cfg(16, 500, 2), 4);
        let rb = ic.settle(1000);
        assert_eq!(rb.comm_cycles, 0);
        assert_eq!(rb.stall_cycles, 0);
        assert_eq!(rb.halo_bytes, 0);
        assert_eq!(rb.compute_cycles, 1000);
    }

    #[test]
    fn paired_devices_share_a_link_without_stall() {
        // Devices 0 and 1 share link 0: one message between them crosses
        // only that link, so contention is impossible.
        let mut ic = Interconnect::new(cfg(4, 100, 2), 4);
        ic.charge(0, 1, 400);
        let rb = ic.settle(0);
        assert_eq!(rb.halo_bytes, 400);
        assert_eq!(rb.comm_cycles, 100 + 100);
        assert_eq!(rb.stall_cycles, 0);
    }

    #[test]
    fn link_sharing_serializes() {
        // Devices 0 and 1 share link 0 and each talk to the far pair:
        // link 0 carries both flows, a dedicated-link fabric would not.
        let mut ic = Interconnect::new(cfg(4, 0, 2), 4);
        ic.charge(0, 2, 400);
        ic.charge(1, 3, 400);
        let rb = ic.settle(0);
        assert_eq!(rb.halo_bytes, 800);
        assert_eq!(rb.comm_cycles, 200); // 800 bytes on link 0, bw 4
        assert_eq!(rb.stall_cycles, 100); // vs 400 bytes per device
    }

    #[test]
    fn self_and_empty_charges_ignored() {
        let mut ic = Interconnect::new(cfg(4, 50, 1), 2);
        ic.charge(0, 0, 400);
        ic.charge(0, 1, 0);
        let rb = ic.settle(7);
        assert_eq!(rb.halo_bytes, 0);
        assert_eq!(rb.comm_cycles, 0);
    }

    #[test]
    fn settle_resets_and_totals_accumulate() {
        let mut ic = Interconnect::new(cfg(1, 0, 1), 2);
        ic.charge(0, 1, 10);
        let a = ic.settle(0);
        let b = ic.settle(0);
        assert_eq!(a.halo_bytes, 10);
        assert_eq!(b.halo_bytes, 0);
        ic.charge(1, 0, 5);
        let _ = ic.settle(0);
        assert_eq!(ic.device_totals(), &[15, 15]);
    }

    #[test]
    fn env_defaults_are_sane() {
        let d = LinkConfig::default();
        assert!(d.bytes_per_cycle > 0);
        assert!(d.devices_per_link > 0);
    }
}
