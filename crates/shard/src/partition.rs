//! Edge-cut graph partitioning for multi-device execution.
//!
//! A [`Partition`] splits a CSR graph into `N` shards. Every vertex has
//! exactly one **owner** shard; a shard's local graph holds its owned
//! vertices (local ids `0..n_owned`, assigned in ascending global-id
//! order) followed by **ghost** slots — remote endpoints of cut edges,
//! appended in first-encounter order with *empty* adjacency rows. Edges
//! stay with the owner of their source vertex, in the original CSR order,
//! so per-edge weights remap one-to-one and the `N = 1` partition
//! reproduces the input CSR exactly.
//!
//! Owners come from a contiguous range split of a relabeling permutation
//! ([`CutStrategy`]): `owner(v) = perm[v] / ceil(n / N)`. The strategies
//! reuse the orderings from [`maxwarp_graph::permute`] — `Block` keeps the
//! native order, `Degree` packs hubs together (adversarial: one shard gets
//! the heavy tail), `Bfs` keeps discovery-order neighborhoods together
//! (locality-preserving, fewest cut edges on meshes).

use maxwarp_graph::{bfs_permutation, degree_sort_permutation, partitioned_key, Csr};

/// How vertices are assigned to shards (which relabeling the contiguous
/// range split is applied to).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CutStrategy {
    /// Native vertex order: shard `s` owns the contiguous id range
    /// `[s*chunk, (s+1)*chunk)`.
    Block,
    /// Degree-descending order: hubs cluster on the first shard.
    Degree,
    /// BFS discovery order from the max-degree vertex.
    Bfs,
}

impl CutStrategy {
    /// Stable label, used in cache keys and bench output.
    pub fn label(&self) -> &'static str {
        match self {
            CutStrategy::Block => "block",
            CutStrategy::Degree => "degree",
            CutStrategy::Bfs => "bfs",
        }
    }

    /// Parse a label (as accepted by `MAXWARP_CUT`); unknown labels fall
    /// back to `Block`.
    pub fn parse(s: &str) -> CutStrategy {
        match s.trim().to_ascii_lowercase().as_str() {
            "degree" => CutStrategy::Degree,
            "bfs" => CutStrategy::Bfs,
            _ => CutStrategy::Block,
        }
    }

    /// The owner permutation for `g` (`perm[old] = new`).
    fn permutation(&self, g: &Csr) -> Option<Vec<u32>> {
        match self {
            CutStrategy::Block => None, // identity
            CutStrategy::Degree => Some(degree_sort_permutation(g)),
            CutStrategy::Bfs => {
                let src = (0..g.num_vertices())
                    .max_by_key(|&v| g.degree(v))
                    .unwrap_or(0);
                Some(bfs_permutation(g, src))
            }
        }
    }
}

/// Everything that determines a partition's shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PartitionSpec {
    /// Number of shards (devices).
    pub shards: u32,
    /// Vertex-to-shard assignment strategy.
    pub cut: CutStrategy,
}

impl PartitionSpec {
    /// A block cut over `shards` devices.
    pub fn block(shards: u32) -> PartitionSpec {
        PartitionSpec {
            shards,
            cut: CutStrategy::Block,
        }
    }

    /// The graph-cache key for shard `shard` of a graph whose whole-graph
    /// recipe key is `base` (see [`maxwarp_graph::cache::partitioned_key`]).
    pub fn cache_key(&self, base: &str, shard: u32) -> String {
        partitioned_key(base, self.shards, self.cut.label(), shard)
    }
}

/// A remote vertex referenced by a shard's cut edges.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Ghost {
    /// Global vertex id.
    pub global: u32,
    /// Owning shard.
    pub owner: u32,
    /// Local id within the owning shard.
    pub owner_local: u32,
}

/// One shard of a partitioned graph.
#[derive(Clone, Debug)]
pub struct Shard {
    /// Global ids of owned vertices, ascending; index = local id.
    pub owned: Vec<u32>,
    /// Ghost table; ghost `i` has local id `n_owned + i`.
    pub ghosts: Vec<Ghost>,
    /// Local CSR: `n_owned` real rows then one empty row per ghost.
    pub local: Csr,
    /// Per-edge weights aligned with `local`, when the input was weighted.
    pub weights: Option<Vec<u32>>,
}

impl Shard {
    /// Number of owned (non-ghost) vertices.
    pub fn n_owned(&self) -> u32 {
        self.owned.len() as u32
    }

    /// Total local vertex slots (owned + ghosts).
    pub fn n_local(&self) -> u32 {
        self.owned.len() as u32 + self.ghosts.len() as u32
    }

    /// Global id of local slot `l`.
    pub fn global_of(&self, l: u32) -> u32 {
        let no = self.owned.len() as u32;
        if l < no {
            self.owned[l as usize]
        } else {
            self.ghosts[(l - no) as usize].global
        }
    }
}

/// An edge-cut partition of one graph.
#[derive(Clone, Debug)]
pub struct Partition {
    /// The spec this partition was built from.
    pub spec: PartitionSpec,
    /// Global vertex count.
    pub n: u32,
    /// Global edge count.
    pub m: u64,
    /// `owner[v]` = shard owning global vertex `v`.
    pub owner: Vec<u32>,
    /// `local_id[v]` = local id of `v` within its owner shard.
    pub local_id: Vec<u32>,
    /// The shards, indexed by shard id. Shards may be empty when `n <
    /// spec.shards`.
    pub shards: Vec<Shard>,
}

impl Partition {
    /// Partition `g` (with optional per-edge `weights`) per `spec`.
    pub fn new(g: &Csr, weights: Option<&[u32]>, spec: &PartitionSpec) -> Partition {
        assert!(spec.shards >= 1, "need at least one shard");
        if let Some(w) = weights {
            assert_eq!(w.len() as u64, g.num_edges(), "one weight per edge");
        }
        let n = g.num_vertices();
        let nshards = spec.shards;
        let chunk = n.div_ceil(nshards).max(1);
        let perm = spec.cut.permutation(g);
        let owner_of = |v: u32| -> u32 {
            let key = match &perm {
                Some(p) => p[v as usize],
                None => v,
            };
            (key / chunk).min(nshards - 1)
        };

        let owner: Vec<u32> = (0..n).map(owner_of).collect();
        // Owned lists in ascending global order: a single counting pass
        // over 0..n appends each vertex to its owner, already sorted.
        let mut owned: Vec<Vec<u32>> = vec![Vec::new(); nshards as usize];
        let mut local_id = vec![0u32; n as usize];
        for v in 0..n {
            let s = owner[v as usize] as usize;
            local_id[v as usize] = owned[s].len() as u32;
            owned[s].push(v);
        }

        let mut shards = Vec::with_capacity(nshards as usize);
        for (s, owned_s) in owned.into_iter().enumerate() {
            // Walk owned rows in local-id order; cut-edge targets become
            // ghosts in first-encounter order.
            let mut ghosts: Vec<Ghost> = Vec::new();
            let mut ghost_slot: std::collections::HashMap<u32, u32> =
                std::collections::HashMap::new();
            let n_owned = owned_s.len() as u32;
            let mut row_offsets = Vec::with_capacity(owned_s.len() + 1);
            let mut col = Vec::new();
            let mut wts: Option<Vec<u32>> = weights.map(|_| Vec::new());
            row_offsets.push(0u32);
            for &u in &owned_s {
                let row = g.neighbors(u);
                let base = g.row_offsets()[u as usize];
                for (k, &v) in row.iter().enumerate() {
                    let tgt = if owner[v as usize] as usize == s {
                        local_id[v as usize]
                    } else {
                        *ghost_slot.entry(v).or_insert_with(|| {
                            let slot = n_owned + ghosts.len() as u32;
                            ghosts.push(Ghost {
                                global: v,
                                owner: owner[v as usize],
                                owner_local: local_id[v as usize],
                            });
                            slot
                        })
                    };
                    col.push(tgt);
                    if let Some(w) = &mut wts {
                        w.push(weights.unwrap_or(&[])[(base as usize) + k]);
                    }
                }
                row_offsets.push(col.len() as u32);
            }
            // Ghost rows are empty.
            for _ in 0..ghosts.len() {
                row_offsets.push(col.len() as u32);
            }
            shards.push(Shard {
                owned: owned_s,
                ghosts,
                local: Csr::from_raw(row_offsets, col),
                weights: wts,
            });
        }

        Partition {
            spec: *spec,
            n,
            m: g.num_edges(),
            owner,
            local_id,
            shards,
        }
    }

    /// Total cut edges (edges whose target lives on another shard).
    pub fn cut_edges(&self) -> u64 {
        let mut cut = 0u64;
        for sh in &self.shards {
            let no = sh.n_owned();
            for &t in sh.local.col_indices() {
                if t >= no {
                    cut += 1;
                }
            }
        }
        cut
    }

    /// Total ghost slots across shards (each counted once per shard that
    /// references the vertex).
    pub fn ghost_slots(&self) -> u64 {
        self.shards.iter().map(|s| s.ghosts.len() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxwarp_graph::{hub_graph, random_weights, rmat, Dataset, RmatConfig, Scale};

    fn small_rmat() -> Csr {
        let mut g = rmat(&RmatConfig::classic(9, 8, 7));
        g.sort_neighbors();
        g
    }

    fn check_invariants(g: &Csr, p: &Partition) {
        let n = g.num_vertices();
        assert_eq!(p.n, n);
        assert_eq!(p.m, g.num_edges());
        // Every vertex owned exactly once, local ids consistent.
        let mut seen = vec![false; n as usize];
        for (s, sh) in p.shards.iter().enumerate() {
            let mut prev: Option<u32> = None;
            for (l, &v) in sh.owned.iter().enumerate() {
                assert_eq!(p.owner[v as usize] as usize, s);
                assert_eq!(p.local_id[v as usize] as usize, l);
                if let Some(pv) = prev {
                    assert!(pv < v, "owned ids ascending");
                }
                prev = Some(v);
                assert!(!seen[v as usize]);
                seen[v as usize] = true;
            }
            // Ghost rows are empty; ghost records point at real slots.
            let no = sh.n_owned();
            for (gi, gh) in sh.ghosts.iter().enumerate() {
                assert_ne!(gh.owner as usize, s, "ghosts are remote");
                assert_eq!(p.owner[gh.global as usize], gh.owner);
                assert_eq!(p.local_id[gh.global as usize], gh.owner_local);
                assert_eq!(sh.local.degree(no + gi as u32), 0, "ghost rows empty");
                assert_eq!(sh.global_of(no + gi as u32), gh.global);
            }
        }
        assert!(seen.iter().all(|&x| x), "every vertex owned");
        // Edge multiset preserved: map each local edge back to global.
        let mut want: Vec<(u32, u32)> = g.edges().collect();
        let mut got = Vec::new();
        for sh in &p.shards {
            for u in 0..sh.n_owned() {
                for &t in sh.local.neighbors(u) {
                    got.push((sh.global_of(u), sh.global_of(t)));
                }
            }
        }
        want.sort_unstable();
        got.sort_unstable();
        assert_eq!(want, got, "edges survive the round-trip");
    }

    #[test]
    fn invariants_hold_across_cuts_and_counts() {
        let g = Dataset::Rmat.build(Scale::Tiny);
        for shards in [1u32, 2, 3, 4, 8] {
            for cut in [CutStrategy::Block, CutStrategy::Degree, CutStrategy::Bfs] {
                let p = Partition::new(&g, None, &PartitionSpec { shards, cut });
                check_invariants(&g, &p);
            }
        }
    }

    #[test]
    fn single_shard_reproduces_the_input() {
        let g = small_rmat();
        let w = random_weights(&g, 63, 5);
        for cut in [CutStrategy::Block, CutStrategy::Degree, CutStrategy::Bfs] {
            let p = Partition::new(&g, Some(&w), &PartitionSpec { shards: 1, cut });
            assert_eq!(p.shards[0].local, g, "{}", cut.label());
            assert_eq!(p.shards[0].weights.as_deref(), Some(&w[..]));
            assert!(p.shards[0].ghosts.is_empty());
        }
    }

    #[test]
    fn weights_follow_their_edges() {
        let g = hub_graph(64, 4, 12, 3, 5);
        let w = random_weights(&g, 63, 9);
        let p = Partition::new(&g, Some(&w), &PartitionSpec::block(4));
        // Each global edge's weight must appear on the owner shard at the
        // position of the corresponding local edge.
        for sh in &p.shards {
            let sw = sh.weights.as_ref().unwrap();
            let mut k = 0usize;
            for u in 0..sh.n_owned() {
                let gu = sh.global_of(u);
                let base = g.row_offsets()[gu as usize] as usize;
                for (i, _) in sh.local.neighbors(u).iter().enumerate() {
                    assert_eq!(sw[k], w[base + i]);
                    k += 1;
                }
            }
        }
    }

    #[test]
    fn empty_shards_when_more_shards_than_vertices() {
        let g = Csr::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let p = Partition::new(&g, None, &PartitionSpec::block(8));
        check_invariants(&g, &p);
        let empty = p.shards.iter().filter(|s| s.owned.is_empty()).count();
        assert!(empty >= 3, "8 shards over 5 vertices leaves empties");
    }

    #[test]
    fn degree_cut_packs_hubs_on_shard_zero() {
        let g = hub_graph(256, 2, 64, 2, 1);
        let p = Partition::new(
            &g,
            None,
            &PartitionSpec {
                shards: 4,
                cut: CutStrategy::Degree,
            },
        );
        check_invariants(&g, &p);
        let hub = (0..256u32).max_by_key(|&v| g.degree(v)).unwrap();
        assert_eq!(p.owner[hub as usize], 0, "hubs land on shard 0");
    }

    #[test]
    fn cache_keys_embed_the_spec() {
        let spec = PartitionSpec {
            shards: 4,
            cut: CutStrategy::Degree,
        };
        let k = spec.cache_key("rmat-Tiny-seed1-v1", 2);
        assert!(k.contains("part4xdegree"));
        assert!(k.ends_with("#2"));
        assert_ne!(k, spec.cache_key("rmat-Tiny-seed1-v1", 3));
    }
}
