//! Shard-vs-single-device identity sweep.
//!
//! The contract under test: for every shard count N ∈ {1, 2, 4, 8} and
//! every cut strategy, the merged sharded payloads are byte-identical to
//! the single-device drivers; at N = 1 the whole `AlgoRun` (stats,
//! iterations, per-iteration cycles) matches field for field; and at
//! N > 1 the merged record is deterministic across repeated runs.

use maxwarp::{run_bfs, run_cc, run_pagerank, run_sssp, AlgoRun, DeviceGraph, ExecConfig, Method};
use maxwarp_graph::{random_weights, Csr, Dataset, Scale};
use maxwarp_shard::{
    run_bfs_sharded, run_cc_sharded, run_pagerank_sharded, run_sssp_sharded, CutStrategy,
    LinkConfig, MultiDevice, Partition, PartitionSpec, ShardedRun,
};
use maxwarp_simt::{Gpu, GpuConfig, LaunchError};

const SHARD_COUNTS: [u32; 4] = [1, 2, 4, 8];
const PR_ITERS: u32 = 10;
const PR_DAMPING: f32 = 0.85;

fn gpu() -> Gpu {
    Gpu::new(GpuConfig::tiny_test())
}

fn exec() -> ExecConfig {
    ExecConfig::default()
}

fn fleet(g: &Csr, weights: Option<&[u32]>, shards: u32, cut: CutStrategy) -> MultiDevice {
    let part = Partition::new(g, weights, &PartitionSpec { shards, cut });
    MultiDevice::upload(&GpuConfig::tiny_test(), part)
}

fn assert_run_eq(a: &AlgoRun, b: &AlgoRun, what: &str) {
    assert_eq!(a.stats, b.stats, "{what}: stats");
    assert_eq!(a.iterations, b.iterations, "{what}: iterations");
    assert_eq!(
        a.cycles_per_iteration, b.cycles_per_iteration,
        "{what}: per-iteration cycles"
    );
}

fn assert_sharded_eq(a: &ShardedRun, b: &ShardedRun, what: &str) {
    assert_run_eq(&a.run, &b.run, what);
    assert_eq!(a.rounds, b.rounds, "{what}: round breakdowns");
    assert_eq!(a.per_shard.len(), b.per_shard.len(), "{what}: shard count");
    for (i, (x, y)) in a.per_shard.iter().zip(b.per_shard.iter()).enumerate() {
        assert_run_eq(x, y, &format!("{what}: shard {i}"));
    }
}

/// Run the 4-algorithm identity check for one graph across shard counts
/// and cuts. `src` is the traversal source; SSSP is skipped when
/// `weights` is `None`.
fn identity_sweep(tag: &str, g: &Csr, weights: Option<&[u32]>, src: u32, method: Method) {
    let e = exec();
    let link = LinkConfig::default();

    // Single-device references.
    let (want_bfs, bfs_run) = {
        let mut gp = gpu();
        let dg = DeviceGraph::upload(&mut gp, g);
        let o = run_bfs(&mut gp, &dg, src, method, &e).unwrap();
        (o.levels, o.run)
    };
    let (want_pr, pr_run) = {
        let mut gp = gpu();
        let dg = DeviceGraph::upload(&mut gp, g);
        let o = run_pagerank(&mut gp, &dg, PR_ITERS, PR_DAMPING, method, &e).unwrap();
        (o.ranks, o.run)
    };
    let sym = g.symmetrize();
    let (want_cc, cc_run) = {
        let mut gp = gpu();
        let dg = DeviceGraph::upload(&mut gp, &sym);
        let o = run_cc(&mut gp, &dg, method, &e).unwrap();
        (o.labels, o.run)
    };
    let want_sssp = weights.map(|w| {
        let mut gp = gpu();
        let dg = DeviceGraph::upload_weighted(&mut gp, g, w);
        let o = run_sssp(&mut gp, &dg, src, method, &e).unwrap();
        (o.dist, o.run)
    });

    for cut in [CutStrategy::Block, CutStrategy::Degree, CutStrategy::Bfs] {
        for shards in SHARD_COUNTS {
            let what = format!("{tag}/{}/N={shards}", cut.label());

            let mut md = fleet(g, None, shards, cut);
            let out = run_bfs_sharded(&mut md, src, method, &e, &link, None).unwrap();
            assert_eq!(out.values, want_bfs, "{what}: bfs levels");
            if shards == 1 {
                assert_run_eq(&out.run.run, &bfs_run, &format!("{what}: bfs N=1 run"));
                assert_eq!(out.run.halo_bytes(), 0, "{what}: no halo at N=1");
            }

            let mut md = fleet(g, None, shards, cut);
            let out = run_pagerank_sharded(&mut md, PR_ITERS, PR_DAMPING, method, &e, &link, None)
                .unwrap();
            // f32 conversion of identical fixed-point values: bitwise equal.
            assert_eq!(out.values, want_pr, "{what}: pagerank ranks");
            if shards == 1 {
                assert_run_eq(&out.run.run, &pr_run, &format!("{what}: pr N=1 run"));
            }

            let mut md = fleet(&sym, None, shards, cut);
            let out = run_cc_sharded(&mut md, method, &e, &link, None).unwrap();
            assert_eq!(out.values, want_cc, "{what}: cc labels");
            if shards == 1 {
                assert_run_eq(&out.run.run, &cc_run, &format!("{what}: cc N=1 run"));
            }

            if let (Some(w), Some((want, run))) = (weights, want_sssp.as_ref()) {
                let mut md = fleet(g, Some(w), shards, cut);
                let out = run_sssp_sharded(&mut md, src, method, &e, &link, None).unwrap();
                assert_eq!(&out.values, want, "{what}: sssp dist");
                if shards == 1 {
                    assert_run_eq(&out.run.run, run, &format!("{what}: sssp N=1 run"));
                }
            }
        }
    }
}

#[test]
fn rmat_identity_sweep() {
    let g = Dataset::Rmat.build(Scale::Tiny);
    let w = random_weights(&g, 63, 11);
    let src = Dataset::Rmat.source(&g);
    identity_sweep("rmat", &g, Some(&w), src, Method::warp(8));
}

#[test]
fn hub_graph_identity_sweep() {
    // Extreme hub: nearly every edge is a cut edge under a block split —
    // the all-halo stress case.
    let g = maxwarp_graph::hub_graph(512, 4, 96, 3, 42);
    let w = random_weights(&g, 31, 7);
    let src = (0..g.num_vertices()).max_by_key(|&v| g.degree(v)).unwrap();
    identity_sweep("hub", &g, Some(&w), src, Method::warp(32));
}

#[test]
fn wikitalk_identity_sweep_baseline() {
    let g = Dataset::WikiTalkLike.build(Scale::Tiny);
    let src = Dataset::WikiTalkLike.source(&g);
    identity_sweep("wikitalk", &g, None, src, Method::Baseline);
}

#[test]
fn empty_shards_merge_correctly() {
    // 5 vertices over 8 shards: at least 3 shards own nothing.
    let g = Csr::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
    let mut gp = gpu();
    let dg = DeviceGraph::upload(&mut gp, &g);
    let want = run_bfs(&mut gp, &dg, 0, Method::Baseline, &exec()).unwrap();
    let mut md = fleet(&g, None, 8, CutStrategy::Block);
    let out = run_bfs_sharded(
        &mut md,
        0,
        Method::Baseline,
        &exec(),
        &LinkConfig::default(),
        None,
    )
    .unwrap();
    assert_eq!(out.values, want.levels);

    let mut md = fleet(&g, None, 8, CutStrategy::Block);
    let pr = run_pagerank_sharded(
        &mut md,
        PR_ITERS,
        PR_DAMPING,
        Method::Baseline,
        &exec(),
        &LinkConfig::default(),
        None,
    )
    .unwrap();
    let mut gp = gpu();
    let dg = DeviceGraph::upload(&mut gp, &g);
    let want_pr = run_pagerank(
        &mut gp,
        &dg,
        PR_ITERS,
        PR_DAMPING,
        Method::Baseline,
        &exec(),
    )
    .unwrap();
    assert_eq!(pr.values, want_pr.ranks);
}

#[test]
fn all_halo_ring_across_four_shards() {
    // A directed 8-ring striped so *every* edge crosses shards: each
    // shard's local graph is all ghosts beyond its two owned vertices.
    let g = Csr::from_edges(
        8,
        &[
            (0, 4),
            (4, 1),
            (1, 5),
            (5, 2),
            (2, 6),
            (6, 3),
            (3, 7),
            (7, 0),
        ],
    );
    let part = Partition::new(&g, None, &PartitionSpec::block(4));
    assert_eq!(part.cut_edges(), 8, "every edge is cut");
    let mut gp = gpu();
    let dg = DeviceGraph::upload(&mut gp, &g);
    let want = run_bfs(&mut gp, &dg, 0, Method::Baseline, &exec()).unwrap();
    let mut md = MultiDevice::upload(&GpuConfig::tiny_test(), part);
    let out = run_bfs_sharded(
        &mut md,
        0,
        Method::Baseline,
        &exec(),
        &LinkConfig::default(),
        None,
    )
    .unwrap();
    assert_eq!(out.values, want.levels);
    assert!(out.run.halo_bytes() > 0, "cut edges must move bytes");

    let mut gp = gpu();
    let dg = DeviceGraph::upload(&mut gp, &g.symmetrize());
    let want_cc = run_cc(&mut gp, &dg, Method::Baseline, &exec()).unwrap();
    let mut md = fleet(&g.symmetrize(), None, 4, CutStrategy::Block);
    let out = run_cc_sharded(
        &mut md,
        Method::Baseline,
        &exec(),
        &LinkConfig::default(),
        None,
    )
    .unwrap();
    assert_eq!(out.values, want_cc.labels);
}

#[test]
fn merged_record_is_deterministic_at_n_gt_1() {
    let g = Dataset::Rmat.build(Scale::Tiny);
    let w = random_weights(&g, 63, 11);
    let src = Dataset::Rmat.source(&g);
    let link = LinkConfig::default();
    for shards in [2u32, 4] {
        let mut a = fleet(&g, Some(&w), shards, CutStrategy::Block);
        let mut b = fleet(&g, Some(&w), shards, CutStrategy::Block);
        let ra = run_bfs_sharded(&mut a, src, Method::warp(8), &exec(), &link, None).unwrap();
        let rb = run_bfs_sharded(&mut b, src, Method::warp(8), &exec(), &link, None).unwrap();
        assert_sharded_eq(&ra.run, &rb.run, &format!("bfs N={shards}"));
        let ra = run_sssp_sharded(&mut a, src, Method::warp(8), &exec(), &link, None).unwrap();
        let rb = run_sssp_sharded(&mut b, src, Method::warp(8), &exec(), &link, None).unwrap();
        assert_sharded_eq(&ra.run, &rb.run, &format!("sssp N={shards}"));
    }
}

#[test]
fn breakdown_accounts_for_the_makespan() {
    let g = Dataset::Rmat.build(Scale::Tiny);
    let mut md = fleet(&g, None, 4, CutStrategy::Block);
    let out = run_bfs_sharded(
        &mut md,
        Dataset::Rmat.source(&g),
        Method::warp(8),
        &exec(),
        &LinkConfig::default(),
        None,
    )
    .unwrap();
    let sr = &out.run;
    assert_eq!(sr.bsp_rounds() as usize, sr.run.cycles_per_iteration.len());
    assert_eq!(
        sr.makespan_cycles(),
        sr.compute_cycles() + sr.comm_cycles(),
        "makespan = critical-path compute + comms"
    );
    assert!(sr.stall_cycles() <= sr.comm_cycles());
    // Aggregate device work exceeds the critical path at N > 1.
    assert!(sr.run.stats.cycles >= sr.compute_cycles());
}

#[test]
fn obs_metrics_are_registered() {
    let reg = maxwarp_obs::Registry::new();
    let g = Dataset::Rmat.build(Scale::Tiny);
    let mut md = fleet(&g, None, 2, CutStrategy::Block);
    let _ = run_bfs_sharded(
        &mut md,
        Dataset::Rmat.source(&g),
        Method::warp(8),
        &exec(),
        &LinkConfig::default(),
        Some(&reg),
    )
    .unwrap();
    let text = reg.prometheus_text();
    assert!(text.contains("shard_cycles_total{shard=\"0\"}"), "{text}");
    assert!(text.contains("shard_cycles_total{shard=\"1\"}"), "{text}");
    assert!(text.contains("shard_halo_bytes_total"), "{text}");
    assert!(text.contains("shard_bsp_rounds_total"), "{text}");
    assert!(
        text.contains("shard_interconnect_stall_cycles_total"),
        "{text}"
    );
}

#[test]
fn sssp_requires_weights() {
    let g = Dataset::Rmat.build(Scale::Tiny);
    let mut md = fleet(&g, None, 2, CutStrategy::Block);
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _ = run_sssp_sharded(
            &mut md,
            0,
            Method::Baseline,
            &exec(),
            &LinkConfig::default(),
            None,
        );
    }));
    assert!(r.is_err(), "unweighted partition must be rejected");
}

#[test]
fn bfs_source_bounds_checked() {
    let g = Dataset::Rmat.build(Scale::Tiny);
    let n = g.num_vertices();
    let mut md = fleet(&g, None, 2, CutStrategy::Block);
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _ = run_bfs_sharded(
            &mut md,
            n,
            Method::Baseline,
            &exec(),
            &LinkConfig::default(),
            None,
        );
    }));
    assert!(r.is_err(), "out-of-range source must panic");
}

#[test]
fn errors_propagate_from_shard_devices() {
    // A watchdog iteration cap of zero trips on the first BSP round and
    // must surface as a LaunchError, not a panic or hang.
    let g = Dataset::Rmat.build(Scale::Tiny);
    let part = Partition::new(&g, None, &PartitionSpec::block(2));
    let mut cfg = GpuConfig::tiny_test();
    cfg.watchdog.max_iterations = Some(0);
    let mut md = MultiDevice::upload(&cfg, part);
    let err = run_bfs_sharded(
        &mut md,
        Dataset::Rmat.source(&g),
        Method::Baseline,
        &exec(),
        &LinkConfig::default(),
        None,
    );
    match err {
        Err(LaunchError::Fault(_)) => {}
        Err(e) => panic!("unexpected error kind: {e}"),
        Ok(_) => panic!("watchdog cap must error"),
    }
}
