//! Property-based tests of the simulator's core invariants.

use maxwarp_simt::{
    coalesce, shared, timing, Gpu, GpuConfig, KernelStats, Lanes, Mask, Op, TimingInput, WarpTrace,
};
use proptest::prelude::*;

fn arb_mask() -> impl Strategy<Value = Mask> {
    any::<u32>().prop_map(Mask)
}

/// Arbitrary launch statistics. Counter values are u32-sized so summing a
/// handful can never overflow the u64 fields.
fn arb_stats() -> impl Strategy<Value = KernelStats> {
    (
        proptest::collection::vec(any::<u32>(), 16),
        proptest::collection::vec(any::<u32>(), 0..6),
    )
        .prop_map(|(v, per_warp)| KernelStats {
            cycles: v[0] as u64,
            instructions: v[1] as u64,
            alu_instructions: v[2] as u64,
            mem_instructions: v[3] as u64,
            atomic_instructions: v[4] as u64,
            shared_instructions: v[5] as u64,
            barriers: v[6] as u64,
            mem_transactions: v[7] as u64,
            cached_load_instructions: v[8] as u64,
            cache_hit_segments: v[9] as u64,
            cache_miss_segments: v[10] as u64,
            atomic_replays: v[11] as u64,
            shared_replay_passes: v[12] as u64,
            active_lane_sum: v[13] as u64,
            warps: v[14] as u64,
            blocks: v[15] as u64,
            per_warp_instructions: per_warp,
        })
}

proptest! {
    // ------------------------------------------------------------- masks

    #[test]
    fn mask_de_morgan(a in arb_mask(), b in arb_mask()) {
        prop_assert_eq!(!(a & b), (!a) | (!b));
        prop_assert_eq!(!(a | b), (!a) & (!b));
    }

    #[test]
    fn mask_andnot_is_intersection_with_complement(a in arb_mask(), b in arb_mask()) {
        prop_assert_eq!(a.andnot(b), a & !b);
    }

    #[test]
    fn mask_count_matches_iter(a in arb_mask()) {
        prop_assert_eq!(a.count() as usize, a.iter().count());
        let from_iter = a.iter().fold(Mask::NONE, |m, l| m.or(Mask::lane(l)));
        prop_assert_eq!(from_iter, a);
    }

    #[test]
    fn mask_rank_is_monotone(a in arb_mask()) {
        let mut prev = 0;
        for lane in 0..32 {
            let r = a.rank(lane);
            prop_assert!(r >= prev && r <= lane as u32);
            prev = r;
        }
    }

    // Branch partition identity: a divergent branch splits the active mask
    // into taken/not-taken halves whose union reconverges to exactly the
    // original mask, with no lane on both sides. This is the invariant the
    // SIMT reconvergence stack relies on, for every mask including the
    // empty-mask and full-warp-uniform edge cases.
    #[test]
    fn mask_branch_partition_reconverges(m in arb_mask(), c in arb_mask()) {
        let taken = m & c;
        let fallthrough = m & !c;
        prop_assert_eq!(taken | fallthrough, m);
        prop_assert_eq!(taken & fallthrough, Mask::NONE);
        // Uniform branch (all active lanes agree): one side is empty and
        // the other is the whole mask — no divergence to reconverge.
        let uniform_taken = m & Mask::FULL;
        let uniform_fallthrough = m & !Mask::FULL;
        prop_assert_eq!(uniform_taken, m);
        prop_assert_eq!(uniform_fallthrough, Mask::NONE);
    }

    // Nested divergence: re-splitting a branch side stays inside it, and
    // the inner partition reconverges to the outer mask level by level.
    #[test]
    fn mask_nested_divergence_restores_each_level(m in arb_mask(), c1 in arb_mask(), c2 in arb_mask()) {
        let outer = m & c1;
        let inner_t = outer & c2;
        let inner_f = outer & !c2;
        prop_assert_eq!(inner_t & outer, inner_t, "inner stays inside outer");
        prop_assert_eq!(inner_t | inner_f, outer, "inner partition reconverges");
        prop_assert_eq!((inner_t | inner_f) | (m & !c1), m, "outer partition reconverges");
        // An empty outer side forces both inner sides empty.
        if outer == Mask::NONE {
            prop_assert_eq!(inner_t, Mask::NONE);
            prop_assert_eq!(inner_f, Mask::NONE);
        }
    }

    // span() is the tight active-lane interval: both endpoints active,
    // nothing active outside, and None exactly for the empty mask.
    #[test]
    fn mask_span_is_tight(m in arb_mask()) {
        match m.span() {
            None => prop_assert_eq!(m, Mask::NONE),
            Some((lo, hi)) => {
                prop_assert!(lo <= hi && hi < 32);
                prop_assert!(m.get(lo) && m.get(hi));
                for l in 0..32 {
                    if m.get(l) {
                        prop_assert!(lo <= l && l <= hi);
                    }
                }
            }
        }
    }

    // --------------------------------------------------------- coalescing

    #[test]
    fn transactions_bounded_by_active_count(addrs in proptest::collection::vec(any::<u32>(), 0..32)) {
        let tx = coalesce::transactions(addrs.iter().map(|&a| a as u64), 128);
        prop_assert!(tx as usize <= addrs.len());
        if !addrs.is_empty() {
            prop_assert!(tx >= 1);
        }
    }

    #[test]
    fn transactions_monotone_in_segment_size(addrs in proptest::collection::vec(any::<u32>(), 1..32)) {
        let t128 = coalesce::transactions(addrs.iter().map(|&a| a as u64), 128);
        let t32 = coalesce::transactions(addrs.iter().map(|&a| a as u64), 32);
        prop_assert!(t32 >= t128, "smaller segments cannot merge more");
    }

    #[test]
    fn transactions_invariant_under_duplication(addrs in proptest::collection::vec(any::<u32>(), 1..16)) {
        let once = coalesce::transactions(addrs.iter().map(|&a| a as u64), 128);
        let doubled = coalesce::transactions(
            addrs.iter().chain(addrs.iter()).map(|&a| a as u64), 128);
        prop_assert_eq!(once, doubled);
    }

    // ------------------------------------------------------ bank conflicts

    #[test]
    fn bank_cost_bounds(offsets in proptest::collection::vec(0u32..4096, 0..32)) {
        let cost = shared::bank_conflict_cost(offsets.iter().copied());
        prop_assert!(cost as usize <= offsets.len().max(1));
        if !offsets.is_empty() {
            prop_assert!(cost >= 1);
        } else {
            prop_assert_eq!(cost, 0);
        }
    }

    // ----------------------------------------------------------- timing

    #[test]
    fn timing_monotone_in_trace_length(len_a in 1usize..200, extra in 1usize..200) {
        let cfg = GpuConfig::tiny_test();
        let mk = |n: usize| WarpTrace { ops: vec![Op::Alu { active: 32 }; n] };
        let short = mk(len_a);
        let long = mk(len_a + extra);
        let time = |t: &WarpTrace| {
            timing::simulate(&TimingInput {
                blocks: vec![vec![vec![t]]],
                block_threads: 32,
                shared_words_per_block: 0,
                queue: Vec::new(),
            }, &cfg).unwrap()
        };
        prop_assert!(time(&long) > time(&short));
    }

    #[test]
    fn timing_deterministic(ops in proptest::collection::vec(0u8..4, 1..100), warps in 1u32..8) {
        let cfg = GpuConfig::tiny_test();
        let trace = WarpTrace {
            ops: ops.iter().map(|&k| match k {
                0 => Op::Alu { active: 32 },
                1 => Op::LdGlobal { active: 16, tx: 4 },
                2 => Op::Shared { active: 32, cost: 2 },
                _ => Op::Atomic { active: 8, tx: 2, replays: 1 },
            }).collect(),
        };
        let run = || {
            timing::simulate(&TimingInput {
                blocks: vec![(0..warps).map(|_| vec![&trace]).collect()],
                block_threads: warps * 32,
                shared_words_per_block: 0,
                queue: Vec::new(),
            }, &cfg).unwrap()
        };
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn dynamic_queue_never_slower_than_worst_static(n_heavy in 1usize..6, n_light in 1usize..6) {
        // All heavy tasks piled on one warp (worst static) must be at least
        // as slow as dynamic distribution over 2 warps.
        let cfg = GpuConfig::tiny_test();
        let heavy = WarpTrace { ops: vec![Op::Alu { active: 32 }; 300] };
        let light = WarpTrace { ops: vec![Op::Alu { active: 32 }; 5] };
        let mut queue: Vec<&WarpTrace> = Vec::new();
        for _ in 0..n_heavy { queue.push(&heavy); }
        for _ in 0..n_light { queue.push(&light); }
        let dynamic = timing::simulate(&TimingInput {
            blocks: vec![vec![vec![], vec![]]],
            block_threads: 64,
            shared_words_per_block: 0,
            queue: queue.clone(),
        }, &cfg).unwrap();
        let static_worst = timing::simulate(&TimingInput {
            blocks: vec![vec![
                (0..n_heavy).map(|_| &heavy).collect(),
                (0..n_light).map(|_| &light).collect(),
            ]],
            block_threads: 64,
            shared_words_per_block: 0,
            queue: Vec::new(),
        }, &cfg).unwrap();
        // Dynamic distribution pays a counter-fetch (DRAM tx + memory
        // round-trip) per queue pull that the static split does not; in the
        // worst case every pull lands on the critical-path warp.
        let pulls = (n_heavy + n_light) as u64;
        let fetch_slack = pulls * (cfg.mem_latency + cfg.dram_cycles_per_transaction);
        prop_assert!(
            dynamic <= static_worst + fetch_slack + 50,
            "dyn {dynamic} vs static {static_worst} (+{fetch_slack} fetch slack)"
        );
    }

    #[test]
    fn barrier_traces_terminate_and_are_deterministic(
        seed_ops in proptest::collection::vec(proptest::collection::vec(1u8..20, 1..4), 1..5),
        warps in 1u32..4,
    ) {
        // Build per-warp traces with identical barrier counts and random
        // ALU runs between barriers; the engine must terminate, be
        // deterministic, and respect the per-warp critical path.
        let cfg = GpuConfig::tiny_test();
        let phases = seed_ops.len();
        let traces: Vec<WarpTrace> = (0..warps)
            .map(|w| {
                let mut ops = Vec::new();
                for (p, lens) in seed_ops.iter().enumerate() {
                    let len = lens[(w as usize + p) % lens.len()] as usize;
                    ops.extend(std::iter::repeat_n(Op::Alu { active: 32 }, len));
                    ops.push(Op::Bar);
                }
                WarpTrace { ops }
            })
            .collect();
        let input = || TimingInput {
            blocks: vec![traces.iter().map(|t| vec![t]).collect()],
            block_threads: warps * 32,
            shared_words_per_block: 0,
            queue: Vec::new(),
        };
        let c1 = timing::simulate(&input(), &cfg).unwrap();
        let c2 = timing::simulate(&input(), &cfg).unwrap();
        prop_assert_eq!(c1, c2);
        // Lower bound: at each barrier all warps wait for the slowest run,
        // so total >= sum over phases of (max run length) * alu issue.
        let mut lower = 0u64;
        for (p, lens) in seed_ops.iter().enumerate() {
            let max_len = (0..warps)
                .map(|w| lens[(w as usize + p) % lens.len()] as u64)
                .max()
                .unwrap();
            lower += max_len; // 1 issue slot per op at minimum
        }
        prop_assert!(c1 >= lower, "cycles {} below barrier lower bound {}", c1, lower);
        prop_assert!(c1 < 1_000_000, "runaway simulation: {} cycles for {} phases", c1, phases);
    }

    // -------------------------------------------- divergence / reconvergence

    #[test]
    fn branch_both_ways_reconverges(active in arb_mask(), taken in arb_mask()) {
        // Simulate an if/else: the taken side runs under `active & taken`,
        // the else side under `active & !taken`; after reconvergence the two
        // sides' effects must partition the active lanes exactly — even when
        // one (or both) sides have an empty mask.
        let mut gpu = Gpu::new(GpuConfig::tiny_test());
        let out = gpu.mem.alloc::<u32>(32);
        gpu.launch(1, 32, &move |b: &mut maxwarp_simt::BlockCtx<'_>| {
            b.phase(|w| {
                let then_m = active & taken;
                let else_m = active.andnot(taken);
                let ids = w.lane_ids();
                w.st(then_m, out, &ids, &Lanes::splat(1u32));
                w.st(else_m, out, &ids, &Lanes::splat(2u32));
                // Reconverged: a full-active op over the original mask.
                let ones = w.alu1(active, &ids, |_| 10u32);
                let _ = ones;
            });
        }).unwrap();
        let host = gpu.mem.download(out);
        for (lane, &got) in host.iter().enumerate().take(32) {
            let expect = match (active.get(lane), taken.get(lane)) {
                (false, _) => 0,
                (true, true) => 1,
                (true, false) => 2,
            };
            prop_assert_eq!(got, expect, "lane {}", lane);
        }
    }

    #[test]
    fn nested_divergence_reenters_outer_mask(active in arb_mask(), inner in arb_mask(), deeper in arb_mask()) {
        // Two levels of nesting: masks only ever narrow, and popping a level
        // restores the enclosing mask exactly.
        let outer = active;
        let level1 = outer & inner;
        let level2 = level1 & deeper;
        prop_assert_eq!(level2 & outer, level2, "nested mask must be a subset");
        prop_assert_eq!(level1 | level1.andnot(outer), level1);
        // Re-entry: (taken ∪ not-taken) at each level restores the parent.
        prop_assert_eq!((level1 & deeper) | level1.andnot(deeper), level1);
        prop_assert_eq!((outer & inner) | outer.andnot(inner), outer);
    }

    #[test]
    fn ballot_respects_disjoint_predicate_and_active_mask(active in arb_mask(), pred in arb_mask()) {
        // ballot() must only report lanes that are BOTH active and
        // predicated — inactive lanes never vote, even if their (stale)
        // predicate bit is set.
        let mut gpu = Gpu::new(GpuConfig::tiny_test());
        let got = std::cell::Cell::new(Mask::NONE);
        let got_ref = &got;
        gpu.launch(1, 32, &|b: &mut maxwarp_simt::BlockCtx<'_>| {
            b.phase(|w| {
                if !active.none() {
                    got_ref.set(w.ballot(active, pred));
                }
            });
        }).unwrap();
        if !active.none() {
            prop_assert_eq!(got.get(), active & pred);
            prop_assert_eq!(got.get() & !active, Mask::NONE, "inactive lanes voted");
        }
    }

    // --------------------------------------------------- sanitizer cleanness

    #[test]
    fn barrier_correct_two_phase_kernel_never_flagged(
        bits in any::<u32>(),
        vals in proptest::collection::vec(any::<u32>(), 32),
        warps in 1u32..4,
    ) {
        // Property (no false positives): a two-phase kernel in which every
        // warp writes its own shared slice, barriers, then reads a
        // neighbouring warp's slice is hazard-free — the sanitizer must
        // stay completely clean for every mask and every input.
        let mask = Mask(bits);
        let mut cfg = GpuConfig::tiny_test();
        cfg.sanitize = true;
        let mut gpu = Gpu::new(cfg);
        let vals_l = Lanes::from_fn(|l| vals[l]);
        let n = warps * 32;
        let out = gpu.mem.alloc::<u32>(n);
        gpu.mem.fill(out, 0u32);
        gpu.launch(1, n, &move |b: &mut maxwarp_simt::BlockCtx<'_>| {
            let tile = b.shared_alloc::<u32>(n);
            // Phase 1: each warp fills its own 32-word slice (fully, so the
            // later read never touches an uninitialized word).
            b.phase(|w| {
                let wid = w.id().warp_in_block;
                let ids = w.lane_ids();
                let local = w.alu1(Mask::FULL, &ids, |l| wid * 32 + l);
                w.sh_st(Mask::FULL, tile, &local, &vals_l);
            });
            b.barrier();
            // Phase 2: each warp reads the *next* warp's slice under the
            // random mask — cross-warp, but barrier-ordered.
            b.phase(|w| {
                let wid = w.id().warp_in_block;
                let next = (wid + 1) % w.id().warps_per_block;
                let ids = w.lane_ids();
                let remote = w.alu1(mask, &ids, |l| next * 32 + l);
                let v = w.sh_ld(mask, tile, &remote);
                let gid = w.global_thread_ids();
                w.st(mask, out, &gid, &v);
            });
        }).unwrap();
        let san = gpu.sanitizer().unwrap();
        prop_assert!(
            san.is_clean(),
            "false positive on barrier-correct kernel:\n{}",
            san.report()
        );
        // And the data really moved: masked lanes hold the neighbour's value.
        let host = gpu.mem.download(out);
        for w in 0..warps as usize {
            for lane in 0..32usize {
                if mask.get(lane) {
                    prop_assert_eq!(host[w * 32 + lane], vals[lane]);
                }
            }
        }
    }

    // ----------------------------------------------------- stats algebra

    #[test]
    fn stats_accumulate_is_associative(a in arb_stats(), b in arb_stats(), c in arb_stats()) {
        // (a + b) + c == a + (b + c): multi-launch aggregation must not
        // depend on how drivers group their absorb calls.
        let mut left = a.clone();
        left.accumulate(&b);
        left.accumulate(&c);
        let mut bc = b.clone();
        bc.accumulate(&c);
        let mut right = a.clone();
        right.accumulate(&bc);
        prop_assert_eq!(&left, &right);
        // Identity: accumulating the default is a no-op.
        let mut with_zero = left.clone();
        with_zero.accumulate(&KernelStats::default());
        prop_assert_eq!(&with_zero, &left);
    }

    // ------------------------------------------------- functional executor

    #[test]
    fn masked_store_touches_exactly_active_lanes(bits in any::<u32>()) {
        let mask = Mask(bits);
        let mut gpu = Gpu::new(GpuConfig::tiny_test());
        let p = gpu.mem.alloc::<u32>(32);
        gpu.launch(1, 32, &move |b: &mut maxwarp_simt::BlockCtx<'_>| {
            b.phase(|w| {
                let ids = w.lane_ids();
                w.st(mask, p, &ids, &Lanes::splat(7u32));
            });
        }).unwrap();
        let host = gpu.mem.download(p);
        for (lane, &v) in host.iter().enumerate().take(32) {
            prop_assert_eq!(v, if mask.get(lane) { 7 } else { 0 });
        }
    }

    #[test]
    fn atomic_add_totals_match_active_count(bits in any::<u32>(), v in 1u32..100) {
        let mask = Mask(bits);
        let mut gpu = Gpu::new(GpuConfig::tiny_test());
        let p = gpu.mem.alloc::<u32>(1);
        gpu.launch(1, 32, &move |b: &mut maxwarp_simt::BlockCtx<'_>| {
            b.phase(|w| {
                let _ = w.atomic_add(mask, p, &Lanes::splat(0u32), &Lanes::splat(v));
            });
        }).unwrap();
        prop_assert_eq!(gpu.mem.read(p, 0), mask.count() * v);
    }

    #[test]
    fn scan_add_is_exclusive_prefix_sum(bits in any::<u32>(), vals in proptest::collection::vec(0u32..1000, 32)) {
        let mask = Mask(bits);
        let mut gpu = Gpu::new(GpuConfig::tiny_test());
        let vals_l = Lanes::from_fn(|l| vals[l]);
        let out = gpu.mem.alloc::<u32>(32);
        gpu.launch(1, 32, &move |b: &mut maxwarp_simt::BlockCtx<'_>| {
            b.phase(|w| {
                let s = w.scan_add_exclusive(mask, &vals_l);
                w.st(Mask::FULL, out, &w.lane_ids(), &s);
            });
        }).unwrap();
        let host = gpu.mem.download(out);
        let mut acc = 0u32;
        for lane in 0..32 {
            prop_assert_eq!(host[lane], acc, "lane {}", lane);
            if mask.get(lane) {
                acc += vals[lane];
            }
        }
    }
}

// ------------------------------------------------------ fault containment

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn no_panic_escapes_launch(
        ops in proptest::collection::vec((any::<u8>(), any::<u32>()), 0..10),
        buf_len in 1u32..64,
        budget_raw in 0u64..600,
        has_budget in any::<bool>(),
        chaos_seed in any::<u64>(),
        has_chaos in any::<bool>(),
    ) {
        // Whatever a kernel does — wild out-of-bounds accesses, absurd
        // shared allocations, busy loops against a zero instruction
        // budget, seeded chaos injection — the failure must surface as a
        // structured `LaunchError`, never as a panic unwinding out of
        // `Gpu::launch`.
        let ops_owned = ops.clone();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut cfg = GpuConfig::tiny_test();
            if has_budget {
                cfg.watchdog.max_instructions = Some(budget_raw);
            }
            if has_chaos {
                cfg.faults = Some(maxwarp_simt::FaultConfig::all(chaos_seed));
            }
            let mut gpu = Gpu::new(cfg);
            let buf = gpu.mem.alloc::<u32>(buf_len);
            let ops = ops_owned.clone();
            gpu.launch(1, 32, &move |b: &mut maxwarp_simt::BlockCtx<'_>| {
                for &(kind, val) in &ops {
                    if kind % 6 == 4 {
                        let _ = b.shared_alloc::<u32>(val);
                    }
                }
                let ops = ops.clone();
                b.phase(move |w| {
                    for &(kind, val) in &ops {
                        let idx = Lanes::splat(val);
                        match kind % 6 {
                            0 => {
                                let _ = w.ld(Mask::FULL, buf, &idx);
                            }
                            1 => w.st(Mask::FULL, buf, &idx, &Lanes::splat(7u32)),
                            2 => {
                                let _ = w.atomic_add(Mask::FULL, buf, &idx, &Lanes::splat(1u32));
                            }
                            3 => {
                                let _ = w.ld_uniform(Mask::FULL, buf, val);
                            }
                            4 => {} // shared_alloc, handled at block level
                            _ => {
                                for _ in 0..(val % 64) {
                                    w.alu_nop(Mask::FULL);
                                }
                            }
                        }
                    }
                });
            })
        }));
        match result {
            Ok(launch) => {
                if let Err(e) = launch {
                    prop_assert!(!e.to_string().is_empty(), "error must render a message");
                }
            }
            Err(_) => prop_assert!(false, "panic escaped Gpu::launch"),
        }
    }
}
