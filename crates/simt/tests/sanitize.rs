//! End-to-end tests of the warp-hazard sanitizer: deliberately hazardous
//! fixture kernels must be caught with correct attribution, and clean
//! kernels must stay clean with byte-identical statistics.

use maxwarp_simt::{BlockCtx, DiagKind, Gpu, GpuConfig, Lanes, Mask, Severity, TaskSchedule};

fn sanitized_gpu() -> Gpu {
    let mut cfg = GpuConfig::tiny_test();
    cfg.sanitize = true;
    Gpu::new(cfg)
}

// ------------------------------------------------------- shared-memory races

/// The canonical racy fixture: warp 0 writes a shared tile and warp 1 reads
/// it back in the same phase, with no barrier in between.
#[test]
fn missing_barrier_shared_race_is_caught_with_attribution() {
    let mut gpu = sanitized_gpu();
    gpu.set_sanitize_context("racy_two_phase");
    gpu.launch(1, 64, &|b: &mut BlockCtx<'_>| {
        let tile = b.shared_alloc::<u32>(32);
        b.phase(|w| {
            if w.id().warp_in_block == 0 {
                w.sh_st(Mask::FULL, tile, &Lanes::lane_ids(), &Lanes::lane_ids());
            } else {
                // BUG: reads the tile without waiting for the barrier.
                let _ = w.sh_ld(Mask::FULL, tile, &Lanes::lane_ids());
            }
        });
    })
    .unwrap();

    let san = gpu.sanitizer().unwrap();
    assert!(san.has_errors(), "missing barrier must be an error");
    let race = san
        .diagnostics()
        .iter()
        .find(|d| d.kind == DiagKind::SharedRace)
        .expect("a shared-race diagnostic");
    assert_eq!(race.severity, Severity::Error);
    assert_eq!(race.kernel, "racy_two_phase");
    assert_eq!(race.block, 0);
    assert_eq!(race.warp, 1, "detected at the racing read by warp 1");
    assert!(race.message.contains("write by warp 0"));
    assert_eq!(race.op, "sh_ld");
}

/// The same kernel with the barrier in place is completely clean.
#[test]
fn barrier_separated_two_phase_kernel_is_clean() {
    let mut gpu = sanitized_gpu();
    gpu.set_sanitize_context("correct_two_phase");
    gpu.launch(2, 64, &|b: &mut BlockCtx<'_>| {
        let tile = b.shared_alloc::<u32>(32);
        b.phase(|w| {
            if w.id().warp_in_block == 0 {
                w.sh_st(Mask::FULL, tile, &Lanes::lane_ids(), &Lanes::lane_ids());
            }
        });
        b.barrier();
        b.phase(|w| {
            if w.id().warp_in_block == 1 {
                let v = w.sh_ld(Mask::FULL, tile, &Lanes::lane_ids());
                assert_eq!(v.get(5), 5);
            }
        });
    })
    .unwrap();
    let san = gpu.sanitizer().unwrap();
    assert!(
        san.is_clean(),
        "barrier-correct kernel flagged:\n{}",
        san.report()
    );
}

/// Write/write races between warps of the same block are errors too.
#[test]
fn cross_warp_shared_write_write_race_is_caught() {
    let mut gpu = sanitized_gpu();
    gpu.launch(1, 64, &|b: &mut BlockCtx<'_>| {
        let tile = b.shared_alloc::<u32>(32);
        b.phase(|w| {
            // Every warp writes the same words: warp 1's writes race warp 0's.
            let vals = Lanes::splat(w.id().warp_in_block);
            w.sh_st(Mask::FULL, tile, &Lanes::lane_ids(), &vals);
        });
    })
    .unwrap();
    let san = gpu.sanitizer().unwrap();
    assert!(san.has_errors());
    assert!(san
        .diagnostics()
        .iter()
        .any(|d| d.kind == DiagKind::SharedRace && d.op == "sh_st"));
}

/// Reading shared memory that no one has written is an error (real shared
/// memory is uninitialized at block start).
#[test]
fn uninitialized_shared_read_is_error() {
    let mut gpu = sanitized_gpu();
    gpu.launch(1, 32, &|b: &mut BlockCtx<'_>| {
        let tile = b.shared_alloc::<u32>(32);
        b.phase(|w| {
            let _ = w.sh_ld(Mask::lane(0), tile, &Lanes::splat(3u32));
        });
    })
    .unwrap();
    let san = gpu.sanitizer().unwrap();
    assert!(san.has_errors());
    let d = &san.diagnostics()[0];
    assert_eq!(d.kind, DiagKind::UninitRead);
    assert_eq!(d.lane, Some(0));
}

// ------------------------------------------------------------ global races

#[test]
fn cross_block_global_store_race_is_caught() {
    let mut gpu = sanitized_gpu();
    gpu.set_sanitize_context("global_race_fixture");
    let p = gpu.mem.alloc::<u32>(1);
    gpu.launch(2, 32, &move |b: &mut BlockCtx<'_>| {
        let block = b.block_id();
        b.phase(move |w| {
            // Both blocks store *different* values to word 0: a real race.
            w.st_uniform(Mask::lane(0), p, 0, block + 1);
        });
    })
    .unwrap();
    let san = gpu.sanitizer().unwrap();
    assert!(san.has_errors());
    let d = san
        .diagnostics()
        .iter()
        .find(|d| d.kind == DiagKind::GlobalRace)
        .expect("a global-race diagnostic");
    assert_eq!(d.block, 1, "detected at the second block's store");
    assert!(d.message.contains("unordered stores of different values"));
}

/// Same-value stores from different blocks (the classic level-splat in BFS)
/// are benign and must NOT be reported.
#[test]
fn same_value_splat_from_two_blocks_is_benign() {
    let mut gpu = sanitized_gpu();
    let p = gpu.mem.alloc::<u32>(1);
    gpu.launch(2, 32, &move |b: &mut BlockCtx<'_>| {
        b.phase(move |w| {
            w.st_uniform(Mask::lane(0), p, 0, 7);
        });
    })
    .unwrap();
    assert!(!gpu.sanitizer().unwrap().has_errors());
}

#[test]
fn mixing_atomics_and_plain_stores_is_error() {
    let mut gpu = sanitized_gpu();
    let p = gpu.mem.alloc::<u32>(1);
    gpu.mem.fill(p, 0u32);
    gpu.launch(2, 32, &move |b: &mut BlockCtx<'_>| {
        let block = b.block_id();
        b.phase(move |w| {
            if block == 0 {
                let _ = w.atomic_add(Mask::lane(0), p, &Lanes::splat(0u32), &Lanes::splat(1u32));
            } else {
                w.st_uniform(Mask::lane(0), p, 0, 5);
            }
        });
    })
    .unwrap();
    let san = gpu.sanitizer().unwrap();
    assert!(san.has_errors());
    assert!(san
        .diagnostics()
        .iter()
        .any(|d| d.kind == DiagKind::MixedAtomic));
}

#[test]
fn uninitialized_device_read_is_warning_not_error() {
    let mut gpu = sanitized_gpu();
    let p = gpu.mem.alloc::<u32>(32); // allocated, never written
    gpu.launch(1, 32, &move |b: &mut BlockCtx<'_>| {
        b.phase(move |w| {
            let _ = w.ld(Mask::FULL, p, &w.lane_ids());
        });
    })
    .unwrap();
    let san = gpu.sanitizer().unwrap();
    assert!(!san.has_errors());
    assert!(san.warning_count() > 0);
    assert_eq!(san.diagnostics()[0].kind, DiagKind::UninitRead);
}

// ------------------------------------------------------- divergence hazards

/// The divergent-shfl fixture: half the warp is active and shuffles from a
/// lane in the inactive half.
#[test]
fn divergent_shfl_is_caught_with_lane_attribution() {
    let mut gpu = sanitized_gpu();
    gpu.set_sanitize_context("divergent_shfl_fixture");
    gpu.launch(1, 32, &|b: &mut BlockCtx<'_>| {
        b.phase(|w| {
            let low_half = Mask::from_fn(|l| l < 16);
            let vals = w.lane_ids();
            // BUG: lane 20 is inactive, its register is undefined on hardware.
            let _ = w.shfl(low_half, &vals, &Lanes::splat(20u32));
        });
    })
    .unwrap();
    let san = gpu.sanitizer().unwrap();
    assert!(san.has_errors());
    let d = san
        .diagnostics()
        .iter()
        .find(|d| d.kind == DiagKind::DivergentShfl)
        .expect("a divergent-shfl diagnostic");
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.block, 0);
    assert_eq!(d.warp, 0);
    assert_eq!(d.lane, Some(0), "first reading lane is attributed");
    assert!(d.message.contains("from lane 20"));
    assert_eq!(d.kernel, "divergent_shfl_fixture");
}

#[test]
fn shfl_bcast_from_inactive_lane_is_caught() {
    let mut gpu = sanitized_gpu();
    gpu.launch(1, 32, &|b: &mut BlockCtx<'_>| {
        b.phase(|w| {
            let low_half = Mask::from_fn(|l| l < 16);
            let vals = w.lane_ids();
            let got = w.shfl_bcast(low_half, &vals, 31);
            assert_eq!(got.get(0), 0, "inactive source yields the default");
        });
    })
    .unwrap();
    assert!(gpu
        .sanitizer()
        .unwrap()
        .diagnostics()
        .iter()
        .any(|d| d.kind == DiagKind::DivergentShfl));
}

/// Satellite regression: without the sanitizer, a shuffle whose source lane
/// is inactive deterministically yields `T::default()` — never stale data.
#[test]
fn shfl_inactive_source_yields_default_without_sanitizer() {
    let mut gpu = Gpu::new(GpuConfig::tiny_test());
    let out = gpu.mem.alloc::<u32>(32);
    gpu.launch(1, 32, &move |b: &mut BlockCtx<'_>| {
        b.phase(move |w| {
            let low_half = Mask::from_fn(|l| l < 16);
            let vals = w.alu1(low_half, &w.lane_ids(), |x| x + 100);
            let got = w.shfl(low_half, &vals, &Lanes::splat(20u32));
            w.st(low_half, out, &w.lane_ids(), &got);
        });
    })
    .unwrap();
    let host = gpu.mem.download(out);
    for (lane, &got) in host.iter().enumerate().take(16) {
        assert_eq!(got, 0, "lane {lane}: inactive source must default");
    }
}

#[test]
fn empty_mask_collective_is_warning() {
    let mut gpu = sanitized_gpu();
    gpu.launch(1, 32, &|b: &mut BlockCtx<'_>| {
        b.phase(|w| {
            let _ = w.ballot(Mask::NONE, Mask::FULL);
        });
    })
    .unwrap();
    let san = gpu.sanitizer().unwrap();
    assert!(!san.has_errors());
    assert!(san
        .diagnostics()
        .iter()
        .any(|d| d.kind == DiagKind::EmptyMaskCollective));
}

// ------------------------------------------------------------ out of bounds

/// With the sanitizer on, an out-of-bounds access becomes a structured
/// diagnostic and the kernel keeps running (the faulting lanes are dropped).
#[test]
fn oob_access_is_structured_diagnostic_when_sanitizing() {
    let mut gpu = sanitized_gpu();
    gpu.set_sanitize_context("oob_fixture");
    let p = gpu.mem.alloc::<u32>(4);
    gpu.mem.fill(p, 1u32);
    let sum = gpu.mem.alloc::<u32>(1);
    gpu.mem.fill(sum, 0u32);
    gpu.launch(1, 32, &move |b: &mut BlockCtx<'_>| {
        b.phase(move |w| {
            // Lanes 0..32 index an allocation of 4: lanes 4.. are OOB.
            let v = w.ld(Mask::FULL, p, &w.lane_ids());
            let _ = w.atomic_add(Mask::FULL, sum, &Lanes::splat(0u32), &v);
        });
    })
    .unwrap();
    let san = gpu.sanitizer().unwrap();
    assert!(san.has_errors());
    let d = san
        .diagnostics()
        .iter()
        .find(|d| d.kind == DiagKind::OutOfBounds)
        .expect("an out-of-bounds diagnostic");
    assert_eq!(d.lane, Some(4), "first faulting lane");
    assert!(d.message.contains("illegal device address"));
    assert!(d.message.contains("allocation of 4"));
    // In-bounds lanes still executed: 4 valid loads of 1 were accumulated.
    assert_eq!(gpu.mem.read(sum, 0), 4);
}

// ------------------------------------------------- statistics transparency

/// A sanitized run must report byte-identical `KernelStats` to an
/// unsanitized run — even when diagnostics fire (their `Op::San` markers
/// are invisible to accounting and timing).
#[test]
fn sanitized_and_unsanitized_stats_are_identical() {
    let run = |sanitize: bool| {
        let mut cfg = GpuConfig::tiny_test();
        cfg.sanitize = sanitize;
        let mut gpu = Gpu::new(cfg);
        let n = 256u32;
        let x = gpu.mem.alloc_from(&(0..n).collect::<Vec<_>>());
        let y = gpu.mem.alloc::<u32>(n);
        let uninit = gpu.mem.alloc::<u32>(n); // read-before-write: fires a warning
        let stats = gpu
            .launch(4, 64, &move |b: &mut BlockCtx<'_>| {
                let tile = b.shared_alloc::<u32>(64);
                b.phase(move |w| {
                    let tid = w.global_thread_ids();
                    let m = w.lt_scalar(Mask::FULL, &tid, n);
                    let v = w.ld(m, x, &tid);
                    let u = w.ld(m, uninit, &tid);
                    let wid = w.id().warp_in_block;
                    let ids = w.lane_ids();
                    let local = w.alu1(m, &ids, |l| l + 32 * wid);
                    w.sh_st(m, tile, &local, &v);
                    let s = w.sh_ld(m, tile, &local);
                    let r = w.alu1(m, &s, |a| a * 3);
                    let r2 = w.alu2(m, &r, &u, |a, b| a + b);
                    w.st(m, y, &tid, &r2);
                });
            })
            .unwrap();
        (stats, gpu.mem.download(y))
    };
    let (plain_stats, plain_mem) = run(false);
    let (san_stats, san_mem) = run(true);
    assert_eq!(plain_stats, san_stats, "sanitizer changed KernelStats");
    assert_eq!(plain_mem, san_mem, "sanitizer changed results");
}

// -------------------------------------------------------------- warp tasks

#[test]
fn warp_task_launches_are_sanitized_too() {
    let mut gpu = sanitized_gpu();
    gpu.set_sanitize_context("task_oob");
    let p = gpu.mem.alloc::<u32>(4);
    gpu.launch_warp_tasks(1, 32, 8, TaskSchedule::Dynamic, |w, task| {
        // Task ids 4..8 index past the allocation.
        w.st_uniform(Mask::lane(0), p, task, task);
    })
    .unwrap();
    let san = gpu.sanitizer().unwrap();
    assert!(san.has_errors());
    assert!(san
        .diagnostics()
        .iter()
        .any(|d| d.kind == DiagKind::OutOfBounds && d.op == "st_uniform"));
}

// ----------------------------------------------------------------- report

#[test]
fn report_is_human_readable_and_counts_occurrences() {
    let mut gpu = sanitized_gpu();
    gpu.set_sanitize_context("report_fixture");
    let p = gpu.mem.alloc::<u32>(2);
    for _ in 0..3 {
        gpu.launch(1, 32, &move |b: &mut BlockCtx<'_>| {
            b.phase(move |w| {
                // One faulting lane per launch: lane 0 reads index 9 of 2.
                let _ = w.ld(Mask::lane(0), p, &Lanes::splat(9u32));
            });
        })
        .unwrap();
    }
    let san = gpu.sanitizer().unwrap();
    let report = san.report();
    assert!(report.contains("kernel `report_fixture`"));
    assert!(report.contains("error(s)"));
    // One OOB site + one uninit site, each hit three launches in a row,
    // deduplicated to two diagnostics.
    let oob = san
        .diagnostics()
        .iter()
        .find(|d| d.kind == DiagKind::OutOfBounds)
        .unwrap();
    assert_eq!(oob.count, 3, "occurrences fold into one diagnostic");
    assert_eq!(oob.launch, 1, "attributed to its first launch");
}

// ------------------------------------------------------------- environment

/// `MAXWARP_SANITIZE=1` forces the sanitizer on at `Gpu::new` time.
#[test]
fn env_var_enables_sanitizer() {
    // Serialize against other tests via a dedicated process-wide lock-free
    // pattern: set, construct, remove.
    std::env::set_var("MAXWARP_SANITIZE", "1");
    let gpu = Gpu::new(GpuConfig::tiny_test());
    std::env::remove_var("MAXWARP_SANITIZE");
    assert!(gpu.cfg.sanitize);
    assert!(gpu.sanitizer().is_some());

    let gpu2 = Gpu::new(GpuConfig::tiny_test());
    assert!(gpu2.sanitizer().is_none());
}
