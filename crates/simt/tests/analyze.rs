//! Integration tests for the static analyzer: observational transparency,
//! seeded-hazard mutation coverage, and prediction cross-checks against the
//! dynamic trace models — all through the public `Gpu` API.

use maxwarp_simt::analyze::{AbsVal, FindKind, Space};
use maxwarp_simt::{BlockCtx, Gpu, GpuConfig, Lanes, Mask, Severity, TaskSchedule};

fn analyzing_gpu() -> Gpu {
    let mut cfg = GpuConfig::tiny_test();
    cfg.analyze = true;
    Gpu::new(cfg)
}

/// The analyzer is an observer: stats, cycles, and memory are identical
/// with it on or off.
#[test]
fn analysis_leaves_stats_byte_identical() {
    let run = |mut g: Gpu| {
        let out = g.mem.alloc::<u32>(64);
        let stats = g
            .launch(2, 64, &|b: &mut BlockCtx<'_>| {
                let sp = b.shared_alloc::<u32>(64);
                b.phase(|w| {
                    let tid = w.global_thread_ids();
                    let m = w.lt_scalar(Mask::FULL, &tid, 64);
                    let ids = w.lane_ids();
                    w.sh_st(m, sp, &ids, &tid);
                    let v = w.sh_ld(m, sp, &ids);
                    w.st(m, out, &tid, &v);
                    let even = w.alu_pred(m, &v, |x| x % 2 == 0);
                    let _ = w.ballot(m, even);
                    w.atomic_add(m, out, &Lanes::splat(0), &Lanes::splat(1u32));
                });
                b.barrier();
                b.phase(|w| {
                    let tid = w.global_thread_ids();
                    let m = w.lt_scalar(Mask::FULL, &tid, 64);
                    let _ = w.ld(m, out, &tid);
                });
            })
            .unwrap();
        (stats, g.mem.download(out))
    };
    let (plain, mem_plain) = run(Gpu::new(GpuConfig::tiny_test()));
    let (analyzed, mem_anl) = run(analyzing_gpu());
    assert_eq!(plain, analyzed, "analysis must not perturb KernelStats");
    assert_eq!(mem_plain, mem_anl, "analysis must not perturb memory");
}

/// Mutation test: seed a definite cross-agent race (every warp of a block
/// stores its own warp id to one fixed word) and assert the analyzer
/// reports it at error severity.
#[test]
fn seeded_cross_warp_race_is_caught() {
    let mut g = analyzing_gpu();
    let out = g.mem.alloc::<u32>(4);
    g.launch(1, 128, &|b: &mut BlockCtx<'_>| {
        b.phase(|w| {
            // All four warps write different values to word 0, no barrier.
            w.st_uniform(Mask::FULL, out, 0, w.id().warp_in_block);
        });
    })
    .unwrap();
    let anl = g.analyzer().expect("analyzer must be on");
    assert!(
        anl.has_errors(),
        "seeded race must be an error:\n{}",
        anl.report()
    );
    assert!(
        anl.findings()
            .iter()
            .any(|f| f.kind == FindKind::DefiniteRace && f.severity == Severity::Error),
        "expected a definite-race finding:\n{}",
        anl.report()
    );
}

/// Mutation test: the same definite race seeded across warp-task agents
/// (every task stores its task id to one fixed word).
#[test]
fn seeded_cross_task_race_is_caught() {
    let mut g = analyzing_gpu();
    let out = g.mem.alloc::<u32>(4);
    g.launch_warp_tasks(1, 64, 16, TaskSchedule::StaticBlocked, |w, task| {
        w.st_uniform(Mask::FULL, out, 0, task);
    })
    .unwrap();
    let anl = g.analyzer().expect("analyzer must be on");
    assert!(
        anl.findings()
            .iter()
            .any(|f| f.kind == FindKind::DefiniteRace),
        "expected a definite-race finding:\n{}",
        anl.report()
    );
    assert!(anl.has_errors());
}

/// Mutation test: reading shared memory nobody wrote is a definite
/// uninitialized read (the analyzer keeps its own valid-bit shadow, so
/// this works with the sanitizer off).
#[test]
fn seeded_uninit_shared_read_is_caught() {
    let mut g = analyzing_gpu();
    g.launch(1, 32, &|b: &mut BlockCtx<'_>| {
        let sp = b.shared_alloc::<u32>(64);
        b.phase(|w| {
            let ids = w.lane_ids();
            let _ = w.sh_ld(Mask::FULL, sp, &ids);
        });
    })
    .unwrap();
    let anl = g.analyzer().expect("analyzer must be on");
    assert!(anl.has_errors());
    assert!(
        anl.findings()
            .iter()
            .any(|f| f.kind == FindKind::UninitShared && f.severity == Severity::Error),
        "expected uninit-shared:\n{}",
        anl.report()
    );
}

/// Mutation test: removing the barrier between a cross-warp shared-memory
/// producer and consumer degrades the proof — the analyzer must flag the
/// unordered pair (may-race), where the barriered version is clean.
#[test]
fn missing_barrier_shared_hazard_is_caught() {
    let run = |insert_barrier: bool| {
        let mut g = analyzing_gpu();
        g.launch(1, 64, &|b: &mut BlockCtx<'_>| {
            let sp = b.shared_alloc::<u32>(32);
            b.phase(|w| {
                if w.id().warp_in_block == 0 {
                    let ids = w.lane_ids();
                    w.sh_st(Mask::FULL, sp, &ids, &ids);
                }
            });
            if insert_barrier {
                b.barrier();
            }
            b.phase(|w| {
                if w.id().warp_in_block == 1 {
                    let ids = w.lane_ids();
                    let _ = w.sh_ld(Mask::FULL, sp, &ids);
                }
            });
        })
        .unwrap();
        let anl = g.analyzer().expect("analyzer must be on");
        anl.findings()
            .iter()
            .filter(|f| f.kind == FindKind::MayRace)
            .count()
    };
    assert_eq!(run(true), 0, "barriered version must be race-free");
    assert!(run(false) > 0, "unordered cross-warp pair must be flagged");
}

/// The affine summary joined across all warps and blocks predicts the same
/// transaction count the trace-driven coalescing model measured.
#[test]
fn coalescing_prediction_matches_traced_transactions() {
    let mut g = analyzing_gpu();
    let n = 256u32;
    let data = g.mem.alloc::<u32>(n);
    // Unit stride: tid; strided: 8*lane (every lane its own segment slice).
    let stats = g
        .launch(2, 128, &|b: &mut BlockCtx<'_>| {
            b.phase(|w| {
                let tid = w.global_thread_ids();
                let m = w.lt_scalar(Mask::FULL, &tid, n);
                let v = w.ld(m, data, &tid);
                w.st(m, data, &tid, &v);
            });
        })
        .unwrap();
    let anl = g.analyzer().expect("analyzer must be on");
    let sites = anl.site_summaries();
    let global: Vec<_> = sites.iter().filter(|s| s.space == Space::Global).collect();
    assert!(!global.is_empty());
    let mut predicted = 0u64;
    let mut accesses = 0u64;
    for s in &global {
        let tx = s
            .predicted_tx()
            .expect("unit-stride sites must stay affine");
        // tiny_test uses 128 B segments; tid over a full warp is one segment.
        assert_eq!(tx, 1, "site {}", s.site);
        predicted += tx as u64 * s.obs;
        accesses += s.obs;
    }
    // Every access was one predicted transaction; the trace agrees.
    assert_eq!(predicted, accesses);
    assert_eq!(stats.mem_transactions, predicted);
}

/// A deliberately strided access pattern is predicted at full serialization
/// and flagged by the coalescing lint, matching the dynamic accounting.
#[test]
fn strided_access_prediction_and_lint() {
    let mut g = analyzing_gpu();
    let n = 32 * 32u32;
    let data = g.mem.alloc::<u32>(n);
    g.launch(1, 32, &|b: &mut BlockCtx<'_>| {
        b.phase(|w| {
            // addr = 32·lane: one 128 B segment per lane.
            let ids = w.lane_ids();
            let idx = w.alu1(Mask::FULL, &ids, |l| l * 32);
            for _ in 0..8 {
                let v = w.ld(Mask::FULL, data, &idx);
                w.st(Mask::FULL, data, &idx, &v);
            }
        });
    })
    .unwrap();
    let anl = g.analyzer().expect("analyzer must be on");
    for s in anl.site_summaries() {
        let AbsVal::Affine(f) = s.addr.value().expect("observed") else {
            panic!("strided site must stay affine");
        };
        assert_eq!(f.lane, 32, "site {}", s.site);
        assert_eq!(s.predicted_tx(), Some(32));
    }
    assert!(
        anl.findings()
            .iter()
            .any(|f| f.kind == FindKind::Coalescing),
        "stride-32 site must trip the coalescing lint:\n{}",
        anl.report()
    );
}

/// Shared-memory bank-conflict prediction from the affine form matches the
/// bank model, and the conflict lint fires on a seeded stride-32 pattern.
#[test]
fn bank_conflict_prediction_and_lint() {
    let mut g = analyzing_gpu();
    g.launch(1, 32, &|b: &mut BlockCtx<'_>| {
        let sp = b.shared_alloc::<u32>(32 * 32);
        b.phase(|w| {
            // word = 32·lane: all lanes in bank 0.
            let ids = w.lane_ids();
            let idx = w.alu1(Mask::FULL, &ids, |l| l * 32);
            w.sh_st(Mask::FULL, sp, &idx, &idx);
            let _ = w.sh_ld(Mask::FULL, sp, &idx);
        });
    })
    .unwrap();
    let anl = g.analyzer().expect("analyzer must be on");
    let shared: Vec<_> = anl
        .site_summaries()
        .into_iter()
        .filter(|s| s.space == Space::Shared)
        .collect();
    assert!(!shared.is_empty());
    for s in &shared {
        assert_eq!(s.predicted_bank_cost(), Some(32), "site {}", s.site);
    }
    assert!(
        anl.findings()
            .iter()
            .any(|f| f.kind == FindKind::BankConflict),
        "stride-32 shared access must trip the bank lint:\n{}",
        anl.report()
    );
}

/// A ballot whose predicate is uniform in every observation is flagged as
/// redundant; a genuinely divergent ballot is not.
#[test]
fn redundant_ballot_lint() {
    let run = |divergent: bool| {
        let mut g = analyzing_gpu();
        g.launch(1, 32, &|b: &mut BlockCtx<'_>| {
            b.phase(|w| {
                let ids = w.lane_ids();
                for _ in 0..10 {
                    let p = if divergent {
                        w.alu_pred(Mask::FULL, &ids, |l| l % 2 == 0)
                    } else {
                        w.alu_pred(Mask::FULL, &ids, |_| true)
                    };
                    let _ = w.ballot(Mask::FULL, p);
                }
            });
        })
        .unwrap();
        let anl = g.analyzer().expect("analyzer must be on");
        anl.findings()
            .iter()
            .any(|f| f.kind == FindKind::RedundantBallot)
    };
    assert!(run(false), "uniform ballot must be flagged");
    assert!(!run(true), "divergent ballot must not be flagged");
}

/// `MAXWARP_ANALYZE=1` forces the analyzer on; `cfg.analyze` off keeps the
/// accessor empty.
#[test]
fn analyzer_accessor_tracks_config() {
    let g = Gpu::new(GpuConfig::tiny_test());
    assert!(g.analyzer().is_none());
    let g = analyzing_gpu();
    assert!(g.analyzer().is_some());
}

/// Uninitialized *global* reads are a warning (may-uninit) — level kernels
/// legitimately read freshly allocated buffers they then overwrite — and
/// shipped-kernel style code stays error-free.
#[test]
fn global_uninit_read_is_warning_not_error() {
    let mut g = analyzing_gpu();
    let data = g.mem.alloc::<u32>(64);
    g.launch(1, 32, &|b: &mut BlockCtx<'_>| {
        b.phase(|w| {
            let ids = w.lane_ids();
            let _ = w.ld(Mask::FULL, data, &ids);
        });
    })
    .unwrap();
    let anl = g.analyzer().expect("analyzer must be on");
    assert!(!anl.has_errors(), "{}", anl.report());
    assert!(anl
        .findings()
        .iter()
        .any(|f| f.kind == FindKind::MayUninit && f.severity == Severity::Warning));
}
