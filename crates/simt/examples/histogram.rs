//! Shared-memory histogram — the classic kernel for demonstrating the
//! simulator's shared memory, bank conflicts, and two-level atomic
//! reduction.
//!
//! Each block builds a private histogram in shared memory (cheap atomics,
//! possible bank conflicts), then flushes it to the global histogram with
//! one global atomic per bin per block.
//!
//! ```text
//! cargo run --release -p maxwarp-simt --example histogram
//! ```

use maxwarp_simt::{BlockCtx, Gpu, GpuConfig, Lanes, Mask};

const BINS: u32 = 64;

fn main() {
    let cfg = GpuConfig::fermi_c2050();
    let mut gpu = Gpu::new(cfg);

    // Skewed input data: a Zipf-ish mix so some bins are hot (atomic
    // contention) and others cold.
    let n = 1 << 16;
    let data: Vec<u32> = (0..n)
        .map(|i| {
            let x = (i * 2654435761u64 as usize) as u64 % 1000;
            if x < 500 {
                0 // hot bin
            } else {
                (x % BINS as u64) as u32
            }
        })
        .collect();
    let d_data = gpu.mem.alloc_from(&data);
    let d_hist = gpu.mem.alloc::<u32>(BINS);

    let block_threads = 256u32;
    let grid = 64u32;
    let total = n as u32;

    let stats = gpu
        .launch(grid, block_threads, &|b: &mut BlockCtx<'_>| {
            let sh = b.shared_alloc::<u32>(BINS);
            let bid = b.block_id();
            let nblocks = b.num_blocks();
            let bthreads = b.threads_per_block();

            // Phase 1: grid-stride accumulation into the block-private
            // shared histogram.
            b.phase(|w| {
                let base = bid * bthreads + w.id().warp_in_block * 32;
                let mut idx = w.alu1(Mask::FULL, &w.lane_ids(), |l| base + l);
                let stride = nblocks * bthreads;
                let mut m = w.lt_scalar(Mask::FULL, &idx, total);
                while m.any() {
                    let v = w.ld(m, d_data, &idx);
                    // Warp-aggregated shared-memory increment: lanes that
                    // hit the same bin elect one writer that adds the whole
                    // group's count (the classic ballot/popc aggregation;
                    // charged as two extra warp instructions).
                    let cur = w.sh_ld(m, sh, &v);
                    let mut writers = Mask::NONE;
                    let mut newv = Lanes::splat(0u32);
                    for l in m.iter() {
                        let bin = v.get(l);
                        let group: Vec<usize> = m.iter().filter(|&k| v.get(k) == bin).collect();
                        if *group.last().unwrap() == l {
                            writers = writers.with(l, true);
                            newv.set(l, cur.get(l) + group.len() as u32);
                        }
                    }
                    w.alu_nop(m); // ballot
                    w.alu_nop(m); // popc + leader election
                    w.sh_st(writers, sh, &v, &newv);
                    idx = w.add_scalar(m, &idx, stride);
                    m = m & w.lt_scalar(m, &idx, total);
                }
            });
            b.barrier();

            // Phase 2: flush shared bins to the global histogram.
            b.phase(|w| {
                let wib = w.id().warp_in_block;
                if wib >= BINS / 32 {
                    return;
                }
                let bin = w.alu1(Mask::FULL, &w.lane_ids(), |l| wib * 32 + l);
                let v = w.sh_ld(Mask::FULL, sh, &bin);
                let nz = w.alu_pred(Mask::FULL, &v, |x| x > 0);
                if nz.any() {
                    let _ = w.atomic_add(nz, d_hist, &bin, &v);
                }
            });
        })
        .unwrap();

    // NOTE: the intra-block shared-memory RMW above is only safe because
    // warps of a block execute phases sequentially in this simulator; on
    // real hardware you would use atomicAdd on shared memory. The point
    // here is the cost model, which charges the same two shared accesses.

    let hist = gpu.mem.download(d_hist);
    let expect = {
        let mut e = vec![0u32; BINS as usize];
        for &v in &data {
            e[v as usize] += 1;
        }
        e
    };
    assert_eq!(hist, expect, "histogram must match host computation");

    println!(
        "histogram of {} elements into {} bins: OK | {} cycles | lane-util {:.1}% | \
         {} shared ops ({} conflict replays) | {} atomics ({} replays)",
        n,
        BINS,
        stats.cycles,
        stats.lane_utilization() * 100.0,
        stats.shared_instructions,
        stats.shared_replay_passes,
        stats.atomic_instructions,
        stats.atomic_replays
    );
    println!("hot bin 0 holds {} of {} elements", hist[0], n);
}
