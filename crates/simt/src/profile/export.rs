//! Profile exporters: ranked hotspot table (human-readable), profile JSON,
//! and Chrome trace-event JSON (`chrome://tracing` / Perfetto).
//!
//! JSON is emitted by hand: the reports are small, the schema is flat, and
//! the repo's serde is a facade without derive codegen.

use super::ProfileReport;
use std::fmt::Write as _;

/// Escape a string for inclusion in a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

impl ProfileReport {
    /// The human-readable ranked hotspot report: top `top` call sites by
    /// estimated cycle cost, followed by the per-SM stall breakdown and
    /// per-launch summary.
    pub fn hotspot_table(&self, top: usize) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "profile: {} on {}", self.context, self.device);
        let _ = writeln!(
            out,
            "total: {} cycles, {} instructions, {} launches",
            self.total_cycles,
            self.total_instructions(),
            self.launches.len()
        );
        let _ = writeln!(
            out,
            "dram utilization {:.1}%  sm imbalance {:.2}x",
            self.timing.dram_utilization() * 100.0,
            self.timing.sm_imbalance()
        );

        let b = self.timing.breakdown_total();
        let denom = (b.total().max(1)) as f64;
        let pct = |v: u64| 100.0 * v as f64 / denom;
        let _ = writeln!(
            out,
            "cycle breakdown (chip avg): issue/compute {:.1}%  mem {:.1}%  atomic {:.1}%  \
             bank {:.1}%  barrier {:.1}%  idle/tail {:.1}%",
            pct(b.issue),
            pct(b.mem_stall),
            pct(b.atomic_stall),
            pct(b.bank_stall),
            pct(b.barrier_stall),
            pct(b.idle),
        );

        let _ = writeln!(
            out,
            "\n{:>4} {:>12} {:>7} {:>10} {:>8} {:>8} {:>8}  {:<12} site",
            "rank", "est.cycles", "%", "instr", "lane%", "coal%", "replays", "op"
        );
        let total_est: u64 = self.sites.iter().map(|s| s.est_cycles).sum();
        for (i, s) in self.sites.iter().take(top).enumerate() {
            let coal = match s.coalescing_efficiency() {
                Some(e) => format!("{:.1}", e * 100.0),
                None => "-".to_string(),
            };
            let _ = writeln!(
                out,
                "{:>4} {:>12} {:>6.1} {:>10} {:>8.1} {:>8} {:>8}  {:<12} {}",
                i + 1,
                s.est_cycles,
                100.0 * s.est_cycles as f64 / total_est.max(1) as f64,
                s.instructions,
                s.lane_utilization() * 100.0,
                coal,
                s.atomic_replays,
                s.op,
                s.location()
            );
        }
        if self.sites.len() > top {
            let _ = writeln!(out, "  ... {} more sites", self.sites.len() - top);
        }

        if self.launches.len() > 1 {
            let _ = writeln!(out, "\nlaunches:");
            for l in &self.launches {
                let _ = writeln!(
                    out,
                    "  {:>4}  {:>10} cycles  {:>10} instr  {}",
                    l.index, l.cycles, l.instructions, l.label
                );
            }
        }
        out
    }

    /// The machine-readable profile: totals, per-SM stall breakdown, and
    /// the ranked site table (everything but the warp spans, which go to
    /// the Chrome trace).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"device\": \"{}\",", esc(&self.device));
        let _ = writeln!(out, "  \"context\": \"{}\",", esc(&self.context));
        let _ = writeln!(out, "  \"total_cycles\": {},", self.total_cycles);
        let _ = writeln!(
            out,
            "  \"total_instructions\": {},",
            self.total_instructions()
        );
        let _ = writeln!(
            out,
            "  \"dram_utilization\": {},",
            fmt_f64(self.timing.dram_utilization())
        );
        let _ = writeln!(
            out,
            "  \"sm_imbalance\": {},",
            fmt_f64(self.timing.sm_imbalance())
        );
        let _ = writeln!(
            out,
            "  \"dram_busy_cycles\": {},",
            self.timing.dram_busy_cycles
        );
        let _ = writeln!(
            out,
            "  \"sm_instructions\": [{}],",
            join(self.timing.sm_instructions.iter())
        );
        out.push_str("  \"sm_breakdown\": [\n");
        for (i, b) in self.timing.sm_breakdown.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"issue\": {}, \"mem_stall\": {}, \"atomic_stall\": {}, \
                 \"bank_stall\": {}, \"barrier_stall\": {}, \"idle\": {}}}",
                b.issue, b.mem_stall, b.atomic_stall, b.bank_stall, b.barrier_stall, b.idle
            );
            out.push_str(if i + 1 < self.timing.sm_breakdown.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n");
        out.push_str("  \"sites\": [\n");
        for (i, s) in self.sites.iter().enumerate() {
            let coal = match s.coalescing_efficiency() {
                Some(e) => fmt_f64(e),
                None => "null".to_string(),
            };
            let _ = write!(
                out,
                "    {{\"file\": \"{}\", \"line\": {}, \"column\": {}, \"op\": \"{}\", \
                 \"instructions\": {}, \"active_lane_sum\": {}, \"lane_utilization\": {}, \
                 \"transactions\": {}, \"ideal_transactions\": {}, \
                 \"coalescing_efficiency\": {}, \"atomic_replays\": {}, \"bank_passes\": {}, \
                 \"cache_hits\": {}, \"cache_misses\": {}, \"est_cycles\": {}}}",
                esc(&s.file),
                s.line,
                s.column,
                esc(&s.op),
                s.instructions,
                s.active_lane_sum,
                fmt_f64(s.lane_utilization()),
                s.transactions,
                s.ideal_transactions,
                coal,
                s.atomic_replays,
                s.bank_passes,
                s.cache_hits,
                s.cache_misses,
                s.est_cycles
            );
            out.push_str(if i + 1 < self.sites.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n");
        out.push_str("  \"launches\": [\n");
        for (i, l) in self.launches.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"index\": {}, \"label\": \"{}\", \"cycles\": {}, \"instructions\": {}, \
                 \"warps\": {}}}",
                l.index,
                esc(&l.label),
                l.cycles,
                l.instructions,
                l.spans.len()
            );
            out.push_str(if i + 1 < self.launches.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n");
        out.push_str("}\n");
        out
    }

    /// Chrome trace-event JSON: one `X` (complete) event per warp per
    /// launch, on a process per SM, with launches laid out back-to-back on
    /// a shared timebase (1 simulated cycle = 1 µs in the viewer). A
    /// `launches` track (pid 0) shows one event per launch. Load into
    /// `chrome://tracing` or <https://ui.perfetto.dev>.
    pub fn chrome_trace(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"traceEvents\":[\n");
        let mut first = true;
        let mut push = |out: &mut String, ev: String| {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&ev);
        };
        push(
            &mut out,
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
             \"args\":{\"name\":\"launches\"}}"
                .to_string(),
        );
        let num_sms = self.timing.sm_instructions.len() as u32;
        for sm in 0..num_sms {
            push(
                &mut out,
                format!(
                    "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"tid\":0,\
                     \"args\":{{\"name\":\"SM {}\"}}}}",
                    sm + 1,
                    sm
                ),
            );
        }
        let mut offset = 0u64;
        for l in &self.launches {
            push(
                &mut out,
                format!(
                    "{{\"name\":\"{}\",\"cat\":\"launch\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                     \"pid\":0,\"tid\":0,\"args\":{{\"cycles\":{},\"instructions\":{}}}}}",
                    esc(&l.label),
                    offset,
                    l.cycles.max(1),
                    l.cycles,
                    l.instructions
                ),
            );
            for s in &l.spans {
                // One trace "thread" per warp slot; a warp has exactly one
                // span per launch and launches are disjoint in time, so
                // spans on a tid never overlap.
                let tid = s.block * crate::lanes::WARP_SIZE as u32 + s.warp_in_block + 1;
                push(
                    &mut out,
                    format!(
                        "{{\"name\":\"b{}.w{}\",\"cat\":\"warp\",\"ph\":\"X\",\"ts\":{},\
                         \"dur\":{},\"pid\":{},\"tid\":{},\"args\":{{\"instructions\":{}}}}}",
                        s.block,
                        s.warp_in_block,
                        offset + s.start,
                        (s.end - s.start).max(1),
                        s.sm + 1,
                        tid,
                        s.instructions
                    ),
                );
            }
            offset += l.cycles.max(1);
        }
        out.push_str("\n],\"displayTimeUnit\":\"ns\"}\n");
        out
    }
}

fn join<'a>(vals: impl Iterator<Item = &'a u64>) -> String {
    vals.map(|v| v.to_string()).collect::<Vec<_>>().join(", ")
}

#[cfg(test)]
mod tests {
    use super::super::{LaunchProfile, ProfileReport, SiteReport};
    use crate::timing::{StallBreakdown, TimingReport, WarpSpan};

    fn sample() -> ProfileReport {
        let timing = TimingReport {
            cycles: 120,
            sm_instructions: vec![30, 10],
            dram_busy_cycles: 40,
            sm_breakdown: vec![
                StallBreakdown {
                    issue: 40,
                    mem_stall: 80,
                    ..Default::default()
                },
                StallBreakdown {
                    issue: 10,
                    idle: 110,
                    ..Default::default()
                },
            ],
        };
        ProfileReport {
            device: "tiny-test".to_string(),
            context: "bfs/rmat [\"warp(8)\"]".to_string(),
            total_cycles: 120,
            timing: timing.clone(),
            sites: vec![SiteReport {
                file: "kernels/bfs.rs".to_string(),
                line: 42,
                column: 17,
                op: "ld".to_string(),
                instructions: 10,
                active_lane_sum: 200,
                transactions: 64,
                ideal_transactions: 10,
                atomic_replays: 0,
                bank_passes: 0,
                cache_hits: 0,
                cache_misses: 0,
                est_cycles: 74,
            }],
            launches: vec![LaunchProfile {
                index: 0,
                label: "level 0".to_string(),
                cycles: 120,
                instructions: 40,
                timing,
                spans: vec![WarpSpan {
                    sm: 0,
                    block: 2,
                    warp_in_block: 1,
                    start: 5,
                    end: 100,
                    instructions: 20,
                }],
            }],
        }
    }

    #[test]
    fn hotspot_table_mentions_site_and_buckets() {
        let t = sample().hotspot_table(10);
        assert!(t.contains("kernels/bfs.rs:42:17"), "{t}");
        assert!(t.contains("mem"), "{t}");
        assert!(t.contains("120 cycles"), "{t}");
    }

    #[test]
    fn json_escapes_and_balances() {
        let j = sample().to_json();
        // The context contains quotes that must be escaped.
        assert!(j.contains("bfs/rmat [\\\"warp(8)\\\"]"), "{j}");
        assert_balanced(&j);
        assert!(j.contains("\"mem_stall\": 80"));
    }

    #[test]
    fn chrome_trace_has_events_and_balances() {
        let c = sample().chrome_trace();
        assert!(c.contains("\"traceEvents\""));
        assert!(c.contains("b2.w1"));
        assert!(c.contains("\"SM 0\""));
        assert!(c.contains("level 0"));
        assert_balanced(&c);
    }

    /// Structural JSON sanity: balanced braces/brackets outside strings.
    fn assert_balanced(s: &str) {
        let (mut brace, mut bracket) = (0i64, 0i64);
        let mut in_str = false;
        let mut escape = false;
        for c in s.chars() {
            if escape {
                escape = false;
                continue;
            }
            match c {
                '\\' if in_str => escape = true,
                '"' => in_str = !in_str,
                '{' if !in_str => brace += 1,
                '}' if !in_str => brace -= 1,
                '[' if !in_str => bracket += 1,
                ']' if !in_str => bracket -= 1,
                _ => {}
            }
            assert!(brace >= 0 && bracket >= 0);
        }
        assert_eq!(brace, 0);
        assert_eq!(bracket, 0);
        assert!(!in_str);
    }
}
