//! Cycle-attribution profiler: per-call-site hotspots, stall breakdown,
//! and warp timelines.
//!
//! The paper's argument is an *attribution* story — it explains BFS
//! performance by where the cycles go: inter-warp workload imbalance, SIMD
//! lane underutilization from divergence, and non-coalesced memory traffic.
//! [`KernelStats`](crate::stats::KernelStats) reports those quantities per
//! launch; this module reports them per *source line* and per *SM cycle*:
//!
//! * **Per-site table** — every traced warp operation is attributed (via
//!   `#[track_caller]`, like the sanitizer's diagnostics) to the kernel
//!   source line that executed it, aggregating instructions, active-lane
//!   sum, memory transactions, atomic replays, and bank-conflict passes.
//!   From these each site gets a lane utilization, a coalescing efficiency,
//!   and an estimated cycle cost used to rank the hotspot report.
//! * **Stall breakdown** — the timing engine's per-SM
//!   [`StallBreakdown`](crate::timing::StallBreakdown) (issue/compute,
//!   memory, atomic, bank, barrier, idle), with buckets summing exactly to
//!   total cycles, accumulated across launches.
//! * **Timeline** — per-launch [`WarpSpan`](crate::timing::WarpSpan)s,
//!   exportable as Chrome trace-event JSON (`chrome://tracing` / Perfetto).
//!
//! Profiling is opt-in (`GpuConfig::profile` or `MAXWARP_PROFILE=1`) and —
//! like the sanitizer's `Op::San` markers — strictly observational: traces,
//! `KernelStats`, and simulated cycles are byte-identical with it on or off
//! (the profiler only reads what the functional phase already records; it
//! never pushes trace ops).

mod export;

use crate::config::GpuConfig;
use crate::timing::{TimingReport, WarpSpan};
use crate::trace::Op;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::panic::Location;

/// Per-site accumulation state (one row of the eventual hotspot table).
#[derive(Clone, Copy, Debug, Default)]
struct SiteAgg {
    instructions: u64,
    active_lane_sum: u64,
    transactions: u64,
    ideal_transactions: u64,
    atomic_replays: u64,
    bank_passes: u64,
    cache_hits: u64,
    cache_misses: u64,
}

/// Cost weights for ranking sites, taken from the device configuration.
#[derive(Clone, Copy, Debug)]
struct CostWeights {
    dram_cycles_per_transaction: u64,
    atomic_replay_cycles: u64,
}

/// One call site's aggregated profile — a row of the hotspot table.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SiteReport {
    /// Source file of the call site.
    pub file: String,
    /// 1-based line of the call site.
    pub line: u32,
    /// 1-based column of the call site.
    pub column: u32,
    /// Operation name (`ld`, `st`, `alu`, `atomic_add`, `sh_ld`, ...).
    pub op: String,
    /// Warp instructions issued from this site.
    pub instructions: u64,
    /// Sum of active lanes over those instructions (max 32 each).
    pub active_lane_sum: u64,
    /// Memory transactions (DRAM segments) this site generated.
    pub transactions: u64,
    /// Transactions a perfectly coalesced access pattern would have needed.
    pub ideal_transactions: u64,
    /// Same-address atomic replays.
    pub atomic_replays: u64,
    /// Shared-memory bank passes (1 = conflict-free).
    pub bank_passes: u64,
    /// Read-only-cache hits (cached loads only).
    pub cache_hits: u64,
    /// Read-only-cache misses (cached loads only).
    pub cache_misses: u64,
    /// Estimated cycle cost (issue slots + DRAM service + atomic replay
    /// serialization + extra bank passes) — the ranking key.
    pub est_cycles: u64,
}

impl SiteReport {
    /// Fraction of SIMD lanes doing useful work at this site (0..=1).
    pub fn lane_utilization(&self) -> f64 {
        if self.instructions == 0 {
            return 0.0;
        }
        self.active_lane_sum as f64 / (self.instructions as f64 * crate::lanes::WARP_SIZE as f64)
    }

    /// Ideal-over-actual transaction ratio (1.0 = perfectly coalesced);
    /// `None` for sites without global-memory traffic.
    pub fn coalescing_efficiency(&self) -> Option<f64> {
        if self.transactions == 0 {
            return None;
        }
        Some(self.ideal_transactions as f64 / self.transactions as f64)
    }

    /// `file:line:column` of the call site.
    pub fn location(&self) -> String {
        format!("{}:{}:{}", self.file, self.line, self.column)
    }
}

/// One profiled launch: label, cost, per-SM timing, and warp timeline.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LaunchProfile {
    /// Launch ordinal within the profiled run (0-based).
    pub index: u32,
    /// Driver-provided label (e.g. `bfs level 3`), or `launch N`.
    pub label: String,
    /// The launch's simulated cycles.
    pub cycles: u64,
    /// Warp instructions issued in the launch.
    pub instructions: u64,
    /// Per-SM timing detail; stall buckets sum to `cycles` per SM.
    pub timing: TimingReport,
    /// One span per resident warp that issued at least one instruction.
    pub spans: Vec<WarpSpan>,
}

/// The full profile of a run: ranked hotspot sites, accumulated timing,
/// and the per-launch timeline. Produced by [`Profiler::report`]; exported
/// as a human-readable table ([`ProfileReport::hotspot_table`]), profile
/// JSON ([`ProfileReport::to_json`]), or a Chrome trace
/// ([`ProfileReport::chrome_trace`]).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ProfileReport {
    /// Device preset name.
    pub device: String,
    /// Driver-provided context label (kernel/dataset/method).
    pub context: String,
    /// Total cycles across all launches.
    pub total_cycles: u64,
    /// Timing accumulated across launches (per-SM buckets sum to
    /// `total_cycles`).
    pub timing: TimingReport,
    /// Call sites ranked by estimated cycle cost, descending.
    pub sites: Vec<SiteReport>,
    /// Per-launch profiles, in launch order.
    pub launches: Vec<LaunchProfile>,
}

impl ProfileReport {
    /// Warp instructions issued across all launches.
    pub fn total_instructions(&self) -> u64 {
        self.launches.iter().map(|l| l.instructions).sum()
    }
}

/// The profiling engine a [`Gpu`](crate::device::Gpu) carries when
/// `GpuConfig::profile` (or `MAXWARP_PROFILE=1`) is set. Mirrors the
/// sanitizer's lifecycle: the device notifies it of launches, warp contexts
/// feed it per-op samples, and [`Profiler::report`] snapshots the result.
#[derive(Debug)]
pub struct Profiler {
    device: String,
    context: String,
    next_label: Option<String>,
    weights: CostWeights,
    sites: HashMap<(&'static Location<'static>, &'static str), SiteAgg>,
    launches: Vec<LaunchProfile>,
    timing: TimingReport,
}

impl Profiler {
    /// A fresh profiler for a device; the config supplies the cost weights
    /// used to rank hotspots.
    pub fn new(cfg: &GpuConfig) -> Self {
        Profiler {
            device: cfg.name.clone(),
            context: String::new(),
            next_label: None,
            weights: CostWeights {
                dram_cycles_per_transaction: cfg.dram_cycles_per_transaction,
                atomic_replay_cycles: cfg.atomic_replay_cycles,
            },
            sites: HashMap::new(),
            launches: Vec::new(),
            timing: TimingReport::default(),
        }
    }

    /// Label the whole profile (kernel/dataset/method), like the
    /// sanitizer's context.
    pub fn set_context(&mut self, name: &str) {
        self.context = name.to_string();
    }

    /// Label the *next* launch (e.g. `bfs level 3`); consumed by the launch.
    pub fn set_launch_label(&mut self, label: &str) {
        self.next_label = Some(label.to_string());
    }

    /// Record one traced warp operation from `site`. `seg_words` is the
    /// coalescing segment size in words, for the ideal-transaction count.
    pub(crate) fn note(
        &mut self,
        site: &'static Location<'static>,
        op_name: &'static str,
        op: Op,
        seg_words: u32,
    ) {
        let agg = self.sites.entry((site, op_name)).or_default();
        agg.instructions += 1;
        agg.active_lane_sum += op.active_lanes() as u64;
        agg.transactions += op.transactions() as u64;
        match op {
            Op::LdGlobal { active, .. } | Op::StGlobal { active, .. } => {
                agg.ideal_transactions += ideal_tx(active as u32, seg_words);
            }
            Op::Atomic {
                active, replays, ..
            } => {
                agg.ideal_transactions += ideal_tx(active as u32, seg_words);
                agg.atomic_replays += replays as u64;
            }
            Op::LdCached { hits, misses, .. } => {
                agg.cache_hits += hits as u64;
                agg.cache_misses += misses as u64;
            }
            Op::Shared { cost, .. } => {
                agg.bank_passes += cost as u64;
            }
            Op::Alu { .. } | Op::Bar | Op::San => {}
        }
    }

    /// Close out one launch: fold its timing into the running totals and
    /// record its per-launch profile (label, spans, breakdown).
    pub(crate) fn finish_launch(&mut self, timing: TimingReport, spans: Vec<WarpSpan>) {
        let index = self.launches.len() as u32;
        let label = self
            .next_label
            .take()
            .unwrap_or_else(|| format!("launch {index}"));
        self.timing.accumulate(&timing);
        let instructions = timing.sm_instructions.iter().sum();
        self.launches.push(LaunchProfile {
            index,
            label,
            cycles: timing.cycles,
            instructions,
            timing,
            spans,
        });
    }

    /// Launches profiled so far.
    pub fn launch_count(&self) -> u32 {
        self.launches.len() as u32
    }

    /// Snapshot the accumulated profile: sites ranked by estimated cycle
    /// cost (ties broken by source location for determinism).
    pub fn report(&self) -> ProfileReport {
        let w = self.weights;
        let mut sites: Vec<SiteReport> = self
            .sites
            .iter()
            .map(|(&(site, op), agg)| {
                // Extra bank passes beyond the conflict-free one per access.
                let bank_extra = agg.bank_passes.saturating_sub(agg.instructions);
                SiteReport {
                    file: site.file().to_string(),
                    line: site.line(),
                    column: site.column(),
                    op: op.to_string(),
                    instructions: agg.instructions,
                    active_lane_sum: agg.active_lane_sum,
                    transactions: agg.transactions,
                    ideal_transactions: agg.ideal_transactions,
                    atomic_replays: agg.atomic_replays,
                    bank_passes: agg.bank_passes,
                    cache_hits: agg.cache_hits,
                    cache_misses: agg.cache_misses,
                    est_cycles: agg.instructions
                        + agg.transactions * w.dram_cycles_per_transaction
                        + agg.atomic_replays * w.atomic_replay_cycles
                        + bank_extra,
                }
            })
            .collect();
        sites.sort_by(|a, b| {
            b.est_cycles.cmp(&a.est_cycles).then_with(|| {
                (&a.file, a.line, a.column, &a.op).cmp(&(&b.file, b.line, b.column, &b.op))
            })
        });
        ProfileReport {
            device: self.device.clone(),
            context: self.context.clone(),
            total_cycles: self.timing.cycles,
            timing: self.timing.clone(),
            sites,
            launches: self.launches.clone(),
        }
    }
}

/// Transactions a perfectly coalesced access with `active` lanes would
/// need: `ceil(active / seg_words)`, at least 1 when any lane is active.
fn ideal_tx(active: u32, seg_words: u32) -> u64 {
    if active == 0 {
        return 0;
    }
    active.div_ceil(seg_words.max(1)) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::StallBreakdown;

    fn prof() -> Profiler {
        Profiler::new(&GpuConfig::tiny_test())
    }

    #[track_caller]
    fn here() -> &'static Location<'static> {
        Location::caller()
    }

    #[test]
    fn sites_aggregate_and_rank() {
        let mut p = prof();
        let s1 = here();
        let s2 = here();
        // s1: 2 scattered loads. s2: 1 coalesced load.
        for _ in 0..2 {
            p.note(s1, "ld", Op::LdGlobal { active: 32, tx: 32 }, 32);
        }
        p.note(s2, "ld", Op::LdGlobal { active: 32, tx: 1 }, 32);
        let r = p.report();
        assert_eq!(r.sites.len(), 2);
        // Scattered site costs more, so it ranks first.
        assert_eq!(r.sites[0].line, s1.line());
        assert_eq!(r.sites[0].instructions, 2);
        assert_eq!(r.sites[0].transactions, 64);
        assert_eq!(r.sites[0].ideal_transactions, 2);
        let eff = r.sites[0].coalescing_efficiency().unwrap();
        assert!((eff - 2.0 / 64.0).abs() < 1e-9);
        assert_eq!(r.sites[1].coalescing_efficiency(), Some(1.0));
        assert_eq!(r.sites[1].lane_utilization(), 1.0);
    }

    #[test]
    fn atomic_and_shared_costs_counted() {
        let mut p = prof();
        let s = here();
        p.note(
            s,
            "atomic_add",
            Op::Atomic {
                active: 32,
                tx: 1,
                replays: 31,
            },
            32,
        );
        p.note(
            s,
            "sh_ld",
            Op::Shared {
                active: 32,
                cost: 8,
            },
            32,
        );
        let r = p.report();
        let atomic = r.sites.iter().find(|x| x.op == "atomic_add").unwrap();
        assert_eq!(atomic.atomic_replays, 31);
        let w = GpuConfig::tiny_test();
        assert_eq!(
            atomic.est_cycles,
            1 + w.dram_cycles_per_transaction + 31 * w.atomic_replay_cycles
        );
        let sh = r.sites.iter().find(|x| x.op == "sh_ld").unwrap();
        assert_eq!(sh.bank_passes, 8);
        assert_eq!(sh.est_cycles, 1 + 7);
    }

    #[test]
    fn launches_accumulate_timing() {
        let mut p = prof();
        let mk = |cycles: u64| TimingReport {
            cycles,
            sm_instructions: vec![10, 0],
            dram_busy_cycles: 3,
            sm_breakdown: vec![
                StallBreakdown {
                    issue: cycles,
                    ..Default::default()
                },
                StallBreakdown {
                    idle: cycles,
                    ..Default::default()
                },
            ],
        };
        p.set_launch_label("level 0");
        p.finish_launch(mk(100), Vec::new());
        p.finish_launch(mk(50), Vec::new());
        let r = p.report();
        assert_eq!(r.total_cycles, 150);
        assert_eq!(r.launches.len(), 2);
        assert_eq!(r.launches[0].label, "level 0");
        assert_eq!(r.launches[1].label, "launch 1");
        assert_eq!(r.total_instructions(), 20);
        for b in &r.timing.sm_breakdown {
            assert_eq!(b.total(), r.total_cycles);
        }
    }

    #[test]
    fn ideal_tx_bounds() {
        assert_eq!(ideal_tx(0, 32), 0);
        assert_eq!(ideal_tx(1, 32), 1);
        assert_eq!(ideal_tx(32, 32), 1);
        assert_eq!(ideal_tx(33, 32), 2);
        assert_eq!(ideal_tx(5, 0), 5);
    }
}
