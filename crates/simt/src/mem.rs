//! Simulated device (global) memory.
//!
//! Device memory is a flat array of 32-bit words managed by a bump
//! allocator. Allocations return typed [`DevPtr<T>`] handles — plain
//! `(offset, len)` pairs that kernels copy freely, mirroring how CUDA device
//! pointers are passed to kernels by value.
//!
//! Out-of-bounds accesses panic with a descriptive message, the moral
//! equivalent of CUDA's `cudaErrorIllegalAddress` aborting the kernel.

use crate::fault::{SimtError, XorShift64};
use crate::lanes::DeviceWord;
use std::marker::PhantomData;

/// Alignment (in words) of every allocation: one 128-byte segment, so that
/// distinct buffers never share a coalescing segment.
pub const ALLOC_ALIGN_WORDS: u32 = 32;

/// Typed pointer into simulated device memory.
///
/// `DevPtr` is `Copy` and carries its allocation length for bounds checking.
pub struct DevPtr<T> {
    word: u32,
    len: u32,
    _ty: PhantomData<fn() -> T>,
}

impl<T> Clone for DevPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for DevPtr<T> {}

impl<T> std::fmt::Debug for DevPtr<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DevPtr(word={}, len={})", self.word, self.len)
    }
}

impl<T: DeviceWord> DevPtr<T> {
    /// Number of `T` elements in the allocation.
    #[inline]
    pub fn len(&self) -> u32 {
        self.len
    }

    /// True if the allocation holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Byte address of element `idx` — the quantity the coalescing model
    /// works with.
    #[inline]
    pub fn byte_addr(&self, idx: u32) -> u64 {
        (self.word as u64 + idx as u64) * 4
    }

    /// First word of the allocation (for shadow-state indexing).
    #[inline]
    pub(crate) fn base(&self) -> u32 {
        self.word
    }

    /// Word offset of element `idx` within the device array.
    #[inline]
    pub(crate) fn word_of(&self, idx: u32) -> usize {
        assert!(
            idx < self.len,
            "illegal device address: index {idx} out of bounds for allocation of {}",
            self.len
        );
        self.word as usize + idx as usize
    }

    /// A sub-slice view `[at, at+len)` of this allocation.
    pub fn slice(&self, at: u32, len: u32) -> DevPtr<T> {
        assert!(
            at.checked_add(len).is_some_and(|end| end <= self.len),
            "device sub-slice [{at}, {at}+{len}) out of bounds {}",
            self.len
        );
        DevPtr {
            word: self.word + at,
            len,
            _ty: PhantomData,
        }
    }
}

/// The device's global memory: words plus a bump allocator.
#[derive(Clone, Debug, Default)]
pub struct DeviceMem {
    words: Vec<u32>,
    /// High-water mark of the bump allocator, in words.
    top: u32,
    /// Valid-bit shadow, one bit per word: set once the word has been
    /// written (host upload/fill/write or any device store/atomic). The
    /// simulator zero-initializes allocations for determinism, but real
    /// `cudaMalloc` does not — the sanitizer's uninitialized-read check
    /// reads this shadow.
    valid: Vec<u64>,
}

impl DeviceMem {
    /// Fresh, empty device memory.
    pub fn new() -> Self {
        DeviceMem::default()
    }

    /// Allocate `len` elements of `T`, zero-initialized.
    ///
    /// Panics if the 32-bit word address space is exhausted; use
    /// [`DeviceMem::try_alloc`] to get a structured error instead.
    pub fn alloc<T: DeviceWord>(&mut self, len: u32) -> DevPtr<T> {
        self.try_alloc(len).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Allocate `len` elements of `T`, zero-initialized, reporting
    /// address-space exhaustion as [`SimtError::AddressSpaceExhausted`] with
    /// the requested/available byte counts.
    pub fn try_alloc<T: DeviceWord>(&mut self, len: u32) -> Result<DevPtr<T>, SimtError> {
        let word = self.top;
        let exhausted = |requested_words: u64, top: u32| SimtError::AddressSpaceExhausted {
            requested_bytes: requested_words * 4,
            available_bytes: (u32::MAX - top) as u64 * 4,
        };
        let padded = len
            .checked_next_multiple_of(ALLOC_ALIGN_WORDS)
            .ok_or_else(|| exhausted(len as u64, self.top))?
            .max(ALLOC_ALIGN_WORDS);
        let top = self
            .top
            .checked_add(padded)
            .ok_or_else(|| exhausted(padded as u64, self.top))?;
        self.top = top;
        self.words.resize(self.top as usize, 0);
        self.valid.resize((self.top as usize).div_ceil(64), 0);
        Ok(DevPtr {
            word,
            len,
            _ty: PhantomData,
        })
    }

    /// Allocate and upload a host slice.
    pub fn alloc_from<T: DeviceWord>(&mut self, data: &[T]) -> DevPtr<T> {
        let ptr = self.alloc::<T>(data.len() as u32);
        self.upload(ptr, data);
        ptr
    }

    /// Fallible [`DeviceMem::alloc_from`].
    pub fn try_alloc_from<T: DeviceWord>(&mut self, data: &[T]) -> Result<DevPtr<T>, SimtError> {
        let ptr = self.try_alloc::<T>(data.len() as u32)?;
        self.upload(ptr, data);
        Ok(ptr)
    }

    /// Copy a host slice into an allocation (must fit).
    pub fn upload<T: DeviceWord>(&mut self, ptr: DevPtr<T>, data: &[T]) {
        assert!(
            data.len() as u32 <= ptr.len,
            "upload of {} elements into allocation of {}",
            data.len(),
            ptr.len
        );
        for (i, v) in data.iter().enumerate() {
            self.words[ptr.word as usize + i] = v.to_word();
        }
        self.mark_valid_range(ptr.word, data.len() as u32);
    }

    /// Copy an allocation back to the host.
    pub fn download<T: DeviceWord>(&self, ptr: DevPtr<T>) -> Vec<T> {
        (0..ptr.len)
            .map(|i| T::from_word(self.words[ptr.word_of(i)]))
            .collect()
    }

    /// Read one element.
    #[inline]
    pub fn read<T: DeviceWord>(&self, ptr: DevPtr<T>, idx: u32) -> T {
        T::from_word(self.words[ptr.word_of(idx)])
    }

    /// Write one element.
    #[inline]
    pub fn write<T: DeviceWord>(&mut self, ptr: DevPtr<T>, idx: u32, v: T) {
        let w = ptr.word_of(idx);
        self.words[w] = v.to_word();
        self.mark_word_valid(w as u32);
    }

    /// Fill an entire allocation with a value.
    pub fn fill<T: DeviceWord>(&mut self, ptr: DevPtr<T>, v: T) {
        let w = v.to_word();
        let start = ptr.word as usize;
        self.words[start..start + ptr.len as usize].fill(w);
        self.mark_valid_range(ptr.word, ptr.len);
    }

    /// True if word `w` has been written since allocation.
    #[inline]
    pub(crate) fn word_valid(&self, w: u32) -> bool {
        self.valid
            .get(w as usize / 64)
            .is_some_and(|&bits| bits >> (w % 64) & 1 == 1)
    }

    /// Mark word `w` as initialized.
    #[inline]
    pub(crate) fn mark_word_valid(&mut self, w: u32) {
        if let Some(bits) = self.valid.get_mut(w as usize / 64) {
            *bits |= 1 << (w % 64);
        }
    }

    fn mark_valid_range(&mut self, start: u32, len: u32) {
        for w in start..start + len {
            self.mark_word_valid(w);
        }
    }

    /// Total allocated words (high-water mark).
    pub fn allocated_words(&self) -> u32 {
        self.top
    }

    /// Chaos hook: flip one random bit of one random *valid* (written) word.
    /// Returns the `(word, bit)` flipped, or `None` if no valid word was
    /// found in a bounded number of draws. Deterministic in the RNG stream.
    pub(crate) fn chaos_flip_bit(&mut self, rng: &mut XorShift64) -> Option<(u32, u32)> {
        if self.top == 0 {
            return None;
        }
        for _ in 0..64 {
            let w = rng.below(self.top as u64) as u32;
            if self.word_valid(w) {
                let bit = rng.below(32) as u32;
                self.words[w as usize] ^= 1 << bit;
                return Some((w, bit));
            }
        }
        None
    }

    /// Drop all allocations. Outstanding `DevPtr`s become dangling; this is
    /// only used between independent experiments.
    pub fn reset(&mut self) {
        self.words.clear();
        self.valid.clear();
        self.top = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_zeroed_and_roundtrip() {
        let mut m = DeviceMem::new();
        let p = m.alloc::<u32>(10);
        assert_eq!(m.download(p), vec![0u32; 10]);
        m.upload(p, &[1, 2, 3]);
        assert_eq!(m.read(p, 0), 1);
        assert_eq!(m.read(p, 2), 3);
        assert_eq!(m.read(p, 3), 0);
    }

    #[test]
    fn allocations_are_segment_aligned() {
        let mut m = DeviceMem::new();
        let a = m.alloc::<u32>(1);
        let b = m.alloc::<u32>(1);
        assert_eq!(a.byte_addr(0) % 128, 0);
        assert_eq!(b.byte_addr(0) % 128, 0);
        assert_ne!(a.byte_addr(0) / 128, b.byte_addr(0) / 128);
    }

    #[test]
    fn alloc_from_and_fill() {
        let mut m = DeviceMem::new();
        let p = m.alloc_from(&[5i32, -6, 7]);
        assert_eq!(m.download(p), vec![5, -6, 7]);
        m.fill(p, -1i32);
        assert_eq!(m.download(p), vec![-1, -1, -1]);
    }

    #[test]
    fn f32_storage() {
        let mut m = DeviceMem::new();
        let p = m.alloc_from(&[1.5f32, -2.25]);
        assert_eq!(m.read(p, 1), -2.25);
        m.write(p, 0, 9.0f32);
        assert_eq!(m.read(p, 0), 9.0);
    }

    #[test]
    fn slice_views() {
        let mut m = DeviceMem::new();
        let p = m.alloc_from(&[0u32, 1, 2, 3, 4, 5]);
        let s = p.slice(2, 3);
        assert_eq!(m.download(s), vec![2, 3, 4]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_oob_panics() {
        let mut m = DeviceMem::new();
        let p = m.alloc::<u32>(4);
        let _ = p.slice(2, 3);
    }

    #[test]
    #[should_panic]
    fn read_oob_panics() {
        let mut m = DeviceMem::new();
        let p = m.alloc::<u32>(4);
        let _ = m.read(p, 4);
    }

    #[test]
    fn valid_bits_track_writes() {
        let mut m = DeviceMem::new();
        let p = m.alloc::<u32>(5);
        assert!(!m.word_valid(p.base()));
        m.write(p, 0, 7u32);
        assert!(m.word_valid(p.base()));
        assert!(!m.word_valid(p.base() + 1));
        m.fill(p, 0u32);
        assert!((0..5).all(|i| m.word_valid(p.base() + i)));
        let q = m.alloc_from(&[1u32, 2]);
        assert!(m.word_valid(q.base()) && m.word_valid(q.base() + 1));
        m.reset();
        assert!(!m.word_valid(p.base()));
    }

    #[test]
    fn try_alloc_reports_exhaustion_with_byte_counts() {
        let mut m = DeviceMem::new();
        // Claim almost the whole 32-bit word space without materializing it:
        // drive `top` up directly via a huge padded request being rejected,
        // then a small one succeeding. We can't resize a 16 GiB Vec here, so
        // exercise the arithmetic path with a request that must overflow.
        let err = m.try_alloc::<u32>(u32::MAX - 8).unwrap_err();
        match err {
            SimtError::AddressSpaceExhausted {
                requested_bytes,
                available_bytes,
            } => {
                assert!(requested_bytes >= (u32::MAX - 8) as u64 * 4);
                assert_eq!(available_bytes, u32::MAX as u64 * 4);
            }
            other => panic!("unexpected error {other:?}"),
        }
        // The failed attempt must not have moved the high-water mark.
        assert_eq!(m.allocated_words(), 0);
        assert!(m.try_alloc::<u32>(8).is_ok());
    }

    #[test]
    fn chaos_flip_targets_valid_words_deterministically() {
        let mut m = DeviceMem::new();
        let p = m.alloc_from(&[7u32; 16]);
        let mut r1 = XorShift64::new(99);
        let mut r2 = XorShift64::new(99);
        let hit1 = m.chaos_flip_bit(&mut r1).expect("valid word exists");
        let mut m2 = DeviceMem::new();
        let _ = m2.alloc_from(&[7u32; 16]);
        let hit2 = m2.chaos_flip_bit(&mut r2).expect("valid word exists");
        assert_eq!(hit1, hit2, "same seed must flip the same bit");
        let (w, bit) = hit1;
        assert!(w < 16, "flip landed on the only valid words");
        assert_eq!(m.read(p, w), 7u32 ^ (1 << bit));
    }

    #[test]
    fn reset_clears() {
        let mut m = DeviceMem::new();
        let _ = m.alloc::<u32>(100);
        assert!(m.allocated_words() >= 100);
        m.reset();
        assert_eq!(m.allocated_words(), 0);
    }
}
