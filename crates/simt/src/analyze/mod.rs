//! Static kernel analyzer: abstract interpretation over warp programs.
//!
//! Enabled via [`GpuConfig::analyze`](crate::GpuConfig) or
//! `MAXWARP_ANALYZE=1`, the analyzer observes every instrumented warp
//! operation — like the sanitizer — but instead of shadowing concrete state
//! it *abstracts* each call site's lane values into the domains of
//! [`domain`]: lane-affine forms `c0 + c_lane·lane + c_warp·warp +
//! c_block·block` joined across all observing warps and blocks, with
//! interval hulls as the fallback. A pass pipeline then proves properties of
//! the whole launch from the per-site summaries:
//!
//! 1. **Barrier convergence** — every warp of a block must reach the same
//!    barrier sequence ([`passes::check_barrier_convergence`]).
//! 2. **May-happen-in-parallel races** — conflicting site pairs whose
//!    abstract address footprints intersect and whose agent summaries admit
//!    an unordered pair under the barrier-epoch ordering (warning), plus
//!    *definite* races proved from exact affine forms (error).
//! 3. **Coalescing / bank-conflict prediction** — transactions and bank
//!    passes computed from affine strides through the very same
//!    [`coalesce`](crate::coalesce) / [`shared`](crate::shared) models the
//!    simulator charges, and the same efficiency lint the sanitizer applies.
//! 4. **Redundant ballots** — collective sites whose predicate is uniform
//!    over every observation.
//! 5. **Uninitialized reads** — valid-bit over-approximation per site.
//!
//! ## Soundness contract
//!
//! Kernels here are Rust closures, so the analyzer cannot enumerate
//! unexecuted paths; it abstracts along the executed trace and generalizes
//! over the lane/warp/block space wherever the observations are
//! affine-exact. The guarantee — enforced by the containment harness in
//! `tests/` — is *relative soundness*: every finding the dynamic sanitizer
//! produces on an input is contained in the static report for the same run,
//! while the static report additionally warns about hazards (hull overlaps,
//! epoch-unordered pairs) the concrete interleaving happened not to trip.
//! Error severity is reserved for findings that are *definite* — provable
//! from exact affine forms or directly observed — so a hazard-free kernel
//! reports zero errors even though the may-analysis over-approximates.
//!
//! Like the sanitizer and profiler, the analyzer is purely observational: it
//! pushes no trace ops at all, so `KernelStats` are byte-identical with it
//! on or off.

pub mod domain;
pub mod passes;
mod report;

pub use domain::{AbsJoin, AbsVal, Interval, LaneAffine, SiteAffine};

use crate::sanitize::Severity;
use crate::warp::WarpId;
use std::collections::{HashMap, HashSet};
use std::panic::Location;

/// A kernel call site (`#[track_caller]` location of the `WarpCtx` method).
pub type Site = &'static Location<'static>;

/// Cap on distinct findings retained; further new sites are counted but
/// dropped.
const MAX_FINDINGS: usize = 1024;

/// Minimum sampled ops before the coalescing lint can fire for a site
/// (mirrors the sanitizer's threshold — the two lints must agree).
const COALESCE_MIN_OPS: u64 = 8;

/// Minimum observations before a uniform-predicate collective is called
/// redundant.
const BALLOT_MIN_OPS: u64 = 8;

/// What a memory site does.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessKind {
    Read,
    Write,
    Atomic,
}

impl AccessKind {
    /// Can two accesses of these kinds race? Reads never conflict with
    /// reads, and atomics are ordered against each other by the hardware.
    pub fn conflicts(self, other: AccessKind) -> bool {
        !matches!(
            (self, other),
            (AccessKind::Read, AccessKind::Read) | (AccessKind::Atomic, AccessKind::Atomic)
        )
    }

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            AccessKind::Read => "read",
            AccessKind::Write => "write",
            AccessKind::Atomic => "atomic",
        }
    }
}

/// Which address space a site touches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Space {
    Global,
    Shared,
}

impl Space {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Space::Global => "global",
            Space::Shared => "shared",
        }
    }
}

/// The static finding classes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FindKind {
    /// Warps of a block reach different barrier sequences.
    BarrierDivergence,
    /// A race proved from exact affine forms: unordered agents provably
    /// store different values to the same word.
    DefiniteRace,
    /// Two sites whose abstract footprints overlap with an unordered agent
    /// pair admitted by the epoch ordering — may race, cannot be proved.
    MayRace,
    /// An observed read of never-written shared memory (definite).
    UninitShared,
    /// A global read site where some observed lanes read never-written
    /// words.
    MayUninit,
    /// An observed access outside an allocation.
    OutOfBounds,
    /// An observed shuffle from a source lane outside the active mask.
    DivergentShfl,
    /// A collective executed under an empty active mask.
    EmptyMaskCollective,
    /// Lanes of one warp observed storing different values to one address
    /// in one instruction.
    StoreCollision,
    /// Shared access serialized into more than 4 bank passes.
    BankConflict,
    /// Global-memory site with coalescing efficiency below 25%.
    Coalescing,
    /// Collective whose predicate was uniform over every observation — the
    /// branch it guards is uniform and the ballot redundant.
    RedundantBallot,
}

impl FindKind {
    /// Severity is a property of the class: errors are definite (provable
    /// or directly observed), warnings are may-findings and perf lints.
    pub fn severity(self) -> Severity {
        match self {
            FindKind::BarrierDivergence
            | FindKind::DefiniteRace
            | FindKind::UninitShared
            | FindKind::OutOfBounds
            | FindKind::DivergentShfl => Severity::Error,
            FindKind::MayRace
            | FindKind::MayUninit
            | FindKind::EmptyMaskCollective
            | FindKind::StoreCollision
            | FindKind::BankConflict
            | FindKind::Coalescing
            | FindKind::RedundantBallot => Severity::Warning,
        }
    }

    /// Short kebab-case label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            FindKind::BarrierDivergence => "barrier-divergence",
            FindKind::DefiniteRace => "definite-race",
            FindKind::MayRace => "may-race",
            FindKind::UninitShared => "uninit-shared",
            FindKind::MayUninit => "may-uninit",
            FindKind::OutOfBounds => "out-of-bounds",
            FindKind::DivergentShfl => "divergent-shfl",
            FindKind::EmptyMaskCollective => "empty-mask-collective",
            FindKind::StoreCollision => "store-collision",
            FindKind::BankConflict => "bank-conflict",
            FindKind::Coalescing => "coalescing",
            FindKind::RedundantBallot => "redundant-ballot",
        }
    }
}

/// One deduplicated static finding.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Error or warning ([`FindKind::severity`]).
    pub severity: Severity,
    /// Finding class.
    pub kind: FindKind,
    /// Kernel context label active when the finding first fired.
    pub kernel: String,
    /// 1-based launch index of the first occurrence.
    pub launch: u32,
    /// Block of the first occurrence.
    pub block: u32,
    /// Warp-in-block of the first occurrence.
    pub warp: u32,
    /// `WarpCtx` method of the (first) site.
    pub op: &'static str,
    /// Source location of the offending call.
    pub site: Site,
    /// For pairwise findings (may-races), the second involved site.
    pub other_site: Option<Site>,
    /// Human-readable description of the first occurrence.
    pub message: String,
    /// Occurrences folded into this finding.
    pub count: u64,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let sev = match self.severity {
            Severity::Error => "ERROR",
            Severity::Warning => "warning",
        };
        write!(f, "{sev} [{}] {}", self.kind.label(), self.message)?;
        write!(f, "\n    at {} (op `{}`)", self.site, self.op)?;
        if let Some(o) = self.other_site {
            write!(f, "\n    with {}", o)?;
        }
        write!(f, "\n    first: ")?;
        if !self.kernel.is_empty() {
            write!(f, "kernel `{}` ", self.kernel)?;
        }
        write!(
            f,
            "launch {} block {} warp {}",
            self.launch, self.block, self.warp
        )?;
        if self.count > 1 {
            write!(f, "\n    occurrences: {}", self.count)?;
        }
        Ok(())
    }
}

/// Hull summary of the agents (block, warp, epoch) that executed a site.
/// Ranges over-approximate the observed sets, which is the safe direction
/// for a may-analysis: a pair the summary cannot exclude is reported.
#[derive(Clone, Copy, Debug)]
pub(crate) struct AgentSummary {
    pub(crate) block: Interval,
    pub(crate) warp: Interval,
    pub(crate) epoch: Interval,
    pub(crate) count: u64,
}

impl Default for AgentSummary {
    fn default() -> Self {
        AgentSummary {
            block: Interval { lo: 0, hi: 0 },
            warp: Interval { lo: 0, hi: 0 },
            epoch: Interval { lo: 0, hi: 0 },
            count: 0,
        }
    }
}

impl AgentSummary {
    fn observe(&mut self, block: u32, warp: u32, epoch: u32) {
        let (b, w, e) = (block as i64, warp as i64, epoch as i64);
        if self.count == 0 {
            self.block = Interval::point(b);
            self.warp = Interval::point(w);
            self.epoch = Interval::point(e);
        } else {
            self.block = self.block.include(b);
            self.warp = self.warp.include(w);
            self.epoch = self.epoch.include(e);
        }
        self.count += 1;
    }

    /// Could an *unordered* agent pair (one from `self`, one from `other`)
    /// exist, under the launch ordering the dynamic shadow uses: different
    /// blocks are always unordered (global memory), same block is unordered
    /// only across warps within one barrier epoch; shared memory is
    /// per-block, so only same-block pairs count there.
    pub(crate) fn may_conflict(&self, other: &AgentSummary, space: Space) -> bool {
        if self.count == 0 || other.count == 0 {
            return false;
        }
        let warps_differ = !(self.warp.lo == self.warp.hi
            && other.warp.lo == other.warp.hi
            && self.warp.lo == other.warp.lo);
        let epochs_meet = self.epoch.intersects(other.epoch);
        match space {
            Space::Global => {
                let single_common_block = self.block.lo == self.block.hi
                    && other.block.lo == other.block.hi
                    && self.block.lo == other.block.lo;
                if !single_common_block {
                    return true;
                }
                warps_differ && epochs_meet
            }
            Space::Shared => self.block.intersects(other.block) && warps_differ && epochs_meet,
        }
    }
}

/// Per-launch coalescing accumulator — the same accounting as the
/// sanitizer's lint, so the two always agree on verdicts.
#[derive(Clone, Copy, Debug, Default)]
struct CoalAcc {
    ops: u64,
    actual: u64,
    ideal: u64,
}

/// Abstract summary of one memory call site within a launch.
#[derive(Debug)]
pub(crate) struct MemSite {
    pub(crate) op: &'static str,
    pub(crate) kind: AccessKind,
    pub(crate) space: Space,
    pub(crate) addr: AbsJoin,
    pub(crate) value: AbsJoin,
    pub(crate) agents: AgentSummary,
    pub(crate) lane_span: Option<(usize, usize)>,
    pub(crate) who: (u32, u32),
    pub(crate) obs: u64,
    pub(crate) segment_words: u32,
    coalesce: Option<CoalAcc>,
}

/// Per-launch statistics of one collective (ballot/any/all) site.
#[derive(Debug)]
struct CollSite {
    op: &'static str,
    obs: u64,
    uniform_true: u64,
    uniform_false: u64,
    who: (u32, u32),
}

/// Cross-launch abstract summary of a site, for the report.
#[derive(Debug)]
pub struct SiteSummary {
    /// `WarpCtx` method observed at this site (`"ld"`, `"st"`, ...).
    pub op: &'static str,
    /// Read, write, or atomic.
    pub kind: AccessKind,
    /// Global or shared memory.
    pub space: Space,
    /// Source location of the call.
    pub site: Site,
    /// Joined abstract address across every observation.
    pub addr: AbsJoin,
    /// Union of observed active-lane spans.
    pub lane_span: Option<(usize, usize)>,
    /// Observations folded in.
    pub obs: u64,
    /// Coalescing segment size in words at this site.
    pub segment_words: u32,
}

impl SiteSummary {
    /// Predicted transactions per access from the joined affine form, if
    /// exact — computed through the simulator's own coalescing model.
    pub fn predicted_tx(&self) -> Option<u32> {
        if self.space != Space::Global {
            return None;
        }
        let a = self.addr.value()?.affine()?;
        let span = self.lane_span?;
        Some(passes::predict_transactions(
            a,
            span,
            self.agents_anchor(),
            self.segment_words * 4,
        ))
    }

    /// Predicted bank-conflict cost from the joined affine form, if exact.
    pub fn predicted_bank_cost(&self) -> Option<u32> {
        if self.space != Space::Shared {
            return None;
        }
        let a = self.addr.value()?.affine()?;
        let span = self.lane_span?;
        Some(passes::predict_bank_cost(a, span, self.agents_anchor()))
    }

    fn agents_anchor(&self) -> (i64, i64) {
        (0, 0)
    }
}

/// One memory-op observation handed to the analyzer from `WarpCtx`.
pub(crate) struct MemObs<'a> {
    pub id: WarpId,
    pub epoch: u32,
    pub kind: AccessKind,
    pub space: Space,
    pub op: &'static str,
    pub site: Site,
    /// `(lane, absolute word address)` for each active lane, ascending.
    pub addrs: &'a [(usize, i64)],
    /// `(lane, stored bit pattern)` for writes.
    pub values: Option<&'a [(usize, i64)]>,
    /// Active-lane span of the (guarded) mask.
    pub lane_span: Option<(usize, usize)>,
    /// Global reads: lanes that read a never-written device word.
    pub invalid: u32,
    /// `(actual transactions, distinct addresses)` when this op class is
    /// sampled by the coalescing lint (mirrors the sanitizer's sampling).
    pub coalesce: Option<(u32, u32)>,
    pub segment_words: u32,
    /// Shared accesses: the bank serialization cost already computed for
    /// the trace.
    pub bank_cost: u32,
}

/// A race finding buffered by `pass_races` before recording: kind, first
/// observing agent, op label, the two sites, and the message.
type RaceHit = (FindKind, WarpId, &'static str, Site, Option<Site>, String);

/// The static analyzer. One per [`Gpu`](crate::Gpu); accumulates
/// deduplicated findings across launches, with per-launch abstract state
/// reset at each launch boundary (races are a per-launch property, exactly
/// as in the dynamic shadow).
#[derive(Debug, Default)]
pub struct Analyzer {
    context: String,
    launch: u32,
    findings: Vec<Finding>,
    index: HashMap<(FindKind, Site, Option<Site>), usize>,
    errors: u64,
    warnings: u64,
    suppressed: u64,
    // ---- per-launch state, reset by begin_launch --------------------------
    mem_sites: HashMap<Site, MemSite>,
    coll_sites: HashMap<Site, CollSite>,
    /// Per block: per warp, the sequence of barrier sites reached.
    barriers: HashMap<u32, Vec<Vec<Site>>>,
    /// Shared-memory valid bits: `(block, word)` written this launch.
    shared_valid: HashSet<(u32, u32)>,
    // ---- cumulative -------------------------------------------------------
    summary: HashMap<Site, SiteSummary>,
}

impl Analyzer {
    /// Fresh analyzer with no findings.
    pub fn new() -> Self {
        Analyzer::default()
    }

    /// Label subsequent launches with a kernel/context name for reports.
    pub fn set_context(&mut self, name: &str) {
        self.context = name.to_string();
    }

    /// Begin a launch: reset the per-launch abstract state.
    pub fn begin_launch(&mut self) {
        self.launch += 1;
        self.mem_sites.clear();
        self.coll_sites.clear();
        self.barriers.clear();
        self.shared_valid.clear();
    }

    /// End a launch: run the pass pipeline over the per-launch site
    /// summaries, then fold them into the cumulative report state.
    pub fn finish_launch(&mut self) {
        self.pass_barrier_convergence();
        self.pass_races();
        self.pass_coalescing();
        self.pass_redundant_ballots();
        self.merge_summaries();
    }

    /// True if any error-severity finding was recorded.
    pub fn has_errors(&self) -> bool {
        self.errors > 0
    }

    /// Total error-severity occurrences.
    pub fn error_count(&self) -> u64 {
        self.errors
    }

    /// Total warning-severity occurrences.
    pub fn warning_count(&self) -> u64 {
        self.warnings
    }

    /// True if nothing at all was recorded.
    pub fn is_clean(&self) -> bool {
        self.errors == 0 && self.warnings == 0
    }

    /// All deduplicated findings, in first-occurrence order.
    pub fn findings(&self) -> &[Finding] {
        &self.findings
    }

    /// Occurrences dropped after the distinct-findings cap was reached.
    /// Nonzero means [`findings`](Self::findings) is an incomplete list and
    /// containment arguments against it are void.
    pub fn suppressed(&self) -> u64 {
        self.suppressed
    }

    /// Cross-launch abstract site summaries, ordered by source location.
    pub fn site_summaries(&self) -> Vec<&SiteSummary> {
        let mut sites: Vec<&SiteSummary> = self.summary.values().collect();
        sites.sort_by_key(|s| (s.site.file(), s.site.line(), s.site.column()));
        sites
    }

    /// Human-readable report of all findings (errors first).
    pub fn report(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let mut ordered: Vec<&Finding> = self.findings.iter().collect();
        ordered.sort_by_key(|d| std::cmp::Reverse(d.severity));
        for d in ordered {
            let _ = writeln!(out, "{d}");
        }
        let _ = writeln!(
            out,
            "analyzer: {} error(s), {} warning(s), {} distinct finding(s){}",
            self.errors,
            self.warnings,
            self.findings.len(),
            if self.suppressed > 0 {
                format!(", {} suppressed after cap", self.suppressed)
            } else {
                String::new()
            }
        );
        out
    }

    // ---- hooks called from WarpCtx / BlockCtx -------------------------------

    /// Fold one memory operation into its site's abstract summary and emit
    /// the immediate (observed-event) findings.
    pub(crate) fn mem_access(&mut self, obs: MemObs<'_>) {
        if obs.addrs.is_empty() {
            return;
        }
        // Shared validity shadow: reads of never-written words are definite
        // uninitialized reads; writes validate.
        let mut invalid = obs.invalid;
        if obs.space == Space::Shared {
            invalid = 0;
            for &(_, w) in obs.addrs {
                let key = (obs.id.block, w as u32);
                match obs.kind {
                    AccessKind::Read => {
                        if !self.shared_valid.contains(&key) {
                            invalid += 1;
                        }
                    }
                    AccessKind::Write | AccessKind::Atomic => {
                        self.shared_valid.insert(key);
                    }
                }
            }
        }

        let addr_fit = LaneAffine::fit(obs.addrs.iter().copied());
        let addr_hull = hull_of(obs.addrs);
        let value_fit = obs.values.and_then(|v| LaneAffine::fit(v.iter().copied()));
        let value_hull = obs.values.map(hull_of);

        let site = self.mem_sites.entry(obs.site).or_insert_with(|| MemSite {
            op: obs.op,
            kind: obs.kind,
            space: obs.space,
            addr: AbsJoin::default(),
            value: AbsJoin::default(),
            agents: AgentSummary::default(),
            lane_span: None,
            who: (obs.id.block, obs.id.warp_in_block),
            obs: 0,
            segment_words: obs.segment_words,
            coalesce: None,
        });
        site.obs += 1;
        site.addr
            .observe(addr_fit, addr_hull, obs.id.warp_in_block, obs.id.block);
        if let Some(h) = value_hull {
            site.value
                .observe(value_fit, h, obs.id.warp_in_block, obs.id.block);
        }
        site.agents
            .observe(obs.id.block, obs.id.warp_in_block, obs.epoch);
        site.lane_span = match (site.lane_span, obs.lane_span) {
            (None, s) | (s, None) => s,
            (Some((a, b)), Some((c, d))) => Some((a.min(c), b.max(d))),
        };
        if let Some((tx, distinct)) = obs.coalesce {
            let acc = site.coalesce.get_or_insert(CoalAcc::default());
            acc.ops += 1;
            acc.actual += tx as u64;
            acc.ideal += crate::coalesce::ideal_transactions(distinct, obs.segment_words) as u64;
        }

        // Immediate, observed-event findings.
        if invalid > 0 {
            match obs.space {
                Space::Global => self.hit(
                    FindKind::MayUninit,
                    obs.id,
                    obs.op,
                    obs.site,
                    None,
                    format!("{invalid} lane(s) observed reading uninitialized device words"),
                ),
                Space::Shared => self.hit(
                    FindKind::UninitShared,
                    obs.id,
                    obs.op,
                    obs.site,
                    None,
                    format!("{invalid} lane(s) read never-written shared words"),
                ),
            }
        }
        if obs.space == Space::Shared && obs.bank_cost > 4 {
            self.hit(
                FindKind::BankConflict,
                obs.id,
                obs.op,
                obs.site,
                None,
                format!(
                    "shared-memory access serialized into {} bank passes (> 4)",
                    obs.bank_cost
                ),
            );
        }
        if obs.space == Space::Global && obs.kind == AccessKind::Write {
            if let Some(vals) = obs.values {
                'outer: for (i, &(_, a)) in obs.addrs.iter().enumerate() {
                    for j in 0..i {
                        if obs.addrs[j].1 == a && vals[j].1 != vals[i].1 {
                            self.hit(
                                FindKind::StoreCollision,
                                obs.id,
                                obs.op,
                                obs.site,
                                None,
                                format!(
                                    "lanes store different values to word {a} in one \
                                     instruction (winner undefined on hardware)"
                                ),
                            );
                            break 'outer;
                        }
                    }
                }
            }
        }
    }

    /// Record one ballot/any/all execution for the redundancy pass.
    pub(crate) fn collective(
        &mut self,
        id: WarpId,
        op: &'static str,
        site: Site,
        active: u32,
        hits: u32,
    ) {
        let c = self.coll_sites.entry(site).or_insert_with(|| CollSite {
            op,
            obs: 0,
            uniform_true: 0,
            uniform_false: 0,
            who: (id.block, id.warp_in_block),
        });
        if active == 0 {
            return;
        }
        c.obs += 1;
        if hits == active {
            c.uniform_true += 1;
        } else if hits == 0 {
            c.uniform_false += 1;
        }
    }

    /// A collective executed under an empty active mask.
    pub(crate) fn empty_collective(&mut self, id: WarpId, op: &'static str, site: Site) {
        self.hit(
            FindKind::EmptyMaskCollective,
            id,
            op,
            site,
            None,
            format!("collective `{op}` executed under an empty active mask"),
        );
    }

    /// A shuffle observed reading a source lane outside the active mask.
    pub(crate) fn divergent_shuffle(&mut self, id: WarpId, op: &'static str, site: Site) {
        self.hit(
            FindKind::DivergentShfl,
            id,
            op,
            site,
            None,
            format!("`{op}` reads a source lane outside the active mask (undefined on hardware)"),
        );
    }

    /// An observed out-of-bounds access.
    pub(crate) fn oob(&mut self, id: WarpId, space: Space, op: &'static str, site: Site) {
        self.hit(
            FindKind::OutOfBounds,
            id,
            op,
            site,
            None,
            format!(
                "observed {}-memory access outside its allocation",
                space.label()
            ),
        );
    }

    /// A block-wide barrier: every warp of the block reaches `site`.
    pub(crate) fn barrier(&mut self, block: u32, warps: u32, site: Site) {
        let seqs = self
            .barriers
            .entry(block)
            .or_insert_with(|| vec![Vec::new(); warps.max(1) as usize]);
        for s in seqs.iter_mut() {
            s.push(site);
        }
    }

    // ---- passes (run at finish_launch) --------------------------------------

    fn pass_barrier_convergence(&mut self) {
        let mut blocks: Vec<(u32, &Vec<Vec<Site>>)> =
            self.barriers.iter().map(|(b, s)| (*b, s)).collect();
        blocks.sort_by_key(|(b, _)| *b);
        let mut found = Vec::new();
        for (block, seqs) in blocks {
            let views: Vec<&[Site]> = seqs.iter().map(|s| s.as_slice()).collect();
            if let Some(d) = passes::check_barrier_convergence(&views) {
                found.push((block, d));
            }
        }
        for (block, d) in found {
            let id = WarpId {
                block,
                warp_in_block: d.warp as u32,
                warps_per_block: 1,
                num_blocks: 1,
            };
            self.hit(
                FindKind::BarrierDivergence,
                id,
                "barrier",
                d.site,
                d.other_site,
                format!(
                    "warps of block {block} reach divergent barrier sequences: warp {} diverges \
                     from warp {} at step {}",
                    d.warp, d.other_warp, d.step
                ),
            );
        }
    }

    fn pass_races(&mut self) {
        let mut sites: Vec<(Site, &MemSite)> =
            self.mem_sites.iter().map(|(s, m)| (*s, m)).collect();
        sites.sort_by_key(|(s, _)| (s.file(), s.line(), s.column()));
        let mut found: Vec<RaceHit> = Vec::new();

        // Definite races from exact affine forms: every agent writes the
        // same single word, and the written value provably differs between
        // unordered agents.
        for &(loc, m) in &sites {
            if m.kind != AccessKind::Write {
                continue;
            }
            let (Some(addr), Some(val)) = (m.addr.value(), m.value.value()) else {
                continue;
            };
            let (Some(a), Some(v)) = (addr.affine(), val.affine()) else {
                continue;
            };
            let fixed_word = a.lane == 0 && a.warp == 0 && a.block == 0;
            if !fixed_word || v.lane != 0 {
                continue;
            }
            let cross_block = m.space == Space::Global
                && v.warp == 0
                && v.block != 0
                && m.agents.block.lo != m.agents.block.hi;
            let cross_warp_one_epoch = v.block == 0
                && v.warp != 0
                && m.agents.block.lo == m.agents.block.hi
                && m.agents.warp.lo != m.agents.warp.hi
                && m.agents.epoch.lo == m.agents.epoch.hi;
            if cross_block || cross_warp_one_epoch {
                let id = WarpId {
                    block: m.who.0,
                    warp_in_block: m.who.1,
                    warps_per_block: 1,
                    num_blocks: 1,
                };
                found.push((
                    FindKind::DefiniteRace,
                    id,
                    m.op,
                    loc,
                    None,
                    format!(
                        "unordered agents provably store different values to word {}: value = \
                         {} (exact affine form over all observed {})",
                        a.c0,
                        format_affine(v),
                        if cross_block { "blocks" } else { "warps" }
                    ),
                ));
            }
        }

        // May-races: conflicting kinds, overlapping footprint hulls, and an
        // agent pair the epoch ordering cannot exclude.
        for i in 0..sites.len() {
            for j in i..sites.len() {
                let (la, a) = sites[i];
                let (lb, b) = sites[j];
                if a.space != b.space || !a.kind.conflicts(b.kind) {
                    continue;
                }
                if a.addr.is_empty() || b.addr.is_empty() {
                    continue;
                }
                if !a.addr.hull.intersects(b.addr.hull) {
                    continue;
                }
                if !a.agents.may_conflict(&b.agents, a.space) {
                    continue;
                }
                let id = WarpId {
                    block: a.who.0,
                    warp_in_block: a.who.1,
                    warps_per_block: 1,
                    num_blocks: 1,
                };
                found.push((
                    FindKind::MayRace,
                    id,
                    a.op,
                    la,
                    Some(lb),
                    format!(
                        "{} {} footprint [{}, {}] may overlap {} {} footprint [{}, {}] from \
                         unordered agents",
                        a.space.label(),
                        a.kind.label(),
                        a.addr.hull.lo,
                        a.addr.hull.hi,
                        b.space.label(),
                        b.kind.label(),
                        b.addr.hull.lo,
                        b.addr.hull.hi,
                    ),
                ));
            }
        }

        for (kind, id, op, site, other, msg) in found {
            self.hit(kind, id, op, site, other, msg);
        }
    }

    fn pass_coalescing(&mut self) {
        let mut sites: Vec<(Site, &MemSite, CoalAcc)> = self
            .mem_sites
            .iter()
            .filter_map(|(s, m)| m.coalesce.map(|c| (*s, m, c)))
            .collect();
        sites.sort_by_key(|(s, _, _)| (s.file(), s.line(), s.column()));
        let mut found = Vec::new();
        for (loc, m, c) in sites {
            if c.ops < COALESCE_MIN_OPS || c.actual == 0 {
                continue;
            }
            let efficiency = c.ideal as f64 / c.actual as f64;
            if efficiency < 0.25 {
                let id = WarpId {
                    block: m.who.0,
                    warp_in_block: m.who.1,
                    warps_per_block: 1,
                    num_blocks: 1,
                };
                found.push((
                    id,
                    m.op,
                    loc,
                    format!(
                        "coalescing efficiency {:.0}% over {} ops ({} transactions issued, {} \
                         ideal)",
                        efficiency * 100.0,
                        c.ops,
                        c.actual,
                        c.ideal
                    ),
                ));
            }
        }
        for (id, op, site, msg) in found {
            self.hit(FindKind::Coalescing, id, op, site, None, msg);
        }
    }

    fn pass_redundant_ballots(&mut self) {
        let mut sites: Vec<(Site, &CollSite)> =
            self.coll_sites.iter().map(|(s, c)| (*s, c)).collect();
        sites.sort_by_key(|(s, _)| (s.file(), s.line(), s.column()));
        let mut found = Vec::new();
        for (loc, c) in sites {
            if c.obs < BALLOT_MIN_OPS {
                continue;
            }
            let verdict = if c.uniform_true == c.obs {
                Some("true")
            } else if c.uniform_false == c.obs {
                Some("false")
            } else {
                None
            };
            if let Some(v) = verdict {
                let id = WarpId {
                    block: c.who.0,
                    warp_in_block: c.who.1,
                    warps_per_block: 1,
                    num_blocks: 1,
                };
                found.push((
                    id,
                    c.op,
                    loc,
                    format!(
                        "predicate uniformly {v} over all {} observations — the guarded branch \
                         is uniform and the `{}` is redundant",
                        c.obs, c.op
                    ),
                ));
            }
        }
        for (id, op, site, msg) in found {
            self.hit(FindKind::RedundantBallot, id, op, site, None, msg);
        }
    }

    fn merge_summaries(&mut self) {
        for (site, m) in self.mem_sites.drain() {
            let s = self.summary.entry(site).or_insert_with(|| SiteSummary {
                op: m.op,
                kind: m.kind,
                space: m.space,
                site,
                addr: AbsJoin::default(),
                lane_span: None,
                obs: 0,
                segment_words: m.segment_words,
            });
            s.obs += m.obs;
            // Join launches by re-observing the per-launch joined form; an
            // inconsistency across launches demotes to the union hull.
            match m.addr.value() {
                Some(AbsVal::Affine(_)) if s.addr.is_empty() => s.addr = m.addr,
                Some(_) => {
                    let prev = s.addr;
                    let widened = prev.hull.lo > m.addr.hull.lo
                        || prev.hull.hi < m.addr.hull.hi
                        || prev.value() != m.addr.value();
                    if widened && (s.addr.is_empty() || prev.value() != m.addr.value()) {
                        // Different forms between launches: keep the hull.
                        let mut j = AbsJoin::default();
                        j.observe(None, prev.hull.join(m.addr.hull), 0, 0);
                        if s.addr.is_empty() {
                            j = m.addr;
                        }
                        s.addr = j;
                    }
                }
                None => {}
            }
            s.lane_span = match (s.lane_span, m.lane_span) {
                (None, sp) | (sp, None) => sp,
                (Some((a, b)), Some((c, d))) => Some((a.min(c), b.max(d))),
            };
        }
    }

    // ---- recording ----------------------------------------------------------

    #[allow(clippy::too_many_arguments)]
    fn hit(
        &mut self,
        kind: FindKind,
        id: WarpId,
        op: &'static str,
        site: Site,
        other_site: Option<Site>,
        message: String,
    ) {
        let severity = kind.severity();
        match severity {
            Severity::Error => self.errors += 1,
            Severity::Warning => self.warnings += 1,
        }
        crate::obs::analyzer_finding(severity);
        if let Some(&i) = self.index.get(&(kind, site, other_site)) {
            self.findings[i].count += 1;
            return;
        }
        if self.findings.len() >= MAX_FINDINGS {
            self.suppressed += 1;
            return;
        }
        self.index
            .insert((kind, site, other_site), self.findings.len());
        self.findings.push(Finding {
            severity,
            kind,
            kernel: self.context.clone(),
            launch: self.launch,
            block: id.block,
            warp: id.warp_in_block,
            op,
            site,
            other_site,
            message,
            count: 1,
        });
    }
}

fn hull_of(points: &[(usize, i64)]) -> Interval {
    let mut it = points.iter();
    let first = it.next().map(|&(_, v)| v).unwrap_or(0);
    let mut h = Interval::point(first);
    for &(_, v) in it {
        h = h.include(v);
    }
    h
}

fn format_affine(a: SiteAffine) -> String {
    let mut s = format!("{}", a.c0);
    for (c, name) in [(a.lane, "lane"), (a.warp, "warp"), (a.block, "block")] {
        if c != 0 {
            s.push_str(&format!(" + {c}·{name}"));
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(block: u32, warp: u32) -> WarpId {
        WarpId {
            block,
            warp_in_block: warp,
            warps_per_block: 4,
            num_blocks: 4,
        }
    }

    #[track_caller]
    fn site() -> Site {
        Location::caller()
    }

    fn obs<'a>(
        who: WarpId,
        epoch: u32,
        kind: AccessKind,
        space: Space,
        loc: Site,
        addrs: &'a [(usize, i64)],
        values: Option<&'a [(usize, i64)]>,
    ) -> MemObs<'a> {
        MemObs {
            id: who,
            epoch,
            kind,
            space,
            op: "test",
            site: loc,
            addrs,
            values,
            lane_span: addrs
                .iter()
                .map(|&(l, _)| (l, l))
                .reduce(|(a, b), (c, d)| (a.min(c), b.max(d))),
            invalid: 0,
            coalesce: None,
            segment_words: 32,
            bank_cost: 1,
        }
    }

    #[test]
    fn definite_race_from_block_varying_values_at_fixed_word() {
        let mut a = Analyzer::new();
        a.begin_launch();
        let loc = site();
        for b in 0..4u32 {
            let addrs = [(0usize, 100i64)];
            let vals = [(0usize, b as i64)];
            a.mem_access(obs(
                id(b, 0),
                0,
                AccessKind::Write,
                Space::Global,
                loc,
                &addrs,
                Some(&vals),
            ));
        }
        a.finish_launch();
        assert!(a.has_errors());
        assert!(a
            .findings()
            .iter()
            .any(|f| f.kind == FindKind::DefiniteRace && f.site == loc));
    }

    #[test]
    fn same_value_splat_is_not_definite() {
        let mut a = Analyzer::new();
        a.begin_launch();
        let loc = site();
        for b in 0..4u32 {
            let addrs = [(0usize, 100i64)];
            let vals = [(0usize, 7i64)];
            a.mem_access(obs(
                id(b, 0),
                0,
                AccessKind::Write,
                Space::Global,
                loc,
                &addrs,
                Some(&vals),
            ));
        }
        a.finish_launch();
        assert!(!a.has_errors());
        // Still a may-race warning: unordered same-word writes.
        assert!(a.findings().iter().any(|f| f.kind == FindKind::MayRace));
    }

    #[test]
    fn disjoint_footprints_do_not_race() {
        let mut a = Analyzer::new();
        a.begin_launch();
        let loc = site();
        for b in 0..4u32 {
            let base = 32 * b as i64;
            let addrs: Vec<(usize, i64)> = (0..32).map(|l| (l, base + l as i64)).collect();
            let vals: Vec<(usize, i64)> = (0..32).map(|l| (l, 1i64)).collect();
            // Same site, per-block disjoint slices… hulls overlap? No:
            // block 0 covers [0,31], block 1 [32,63]… but the SITE hull is
            // the union, and the self-pair check sees one site whose hull
            // self-intersects. The affine form is exact though, and agents
            // write the same value → not definite. The may-race self-pair
            // does fire (the hull over-approximates) — that is the designed
            // warning behaviour for a single site spanning agents.
            a.mem_access(obs(
                id(b, 0),
                0,
                AccessKind::Write,
                Space::Global,
                loc,
                &addrs,
                Some(&vals),
            ));
        }
        a.finish_launch();
        assert!(!a.has_errors());
    }

    #[test]
    fn shared_uninit_read_is_error_and_write_validates() {
        let mut a = Analyzer::new();
        a.begin_launch();
        let w = site();
        let r = site();
        let addrs = [(0usize, 5i64)];
        let vals = [(0usize, 1i64)];
        // Read before any write: definite uninit.
        a.mem_access(obs(
            id(0, 0),
            0,
            AccessKind::Read,
            Space::Shared,
            r,
            &addrs,
            None,
        ));
        assert!(a.has_errors());
        assert_eq!(a.findings()[0].kind, FindKind::UninitShared);
        // After a write, reads of the same word in the same block are fine.
        let before = a.error_count();
        a.mem_access(obs(
            id(1, 0),
            0,
            AccessKind::Write,
            Space::Shared,
            w,
            &addrs,
            Some(&vals),
        ));
        a.mem_access(obs(
            id(1, 0),
            0,
            AccessKind::Read,
            Space::Shared,
            r,
            &addrs,
            None,
        ));
        assert_eq!(a.error_count(), before);
        // …but another block's shared memory is separate.
        a.mem_access(obs(
            id(2, 0),
            0,
            AccessKind::Read,
            Space::Shared,
            r,
            &addrs,
            None,
        ));
        assert!(a.error_count() > before);
    }

    #[test]
    fn shared_race_same_block_cross_warp_is_may_race() {
        let mut a = Analyzer::new();
        a.begin_launch();
        let loc = site();
        let addrs = [(0usize, 3i64)];
        let vals = [(0usize, 1i64)];
        a.mem_access(obs(
            id(0, 0),
            0,
            AccessKind::Write,
            Space::Shared,
            loc,
            &addrs,
            Some(&vals),
        ));
        a.mem_access(obs(
            id(0, 1),
            0,
            AccessKind::Write,
            Space::Shared,
            loc,
            &addrs,
            Some(&vals),
        ));
        a.finish_launch();
        assert!(a.findings().iter().any(|f| f.kind == FindKind::MayRace));
    }

    #[test]
    fn barrier_ordering_suppresses_shared_may_race() {
        let mut a = Analyzer::new();
        a.begin_launch();
        let w = site();
        let r = site();
        let addrs = [(0usize, 3i64)];
        let vals = [(0usize, 1i64)];
        a.mem_access(obs(
            id(0, 0),
            0,
            AccessKind::Write,
            Space::Shared,
            w,
            &addrs,
            Some(&vals),
        ));
        // Read by another warp in the NEXT epoch: ordered by the barrier.
        a.mem_access(obs(
            id(0, 1),
            1,
            AccessKind::Read,
            Space::Shared,
            r,
            &addrs,
            None,
        ));
        a.finish_launch();
        assert!(
            !a.findings().iter().any(|f| f.kind == FindKind::MayRace),
            "{}",
            a.report()
        );
    }

    #[test]
    fn warp_private_shared_never_races() {
        // Warp-task launches: block == task, every warp index 0 — shared
        // scratch is warp-private.
        let mut a = Analyzer::new();
        a.begin_launch();
        let loc = site();
        let vals = [(0usize, 9i64)];
        for t in 0..8u32 {
            let addrs = [(0usize, 3i64)];
            a.mem_access(obs(
                id(t, 0),
                0,
                AccessKind::Write,
                Space::Shared,
                loc,
                &addrs,
                Some(&vals),
            ));
        }
        a.finish_launch();
        assert!(!a.findings().iter().any(|f| f.kind == FindKind::MayRace));
    }

    #[test]
    fn coalescing_lint_matches_sanitizer_accounting() {
        let mut a = Analyzer::new();
        a.begin_launch();
        let loc = site();
        for _ in 0..10 {
            let addrs: Vec<(usize, i64)> = (0..32).map(|l| (l, (l * 32) as i64)).collect();
            let mut o = obs(
                id(0, 0),
                0,
                AccessKind::Read,
                Space::Global,
                loc,
                &addrs,
                None,
            );
            o.coalesce = Some((32, 32));
            a.mem_access(o);
        }
        a.finish_launch();
        let f = a
            .findings()
            .iter()
            .find(|f| f.kind == FindKind::Coalescing)
            .expect("lint must fire");
        assert_eq!(f.severity, Severity::Warning);
        assert!(f.message.contains("3%"), "{}", f.message);
    }

    #[test]
    fn broadcast_site_is_not_a_coalescing_finding() {
        let mut a = Analyzer::new();
        a.begin_launch();
        let loc = site();
        for _ in 0..10 {
            let addrs: Vec<(usize, i64)> = (0..32).map(|l| (l, 4096i64)).collect();
            let mut o = obs(
                id(0, 0),
                0,
                AccessKind::Read,
                Space::Global,
                loc,
                &addrs,
                None,
            );
            o.coalesce = Some((1, 1));
            a.mem_access(o);
        }
        a.finish_launch();
        assert!(!a.findings().iter().any(|f| f.kind == FindKind::Coalescing));
    }

    #[test]
    fn redundant_ballot_needs_uniformity_over_all_obs() {
        let mut a = Analyzer::new();
        a.begin_launch();
        let uniform = site();
        let mixed = site();
        for _ in 0..10 {
            a.collective(id(0, 0), "ballot", uniform, 32, 32);
            a.collective(id(0, 0), "ballot", mixed, 32, 7);
        }
        a.finish_launch();
        let kinds: Vec<(FindKind, Site)> = a.findings().iter().map(|f| (f.kind, f.site)).collect();
        assert!(kinds.contains(&(FindKind::RedundantBallot, uniform)));
        assert!(!kinds.contains(&(FindKind::RedundantBallot, mixed)));
    }

    #[test]
    fn findings_deduplicate_and_count() {
        let mut a = Analyzer::new();
        a.set_context("fixture");
        a.begin_launch();
        let loc = site();
        a.empty_collective(id(0, 0), "ballot", loc);
        a.empty_collective(id(1, 2), "ballot", loc);
        assert_eq!(a.findings().len(), 1);
        assert_eq!(a.findings()[0].count, 2);
        assert_eq!(a.warning_count(), 2);
        let r = a.report();
        assert!(r.contains("empty-mask-collective"));
        assert!(r.contains("kernel `fixture`"));
    }

    #[test]
    fn barrier_divergence_detected_from_divergent_sequences() {
        let mut a = Analyzer::new();
        a.begin_launch();
        let s1 = site();
        let s2 = site();
        // Warps of block 0 disagree on the barrier sequence (synthesized:
        // the public BlockCtx API cannot produce this, the pass still
        // guards against it).
        a.barriers.insert(0, vec![vec![s1, s2], vec![s1]]);
        a.finish_launch();
        assert!(a.has_errors());
        assert_eq!(a.findings()[0].kind, FindKind::BarrierDivergence);
    }

    #[test]
    fn site_summaries_expose_joined_affine_forms() {
        let mut a = Analyzer::new();
        a.begin_launch();
        let loc = site();
        for w in 0..4u32 {
            // Segment-aligned base so the warp's 32 words fill one segment.
            let base = 1024 + 32 * w as i64;
            let addrs: Vec<(usize, i64)> = (0..32).map(|l| (l, base + l as i64)).collect();
            a.mem_access(obs(
                id(0, w),
                0,
                AccessKind::Read,
                Space::Global,
                loc,
                &addrs,
                None,
            ));
        }
        a.finish_launch();
        let sites = a.site_summaries();
        assert_eq!(sites.len(), 1);
        let s = sites[0];
        let AbsVal::Affine(f) = s.addr.value().unwrap() else {
            panic!("expected affine summary");
        };
        assert_eq!((f.c0, f.lane, f.warp, f.block), (1024, 1, 32, 0));
        // Unit-stride over 32 lanes in 32-word segments: one transaction.
        assert_eq!(s.predicted_tx(), Some(1));
    }
}
