//! Abstract domains for the static kernel analyzer.
//!
//! The analyzer observes each instrumented warp operation once per concrete
//! execution and *abstracts* the 32 lane values into two domains:
//!
//! * **Lane-affine forms** — `v(lane) = base + stride·lane` fitted exactly
//!   over the active lanes of one observation. Graph kernels are dominated
//!   by such patterns (`tid = warp·32 + lane`, CSR offsets, strided
//!   scratch).
//! * **Intervals** — the `[lo, hi]` hull of observed values, the fallback
//!   when no affine form fits (data-dependent gather addresses).
//!
//! Observations of the same call site from different warps and blocks are
//! *joined*: if every observation fits the same lane stride and the bases
//! themselves are affine in the warp/block coordinates, the site is
//! summarized by a [`SiteAffine`] `c0 + c_lane·lane + c_warp·warp +
//! c_block·block` — an exact closed form for everything the launch executed,
//! from which the pass pipeline proves footprint disjointness, predicts
//! coalescing, and separates *definite* hazards from *may* hazards. Any
//! observation that breaks the form demotes the site to its interval hull,
//! which is still a sound over-approximation of the executed accesses.

/// A closed integer interval `[lo, hi]`. The hull of observed values.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interval {
    pub lo: i64,
    pub hi: i64,
}

impl Interval {
    /// Degenerate interval holding a single point.
    pub fn point(v: i64) -> Interval {
        Interval { lo: v, hi: v }
    }

    /// Smallest interval containing both operands.
    pub fn join(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Widen to include `v`.
    pub fn include(self, v: i64) -> Interval {
        Interval {
            lo: self.lo.min(v),
            hi: self.hi.max(v),
        }
    }

    /// True if `v` lies inside.
    pub fn contains(self, v: i64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// True if the two intervals share at least one point.
    pub fn intersects(self, other: Interval) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }

    /// Number of integers covered.
    pub fn width(self) -> u64 {
        (self.hi - self.lo) as u64 + 1
    }
}

/// One observation's exact lane-affine fit: `v(lane) = base + stride·lane`
/// over the active lanes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LaneAffine {
    pub base: i64,
    pub stride: i64,
}

impl LaneAffine {
    /// Fit `base + stride·lane` exactly through the `(lane, value)` pairs.
    /// Returns `None` when no single affine form matches every pair, or when
    /// the set is empty. A single active lane fits with stride 0.
    pub fn fit(points: impl IntoIterator<Item = (usize, i64)>) -> Option<LaneAffine> {
        let mut it = points.into_iter();
        let (l0, v0) = it.next()?;
        let mut stride: Option<i64> = None;
        for (l, v) in it {
            let dl = l as i64 - l0 as i64;
            let dv = v - v0;
            if dl == 0 {
                if dv != 0 {
                    return None;
                }
                continue;
            }
            if dv % dl != 0 {
                return None;
            }
            let s = dv / dl;
            match stride {
                None => stride = Some(s),
                Some(prev) if prev != s => return None,
                Some(_) => {}
            }
        }
        let stride = stride.unwrap_or(0);
        Some(LaneAffine {
            base: v0 - stride * l0 as i64,
            stride,
        })
    }

    /// Value at `lane`.
    pub fn at(self, lane: usize) -> i64 {
        self.base + self.stride * lane as i64
    }
}

/// A site's joined affine summary: `v = c0 + lane·l + warp·w + block·b`,
/// exact for every observation folded into it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SiteAffine {
    pub c0: i64,
    pub lane: i64,
    pub warp: i64,
    pub block: i64,
}

impl SiteAffine {
    /// True if the per-agent footprint is identical for every warp and block
    /// (the value does not depend on who executes it).
    pub fn agent_invariant(&self) -> bool {
        self.warp == 0 && self.block == 0
    }

    /// True if the value provably differs between at least two observed
    /// agents at the same lane position.
    pub fn agent_varying(&self) -> bool {
        self.warp != 0 || self.block != 0
    }
}

/// Joined abstract value of one site dimension (address or stored value).
///
/// `Affine` is exact for everything observed; `Range` is the interval hull
/// fallback. Both carry the hull so bounds queries never lose precision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AbsVal {
    Affine(SiteAffine),
    Range(Interval),
}

impl AbsVal {
    /// The interval hull is tracked separately in [`AbsJoin`]; this helper
    /// answers "is the form still exact".
    pub fn affine(&self) -> Option<SiteAffine> {
        match self {
            AbsVal::Affine(a) => Some(*a),
            AbsVal::Range(_) => None,
        }
    }
}

/// Incremental join of per-observation affine fits into an [`AbsVal`].
///
/// Coefficients for the warp and block dimensions are solved lazily from the
/// first observations that vary in exactly one coordinate; an observation
/// that contradicts the solved form demotes the join to the interval hull.
#[derive(Clone, Copy, Debug)]
pub struct AbsJoin {
    state: JoinState,
    /// Hull of all observed values, maintained regardless of state.
    pub hull: Interval,
}

#[derive(Clone, Copy, Debug)]
enum JoinState {
    Empty,
    /// Still affine: anchor observation plus (possibly unsolved)
    /// warp/block coefficients.
    Affine {
        stride: i64,
        anchor_base: i64,
        anchor_warp: i64,
        anchor_block: i64,
        c_warp: Option<i64>,
        c_block: Option<i64>,
    },
    /// Demoted: only the hull is maintained.
    Hull,
}

impl Default for AbsJoin {
    fn default() -> Self {
        AbsJoin {
            state: JoinState::Empty,
            hull: Interval {
                lo: i64::MAX,
                hi: i64::MIN,
            },
        }
    }
}

impl AbsJoin {
    /// True if no observation has been folded in yet.
    pub fn is_empty(&self) -> bool {
        matches!(self.state, JoinState::Empty)
    }

    /// Fold one observation: the exact lane fit (`None` if the observation
    /// itself was not affine), its value hull, and the observing agent.
    pub fn observe(&mut self, fit: Option<LaneAffine>, obs_hull: Interval, warp: u32, block: u32) {
        self.hull = if matches!(self.state, JoinState::Empty) {
            obs_hull
        } else {
            self.hull.join(obs_hull)
        };
        let Some(fit) = fit else {
            self.state = JoinState::Hull;
            return;
        };
        match self.state {
            JoinState::Empty => {
                self.state = JoinState::Affine {
                    stride: fit.stride,
                    anchor_base: fit.base,
                    anchor_warp: warp as i64,
                    anchor_block: block as i64,
                    c_warp: None,
                    c_block: None,
                };
            }
            JoinState::Affine {
                stride,
                anchor_base,
                anchor_warp,
                anchor_block,
                mut c_warp,
                mut c_block,
            } => {
                // A single-lane observation fits with stride 0, which is
                // ambiguous against a strided site: we no longer know which
                // lane produced it, so the form cannot absorb it exactly.
                // Demoting to the hull is the sound resolution.
                if fit.stride != stride {
                    self.state = JoinState::Hull;
                    return;
                }
                let dw = warp as i64 - anchor_warp;
                let db = block as i64 - anchor_block;
                let base = fit.base;
                let delta = base - anchor_base;
                let expect = c_warp.unwrap_or(0) * dw + c_block.unwrap_or(0) * db;
                if delta == expect {
                    // Consistent with current coefficients.
                } else if dw != 0 && db == 0 && c_warp.is_none() && delta % dw == 0 {
                    c_warp = Some(delta / dw);
                } else if db != 0 && dw == 0 && c_block.is_none() && delta % db == 0 {
                    c_block = Some(delta / db);
                } else if dw != 0
                    && db != 0
                    && c_warp.is_none()
                    && c_block.is_none()
                    && delta % db == 0
                    && dw == db
                {
                    // Warp and block moved together (e.g. warp-task launches
                    // where block == task and warp == 0): attribute to block.
                    c_block = Some(delta / db);
                } else {
                    self.state = JoinState::Hull;
                    return;
                }
                self.state = JoinState::Affine {
                    stride,
                    anchor_base,
                    anchor_warp,
                    anchor_block,
                    c_warp,
                    c_block,
                };
            }
            JoinState::Hull => {}
        }
    }

    /// The joined abstract value, or `None` before any observation.
    pub fn value(&self) -> Option<AbsVal> {
        match self.state {
            JoinState::Empty => None,
            JoinState::Affine {
                stride,
                anchor_base,
                anchor_warp,
                anchor_block,
                c_warp,
                c_block,
            } => {
                let cw = c_warp.unwrap_or(0);
                let cb = c_block.unwrap_or(0);
                Some(AbsVal::Affine(SiteAffine {
                    c0: anchor_base - cw * anchor_warp - cb * anchor_block,
                    lane: stride,
                    warp: cw,
                    block: cb,
                }))
            }
            JoinState::Hull => Some(AbsVal::Range(self.hull)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_algebra() {
        let a = Interval { lo: 2, hi: 5 };
        let b = Interval { lo: 4, hi: 9 };
        assert_eq!(a.join(b), Interval { lo: 2, hi: 9 });
        assert!(a.intersects(b));
        assert!(!a.intersects(Interval { lo: 6, hi: 7 }));
        assert!(a.contains(5));
        assert!(!a.contains(6));
        assert_eq!(a.width(), 4);
        assert_eq!(Interval::point(3).include(7), Interval { lo: 3, hi: 7 });
    }

    #[test]
    fn lane_affine_fit_exact() {
        let f = LaneAffine::fit((0..32).map(|l| (l, 100 + 3 * l as i64))).unwrap();
        assert_eq!(
            f,
            LaneAffine {
                base: 100,
                stride: 3
            }
        );
        assert_eq!(f.at(7), 121);
    }

    #[test]
    fn lane_affine_fit_partial_mask() {
        // Only odd lanes active, still affine in the lane index.
        let f = LaneAffine::fit(
            (0..32)
                .filter(|l| l % 2 == 1)
                .map(|l| (l, 8 + 2 * l as i64)),
        )
        .unwrap();
        assert_eq!(f, LaneAffine { base: 8, stride: 2 });
    }

    #[test]
    fn lane_affine_fit_rejects_nonlinear() {
        assert!(LaneAffine::fit((0..32).map(|l| (l, (l * l) as i64))).is_none());
        assert!(LaneAffine::fit(std::iter::empty()).is_none());
    }

    #[test]
    fn lane_affine_single_lane_is_constant() {
        let f = LaneAffine::fit([(5usize, 42i64)]).unwrap();
        assert_eq!(
            f,
            LaneAffine {
                base: 42,
                stride: 0
            }
        );
    }

    #[test]
    fn join_solves_warp_coefficient() {
        // addr = 1000 + 32*warp + lane, observed from warps 0..4 of block 0.
        let mut j = AbsJoin::default();
        for w in 0..4u32 {
            let base = 1000 + 32 * w as i64;
            j.observe(
                Some(LaneAffine { base, stride: 1 }),
                Interval {
                    lo: base,
                    hi: base + 31,
                },
                w,
                0,
            );
        }
        let AbsVal::Affine(a) = j.value().unwrap() else {
            panic!("expected affine");
        };
        assert_eq!(
            a,
            SiteAffine {
                c0: 1000,
                lane: 1,
                warp: 32,
                block: 0
            }
        );
        assert!(!a.agent_invariant());
        assert_eq!(
            j.hull,
            Interval {
                lo: 1000,
                hi: 1000 + 96 + 31
            }
        );
    }

    #[test]
    fn join_solves_block_coefficient_for_warp_tasks() {
        // st_uniform(out, 0, task): addr constant, value = task. Warp-task
        // launches use block == task, warp == 0.
        let mut addr = AbsJoin::default();
        let mut val = AbsJoin::default();
        for task in 0..8u32 {
            addr.observe(
                Some(LaneAffine { base: 0, stride: 0 }),
                Interval::point(0),
                0,
                task,
            );
            val.observe(
                Some(LaneAffine {
                    base: task as i64,
                    stride: 0,
                }),
                Interval::point(task as i64),
                0,
                task,
            );
        }
        let AbsVal::Affine(a) = addr.value().unwrap() else {
            panic!()
        };
        assert!(a.agent_invariant());
        let AbsVal::Affine(v) = val.value().unwrap() else {
            panic!()
        };
        assert_eq!(v.block, 1);
        assert!(v.agent_varying());
    }

    #[test]
    fn join_demotes_on_contradiction() {
        let mut j = AbsJoin::default();
        j.observe(
            Some(LaneAffine { base: 0, stride: 1 }),
            Interval { lo: 0, hi: 31 },
            0,
            0,
        );
        j.observe(
            Some(LaneAffine { base: 7, stride: 5 }),
            Interval { lo: 7, hi: 162 },
            1,
            0,
        );
        assert_eq!(
            j.value().unwrap(),
            AbsVal::Range(Interval { lo: 0, hi: 162 })
        );
    }

    #[test]
    fn join_demotes_on_nonaffine_observation() {
        let mut j = AbsJoin::default();
        j.observe(None, Interval { lo: 3, hi: 900 }, 0, 0);
        assert_eq!(
            j.value().unwrap(),
            AbsVal::Range(Interval { lo: 3, hi: 900 })
        );
        // Later affine observations cannot resurrect exactness.
        j.observe(
            Some(LaneAffine { base: 0, stride: 1 }),
            Interval { lo: 0, hi: 31 },
            1,
            0,
        );
        assert_eq!(
            j.value().unwrap(),
            AbsVal::Range(Interval { lo: 0, hi: 900 })
        );
    }

    #[test]
    fn join_constant_across_agents_stays_invariant() {
        let mut j = AbsJoin::default();
        for b in 0..3u32 {
            for w in 0..2u32 {
                j.observe(
                    Some(LaneAffine {
                        base: 64,
                        stride: 0,
                    }),
                    Interval::point(64),
                    w,
                    b,
                );
            }
        }
        let AbsVal::Affine(a) = j.value().unwrap() else {
            panic!()
        };
        assert_eq!(
            a,
            SiteAffine {
                c0: 64,
                lane: 0,
                warp: 0,
                block: 0
            }
        );
        assert!(a.agent_invariant());
    }
}
