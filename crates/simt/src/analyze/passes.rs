//! Pure analysis passes over the analyzer's abstract per-site summaries.
//!
//! Everything here is a function of abstract state only — no simulator
//! handles — so each pass is unit-testable with synthesized inputs,
//! including states the public kernel API cannot produce (e.g. divergent
//! barrier sequences, which [`crate::kernel::BlockCtx::barrier`] rules out
//! by construction but the analyzer still guards against).

use super::domain::SiteAffine;
use super::Site;

/// A barrier-convergence violation: `warp` diverges from `other_warp` at
/// barrier-sequence position `step`.
#[derive(Clone, Copy, Debug)]
pub struct Divergence {
    pub warp: usize,
    pub other_warp: usize,
    pub step: usize,
    pub site: Site,
    pub other_site: Option<Site>,
}

/// Check that every warp of a block reached the same sequence of barrier
/// sites. Returns the first divergence found, or `None` if the sequences
/// converge. An empty or single-warp input is trivially convergent.
pub fn check_barrier_convergence(seqs: &[&[Site]]) -> Option<Divergence> {
    let base = *seqs.first()?;
    for (w, s) in seqs.iter().enumerate().skip(1) {
        let n = base.len().min(s.len());
        for i in 0..n {
            if base[i] != s[i] {
                return Some(Divergence {
                    warp: w,
                    other_warp: 0,
                    step: i,
                    site: s[i],
                    other_site: Some(base[i]),
                });
            }
        }
        if base.len() != s.len() {
            // One warp executes extra barriers the other never reaches —
            // on hardware the block deadlocks.
            let site = if s.len() > n { s[n] } else { base[n] };
            return Some(Divergence {
                warp: w,
                other_warp: 0,
                step: n,
                site,
                other_site: None,
            });
        }
    }
    None
}

/// Predict the transactions per access of a site whose address is the exact
/// affine form `a`, materialized over the active-lane span for the anchor
/// agent `(warp, block)` and pushed through the simulator's own coalescing
/// model. Addresses are word indices; the model works in bytes.
pub fn predict_transactions(
    a: SiteAffine,
    span: (usize, usize),
    anchor: (i64, i64),
    segment_bytes: u32,
) -> u32 {
    let (warp, block) = anchor;
    let words = (span.0..=span.1).map(move |l| {
        let w = a.c0 + a.lane * l as i64 + a.warp * warp + a.block * block;
        w.max(0) as u64 * 4
    });
    crate::coalesce::transactions(words, segment_bytes)
}

/// Predict the bank serialization cost of a shared-memory site with exact
/// affine address form `a`, through the simulator's own bank model.
pub fn predict_bank_cost(a: SiteAffine, span: (usize, usize), anchor: (i64, i64)) -> u32 {
    let (warp, block) = anchor;
    let words = (span.0..=span.1).map(move |l| {
        let w = a.c0 + a.lane * l as i64 + a.warp * warp + a.block * block;
        w.max(0) as u32
    });
    crate::shared::bank_conflict_cost(words)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::Location;

    #[track_caller]
    fn site() -> Site {
        Location::caller()
    }

    #[test]
    fn convergent_sequences_pass() {
        let (a, b) = (site(), site());
        let w0 = [a, b];
        let w1 = [a, b];
        assert!(check_barrier_convergence(&[&w0, &w1]).is_none());
        assert!(check_barrier_convergence(&[]).is_none());
        assert!(check_barrier_convergence(&[&w0]).is_none());
    }

    #[test]
    fn divergent_site_detected() {
        let (a, b, c) = (site(), site(), site());
        let w0 = [a, b];
        let w1 = [a, c];
        let d = check_barrier_convergence(&[&w0, &w1]).expect("must diverge");
        assert_eq!((d.warp, d.other_warp, d.step), (1, 0, 1));
        assert_eq!(d.site, c);
        assert_eq!(d.other_site, Some(b));
    }

    #[test]
    fn missing_barrier_detected() {
        let (a, b) = (site(), site());
        let w0 = [a, b];
        let w1 = [a];
        let d = check_barrier_convergence(&[&w0, &w1]).expect("must diverge");
        assert_eq!(d.step, 1);
        assert_eq!(d.site, b);
        assert!(d.other_site.is_none());
        // Symmetric: the longer sequence may be the later warp's.
        let d2 = check_barrier_convergence(&[&w1, &w0]).expect("must diverge");
        assert_eq!(d2.site, b);
    }

    #[test]
    fn nested_divergence_found_at_first_mismatch() {
        let (a, b, c) = (site(), site(), site());
        let w0 = [a, b, c];
        let w1 = [a, c, b];
        let d = check_barrier_convergence(&[&w0, &w1]).expect("must diverge");
        assert_eq!(d.step, 1);
    }

    #[test]
    fn unit_stride_predicts_one_transaction() {
        // addr = 4096 + lane over a full warp, 128 B segments.
        let a = SiteAffine {
            c0: 4096,
            lane: 1,
            warp: 0,
            block: 0,
        };
        assert_eq!(predict_transactions(a, (0, 31), (0, 0), 128), 1);
    }

    #[test]
    fn segment_stride_predicts_per_lane_transactions() {
        // addr = 32·lane: each lane in its own 128 B segment.
        let a = SiteAffine {
            c0: 0,
            lane: 32,
            warp: 0,
            block: 0,
        };
        assert_eq!(predict_transactions(a, (0, 31), (0, 0), 128), 32);
        // A half-warp span costs half.
        assert_eq!(predict_transactions(a, (0, 15), (0, 0), 128), 16);
    }

    #[test]
    fn warp_coefficient_shifts_the_window() {
        // addr = 32·warp + lane: warp 3 accesses words 96..128 — still one
        // segment, regardless of the anchor chosen.
        let a = SiteAffine {
            c0: 0,
            lane: 1,
            warp: 32,
            block: 0,
        };
        assert_eq!(predict_transactions(a, (0, 31), (0, 0), 128), 1);
        assert_eq!(predict_transactions(a, (0, 31), (3, 0), 128), 1);
    }

    #[test]
    fn bank_cost_prediction_matches_model() {
        // Unit stride: one word per bank.
        let unit = SiteAffine {
            c0: 0,
            lane: 1,
            warp: 0,
            block: 0,
        };
        assert_eq!(predict_bank_cost(unit, (0, 31), (0, 0)), 1);
        // Stride 32: all lanes hit bank 0 with distinct words.
        let stride32 = SiteAffine {
            c0: 0,
            lane: 32,
            warp: 0,
            block: 0,
        };
        assert_eq!(predict_bank_cost(stride32, (0, 31), (0, 0)), 32);
        // Broadcast: distinct-word dedup makes it free.
        let bcast = SiteAffine {
            c0: 7,
            lane: 0,
            warp: 0,
            block: 0,
        };
        assert_eq!(predict_bank_cost(bcast, (0, 31), (0, 0)), 1);
        // Stride 2: pairs of lanes share banks.
        let stride2 = SiteAffine {
            c0: 0,
            lane: 2,
            warp: 0,
            block: 0,
        };
        assert_eq!(predict_bank_cost(stride2, (0, 31), (0, 0)), 2);
    }
}
