//! Machine-readable JSON report for the static analyzer.
//!
//! The workspace deliberately carries no JSON dependency, so the report is
//! rendered by hand, mirroring the approach of the profiler's trace export.
//! The schema is consumed by the CI `analyze` job and archived as a build
//! artifact.

use super::{AbsVal, Analyzer, Severity};
use std::fmt::Write;

fn esc(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Analyzer {
    /// Render the full report — summary counts, deduplicated findings, and
    /// per-site abstract summaries — as a JSON document.
    pub fn to_json(&self) -> String {
        let mut o = String::with_capacity(4096);
        o.push_str("{\n  \"tool\": \"maxwarp-analyze\",\n");
        let _ = write!(
            o,
            "  \"errors\": {},\n  \"warnings\": {},\n  \"distinct_findings\": {},\n  \
             \"suppressed\": {},\n",
            self.error_count(),
            self.warning_count(),
            self.findings().len(),
            self.suppressed,
        );

        o.push_str("  \"findings\": [");
        let mut ordered: Vec<&super::Finding> = self.findings().iter().collect();
        ordered.sort_by_key(|d| std::cmp::Reverse(d.severity));
        for (i, f) in ordered.iter().enumerate() {
            o.push_str(if i == 0 { "\n" } else { ",\n" });
            o.push_str("    {\"severity\": ");
            esc(
                match f.severity {
                    Severity::Error => "error",
                    Severity::Warning => "warning",
                },
                &mut o,
            );
            o.push_str(", \"kind\": ");
            esc(f.kind.label(), &mut o);
            o.push_str(", \"kernel\": ");
            esc(&f.kernel, &mut o);
            let _ = write!(
                o,
                ", \"launch\": {}, \"block\": {}, \"warp\": {}, \"op\": ",
                f.launch, f.block, f.warp
            );
            esc(f.op, &mut o);
            o.push_str(", \"site\": ");
            esc(&f.site.to_string(), &mut o);
            o.push_str(", \"other_site\": ");
            match f.other_site {
                Some(s) => esc(&s.to_string(), &mut o),
                None => o.push_str("null"),
            }
            o.push_str(", \"message\": ");
            esc(&f.message, &mut o);
            let _ = write!(o, ", \"count\": {}}}", f.count);
        }
        o.push_str("\n  ],\n");

        o.push_str("  \"sites\": [");
        for (i, s) in self.site_summaries().iter().enumerate() {
            o.push_str(if i == 0 { "\n" } else { ",\n" });
            o.push_str("    {\"op\": ");
            esc(s.op, &mut o);
            o.push_str(", \"kind\": ");
            esc(s.kind.label(), &mut o);
            o.push_str(", \"space\": ");
            esc(s.space.label(), &mut o);
            o.push_str(", \"site\": ");
            esc(&s.site.to_string(), &mut o);
            let _ = write!(o, ", \"obs\": {}, \"addr\": ", s.obs);
            match s.addr.value() {
                Some(AbsVal::Affine(a)) => {
                    let _ = write!(
                        o,
                        "{{\"form\": \"affine\", \"c0\": {}, \"lane\": {}, \"warp\": {}, \
                         \"block\": {}, \"hull\": [{}, {}]}}",
                        a.c0, a.lane, a.warp, a.block, s.addr.hull.lo, s.addr.hull.hi
                    );
                }
                Some(AbsVal::Range(h)) => {
                    let _ = write!(o, "{{\"form\": \"hull\", \"hull\": [{}, {}]}}", h.lo, h.hi);
                }
                None => o.push_str("null"),
            }
            o.push_str(", \"predicted_tx\": ");
            match s.predicted_tx() {
                Some(t) => {
                    let _ = write!(o, "{t}");
                }
                None => o.push_str("null"),
            }
            o.push_str(", \"predicted_bank_cost\": ");
            match s.predicted_bank_cost() {
                Some(c) => {
                    let _ = write!(o, "{c}");
                }
                None => o.push_str("null"),
            }
            o.push('}');
        }
        o.push_str("\n  ]\n}\n");
        o
    }
}

#[cfg(test)]
mod tests {
    use super::super::*;
    use crate::warp::WarpId;

    #[test]
    fn escaping_is_safe() {
        let mut out = String::new();
        super::esc("a\"b\\c\nd\u{1}", &mut out);
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn json_report_structure() {
        let mut a = Analyzer::new();
        a.set_context("bfs/rmat [warp]");
        a.begin_launch();
        let id = WarpId {
            block: 0,
            warp_in_block: 1,
            warps_per_block: 4,
            num_blocks: 2,
        };
        a.empty_collective(id, "ballot", std::panic::Location::caller());
        let addrs: Vec<(usize, i64)> = (0..32).map(|l| (l, 64 + l as i64)).collect();
        a.mem_access(MemObs {
            id,
            epoch: 0,
            kind: AccessKind::Read,
            space: Space::Global,
            op: "ld",
            site: std::panic::Location::caller(),
            addrs: &addrs,
            values: None,
            lane_span: Some((0, 31)),
            invalid: 0,
            coalesce: None,
            segment_words: 32,
            bank_cost: 1,
        });
        a.finish_launch();
        let j = a.to_json();
        assert!(j.contains("\"tool\": \"maxwarp-analyze\""));
        assert!(j.contains("\"kind\": \"empty-mask-collective\""));
        assert!(j.contains("\"kernel\": \"bfs/rmat [warp]\""));
        assert!(j.contains("\"form\": \"affine\""));
        assert!(j.contains("\"predicted_tx\": 1"));
        // Balanced braces/brackets as a cheap well-formedness check.
        let balance = |open: char, close: char| {
            j.chars().filter(|&c| c == open).count() == j.chars().filter(|&c| c == close).count()
        };
        assert!(balance('{', '}'));
        assert!(balance('[', ']'));
    }
}
