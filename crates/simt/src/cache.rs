//! Read-only cache model (texture / L2).
//!
//! Paper-era CUDA graph kernels bound the CSR arrays to *texture memory*
//! to route scattered reads through a cache; Fermi added a real L2. This
//! module models a device-wide set-associative read-only cache with LRU
//! replacement at coalescing-segment granularity. Kernels opt in per load
//! via [`WarpCtx::ld_cached`](crate::warp::WarpCtx::ld_cached); hits skip
//! the DRAM channel and pay `l2_hit_latency` instead of `mem_latency`.
//!
//! The cache is cold at each kernel launch and is probed in functional
//! execution order — a deterministic approximation of the parallel
//! interleaving (documented in DESIGN.md).

/// A set-associative read-only cache over 128-byte segments.
#[derive(Clone, Debug)]
pub struct CacheModel {
    /// `sets[s][w]` = tag of way `w` (`u64::MAX` = invalid).
    sets: Vec<Vec<u64>>,
    /// LRU stamps parallel to `sets`.
    stamps: Vec<Vec<u64>>,
    clock: u64,
    ways: usize,
    /// Segment-granularity shift (log2 of segment bytes).
    seg_shift: u32,
    hits: u64,
    misses: u64,
}

impl CacheModel {
    /// Build a cache of `lines` total lines (rounded down to a power-of-two
    /// set count), `ways`-associative, for segments of `segment_bytes`.
    /// `lines = 0` produces a disabled cache where every probe misses.
    pub fn new(lines: u32, ways: u32, segment_bytes: u32) -> CacheModel {
        let ways = ways.max(1) as usize;
        let n_sets = if lines == 0 {
            0
        } else {
            ((lines as usize / ways).max(1)).next_power_of_two()
        };
        CacheModel {
            sets: vec![vec![u64::MAX; ways]; n_sets],
            stamps: vec![vec![0; ways]; n_sets],
            clock: 0,
            ways,
            seg_shift: segment_bytes.trailing_zeros(),
            hits: 0,
            misses: 0,
        }
    }

    /// True if the cache holds no lines (always misses).
    pub fn is_disabled(&self) -> bool {
        self.sets.is_empty()
    }

    /// Probe the segment containing `byte_addr`; inserts on miss. Returns
    /// true on hit.
    pub fn access(&mut self, byte_addr: u64) -> bool {
        if self.sets.is_empty() {
            self.misses += 1;
            return false;
        }
        let seg = byte_addr >> self.seg_shift;
        let set = (seg as usize) & (self.sets.len() - 1);
        self.clock += 1;
        let tags = &mut self.sets[set];
        let stamps = &mut self.stamps[set];
        for w in 0..self.ways {
            if tags[w] == seg {
                stamps[w] = self.clock;
                self.hits += 1;
                return true;
            }
        }
        // Miss: evict LRU way.
        let victim = (0..self.ways).min_by_key(|&w| stamps[w]).unwrap_or(0);
        tags[victim] = seg;
        stamps[victim] = self.clock;
        self.misses += 1;
        false
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate in `[0, 1]` (0 if never probed).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_cache_always_misses() {
        let mut c = CacheModel::new(0, 8, 128);
        assert!(c.is_disabled());
        assert!(!c.access(0));
        assert!(!c.access(0));
        assert_eq!(c.hit_rate(), 0.0);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn repeat_access_hits() {
        let mut c = CacheModel::new(64, 8, 128);
        assert!(!c.access(4096));
        assert!(c.access(4096));
        assert!(c.access(4096 + 64)); // same 128B segment
        assert!(!c.access(4096 + 128)); // next segment
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn lru_evicts_oldest() {
        // 1 set x 2 ways: segments A, B fill it; C evicts A.
        let mut c = CacheModel::new(2, 2, 128);
        assert_eq!(c.sets.len(), 1);
        assert!(!c.access(0)); // A
        assert!(!c.access(128)); // B
        assert!(c.access(0)); // A hit (refreshes A)
        assert!(!c.access(256)); // C evicts B (LRU)
        assert!(c.access(0)); // A still resident
        assert!(!c.access(128)); // B gone
    }

    #[test]
    fn working_set_behaviour() {
        // A working set that fits is all hits after warmup; one that
        // doesn't fit thrashes.
        let mut small = CacheModel::new(64, 8, 128);
        for _round in 0..4 {
            for seg in 0..32u64 {
                small.access(seg * 128);
            }
        }
        assert_eq!(small.misses(), 32, "fits: only cold misses");

        let mut thrash = CacheModel::new(16, 1, 128); // direct-mapped, 16 lines
        for _round in 0..4 {
            for seg in 0..32u64 {
                thrash.access(seg * 128);
            }
        }
        assert_eq!(
            thrash.hits(),
            0,
            "32-segment sweep over 16 direct-mapped lines"
        );
    }

    #[test]
    fn hit_rate_math() {
        let mut c = CacheModel::new(64, 8, 128);
        c.access(0);
        c.access(0);
        c.access(0);
        assert!((c.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }
}
