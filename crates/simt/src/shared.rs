//! Per-block shared memory with bank-conflict modeling.
//!
//! Shared memory is organized in 32 banks of 32-bit words. A warp access in
//! which two active lanes touch *different words in the same bank* is
//! serialized into replays; lanes reading the *same* word are broadcast for
//! free. The cost of an access is the maximum number of distinct words
//! mapped to any one bank.

use crate::lanes::{DeviceWord, WARP_SIZE};
use std::marker::PhantomData;

/// Number of shared-memory banks (32-bit wide each).
pub const NUM_BANKS: usize = 32;

/// Typed pointer into a block's shared memory.
pub struct SharedPtr<T> {
    word: u32,
    len: u32,
    _ty: PhantomData<fn() -> T>,
}

impl<T> Clone for SharedPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SharedPtr<T> {}

impl<T: DeviceWord> SharedPtr<T> {
    /// Number of elements.
    #[inline]
    pub fn len(&self) -> u32 {
        self.len
    }

    /// True if zero-length.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// First word of the allocation (for shadow-state and bank indexing).
    #[inline]
    pub(crate) fn base(&self) -> u32 {
        self.word
    }

    #[inline]
    pub(crate) fn word_of(&self, idx: u32) -> usize {
        assert!(
            idx < self.len,
            "illegal shared-memory address: index {idx} out of bounds for allocation of {}",
            self.len
        );
        self.word as usize + idx as usize
    }
}

/// One block's shared memory.
#[derive(Clone, Debug)]
pub struct SharedMem {
    words: Vec<u32>,
    top: u32,
    capacity: u32,
}

impl SharedMem {
    /// Shared memory with the given capacity in 32-bit words.
    pub fn new(capacity_words: u32) -> Self {
        SharedMem {
            words: Vec::new(),
            top: 0,
            capacity: capacity_words,
        }
    }

    /// Allocate `len` elements, zero-initialized. Panics if the block's
    /// shared-memory budget is exceeded (CUDA would fail the launch); use
    /// [`SharedMem::try_alloc`] (via `BlockCtx::shared_alloc`, which records
    /// a structured fault) for the recoverable path.
    pub fn alloc<T: DeviceWord>(&mut self, len: u32) -> SharedPtr<T> {
        self.try_alloc(len).unwrap_or_else(|(req, used, cap)| {
            panic!("shared memory exhausted: requested {req} words, {used} of {cap} in use")
        })
    }

    /// Allocate `len` elements, zero-initialized; on overflow returns the
    /// `(requested, used, capacity)` word counts for error reporting.
    pub fn try_alloc<T: DeviceWord>(&mut self, len: u32) -> Result<SharedPtr<T>, (u32, u32, u32)> {
        if self
            .top
            .checked_add(len)
            .is_none_or(|end| end > self.capacity)
        {
            return Err((len, self.top, self.capacity));
        }
        let word = self.top;
        self.top += len;
        self.words.resize(self.top as usize, 0);
        Ok(SharedPtr {
            word,
            len,
            _ty: PhantomData,
        })
    }

    /// A zero-length placeholder pointer, handed out after a failed
    /// `try_alloc` so the kernel can keep executing (every access through it
    /// is out of bounds and gets dropped/diagnosed like any other OOB).
    pub(crate) fn null_ptr<T: DeviceWord>() -> SharedPtr<T> {
        SharedPtr {
            word: 0,
            len: 0,
            _ty: PhantomData,
        }
    }

    /// Words currently allocated.
    pub fn used_words(&self) -> u32 {
        self.top
    }

    #[inline]
    pub(crate) fn word(&self, w: usize) -> u32 {
        self.words[w]
    }

    #[inline]
    pub(crate) fn set_word(&mut self, w: usize, v: u32) {
        self.words[w] = v;
    }
}

/// Bank-conflict cost of a warp-wide shared access to the given word
/// offsets: the maximum, over banks, of the number of *distinct* words
/// hitting that bank. Same-word accesses broadcast. Returns 0 for an empty
/// set, 1 for conflict-free.
pub fn bank_conflict_cost(word_offsets: impl IntoIterator<Item = u32>) -> u32 {
    let mut per_bank_words: [[u32; WARP_SIZE]; NUM_BANKS] = [[u32::MAX; WARP_SIZE]; NUM_BANKS];
    let mut per_bank_count = [0u32; NUM_BANKS];
    for w in word_offsets {
        let bank = (w as usize) % NUM_BANKS;
        let seen = &mut per_bank_words[bank];
        let cnt = &mut per_bank_count[bank];
        if !seen[..*cnt as usize].contains(&w) {
            seen[*cnt as usize] = w;
            *cnt += 1;
        }
    }
    per_bank_count.into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_budget() {
        let mut s = SharedMem::new(100);
        let a = s.alloc::<u32>(60);
        assert_eq!(a.len(), 60);
        assert_eq!(s.used_words(), 60);
        let _b = s.alloc::<u32>(40);
        assert_eq!(s.used_words(), 100);
    }

    #[test]
    #[should_panic(expected = "shared memory exhausted")]
    fn over_budget_panics() {
        let mut s = SharedMem::new(10);
        let _ = s.alloc::<u32>(11);
    }

    #[test]
    fn conflict_free_stride_one() {
        assert_eq!(bank_conflict_cost(0..32u32), 1);
    }

    #[test]
    fn stride_two_is_two_way() {
        assert_eq!(bank_conflict_cost((0..32u32).map(|l| l * 2)), 2);
    }

    #[test]
    fn stride_32_is_fully_serialized() {
        assert_eq!(bank_conflict_cost((0..32u32).map(|l| l * 32)), 32);
    }

    #[test]
    fn broadcast_is_free() {
        assert_eq!(bank_conflict_cost(std::iter::repeat_n(7u32, 32)), 1);
    }

    #[test]
    fn empty_access_costs_zero() {
        assert_eq!(bank_conflict_cost(std::iter::empty()), 0);
    }

    #[test]
    fn mixed_broadcast_and_conflict() {
        // Lanes 0..16 read word 3; lanes 16..32 read words 35, 67 (bank 3).
        let mut offs = vec![3u32; 16];
        offs.extend([35u32; 8]);
        offs.extend([67u32; 8]);
        assert_eq!(bank_conflict_cost(offs), 3);
    }
}
