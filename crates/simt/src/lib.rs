//! # maxwarp-simt — a trace-driven SIMT GPU simulator
//!
//! This crate is the hardware substrate for the `maxwarp` reproduction of
//! *"Accelerating CUDA Graph Algorithms at Maximum Warp"* (Hong, Kim,
//! Oguntebi, Olukotun — PPoPP 2011). The paper's phenomena are
//! architectural: intra-warp workload imbalance, SIMD-lane (ALU)
//! underutilization, memory-coalescing quality, and atomic serialization.
//! This simulator models exactly those mechanisms:
//!
//! * **Warp-synchronous functional execution** — kernels manipulate 32-wide
//!   [`Lanes`] registers under active [`Mask`]s; divergence is explicit
//!   mask narrowing, like the hardware's SIMT stack.
//! * **Instruction traces** — every operation records its active lane
//!   count, coalesced transaction count ([`coalesce`]), shared-memory bank
//!   conflicts ([`shared`]), and atomic replays.
//! * **A cycle-level timing engine** ([`timing`]) — SMs issue round-robin
//!   among resident warps (latency hiding), a device-wide DRAM channel
//!   bounds transaction bandwidth, barriers rendezvous blocks, and blocks
//!   queue for occupancy-limited SM slots.
//! * **Dynamic work queues** — warp-sized tasks can be scheduled statically
//!   or pulled from an atomic work counter ([`TaskSchedule`]), the
//!   mechanism behind the paper's dynamic workload distribution.
//!
//! ## Quick start
//!
//! ```
//! use maxwarp_simt::{BlockCtx, Gpu, GpuConfig, Mask};
//!
//! let mut gpu = Gpu::new(GpuConfig::fermi_c2050());
//! let input = gpu.mem.alloc_from(&(0..256u32).collect::<Vec<_>>());
//! let output = gpu.mem.alloc::<u32>(256);
//!
//! let stats = gpu
//!     .launch(2, 128, &|b: &mut BlockCtx<'_>| {
//!         b.phase(|w| {
//!             let tid = w.global_thread_ids();
//!             let m = w.lt_scalar(Mask::FULL, &tid, 256);
//!             let v = w.ld(m, input, &tid);
//!             let sq = w.alu1(m, &v, |x| x * x);
//!             w.st(m, output, &tid, &sq);
//!         });
//!     })
//!     .unwrap();
//!
//! assert_eq!(gpu.mem.download(output)[9], 81);
//! println!(
//!     "cycles={} lane-utilization={:.2}",
//!     stats.cycles,
//!     stats.lane_utilization()
//! );
//! ```

pub mod analyze;
pub mod cache;
pub mod coalesce;
pub mod config;
pub mod device;
pub mod fault;
pub mod kernel;
pub mod lanes;
pub mod mask;
pub mod mem;
pub(crate) mod obs;
pub mod profile;
pub mod sanitize;
pub mod shared;
pub mod stats;
pub mod timing;
pub mod trace;
pub mod warp;

pub use analyze::{Analyzer, FindKind, Finding};
pub use cache::CacheModel;
pub use config::GpuConfig;
pub use device::{Gpu, LaunchError, TaskSchedule};
pub use fault::{
    AddressSpace, ChaosState, FaultConfig, SimtError, WatchdogConfig, WatchdogKind, XorShift64,
};
pub use kernel::{BlockCtx, Kernel};
pub use lanes::{DeviceWord, Lanes, LOG_WARP_SIZE, WARP_SIZE};
pub use mask::Mask;
pub use mem::{DevPtr, DeviceMem};
pub use profile::{LaunchProfile, ProfileReport, Profiler, SiteReport};
pub use sanitize::{DiagKind, Diagnostic, Sanitizer, Severity};
pub use shared::{SharedMem, SharedPtr};
pub use stats::KernelStats;
pub use timing::{StallBreakdown, TimingError, TimingInput, TimingReport, WarpSpan};
pub use trace::{BlockTrace, KernelTrace, Op, WarpTrace};
pub use warp::{AtomicArith, WarpCtx, WarpId};
