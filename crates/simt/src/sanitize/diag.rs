//! Structured sanitizer diagnostics.
//!
//! Every hazard the sanitizer detects becomes a [`Diagnostic`]: what went
//! wrong ([`DiagKind`]), how bad it is ([`Severity`]), where in the launch
//! it happened (kernel context, launch index, block/warp/lane), and where in
//! the *source* the offending operation lives (the `#[track_caller]` call
//! site of the `WarpCtx` method). Diagnostics deduplicate on
//! `(kind, call site)` — a racy store in a loop produces one diagnostic with
//! an occurrence count, not millions.

use std::panic::Location;

/// How serious a finding is.
///
/// `Error` findings are undefined behavior on real CUDA hardware (races with
/// observable divergence, reads of undefined data, illegal addresses) and
/// fail `tool_sanitize`. `Warning` findings are either benign-by-construction
/// patterns that deserve a look (same-value racy stores, cross-block
/// read/write overlap of monotone updates) or performance lints; they are
/// reported but do not fail the build.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but tolerated; reported, does not fail `tool_sanitize`.
    Warning,
    /// Undefined on real hardware; fails `tool_sanitize`.
    Error,
}

/// The hazard classes the sanitizer distinguishes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DiagKind {
    /// Conflicting same-word shared-memory accesses from different warps of
    /// a block with no `barrier()` between them.
    SharedRace,
    /// Conflicting non-atomic global writes of *different* values from
    /// agents with no ordering between them in this launch.
    GlobalRace,
    /// A non-atomic read and a write (or atomic) touch the same global word
    /// from unordered agents. Common benign shape: level-synchronous
    /// kernels re-reading monotone state; hence a warning.
    ReadWriteOverlap,
    /// The same global word is updated both atomically and with a plain
    /// store in one launch — the plain store can be lost on real hardware.
    MixedAtomic,
    /// `shfl`/`shfl_bcast`/`seg_bcast` reading a source lane outside the
    /// active mask (CUDA returns undefined data).
    DivergentShfl,
    /// A warp collective (`ballot`/`any`/`all`/reductions/scans) executed
    /// under an empty active mask.
    EmptyMaskCollective,
    /// Read of memory never written since allocation (valid-bit shadow).
    UninitRead,
    /// Access outside the bounds of an allocation.
    OutOfBounds,
    /// Lanes of one warp store different values to the same address in one
    /// instruction (the simulator deterministically lets the highest lane
    /// win; CUDA leaves the winner undefined).
    StoreCollision,
    /// Perf lint: shared-memory access serialized into more than 4 bank
    /// passes.
    BankConflictLint,
    /// Perf lint: a global-memory op site with coalescing efficiency below
    /// 25% (ideal vs actual transactions).
    CoalescingLint,
}

impl DiagKind {
    /// Short kebab-case label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            DiagKind::SharedRace => "shared-race",
            DiagKind::GlobalRace => "global-race",
            DiagKind::ReadWriteOverlap => "read-write-overlap",
            DiagKind::MixedAtomic => "mixed-atomic",
            DiagKind::DivergentShfl => "divergent-shfl",
            DiagKind::EmptyMaskCollective => "empty-mask-collective",
            DiagKind::UninitRead => "uninit-read",
            DiagKind::OutOfBounds => "out-of-bounds",
            DiagKind::StoreCollision => "store-collision",
            DiagKind::BankConflictLint => "bank-conflict-lint",
            DiagKind::CoalescingLint => "coalescing-lint",
        }
    }
}

/// One deduplicated sanitizer finding.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Error or warning.
    pub severity: Severity,
    /// Hazard class.
    pub kind: DiagKind,
    /// Kernel context label active when the finding first fired (set via
    /// `Gpu::set_sanitize_context`; empty if never set).
    pub kernel: String,
    /// 1-based launch index (within the `Gpu`'s lifetime) of the first
    /// occurrence.
    pub launch: u32,
    /// Block of the first occurrence (task index for warp-task launches).
    pub block: u32,
    /// Warp-in-block of the first occurrence.
    pub warp: u32,
    /// Faulting lane of the first occurrence, when lane-attributable.
    pub lane: Option<u32>,
    /// `WarpCtx` method that detected the hazard (`"ld"`, `"st"`, ...).
    pub op: &'static str,
    /// Source location of the offending call (`#[track_caller]`).
    pub site: &'static Location<'static>,
    /// Human-readable description of the first occurrence.
    pub message: String,
    /// Occurrences folded into this diagnostic.
    pub count: u64,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let sev = match self.severity {
            Severity::Error => "ERROR",
            Severity::Warning => "warning",
        };
        write!(f, "{sev} [{}] {}", self.kind.label(), self.message)?;
        write!(f, "\n    at {} (op `{}`)", self.site, self.op)?;
        write!(f, "\n    first: ")?;
        if !self.kernel.is_empty() {
            write!(f, "kernel `{}` ", self.kernel)?;
        }
        write!(
            f,
            "launch {} block {} warp {}",
            self.launch, self.block, self.warp
        )?;
        if let Some(l) = self.lane {
            write!(f, " lane {l}")?;
        }
        if self.count > 1 {
            write!(f, "\n    occurrences: {}", self.count)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_error_above_warning() {
        assert!(Severity::Error > Severity::Warning);
    }

    #[test]
    fn display_includes_attribution() {
        let d = Diagnostic {
            severity: Severity::Error,
            kind: DiagKind::SharedRace,
            kernel: "bfs".to_string(),
            launch: 3,
            block: 1,
            warp: 2,
            lane: Some(7),
            op: "sh_st",
            site: Location::caller(),
            message: "conflicting access".to_string(),
            count: 42,
        };
        let s = d.to_string();
        assert!(s.contains("ERROR"));
        assert!(s.contains("shared-race"));
        assert!(s.contains("kernel `bfs`"));
        assert!(s.contains("launch 3 block 1 warp 2 lane 7"));
        assert!(s.contains("occurrences: 42"));
        assert!(s.contains("diag.rs"));
    }
}
