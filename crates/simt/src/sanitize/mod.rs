//! Warp-hazard sanitizer: a racecheck/memcheck layer for the simulator.
//!
//! Enabled via [`GpuConfig::sanitize`](crate::GpuConfig) or the
//! `MAXWARP_SANITIZE=1` environment variable, the sanitizer shadows every
//! warp-level operation the functional executor routes through
//! `WarpCtx`/`BlockCtx` and reports structured [`Diagnostic`]s instead of
//! silently executing code that would be racy or undefined on real CUDA
//! hardware. It checks:
//!
//! 1. **Shared-memory races** — conflicting same-word accesses from
//!    different warps of a block with no intervening `barrier()`
//!    (epoch-per-barrier shadow cells).
//! 2. **Global-memory races** — non-atomic conflicting accesses to the same
//!    device word from unordered agents within one launch, plus
//!    atomic/non-atomic mixing.
//! 3. **Divergence hazards** — `shfl`/`shfl_bcast`/`seg_bcast` whose source
//!    lane is outside the active mask; collectives under an empty mask.
//! 4. **Uninitialized reads** — valid-bit shadow for device and shared
//!    memory.
//! 5. **Out-of-bounds** — structured diagnostics (with block/warp/lane,
//!    index, allocation length, bank) instead of bare panics.
//!
//! Plus two warn-only performance lints per static op site: bank-conflict
//! cost > 4 and coalescing efficiency < 25%.
//!
//! The sanitizer is observational: it never changes kernel results, and its
//! bookkeeping trace markers (`Op::San`) are excluded from statistics and
//! timing, so a sanitized run reports byte-identical `KernelStats` to an
//! unsanitized run.

mod diag;
mod shadow;

pub use diag::{DiagKind, Diagnostic, Severity};
pub use shadow::BlockShadow;
pub(crate) use shadow::{Agent, GlobalCell};

use crate::warp::WarpId;
use std::collections::HashMap;
use std::panic::Location;

/// Cap on distinct diagnostics retained; further new sites are counted but
/// dropped (`suppressed`).
const MAX_DIAGS: usize = 1024;

/// Minimum sampled ops before a coalescing lint can fire for a site.
const COALESCE_MIN_OPS: u64 = 8;

/// Per-site accumulator for the coalescing lint.
#[derive(Clone, Copy, Debug)]
struct CoalesceSite {
    op: &'static str,
    ops: u64,
    /// Transactions actually issued.
    actual: u64,
    /// Minimum transactions a perfectly coalesced access pattern needs.
    ideal: u64,
    /// `(block, warp)` of the first sampled op, for attribution.
    who: (u32, u32),
}

/// The shadow-state checker. One per [`Gpu`](crate::Gpu); accumulates
/// deduplicated diagnostics across launches.
#[derive(Debug, Default)]
pub struct Sanitizer {
    /// Kernel context label (set by the host between launches).
    context: String,
    /// 1-based launch counter.
    launch: u32,
    diags: Vec<Diagnostic>,
    index: HashMap<(DiagKind, &'static Location<'static>), usize>,
    /// Global-memory shadow for the current launch, one cell per word.
    global: Vec<GlobalCell>,
    /// Coalescing-lint accumulators for the current launch.
    coalesce: HashMap<&'static Location<'static>, CoalesceSite>,
    errors: u64,
    warnings: u64,
    /// Occurrences dropped after `MAX_DIAGS` distinct sites.
    suppressed: u64,
}

impl Sanitizer {
    /// Fresh sanitizer with no findings.
    pub fn new() -> Self {
        Sanitizer::default()
    }

    /// Label subsequent launches with a kernel/context name for reports.
    pub fn set_context(&mut self, name: &str) {
        self.context = name.to_string();
    }

    /// Begin a launch: reset per-launch shadow state. `words` is the device
    /// heap size in words.
    pub fn begin_launch(&mut self, words: u32) {
        self.launch += 1;
        self.global.clear();
        self.global.resize(words as usize, GlobalCell::default());
        self.coalesce.clear();
    }

    /// End a launch: flush per-site coalescing lints.
    pub fn finish_launch(&mut self) {
        let mut sites: Vec<(&'static Location<'static>, CoalesceSite)> =
            self.coalesce.drain().collect();
        sites.sort_by_key(|(loc, _)| (loc.file(), loc.line(), loc.column()));
        let context = self.context.clone();
        let launch = self.launch;
        for (site, c) in sites {
            if c.ops < COALESCE_MIN_OPS || c.actual == 0 {
                continue;
            }
            let efficiency = c.ideal as f64 / c.actual as f64;
            if efficiency < 0.25 {
                self.record(
                    Severity::Warning,
                    DiagKind::CoalescingLint,
                    &context,
                    launch,
                    c.who.0,
                    c.who.1,
                    None,
                    c.op,
                    site,
                    format!(
                        "coalescing efficiency {:.0}% over {} ops ({} transactions issued, \
                         {} ideal)",
                        efficiency * 100.0,
                        c.ops,
                        c.actual,
                        c.ideal
                    ),
                );
            }
        }
    }

    /// True if any error-severity finding was recorded.
    pub fn has_errors(&self) -> bool {
        self.errors > 0
    }

    /// Total error-severity occurrences.
    pub fn error_count(&self) -> u64 {
        self.errors
    }

    /// Total warning-severity occurrences.
    pub fn warning_count(&self) -> u64 {
        self.warnings
    }

    /// True if nothing at all was recorded.
    pub fn is_clean(&self) -> bool {
        self.errors == 0 && self.warnings == 0
    }

    /// All deduplicated findings, in first-occurrence order.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diags
    }

    /// Human-readable report of all findings (errors first).
    pub fn report(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let mut ordered: Vec<&Diagnostic> = self.diags.iter().collect();
        ordered.sort_by_key(|d| std::cmp::Reverse(d.severity));
        for d in ordered {
            let _ = writeln!(out, "{d}");
        }
        let _ = writeln!(
            out,
            "sanitizer: {} error(s), {} warning(s), {} distinct site(s){}",
            self.errors,
            self.warnings,
            self.diags.len(),
            if self.suppressed > 0 {
                format!(", {} suppressed after cap", self.suppressed)
            } else {
                String::new()
            }
        );
        out
    }

    /// Record one occurrence; returns 1 if a *new* diagnostic was created
    /// (the caller pushes one `Op::San` trace marker per new diagnostic),
    /// 0 if it folded into an existing one or was suppressed.
    #[allow(clippy::too_many_arguments)]
    fn record(
        &mut self,
        severity: Severity,
        kind: DiagKind,
        kernel: &str,
        launch: u32,
        block: u32,
        warp: u32,
        lane: Option<u32>,
        op: &'static str,
        site: &'static Location<'static>,
        message: String,
    ) -> u32 {
        match severity {
            Severity::Error => self.errors += 1,
            Severity::Warning => self.warnings += 1,
        }
        crate::obs::sanitizer_finding(severity);
        if let Some(&i) = self.index.get(&(kind, site)) {
            self.diags[i].count += 1;
            return 0;
        }
        if self.diags.len() >= MAX_DIAGS {
            self.suppressed += 1;
            return 0;
        }
        self.index.insert((kind, site), self.diags.len());
        self.diags.push(Diagnostic {
            severity,
            kind,
            kernel: kernel.to_string(),
            launch,
            block,
            warp,
            lane,
            op,
            site,
            message,
            count: 1,
        });
        1
    }

    /// Like [`record`] but fills kernel/launch from the sanitizer's own
    /// state — the shape every hook uses.
    #[allow(clippy::too_many_arguments)]
    fn hit(
        &mut self,
        severity: Severity,
        kind: DiagKind,
        id: WarpId,
        lane: Option<u32>,
        op: &'static str,
        site: &'static Location<'static>,
        message: String,
    ) -> u32 {
        let context = std::mem::take(&mut self.context);
        let n = self.record(
            severity,
            kind,
            &context,
            self.launch,
            id.block,
            id.warp_in_block,
            lane,
            op,
            site,
            message,
        );
        self.context = context;
        n
    }

    // ---- hooks called from WarpCtx / BlockCtx -------------------------------

    /// Out-of-bounds global access.
    pub(crate) fn oob_global(
        &mut self,
        id: WarpId,
        lane: u32,
        idx: u32,
        len: u32,
        op: &'static str,
        site: &'static Location<'static>,
    ) -> u32 {
        self.hit(
            Severity::Error,
            DiagKind::OutOfBounds,
            id,
            Some(lane),
            op,
            site,
            format!(
                "illegal device address: index {idx} out of bounds for allocation of {len} \
                 (block {}, warp {}, lane {lane})",
                id.block, id.warp_in_block
            ),
        )
    }

    /// Out-of-bounds shared-memory access.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn oob_shared(
        &mut self,
        id: WarpId,
        lane: u32,
        idx: u32,
        len: u32,
        bank: u32,
        op: &'static str,
        site: &'static Location<'static>,
    ) -> u32 {
        self.hit(
            Severity::Error,
            DiagKind::OutOfBounds,
            id,
            Some(lane),
            op,
            site,
            format!(
                "illegal shared-memory address: index {idx} out of bounds for allocation of \
                 {len} (block {}, warp {}, lane {lane}, bank {bank})",
                id.block, id.warp_in_block
            ),
        )
    }

    /// Non-atomic global read of `word`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn global_read(
        &mut self,
        id: WarpId,
        epoch: u32,
        lane: u32,
        word: u32,
        valid: bool,
        op: &'static str,
        site: &'static Location<'static>,
    ) -> u32 {
        let me = Agent {
            block: id.block,
            warp: id.warp_in_block,
            epoch,
        };
        let mut new = 0;
        if !valid {
            new += self.hit(
                Severity::Warning,
                DiagKind::UninitRead,
                id,
                Some(lane),
                op,
                site,
                format!("read of uninitialized device word {word}"),
            );
        }
        let Some(cell) = self.global.get_mut(word as usize) else {
            return new;
        };
        let writer = cell.writer;
        let atomic = cell.atomic;
        cell.reader = Some(me);
        if let Some(w) = writer {
            if w.conflicts(&me) {
                new += self.hit(
                    Severity::Warning,
                    DiagKind::ReadWriteOverlap,
                    id,
                    Some(lane),
                    op,
                    site,
                    format!(
                        "word {word} read while unordered store from block {} warp {} is in \
                         flight this launch",
                        w.block, w.warp
                    ),
                );
            }
        }
        if let Some(a) = atomic {
            if a.conflicts(&me) {
                new += self.hit(
                    Severity::Warning,
                    DiagKind::ReadWriteOverlap,
                    id,
                    Some(lane),
                    op,
                    site,
                    format!(
                        "word {word} read non-atomically while block {} warp {} updates it \
                         atomically this launch",
                        a.block, a.warp
                    ),
                );
            }
        }
        new
    }

    /// Non-atomic global store of `value` to `word`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn global_write(
        &mut self,
        id: WarpId,
        epoch: u32,
        lane: u32,
        word: u32,
        value: u32,
        op: &'static str,
        site: &'static Location<'static>,
    ) -> u32 {
        let me = Agent {
            block: id.block,
            warp: id.warp_in_block,
            epoch,
        };
        let Some(cell) = self.global.get_mut(word as usize) else {
            return 0;
        };
        let prev_writer = cell.writer;
        let prev_value = cell.value;
        let atomic = cell.atomic;
        let reader = cell.reader;
        cell.writer = Some(me);
        cell.value = value;
        let mut new = 0;
        if let Some(w) = prev_writer {
            if w.conflicts(&me) && prev_value != value {
                new += self.hit(
                    Severity::Error,
                    DiagKind::GlobalRace,
                    id,
                    Some(lane),
                    op,
                    site,
                    format!(
                        "word {word}: unordered stores of different values ({prev_value} from \
                         block {} warp {}, {value} from block {} warp {})",
                        w.block, w.warp, id.block, id.warp_in_block
                    ),
                );
            }
        }
        if let Some(a) = atomic {
            if a.conflicts(&me) {
                new += self.hit(
                    Severity::Error,
                    DiagKind::MixedAtomic,
                    id,
                    Some(lane),
                    op,
                    site,
                    format!(
                        "word {word} stored non-atomically while block {} warp {} updates it \
                         atomically this launch",
                        a.block, a.warp
                    ),
                );
            }
        }
        if let Some(r) = reader {
            if r.conflicts(&me) {
                new += self.hit(
                    Severity::Warning,
                    DiagKind::ReadWriteOverlap,
                    id,
                    Some(lane),
                    op,
                    site,
                    format!(
                        "word {word} stored while unordered read from block {} warp {} exists \
                         this launch",
                        r.block, r.warp
                    ),
                );
            }
        }
        new
    }

    /// Atomic update of `word`.
    pub(crate) fn global_atomic(
        &mut self,
        id: WarpId,
        epoch: u32,
        lane: u32,
        word: u32,
        op: &'static str,
        site: &'static Location<'static>,
    ) -> u32 {
        let me = Agent {
            block: id.block,
            warp: id.warp_in_block,
            epoch,
        };
        let Some(cell) = self.global.get_mut(word as usize) else {
            return 0;
        };
        let writer = cell.writer;
        cell.atomic = Some(me);
        let mut new = 0;
        if let Some(w) = writer {
            if w.conflicts(&me) {
                new += self.hit(
                    Severity::Error,
                    DiagKind::MixedAtomic,
                    id,
                    Some(lane),
                    op,
                    site,
                    format!(
                        "word {word} updated atomically while unordered plain store from \
                         block {} warp {} exists this launch",
                        w.block, w.warp
                    ),
                );
            }
        }
        new
    }

    /// Shared-memory read of `word` by `id`'s warp.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn shared_read(
        &mut self,
        shadow: &mut BlockShadow,
        id: WarpId,
        lane: u32,
        word: u32,
        op: &'static str,
        site: &'static Location<'static>,
    ) -> u32 {
        let bit = 1u32 << (id.warp_in_block % 32);
        let cell = shadow.cell_mut(word);
        let valid = cell.valid;
        let writers = cell.writers;
        cell.readers |= bit;
        let mut new = 0;
        if !valid {
            new += self.hit(
                Severity::Error,
                DiagKind::UninitRead,
                id,
                Some(lane),
                op,
                site,
                format!("read of uninitialized shared word {word}"),
            );
        }
        if writers & !bit != 0 {
            let other = (writers & !bit).trailing_zeros();
            new += self.hit(
                Severity::Error,
                DiagKind::SharedRace,
                id,
                Some(lane),
                op,
                site,
                format!(
                    "shared word {word}: read by warp {} races with write by warp {other} \
                     (no barrier between them, block {})",
                    id.warp_in_block, id.block
                ),
            );
        }
        new
    }

    /// Shared-memory write of `word` by `id`'s warp.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn shared_write(
        &mut self,
        shadow: &mut BlockShadow,
        id: WarpId,
        lane: u32,
        word: u32,
        op: &'static str,
        site: &'static Location<'static>,
    ) -> u32 {
        let bit = 1u32 << (id.warp_in_block % 32);
        let cell = shadow.cell_mut(word);
        let readers = cell.readers;
        let writers = cell.writers;
        cell.writers |= bit;
        cell.valid = true;
        let mut new = 0;
        if writers & !bit != 0 {
            let other = (writers & !bit).trailing_zeros();
            new += self.hit(
                Severity::Error,
                DiagKind::SharedRace,
                id,
                Some(lane),
                op,
                site,
                format!(
                    "shared word {word}: writes by warps {} and {other} with no barrier \
                     between them (block {})",
                    id.warp_in_block, id.block
                ),
            );
        }
        if readers & !bit != 0 {
            let other = (readers & !bit).trailing_zeros();
            new += self.hit(
                Severity::Error,
                DiagKind::SharedRace,
                id,
                Some(lane),
                op,
                site,
                format!(
                    "shared word {word}: write by warp {} races with read by warp {other} \
                     (no barrier between them, block {})",
                    id.warp_in_block, id.block
                ),
            );
        }
        new
    }

    /// Warp collective executed under an empty active mask.
    pub(crate) fn empty_mask(
        &mut self,
        id: WarpId,
        op: &'static str,
        site: &'static Location<'static>,
    ) -> u32 {
        self.hit(
            Severity::Warning,
            DiagKind::EmptyMaskCollective,
            id,
            None,
            op,
            site,
            format!("collective `{op}` executed under an empty active mask"),
        )
    }

    /// Shuffle reading a source lane outside the active mask.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn divergent_shfl(
        &mut self,
        id: WarpId,
        lane: u32,
        src_lane: u32,
        op: &'static str,
        site: &'static Location<'static>,
    ) -> u32 {
        self.hit(
            Severity::Error,
            DiagKind::DivergentShfl,
            id,
            Some(lane),
            op,
            site,
            format!(
                "lane {lane} shuffles from lane {src_lane}, which is outside the active mask \
                 (undefined data on hardware; simulator substitutes the default value)"
            ),
        )
    }

    /// Lanes of one warp stored different values to the same index in one
    /// instruction.
    pub(crate) fn store_collision(
        &mut self,
        id: WarpId,
        lane: u32,
        idx: u32,
        op: &'static str,
        site: &'static Location<'static>,
    ) -> u32 {
        self.hit(
            Severity::Warning,
            DiagKind::StoreCollision,
            id,
            Some(lane),
            op,
            site,
            format!(
                "intra-warp store collision at index {idx}: lanes store different values in \
                 one instruction (highest lane wins deterministically here; undefined on \
                 hardware)"
            ),
        )
    }

    /// Shared access serialized into more than 4 bank passes.
    pub(crate) fn bank_conflict(
        &mut self,
        id: WarpId,
        cost: u32,
        op: &'static str,
        site: &'static Location<'static>,
    ) -> u32 {
        self.hit(
            Severity::Warning,
            DiagKind::BankConflictLint,
            id,
            None,
            op,
            site,
            format!("shared-memory access serialized into {cost} bank passes (> 4)"),
        )
    }

    /// Sample one global-memory op for the per-site coalescing lint.
    /// `distinct` is the op's distinct-address footprint
    /// ([`crate::coalesce::distinct_addrs`]): a broadcast read has a
    /// footprint of one word and is already perfectly coalesced at one
    /// transaction, so the ideal is derived from the footprint, not from the
    /// active lane count.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn coalesce_sample(
        &mut self,
        id: WarpId,
        op: &'static str,
        site: &'static Location<'static>,
        active: u32,
        tx: u32,
        distinct: u32,
        segment_words: u32,
    ) {
        if active == 0 {
            return;
        }
        let ideal = crate::coalesce::ideal_transactions(distinct, segment_words) as u64;
        let entry = self.coalesce.entry(site).or_insert(CoalesceSite {
            op,
            ops: 0,
            actual: 0,
            ideal: 0,
            who: (id.block, id.warp_in_block),
        });
        entry.ops += 1;
        entry.actual += tx as u64;
        entry.ideal += ideal;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(block: u32, warp: u32) -> WarpId {
        WarpId {
            block,
            warp_in_block: warp,
            warps_per_block: 2,
            num_blocks: 4,
        }
    }

    fn san() -> Sanitizer {
        let mut s = Sanitizer::new();
        s.begin_launch(64);
        s
    }

    #[test]
    fn dedup_folds_repeat_occurrences() {
        let mut s = san();
        let site = Location::caller();
        assert_eq!(s.oob_global(id(0, 0), 3, 99, 10, "ld", site), 1);
        assert_eq!(s.oob_global(id(0, 1), 4, 100, 10, "ld", site), 0);
        assert_eq!(s.diagnostics().len(), 1);
        assert_eq!(s.diagnostics()[0].count, 2);
        assert_eq!(s.error_count(), 2);
        assert!(s.has_errors());
    }

    #[test]
    fn global_race_needs_differing_values() {
        let mut s = san();
        let site = Location::caller();
        s.global_write(id(0, 0), 0, 0, 5, 7, "st", site);
        // Same value from another block: benign splat, no error.
        s.global_write(id(1, 0), 0, 0, 5, 7, "st", site);
        assert!(!s.has_errors());
        // Different value: race.
        s.global_write(id(2, 0), 0, 0, 5, 9, "st", site);
        assert!(s.has_errors());
        assert_eq!(s.diagnostics()[0].kind, DiagKind::GlobalRace);
    }

    #[test]
    fn same_block_stores_ordered_across_epochs() {
        let mut s = san();
        let site = Location::caller();
        s.global_write(id(0, 0), 0, 0, 5, 7, "st", site);
        s.global_write(id(0, 1), 1, 0, 5, 9, "st", site);
        assert!(!s.has_errors());
    }

    #[test]
    fn mixed_atomic_and_store_is_error() {
        let mut s = san();
        let site = Location::caller();
        s.global_atomic(id(0, 0), 0, 0, 5, "atomic_add", site);
        s.global_write(id(1, 0), 0, 0, 5, 1, "st", site);
        assert!(s.has_errors());
        assert_eq!(s.diagnostics()[0].kind, DiagKind::MixedAtomic);
    }

    #[test]
    fn read_of_atomic_word_is_warning_only() {
        let mut s = san();
        let site = Location::caller();
        s.global_atomic(id(0, 0), 0, 0, 5, "atomic_min", site);
        s.global_read(id(1, 0), 0, 0, 5, true, "ld", site);
        assert!(!s.has_errors());
        assert_eq!(s.warning_count(), 1);
    }

    #[test]
    fn shared_race_cross_warp_same_epoch() {
        let mut s = san();
        let mut shadow = BlockShadow::default();
        let site = Location::caller();
        s.shared_write(&mut shadow, id(0, 0), 0, 3, "sh_st", site);
        s.shared_read(&mut shadow, id(0, 1), 0, 3, "sh_ld", site);
        assert!(s.has_errors());
        assert_eq!(s.diagnostics()[0].kind, DiagKind::SharedRace);
    }

    #[test]
    fn shared_race_suppressed_by_barrier() {
        let mut s = san();
        let mut shadow = BlockShadow::default();
        let site = Location::caller();
        s.shared_write(&mut shadow, id(0, 0), 0, 3, "sh_st", site);
        shadow.advance_epoch();
        s.shared_read(&mut shadow, id(0, 1), 0, 3, "sh_ld", site);
        assert!(!s.has_errors());
        assert_eq!(s.warning_count(), 0);
    }

    #[test]
    fn shared_uninit_read_is_error() {
        let mut s = san();
        let mut shadow = BlockShadow::default();
        s.shared_read(&mut shadow, id(0, 0), 2, 7, "sh_ld", Location::caller());
        assert!(s.has_errors());
        assert_eq!(s.diagnostics()[0].kind, DiagKind::UninitRead);
    }

    #[test]
    fn device_uninit_read_is_warning() {
        let mut s = san();
        s.global_read(id(0, 0), 0, 0, 5, false, "ld", Location::caller());
        assert!(!s.has_errors());
        assert_eq!(s.warning_count(), 1);
        assert_eq!(s.diagnostics()[0].kind, DiagKind::UninitRead);
    }

    #[test]
    fn begin_launch_resets_global_shadow() {
        let mut s = san();
        let site = Location::caller();
        s.global_write(id(0, 0), 0, 0, 5, 7, "st", site);
        s.begin_launch(64);
        s.global_write(id(1, 0), 0, 0, 5, 9, "st", site);
        assert!(!s.has_errors());
    }

    #[test]
    fn coalesce_lint_fires_on_bad_sites_only() {
        let mut s = san();
        let bad = Location::caller();
        // 32 distinct words spread over 32 transactions, ideal 1 →
        // efficiency ~3%.
        for _ in 0..10 {
            s.coalesce_sample(id(0, 0), "ld", bad, 32, 32, 32, 32);
        }
        // Perfectly coalesced site.
        let good = Location::caller();
        for _ in 0..10 {
            s.coalesce_sample(id(0, 0), "ld", good, 32, 1, 32, 32);
        }
        s.finish_launch();
        assert_eq!(s.warning_count(), 1);
        assert_eq!(s.diagnostics()[0].kind, DiagKind::CoalescingLint);
        assert_eq!(s.diagnostics()[0].site, bad);
    }

    #[test]
    fn coalesce_lint_needs_min_ops() {
        let mut s = san();
        s.coalesce_sample(id(0, 0), "ld", Location::caller(), 32, 32, 32, 32);
        s.finish_launch();
        assert!(s.is_clean());
    }

    #[test]
    fn broadcast_read_is_not_a_coalescing_false_positive() {
        // All 32 lanes load the same word: 1 transaction, footprint 1 word.
        // The old active-lane ideal (ceil(32/8) = 4 with 8-word segments)
        // called this 400% efficient, inflating the site's aggregate and
        // masking genuinely bad ops mixed into it; footprint ideal says 1/1.
        let mut s = san();
        let site = Location::caller();
        for _ in 0..10 {
            s.coalesce_sample(id(0, 0), "ld", site, 32, 1, 1, 8);
        }
        s.finish_launch();
        assert!(s.is_clean());
        // A broadcast-heavy site must not absolve scattered ops: 10
        // broadcasts + 10 fully scattered ops = 10·1 + 10·32 actual vs
        // 10·1 + 10·4 ideal → 15% < 25% lints. Under the active-lane ideal
        // this site scored 10·4 + 10·4 / 330 = 24%… and a slightly smaller
        // broadcast share pushed it over the lint threshold, hiding the bad
        // ops.
        let mut s2 = san();
        let mixed = Location::caller();
        for _ in 0..10 {
            s2.coalesce_sample(id(0, 0), "ld", mixed, 32, 1, 1, 8);
            s2.coalesce_sample(id(0, 0), "ld", mixed, 32, 32, 32, 8);
        }
        s2.finish_launch();
        assert_eq!(s2.warning_count(), 1);
        assert_eq!(s2.diagnostics()[0].kind, DiagKind::CoalescingLint);
    }

    #[test]
    fn report_mentions_totals() {
        let mut s = san();
        s.set_context("fixture");
        s.oob_global(id(1, 0), 2, 9, 4, "st", Location::caller());
        let r = s.report();
        assert!(r.contains("1 error(s)"));
        assert!(r.contains("kernel `fixture`"));
        assert!(r.contains("block 1 warp 0 lane 2"));
    }
}
