//! Shadow state backing the hazard checks.
//!
//! Two shadow structures mirror the two memory spaces:
//!
//! * **Global memory** — one [`GlobalCell`] per device word per launch,
//!   remembering the last unordered writer, atomic updater, and reader as an
//!   [`Agent`]. Agents from different blocks are never ordered within a
//!   launch; agents from different warps of the same block are ordered only
//!   across a barrier (epoch).
//! * **Shared memory** — a per-block [`BlockShadow`] of [`SharedCell`]s with
//!   per-warp reader/writer bitmasks, reset at every barrier by bumping the
//!   block epoch (cells lazily renormalize on next touch). A conflicting
//!   access from a *different* warp in the *same* epoch is a race.
//!
//! Same-warp accesses are never racy: warps execute in lockstep in this
//! simulator (and warp-synchronous programming relies on exactly that), so
//! intra-warp ordering is by construction. That is also the model's known
//! false-negative surface — see DESIGN.md "Hazard semantics".

/// Who performed a memory access, at what point in barrier-ordered time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct Agent {
    /// Block index (task index for warp-task launches).
    pub block: u32,
    /// Warp within the block.
    pub warp: u32,
    /// Barrier epoch within the block at the time of access.
    pub epoch: u32,
}

impl Agent {
    /// True if `self` and `other` are unordered — i.e. a conflicting access
    /// pair between them is a race.
    ///
    /// Different blocks are never ordered within a launch. Within a block,
    /// different warps are unordered unless a barrier separates them
    /// (different epochs). The same warp is always ordered with itself.
    pub fn conflicts(&self, other: &Agent) -> bool {
        if self.block != other.block {
            return true;
        }
        self.warp != other.warp && self.epoch == other.epoch
    }
}

/// Shadow state of one global-memory word for the current launch.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct GlobalCell {
    /// Last non-atomic writer and the value it stored.
    pub writer: Option<Agent>,
    /// Value stored by `writer` (same-value racy stores are benign).
    pub value: u32,
    /// Last atomic updater.
    pub atomic: Option<Agent>,
    /// Last non-atomic reader.
    pub reader: Option<Agent>,
}

/// Shadow state of one shared-memory word within a block.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct SharedCell {
    /// Epoch the reader/writer masks belong to (lazily renormalized).
    pub epoch: u32,
    /// Bitmask of warps that read this word in `epoch`.
    pub readers: u32,
    /// Bitmask of warps that wrote this word in `epoch`.
    pub writers: u32,
    /// Word has been written at least once since block start.
    pub valid: bool,
}

/// Per-block shared-memory shadow. A `barrier()` bumps `epoch`; stale cells
/// renormalize (clear access masks, keep the valid bit) on next touch.
#[derive(Clone, Debug, Default)]
pub struct BlockShadow {
    pub(crate) epoch: u32,
    pub(crate) cells: Vec<SharedCell>,
}

impl BlockShadow {
    /// Cell for `word`, grown on demand and renormalized to the current
    /// epoch.
    pub(crate) fn cell_mut(&mut self, word: u32) -> &mut SharedCell {
        let idx = word as usize;
        if idx >= self.cells.len() {
            self.cells.resize(idx + 1, SharedCell::default());
        }
        let epoch = self.epoch;
        let cell = &mut self.cells[idx];
        if cell.epoch != epoch {
            cell.epoch = epoch;
            cell.readers = 0;
            cell.writers = 0;
        }
        cell
    }

    /// Advance the barrier epoch: all prior accesses become ordered with
    /// everything that follows.
    pub(crate) fn advance_epoch(&mut self) {
        self.epoch += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn different_blocks_always_conflict() {
        let a = Agent {
            block: 0,
            warp: 0,
            epoch: 0,
        };
        let b = Agent {
            block: 1,
            warp: 0,
            epoch: 5,
        };
        assert!(a.conflicts(&b));
        assert!(b.conflicts(&a));
    }

    #[test]
    fn same_block_warps_conflict_only_in_same_epoch() {
        let a = Agent {
            block: 2,
            warp: 0,
            epoch: 3,
        };
        let same_epoch = Agent {
            block: 2,
            warp: 1,
            epoch: 3,
        };
        let later_epoch = Agent {
            block: 2,
            warp: 1,
            epoch: 4,
        };
        assert!(a.conflicts(&same_epoch));
        assert!(!a.conflicts(&later_epoch));
    }

    #[test]
    fn same_warp_never_conflicts() {
        let a = Agent {
            block: 2,
            warp: 7,
            epoch: 3,
        };
        assert!(!a.conflicts(&a));
    }

    #[test]
    fn barrier_clears_access_masks_but_keeps_valid() {
        let mut shadow = BlockShadow::default();
        let c = shadow.cell_mut(10);
        c.readers |= 1;
        c.writers |= 2;
        c.valid = true;
        shadow.advance_epoch();
        let c = shadow.cell_mut(10);
        assert_eq!(c.readers, 0);
        assert_eq!(c.writers, 0);
        assert!(c.valid);
    }
}
