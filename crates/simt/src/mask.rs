//! Active-lane masks.
//!
//! A [`Mask`] is a 32-bit set describing which lanes of a warp participate in
//! an operation. All divergent control flow in a warp-synchronous kernel is
//! expressed by narrowing and re-widening masks, exactly as the hardware's
//! SIMT stack serializes divergent branches.

use crate::lanes::WARP_SIZE;

/// A set of active lanes within one 32-lane warp.
///
/// Bit `i` set means lane `i` is active. `Mask` is a plain value type; all
/// combinators are `const`-friendly and allocation-free.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Mask(pub u32);

impl Mask {
    /// All 32 lanes active.
    pub const FULL: Mask = Mask(u32::MAX);
    /// No lane active.
    pub const NONE: Mask = Mask(0);

    /// Mask with exactly the given lane active.
    #[inline]
    pub const fn lane(lane: usize) -> Mask {
        debug_assert!(lane < WARP_SIZE);
        Mask(1 << lane)
    }

    /// Mask with the first `n` lanes active (`n` may be 0..=32).
    #[inline]
    pub const fn first(n: usize) -> Mask {
        debug_assert!(n <= WARP_SIZE);
        if n >= WARP_SIZE {
            Mask::FULL
        } else {
            Mask((1u32 << n) - 1)
        }
    }

    /// Build a mask from a per-lane predicate.
    #[inline]
    pub fn from_fn(mut f: impl FnMut(usize) -> bool) -> Mask {
        let mut bits = 0u32;
        for lane in 0..WARP_SIZE {
            if f(lane) {
                bits |= 1 << lane;
            }
        }
        Mask(bits)
    }

    /// Is lane `lane` active?
    #[inline]
    pub const fn get(self, lane: usize) -> bool {
        debug_assert!(lane < WARP_SIZE);
        (self.0 >> lane) & 1 == 1
    }

    /// Return a copy with lane `lane` set to `on`.
    #[inline]
    pub const fn with(self, lane: usize, on: bool) -> Mask {
        debug_assert!(lane < WARP_SIZE);
        if on {
            Mask(self.0 | (1 << lane))
        } else {
            Mask(self.0 & !(1 << lane))
        }
    }

    /// Number of active lanes.
    #[inline]
    pub const fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// True if at least one lane is active.
    #[inline]
    pub const fn any(self) -> bool {
        self.0 != 0
    }

    /// True if no lane is active.
    #[inline]
    pub const fn none(self) -> bool {
        self.0 == 0
    }

    /// True if all 32 lanes are active.
    #[inline]
    pub const fn all(self) -> bool {
        self.0 == u32::MAX
    }

    /// Lowest active lane, if any. This is the "leader" lane used by
    /// warp-cooperative idioms (one lane does an atomic, then broadcasts).
    #[inline]
    pub const fn leader(self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            Some(self.0.trailing_zeros() as usize)
        }
    }

    /// Set intersection.
    #[inline]
    pub const fn and(self, other: Mask) -> Mask {
        Mask(self.0 & other.0)
    }

    /// Set union.
    #[inline]
    pub const fn or(self, other: Mask) -> Mask {
        Mask(self.0 | other.0)
    }

    /// Set complement (within the 32 lanes).
    #[inline]
    pub const fn not(self) -> Mask {
        Mask(!self.0)
    }

    /// `self` minus `other`.
    #[inline]
    pub const fn andnot(self, other: Mask) -> Mask {
        Mask(self.0 & !other.0)
    }

    /// Iterate over the indices of active lanes in ascending order.
    #[inline]
    pub fn iter(self) -> MaskIter {
        MaskIter(self.0)
    }

    /// Number of active lanes strictly below `lane` — the rank used to
    /// compute compaction offsets (CUDA's `__popc(ballot & lanemask_lt)`).
    #[inline]
    pub const fn rank(self, lane: usize) -> u32 {
        debug_assert!(lane < WARP_SIZE);
        (self.0 & ((1u32 << lane) - 1)).count_ones()
    }

    /// `(lowest, highest)` active lane, or `None` if the mask is empty. The
    /// static analyzer uses the span to bound a site's lane-affine access
    /// footprint.
    #[inline]
    pub const fn span(self) -> Option<(usize, usize)> {
        if self.0 == 0 {
            None
        } else {
            Some((
                self.0.trailing_zeros() as usize,
                (31 - self.0.leading_zeros()) as usize,
            ))
        }
    }
}

impl std::ops::BitAnd for Mask {
    type Output = Mask;
    #[inline]
    fn bitand(self, rhs: Mask) -> Mask {
        self.and(rhs)
    }
}

impl std::ops::BitOr for Mask {
    type Output = Mask;
    #[inline]
    fn bitor(self, rhs: Mask) -> Mask {
        self.or(rhs)
    }
}

impl std::ops::Not for Mask {
    type Output = Mask;
    #[inline]
    fn not(self) -> Mask {
        Mask::not(self)
    }
}

impl std::ops::BitAndAssign for Mask {
    #[inline]
    fn bitand_assign(&mut self, rhs: Mask) {
        self.0 &= rhs.0;
    }
}

impl std::ops::BitOrAssign for Mask {
    #[inline]
    fn bitor_assign(&mut self, rhs: Mask) {
        self.0 |= rhs.0;
    }
}

impl std::fmt::Debug for Mask {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Mask({:032b})", self.0)
    }
}

/// Iterator over active lane indices of a [`Mask`].
pub struct MaskIter(u32);

impl Iterator for MaskIter {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            let lane = self.0.trailing_zeros() as usize;
            self.0 &= self.0 - 1;
            Some(lane)
        }
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for MaskIter {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_and_none() {
        assert_eq!(Mask::FULL.count(), 32);
        assert!(Mask::FULL.all());
        assert!(Mask::FULL.any());
        assert!(!Mask::NONE.any());
        assert!(Mask::NONE.none());
        assert_eq!(Mask::NONE.count(), 0);
    }

    #[test]
    fn first_n() {
        assert_eq!(Mask::first(0), Mask::NONE);
        assert_eq!(Mask::first(32), Mask::FULL);
        assert_eq!(Mask::first(5).count(), 5);
        assert!(Mask::first(5).get(4));
        assert!(!Mask::first(5).get(5));
    }

    #[test]
    fn lane_and_with() {
        let m = Mask::lane(7);
        assert_eq!(m.count(), 1);
        assert!(m.get(7));
        let m2 = m.with(3, true).with(7, false);
        assert!(m2.get(3));
        assert!(!m2.get(7));
    }

    #[test]
    fn from_fn_matches_get() {
        let m = Mask::from_fn(|l| l % 3 == 0);
        for lane in 0..WARP_SIZE {
            assert_eq!(m.get(lane), lane % 3 == 0);
        }
    }

    #[test]
    fn leader_is_lowest() {
        assert_eq!(Mask::NONE.leader(), None);
        assert_eq!(Mask::FULL.leader(), Some(0));
        assert_eq!(Mask::lane(13).or(Mask::lane(29)).leader(), Some(13));
    }

    #[test]
    fn set_algebra() {
        let a = Mask::from_fn(|l| l < 16);
        let b = Mask::from_fn(|l| l % 2 == 0);
        assert_eq!((a & b).count(), 8);
        assert_eq!((a | b).count(), 16 + 8);
        assert_eq!(a.andnot(b).count(), 8);
        assert_eq!((!a).count(), 16);
    }

    #[test]
    fn iter_ascending() {
        let m = Mask::from_fn(|l| l == 1 || l == 17 || l == 31);
        let lanes: Vec<usize> = m.iter().collect();
        assert_eq!(lanes, vec![1, 17, 31]);
        assert_eq!(m.iter().len(), 3);
    }

    #[test]
    fn rank_counts_lower_lanes() {
        let m = Mask::from_fn(|l| l % 2 == 0);
        assert_eq!(m.rank(0), 0);
        assert_eq!(m.rank(1), 1);
        assert_eq!(m.rank(8), 4);
        assert_eq!(m.rank(31), 16); // lanes 0,2,..,30 below 31
    }

    #[test]
    fn span_bounds_active_lanes() {
        assert_eq!(Mask::NONE.span(), None);
        assert_eq!(Mask::FULL.span(), Some((0, 31)));
        assert_eq!(Mask::lane(9).span(), Some((9, 9)));
        assert_eq!((Mask::lane(3) | Mask::lane(28)).span(), Some((3, 28)));
        assert_eq!(Mask::first(5).span(), Some((0, 4)));
    }

    #[test]
    fn bit_assign_ops() {
        let mut m = Mask::FULL;
        m &= Mask::first(4);
        assert_eq!(m, Mask::first(4));
        m |= Mask::lane(31);
        assert!(m.get(31));
    }
}
