//! Process-wide observability hooks for the simulator.
//!
//! Every counter lands in [`maxwarp_obs::global()`], so a host embedding
//! many simulated GPUs (the serve worker pool, the bench harness) sees one
//! aggregate view of device-side events: faults and watchdog trips, chaos
//! injections, and sanitizer/analyzer finding counts. Everything here is a
//! **pure observer** — recording never changes kernel results, stats, or
//! error propagation — and the whole module is inert when `MAXWARP_OBS=0`
//! disables the global registry.
//!
//! Hot series (sanitizer/analyzer findings can fire per-op inside kernel
//! loops) cache their [`Counter`] handle in a `OnceLock`, so the steady
//! state is one relaxed atomic add. Rare series (faults, watchdog trips)
//! look up their labeled handle per event.

use crate::fault::SimtError;
use crate::sanitize::Severity;
use maxwarp_obs::Counter;
use std::sync::OnceLock;

/// Record a fault at the moment it converts into a `LaunchError`:
/// `simt_faults_total{kind}` always, plus `simt_watchdog_trips_total{kind}`
/// for the watchdog class.
pub(crate) fn fault_recorded(e: &SimtError) {
    maxwarp_obs::global()
        .counter_with("simt_faults_total", &[("kind", e.kind_label())])
        .inc();
    if let SimtError::Watchdog(k) = e {
        maxwarp_obs::global()
            .counter_with("simt_watchdog_trips_total", &[("kind", k.kind_label())])
            .inc();
    }
}

/// Record one chaos injection: `simt_chaos_injections_total{kind}` with
/// `kind` one of `bit_flip`, `dropped_atomic`, `sched_perturb`.
pub(crate) fn chaos_injected(kind: &'static str) {
    static BIT_FLIP: OnceLock<Counter> = OnceLock::new();
    static DROPPED_ATOMIC: OnceLock<Counter> = OnceLock::new();
    static SCHED_PERTURB: OnceLock<Counter> = OnceLock::new();
    let cell = match kind {
        "bit_flip" => &BIT_FLIP,
        "dropped_atomic" => &DROPPED_ATOMIC,
        _ => &SCHED_PERTURB,
    };
    cell.get_or_init(|| {
        maxwarp_obs::global().counter_with("simt_chaos_injections_total", &[("kind", kind)])
    })
    .inc();
}

/// Record one sanitizer finding occurrence (pre-dedup, so counts match the
/// sanitizer's own `errors`/`warnings` totals):
/// `simt_sanitizer_findings_total{severity}`.
pub(crate) fn sanitizer_finding(severity: Severity) {
    static ERRORS: OnceLock<Counter> = OnceLock::new();
    static WARNINGS: OnceLock<Counter> = OnceLock::new();
    severity_counter(
        severity,
        "simt_sanitizer_findings_total",
        &ERRORS,
        &WARNINGS,
    )
    .inc();
}

/// Record one static-analyzer finding occurrence:
/// `simt_analyzer_findings_total{severity}`.
pub(crate) fn analyzer_finding(severity: Severity) {
    static ERRORS: OnceLock<Counter> = OnceLock::new();
    static WARNINGS: OnceLock<Counter> = OnceLock::new();
    severity_counter(severity, "simt_analyzer_findings_total", &ERRORS, &WARNINGS).inc();
}

fn severity_counter<'a>(
    severity: Severity,
    name: &'static str,
    errors: &'a OnceLock<Counter>,
    warnings: &'a OnceLock<Counter>,
) -> &'a Counter {
    let (cell, label) = match severity {
        Severity::Error => (errors, "error"),
        Severity::Warning => (warnings, "warning"),
    };
    cell.get_or_init(|| maxwarp_obs::global().counter_with(name, &[("severity", label)]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{SimtError, WatchdogKind};

    fn series_value(name: &str, label: (&str, &str)) -> u64 {
        maxwarp_obs::global()
            .series_of(name)
            .into_iter()
            .find(|(labels, _)| labels.iter().any(|(k, v)| k == label.0 && v == label.1))
            .map(|(_, v)| v)
            .unwrap_or(0)
    }

    #[test]
    fn fault_recorded_counts_kind_and_watchdog() {
        // The global registry is shared across parallel tests, so assert
        // monotonic deltas rather than absolute values.
        let before_fault = series_value("simt_faults_total", ("kind", "watchdog"));
        let before_trip = series_value("simt_watchdog_trips_total", ("kind", "cycle_budget"));
        fault_recorded(&SimtError::Watchdog(WatchdogKind::CycleBudget {
            cycles: 10,
            budget: 5,
        }));
        assert!(series_value("simt_faults_total", ("kind", "watchdog")) > before_fault);
        assert!(series_value("simt_watchdog_trips_total", ("kind", "cycle_budget")) > before_trip);
    }

    #[test]
    fn non_watchdog_fault_skips_trip_counter() {
        let before = series_value("simt_faults_total", ("kind", "address_space_exhausted"));
        fault_recorded(&SimtError::AddressSpaceExhausted {
            requested_bytes: 1,
            available_bytes: 0,
        });
        assert!(series_value("simt_faults_total", ("kind", "address_space_exhausted")) > before);
    }

    #[test]
    fn chaos_and_finding_counters_increment() {
        let chaos = series_value("simt_chaos_injections_total", ("kind", "bit_flip"));
        chaos_injected("bit_flip");
        assert!(series_value("simt_chaos_injections_total", ("kind", "bit_flip")) > chaos);

        let san = series_value("simt_sanitizer_findings_total", ("severity", "warning"));
        sanitizer_finding(Severity::Warning);
        assert!(series_value("simt_sanitizer_findings_total", ("severity", "warning")) > san);

        let anl = series_value("simt_analyzer_findings_total", ("severity", "error"));
        analyzer_finding(Severity::Error);
        assert!(series_value("simt_analyzer_findings_total", ("severity", "error")) > anl);
    }
}
