//! The 32-wide warp register model.
//!
//! A [`Lanes<T>`] is one SIMT "register": a value of type `T` per lane of a
//! warp. Warp-synchronous kernels compute on `Lanes` values under a
//! [`Mask`](crate::mask::Mask); the [`WarpCtx`](crate::warp::WarpCtx) methods
//! that operate on them record instruction-issue events for the timing model.

use crate::mask::Mask;

/// Number of lanes in a physical warp. Fixed at 32, matching every NVIDIA
/// architecture from Tesla (CC 1.x) through today.
pub const WARP_SIZE: usize = 32;

/// Base-2 logarithm of [`WARP_SIZE`].
pub const LOG_WARP_SIZE: u32 = 5;

/// One warp register: a `T` per lane.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Lanes<T>(pub [T; WARP_SIZE]);

impl<T: Copy + Default> Default for Lanes<T> {
    #[inline]
    fn default() -> Self {
        Lanes([T::default(); WARP_SIZE])
    }
}

impl<T: Copy> Lanes<T> {
    /// Broadcast `v` to every lane.
    #[inline]
    pub fn splat(v: T) -> Self {
        Lanes([v; WARP_SIZE])
    }

    /// Build from a per-lane function.
    #[inline]
    pub fn from_fn(f: impl FnMut(usize) -> T) -> Self {
        Lanes(std::array::from_fn(f))
    }

    /// Value held by lane `lane`.
    #[inline]
    pub fn get(&self, lane: usize) -> T {
        self.0[lane]
    }

    /// Set lane `lane` to `v`.
    #[inline]
    pub fn set(&mut self, lane: usize, v: T) {
        self.0[lane] = v;
    }

    /// Per-lane map (no instruction-issue recording; use `WarpCtx` ops in
    /// kernels so the cost is accounted).
    #[inline]
    pub fn map<U: Copy + Default>(&self, mut f: impl FnMut(T) -> U) -> Lanes<U> {
        Lanes(std::array::from_fn(|l| f(self.0[l])))
    }

    /// Per-lane zip-map.
    #[inline]
    pub fn zip<U: Copy, V: Copy + Default>(
        &self,
        other: &Lanes<U>,
        mut f: impl FnMut(T, U) -> V,
    ) -> Lanes<V> {
        Lanes(std::array::from_fn(|l| f(self.0[l], other.0[l])))
    }

    /// Lane-wise select: active lanes take `self`, inactive take `other`.
    #[inline]
    pub fn select(&self, mask: Mask, other: &Lanes<T>) -> Lanes<T> {
        Lanes(std::array::from_fn(|l| {
            if mask.get(l) {
                self.0[l]
            } else {
                other.0[l]
            }
        }))
    }

    /// Evaluate a predicate on the active lanes, yielding a mask. Inactive
    /// lanes are always clear in the result.
    #[inline]
    pub fn test(&self, mask: Mask, mut pred: impl FnMut(T) -> bool) -> Mask {
        Mask::from_fn(|l| mask.get(l) && pred(self.0[l]))
    }

    /// Iterator over `(lane, value)` pairs of active lanes.
    #[inline]
    pub fn iter_active(&self, mask: Mask) -> impl Iterator<Item = (usize, T)> + '_ {
        mask.iter().map(move |l| (l, self.0[l]))
    }
}

impl Lanes<u32> {
    /// `[0, 1, ..., 31]` — the lane-id register.
    #[inline]
    pub fn lane_ids() -> Self {
        Lanes(std::array::from_fn(|l| l as u32))
    }

    /// Sum of values on active lanes (functional helper — kernels should use
    /// `WarpCtx::reduce_add` so reduction-tree cost is recorded).
    #[inline]
    pub fn sum_active(&self, mask: Mask) -> u64 {
        mask.iter().map(|l| self.0[l] as u64).sum()
    }

    /// Max of values on active lanes, or `None` if the mask is empty.
    #[inline]
    pub fn max_active(&self, mask: Mask) -> Option<u32> {
        mask.iter().map(|l| self.0[l]).max()
    }

    /// Min of values on active lanes, or `None` if the mask is empty.
    #[inline]
    pub fn min_active(&self, mask: Mask) -> Option<u32> {
        mask.iter().map(|l| self.0[l]).min()
    }
}

impl<T: Copy + std::fmt::Debug> std::fmt::Debug for Lanes<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Lanes{:?}", &self.0[..])
    }
}

/// Types that can live in simulated device memory.
///
/// Device memory is modeled as an array of 32-bit words (the natural access
/// granularity of the paper-era GPUs for graph data: vertex ids, offsets,
/// levels, and `f32` ranks are all 4 bytes). A `DeviceWord` converts to and
/// from its raw word.
pub trait DeviceWord: Copy + Default + PartialEq + std::fmt::Debug + 'static {
    /// Raw 32-bit representation.
    fn to_word(self) -> u32;
    /// Recover the value from its raw representation.
    fn from_word(w: u32) -> Self;
}

impl DeviceWord for u32 {
    #[inline]
    fn to_word(self) -> u32 {
        self
    }
    #[inline]
    fn from_word(w: u32) -> Self {
        w
    }
}

impl DeviceWord for i32 {
    #[inline]
    fn to_word(self) -> u32 {
        self as u32
    }
    #[inline]
    fn from_word(w: u32) -> Self {
        w as i32
    }
}

impl DeviceWord for f32 {
    #[inline]
    fn to_word(self) -> u32 {
        self.to_bits()
    }
    #[inline]
    fn from_word(w: u32) -> Self {
        f32::from_bits(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splat_and_get() {
        let v = Lanes::splat(7u32);
        for l in 0..WARP_SIZE {
            assert_eq!(v.get(l), 7);
        }
    }

    #[test]
    fn lane_ids_are_identity() {
        let ids = Lanes::lane_ids();
        for l in 0..WARP_SIZE {
            assert_eq!(ids.get(l), l as u32);
        }
    }

    #[test]
    fn select_respects_mask() {
        let a = Lanes::splat(1u32);
        let b = Lanes::splat(2u32);
        let m = Mask::first(10);
        let s = a.select(m, &b);
        for l in 0..WARP_SIZE {
            assert_eq!(s.get(l), if l < 10 { 1 } else { 2 });
        }
    }

    #[test]
    fn test_pred_clears_inactive() {
        let ids = Lanes::lane_ids();
        let m = ids.test(Mask::first(8), |v| v % 2 == 0);
        assert_eq!(m.count(), 4); // 0,2,4,6
        assert!(!m.get(10)); // inactive even lane stays clear
    }

    #[test]
    fn reductions() {
        let ids = Lanes::lane_ids();
        assert_eq!(ids.sum_active(Mask::FULL), (0..32).sum::<u64>());
        assert_eq!(ids.max_active(Mask::first(5)), Some(4));
        assert_eq!(ids.min_active(Mask::NONE), None);
    }

    #[test]
    fn zip_and_map() {
        let a = Lanes::from_fn(|l| l as u32);
        let b = Lanes::splat(10u32);
        let c = a.zip(&b, |x, y| x + y);
        assert_eq!(c.get(5), 15);
        let d = c.map(|x| x * 2);
        assert_eq!(d.get(5), 30);
    }

    #[test]
    fn device_word_roundtrip() {
        assert_eq!(u32::from_word(42u32.to_word()), 42);
        assert_eq!(i32::from_word((-7i32).to_word()), -7);
        let f = -3.25f32;
        assert_eq!(f32::from_word(f.to_word()), f);
    }

    #[test]
    fn iter_active_pairs() {
        let ids = Lanes::lane_ids();
        let pairs: Vec<(usize, u32)> = ids.iter_active(Mask::lane(3).or(Mask::lane(9))).collect();
        assert_eq!(pairs, vec![(3, 3), (9, 9)]);
    }
}
