//! Cycle-level timing engine.
//!
//! Replays instruction traces through a machine model:
//!
//! * blocks are dispatched to SMs as occupancy slots free up;
//! * each SM issues `issue_width` instructions per cycle, round-robin among
//!   its ready warps (ready = previous instruction's latency has elapsed) —
//!   this is the latency-hiding mechanism that makes resident-warp count
//!   matter;
//! * global-memory transactions are serviced by a device-wide DRAM channel
//!   at `dram_cycles_per_transaction` each (the bandwidth limit), then incur
//!   `mem_latency` before the warp may continue;
//! * shared-memory accesses pay `shared_latency` plus bank-conflict passes;
//! * atomics pay DRAM service plus `atomic_replay_cycles` per same-address
//!   replay;
//! * barriers rendezvous all live warps of a block.
//!
//! The engine also supports *dynamic work queues* (the paper's dynamic
//! workload distribution): a shared FIFO of warp-sized task traces that
//! resident warps drain as they go idle, modeling `atomicAdd`-based chunk
//! fetching. Static chunk schedules are expressed as fixed per-warp streams
//! of the same task traces.

use crate::config::GpuConfig;
use crate::trace::{KernelTrace, Op, WarpTrace};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Errors detected while setting up the timing simulation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TimingError {
    /// Block cannot fit on an SM at all (too many warps or too much shared
    /// memory) — a real launch would fail with `cudaErrorInvalidValue`.
    ZeroOccupancy {
        block_threads: u32,
        shared_words: u32,
    },
    /// A dynamic-queue task trace contains a barrier, which has no defined
    /// semantics for warp-level tasks.
    BarrierInQueueTask,
    /// Some warps of a block parked at a `__syncthreads` that the block's
    /// other warps retired without ever reaching — on hardware the block
    /// hangs until the driver's watchdog kills it. `parked_warps` are
    /// in-block warp ids.
    BarrierDeadlock {
        block: u32,
        parked_warps: Vec<u32>,
        retired_warps: u32,
    },
}

impl std::fmt::Display for TimingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TimingError::ZeroOccupancy {
                block_threads,
                shared_words,
            } => write!(
                f,
                "block of {block_threads} threads with {shared_words} shared words fits on no SM"
            ),
            TimingError::BarrierInQueueTask => {
                write!(f, "dynamic-queue task traces must not contain barriers")
            }
            TimingError::BarrierDeadlock {
                block,
                parked_warps,
                retired_warps,
            } => write!(
                f,
                "barrier deadlock in block {block}: warps {parked_warps:?} parked at a barrier \
                 {retired_warps} other warp(s) retired without reaching"
            ),
        }
    }
}

impl std::error::Error for TimingError {}

/// Workload description for the timing engine.
pub struct TimingInput<'a> {
    /// `blocks[b][w]` = the fixed stream of traces warp `w` of block `b`
    /// executes in order. For an ordinary kernel launch each warp has
    /// exactly one trace.
    pub blocks: Vec<Vec<Vec<&'a WarpTrace>>>,
    /// Threads per block (for occupancy).
    pub block_threads: u32,
    /// Shared-memory words per block (for occupancy).
    pub shared_words_per_block: u32,
    /// Shared dynamic work queue: after a warp exhausts its fixed stream it
    /// pulls task traces from this FIFO until empty. Empty vec = pure
    /// static execution.
    pub queue: Vec<&'a WarpTrace>,
}

/// Where one SM's cycles went, partitioned exactly: the six buckets of any
/// SM sum to the launch's total cycles. Every cycle of the launch interval
/// is either an issue cycle (the SM issued at least one instruction), a
/// *stall* gap between two issues — attributed to whatever latency the
/// gap-ending warp was waiting out — or idle time before the SM's first /
/// after its last issue (dispatch wait, drain, and chip-level imbalance:
/// SMs that run out of work sit in `idle` until the slowest SM finishes,
/// which is the paper's Figure-1 inter-warp/inter-SM imbalance made
/// visible).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StallBreakdown {
    /// Cycles with at least one instruction issued, plus gaps spent waiting
    /// on ALU pipeline latency (issue/compute-bound time).
    pub issue: u64,
    /// Gaps ended by a warp returning from a global-memory access (DRAM
    /// service + round-trip latency), including dynamic-queue task fetches.
    pub mem_stall: u64,
    /// Gaps ended by a warp serializing same-address atomic replays.
    pub atomic_stall: u64,
    /// Gaps ended by a warp replaying shared-memory bank conflicts.
    pub bank_stall: u64,
    /// Gaps ended by a warp released from a block-wide barrier.
    pub barrier_stall: u64,
    /// Cycles before the SM's first issue and after its last: block
    /// dispatch wait, final-latency drain, and tail/imbalance idling.
    pub idle: u64,
}

impl StallBreakdown {
    /// Sum of all buckets — equals the launch's total cycles for every SM.
    pub fn total(&self) -> u64 {
        self.issue
            + self.mem_stall
            + self.atomic_stall
            + self.bank_stall
            + self.barrier_stall
            + self.idle
    }

    /// Bucket-wise addition (for accumulating reports across launches).
    pub fn add(&mut self, other: &StallBreakdown) {
        self.issue += other.issue;
        self.mem_stall += other.mem_stall;
        self.atomic_stall += other.atomic_stall;
        self.bank_stall += other.bank_stall;
        self.barrier_stall += other.barrier_stall;
        self.idle += other.idle;
    }
}

/// One warp's lifetime within a launch, for timeline (Chrome-trace) export:
/// first issue to retirement, with the instructions it issued.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct WarpSpan {
    /// SM the warp's block ran on.
    pub sm: u32,
    /// Block index in the grid.
    pub block: u32,
    /// Warp index within the block.
    pub warp_in_block: u32,
    /// Cycle of the warp's first instruction issue.
    pub start: u64,
    /// Cycle the warp retired (last completion it contributed).
    pub end: u64,
    /// Instructions the warp issued.
    pub instructions: u64,
}

/// Detailed output of a timing simulation.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimingReport {
    /// Total execution cycles (max completion over all warps).
    pub cycles: u64,
    /// Instructions issued per SM — the load-balance view across the chip.
    pub sm_instructions: Vec<u64>,
    /// Cycles the DRAM channel spent servicing transactions.
    pub dram_busy_cycles: u64,
    /// Per-SM cycle attribution; each entry's buckets sum to `cycles`.
    pub sm_breakdown: Vec<StallBreakdown>,
}

impl TimingReport {
    /// Fraction of cycles the DRAM channel was busy (1.0 = bandwidth
    /// bound).
    pub fn dram_utilization(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.dram_busy_cycles as f64 / self.cycles as f64
    }

    /// Max-over-mean of per-SM issued instructions (1.0 = perfectly
    /// balanced chip).
    pub fn sm_imbalance(&self) -> f64 {
        let busy: Vec<u64> = self.sm_instructions.to_vec();
        let total: u64 = busy.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let mean = total as f64 / busy.len() as f64;
        busy.iter().max().copied().unwrap_or(0) as f64 / mean
    }

    /// Bucket-wise sum of every SM's stall breakdown. Totals
    /// `cycles × num_sms` (each SM's buckets partition the launch interval).
    pub fn breakdown_total(&self) -> StallBreakdown {
        let mut total = StallBreakdown::default();
        for b in &self.sm_breakdown {
            total.add(b);
        }
        total
    }

    /// Fold another launch's report into this one: cycles and DRAM busy
    /// time add up, per-SM instruction counts and stall buckets add
    /// element-wise. This is the multi-launch (e.g. one BFS level per
    /// launch) aggregation; the buckets-sum-to-cycles invariant holds for
    /// the accumulated report too.
    pub fn accumulate(&mut self, other: &TimingReport) {
        self.cycles += other.cycles;
        self.dram_busy_cycles += other.dram_busy_cycles;
        if self.sm_instructions.len() < other.sm_instructions.len() {
            self.sm_instructions.resize(other.sm_instructions.len(), 0);
        }
        for (a, b) in self.sm_instructions.iter_mut().zip(&other.sm_instructions) {
            *a += b;
        }
        if self.sm_breakdown.len() < other.sm_breakdown.len() {
            self.sm_breakdown
                .resize(other.sm_breakdown.len(), StallBreakdown::default());
        }
        for (a, b) in self.sm_breakdown.iter_mut().zip(&other.sm_breakdown) {
            a.add(b);
        }
    }
}

/// Simulate the workload; returns total execution cycles.
pub fn simulate(input: &TimingInput<'_>, cfg: &GpuConfig) -> Result<u64, TimingError> {
    Ok(simulate_report(input, cfg)?.cycles)
}

/// Simulate the workload and return the detailed [`TimingReport`].
pub fn simulate_report(
    input: &TimingInput<'_>,
    cfg: &GpuConfig,
) -> Result<TimingReport, TimingError> {
    Ok(simulate_spans(input, cfg)?.0)
}

/// Simulate the workload and return the report plus one [`WarpSpan`] per
/// resident warp that issued at least one instruction — the timeline view.
pub fn simulate_spans(
    input: &TimingInput<'_>,
    cfg: &GpuConfig,
) -> Result<(TimingReport, Vec<WarpSpan>), TimingError> {
    Engine::new(input, cfg)?.run()
}

/// Convenience wrapper: time an ordinary kernel launch trace.
pub fn time_kernel_trace(trace: &KernelTrace, cfg: &GpuConfig) -> Result<u64, TimingError> {
    Ok(time_kernel_trace_spans(trace, cfg)?.0.cycles)
}

/// Time an ordinary kernel launch trace, returning the detailed report and
/// per-warp timeline spans.
pub fn time_kernel_trace_spans(
    trace: &KernelTrace,
    cfg: &GpuConfig,
) -> Result<(TimingReport, Vec<WarpSpan>), TimingError> {
    let blocks = trace
        .blocks
        .iter()
        .map(|b| b.warps.iter().map(|w| vec![w]).collect())
        .collect();
    simulate_spans(
        &TimingInput {
            blocks,
            block_threads: trace.block_threads,
            shared_words_per_block: trace.shared_words_per_block,
            queue: Vec::new(),
        },
        cfg,
    )
}

/// What a warp that is not ready to issue is waiting on. Set when the warp
/// is pushed onto the ready heap; read when it next issues, to attribute
/// the preceding no-issue gap on its SM to a stall bucket.
#[derive(Clone, Copy, Debug)]
enum Wait {
    /// Waiting for its block to be dispatched to an SM.
    Dispatch,
    /// ALU pipeline latency.
    Compute,
    /// Global-memory round trip (loads, stores, cached-load misses, and
    /// dynamic-queue task fetches).
    Mem,
    /// Atomic DRAM access plus same-address replay serialization.
    Atomic,
    /// Shared-memory latency and bank-conflict replay passes.
    Shared,
    /// Block-wide barrier rendezvous.
    Barrier,
}

impl Wait {
    fn of_op(op: Op) -> Wait {
        match op {
            Op::Alu { .. } => Wait::Compute,
            Op::LdGlobal { .. } | Op::StGlobal { .. } | Op::LdCached { .. } => Wait::Mem,
            Op::Atomic { .. } => Wait::Atomic,
            Op::Shared { .. } => Wait::Shared,
            Op::Bar | Op::San => Wait::Compute,
        }
    }
}

struct WarpRt<'a> {
    stream: Vec<&'a WarpTrace>,
    cur_trace: usize,
    cur_op: usize,
    block: u32,
    finished: bool,
    /// Why the warp is not ready (attribution for the gap its next issue ends).
    wait: Wait,
    /// Cycle of the warp's first instruction issue, if any.
    first_issue: Option<u64>,
    /// Latest completion time the warp contributed.
    last_time: u64,
    /// Instructions the warp issued.
    instructions: u64,
}

impl<'a> WarpRt<'a> {
    fn current_op(&self) -> Option<Op> {
        self.stream
            .get(self.cur_trace)
            .and_then(|t| t.ops.get(self.cur_op))
            .copied()
    }

    /// Advance past the current op; skips empty traces and sanitizer
    /// markers. Returns true if another op exists in the fixed stream.
    fn advance(&mut self) -> bool {
        self.cur_op += 1;
        self.normalize()
    }

    /// Position at the first real op, skipping empty traces and sanitizer
    /// markers (which cost nothing); false if none.
    fn normalize(&mut self) -> bool {
        loop {
            match self.stream.get(self.cur_trace) {
                None => return false,
                Some(t) if self.cur_op >= t.ops.len() => {
                    self.cur_trace += 1;
                    self.cur_op = 0;
                }
                Some(t) if matches!(t.ops[self.cur_op], Op::San) => self.cur_op += 1,
                Some(_) => return true,
            }
        }
    }
}

struct BlockRt {
    warps: Vec<u32>,
    sm: u32,
    live: u32,
    barrier_arrived: u32,
    barrier_waiting: Vec<u32>,
}

struct Engine<'a> {
    cfg: &'a GpuConfig,
    warps: Vec<WarpRt<'a>>,
    blocks: Vec<BlockRt>,
    queue: VecDeque<&'a WarpTrace>,
    /// Min-heap of (ready-to-issue time, warp index).
    heap: BinaryHeap<Reverse<(u64, u32)>>,
    sm_cycle: Vec<u64>,
    sm_issued_in_cycle: Vec<u32>,
    sm_free_slots: Vec<u32>,
    pending_blocks: VecDeque<u32>,
    dram_free: u64,
    dram_busy: u64,
    end_time: u64,
    sm_instructions: Vec<u64>,
    /// Per-SM cycle of the most recent issue, if any — the gap-attribution
    /// anchor.
    sm_last_issue: Vec<Option<u64>>,
    sm_breakdown: Vec<StallBreakdown>,
    /// First barrier deadlock observed, if any. The engine releases the
    /// stuck barrier so the event loop can drain, then `run` reports this.
    deadlock: Option<TimingError>,
}

impl<'a> Engine<'a> {
    fn new(input: &TimingInput<'a>, cfg: &'a GpuConfig) -> Result<Self, TimingError> {
        for t in &input.queue {
            if t.ops.iter().any(|o| matches!(o, Op::Bar)) {
                return Err(TimingError::BarrierInQueueTask);
            }
        }
        let slots = cfg.blocks_per_sm(input.block_threads, input.shared_words_per_block);
        if slots == 0 && !input.blocks.is_empty() {
            return Err(TimingError::ZeroOccupancy {
                block_threads: input.block_threads,
                shared_words: input.shared_words_per_block,
            });
        }

        let mut warps = Vec::new();
        let mut blocks = Vec::new();
        for (b, warp_streams) in input.blocks.iter().enumerate() {
            let mut ids = Vec::with_capacity(warp_streams.len());
            for stream in warp_streams {
                ids.push(warps.len() as u32);
                warps.push(WarpRt {
                    stream: stream.clone(),
                    cur_trace: 0,
                    cur_op: 0,
                    block: b as u32,
                    finished: false,
                    wait: Wait::Dispatch,
                    first_issue: None,
                    last_time: 0,
                    instructions: 0,
                });
            }
            blocks.push(BlockRt {
                live: ids.len() as u32,
                warps: ids,
                sm: u32::MAX,
                barrier_arrived: 0,
                barrier_waiting: Vec::new(),
            });
        }

        let mut eng = Engine {
            cfg,
            warps,
            blocks,
            queue: input.queue.iter().copied().collect(),
            heap: BinaryHeap::new(),
            sm_cycle: vec![0; cfg.num_sms as usize],
            sm_issued_in_cycle: vec![0; cfg.num_sms as usize],
            sm_free_slots: vec![slots; cfg.num_sms as usize],
            pending_blocks: (0..input.blocks.len() as u32).collect(),
            dram_free: 0,
            dram_busy: 0,
            end_time: 0,
            sm_instructions: vec![0; cfg.num_sms as usize],
            sm_last_issue: vec![None; cfg.num_sms as usize],
            sm_breakdown: vec![StallBreakdown::default(); cfg.num_sms as usize],
            deadlock: None,
        };

        // Initial dispatch: fill SMs round-robin at t = 0.
        let mut sm = 0u32;
        let mut scanned_full_round = 0;
        while !eng.pending_blocks.is_empty() && scanned_full_round < cfg.num_sms {
            if eng.sm_free_slots[sm as usize] > 0 {
                let Some(b) = eng.pending_blocks.pop_front() else {
                    break;
                };
                eng.dispatch_block(b, sm, 0);
                scanned_full_round = 0;
            } else {
                scanned_full_round += 1;
            }
            sm = (sm + 1) % cfg.num_sms;
        }
        Ok(eng)
    }

    fn dispatch_block(&mut self, b: u32, sm: u32, t: u64) {
        self.sm_free_slots[sm as usize] -= 1;
        self.blocks[b as usize].sm = sm;
        let warp_ids = self.blocks[b as usize].warps.clone();
        for wi in warp_ids {
            self.start_or_finish_warp(wi, t);
        }
    }

    /// Give warp `wi` something to run at time `t`, pulling from the dynamic
    /// queue if its fixed stream is exhausted; otherwise retire it. A queue
    /// pull models the global-counter `atomicAdd` fetch of the paper's
    /// dynamic workload distribution, so it costs one DRAM transaction plus
    /// the round-trip memory latency before the pulled task can issue.
    fn start_or_finish_warp(&mut self, wi: u32, t: u64) {
        enum Next {
            Resume,
            Pulled,
            Done,
        }
        let next = {
            let w = &mut self.warps[wi as usize];
            if w.normalize() {
                Next::Resume
            } else if let Some(task) = self.queue.pop_front() {
                w.stream.push(task);
                if w.normalize() {
                    Next::Pulled
                } else {
                    Next::Done
                }
            } else {
                Next::Done
            }
        };
        match next {
            Next::Resume => self.heap.push(Reverse((t, wi))),
            Next::Pulled => {
                // The task fetch is a global-memory round trip.
                self.warps[wi as usize].wait = Wait::Mem;
                let ready = self.dram_service(t, 1) + self.cfg.mem_latency;
                self.heap.push(Reverse((ready, wi)));
            }
            Next::Done => self.finish_warp(wi, t),
        }
    }

    fn finish_warp(&mut self, wi: u32, t: u64) {
        let w = &mut self.warps[wi as usize];
        debug_assert!(!w.finished);
        w.finished = true;
        w.last_time = w.last_time.max(t);
        let b = w.block as usize;
        self.end_time = self.end_time.max(t);
        let block = &mut self.blocks[b];
        block.live -= 1;
        if block.live == 0 {
            // Block retires; its SM slot frees and a pending block launches.
            let sm = block.sm;
            self.sm_free_slots[sm as usize] += 1;
            if let Some(nb) = self.pending_blocks.pop_front() {
                self.dispatch_block(nb, sm, t);
            }
        } else if block.barrier_arrived == block.live && block.barrier_arrived > 0 {
            // The finished warp was the last one others were waiting on:
            // the parked warps would wait forever. Record the deadlock,
            // then release the barrier so the event loop can drain.
            if self.deadlock.is_none() {
                let first = block.warps[0];
                let parked_warps = block.barrier_waiting.iter().map(|&wi| wi - first).collect();
                let retired_warps = block.warps.len() as u32 - block.live;
                self.deadlock = Some(TimingError::BarrierDeadlock {
                    block: b as u32,
                    parked_warps,
                    retired_warps,
                });
            }
            self.release_barrier(b, t);
        }
    }

    fn release_barrier(&mut self, b: usize, t: u64) {
        let waiting = std::mem::take(&mut self.blocks[b].barrier_waiting);
        self.blocks[b].barrier_arrived = 0;
        for wi in waiting {
            self.warps[wi as usize].wait = Wait::Barrier;
            let has_more = self.warps[wi as usize].advance();
            if has_more {
                self.heap.push(Reverse((t, wi)));
            } else {
                self.start_or_finish_warp(wi, t);
            }
        }
    }

    fn run(mut self) -> Result<(TimingReport, Vec<WarpSpan>), TimingError> {
        while let Some(Reverse((t, wi))) = self.heap.pop() {
            let sm = self.blocks[self.warps[wi as usize].block as usize].sm as usize;
            // Enforce the SM issue port: `issue_width` issues per cycle.
            let mut t_iss = t.max(self.sm_cycle[sm]);
            if t_iss == self.sm_cycle[sm] && self.sm_issued_in_cycle[sm] >= self.cfg.issue_width {
                t_iss += 1;
            }
            if t_iss > t {
                // Not our turn yet; retry at the earliest legal slot.
                self.heap.push(Reverse((t_iss, wi)));
                continue;
            }
            // A warp in the heap always has a current op; a depleted warp
            // would have been retired instead of re-pushed. Drop it if the
            // invariant is ever violated rather than poisoning the engine.
            let Some(op) = self.warps[wi as usize].current_op() else {
                debug_assert!(false, "warp in heap must have a current op");
                continue;
            };
            // Cycle attribution: the first issue of an SM cycle closes the
            // preceding no-issue gap. During that gap every resident warp
            // was waiting out some latency (had one been ready, it would
            // have issued — the port was free), so charge the whole gap to
            // what the gap-ending warp was waiting on. One refinement: if
            // the gap ends with a straggler arriving at a barrier that
            // already has warps parked, the gap is barrier imbalance — the
            // early arrivers were done and waiting; the straggler's exposed
            // latency is the rendezvous cost (the paper's inter-warp
            // imbalance at synchronization points).
            let first_in_cycle = t_iss > self.sm_cycle[sm] || self.sm_issued_in_cycle[sm] == 0;
            if first_in_cycle {
                let gap = match self.sm_last_issue[sm] {
                    Some(prev) => t_iss - prev - 1,
                    None => t_iss,
                };
                if gap > 0 {
                    let straggler_bar = matches!(op, Op::Bar)
                        && self.blocks[self.warps[wi as usize].block as usize].barrier_arrived > 0;
                    let bucket = &mut self.sm_breakdown[sm];
                    if straggler_bar {
                        bucket.barrier_stall += gap;
                    } else {
                        match self.warps[wi as usize].wait {
                            Wait::Dispatch => bucket.idle += gap,
                            Wait::Compute => bucket.issue += gap,
                            Wait::Mem => bucket.mem_stall += gap,
                            Wait::Atomic => bucket.atomic_stall += gap,
                            Wait::Shared => bucket.bank_stall += gap,
                            Wait::Barrier => bucket.barrier_stall += gap,
                        }
                    }
                }
                self.sm_breakdown[sm].issue += 1;
                self.sm_last_issue[sm] = Some(t_iss);
            }
            if t_iss > self.sm_cycle[sm] {
                self.sm_cycle[sm] = t_iss;
                self.sm_issued_in_cycle[sm] = 0;
            }
            self.sm_issued_in_cycle[sm] += 1;
            self.sm_instructions[sm] += 1;

            {
                let w = &mut self.warps[wi as usize];
                if w.first_issue.is_none() {
                    w.first_issue = Some(t_iss);
                }
                w.instructions += 1;
                w.wait = Wait::of_op(op);
            }

            match op {
                Op::Bar => {
                    let b = self.warps[wi as usize].block as usize;
                    self.blocks[b].barrier_arrived += 1;
                    self.blocks[b].barrier_waiting.push(wi);
                    self.end_time = self.end_time.max(t_iss + 1);
                    self.warps[wi as usize].last_time = t_iss + 1;
                    if self.blocks[b].barrier_arrived == self.blocks[b].live {
                        self.release_barrier(b, t_iss + 1);
                    }
                }
                _ => {
                    let done = self.completion_time(t_iss, op);
                    self.end_time = self.end_time.max(done);
                    self.warps[wi as usize].last_time = done;
                    let has_more = self.warps[wi as usize].advance();
                    if has_more {
                        self.heap.push(Reverse((done, wi)));
                    } else {
                        self.start_or_finish_warp(wi, done);
                    }
                }
            }
        }
        if let Some(e) = self.deadlock.take() {
            return Err(e);
        }
        debug_assert!(
            self.pending_blocks.is_empty(),
            "all blocks must have been dispatched"
        );
        debug_assert!(
            self.warps.iter().all(|w| w.finished),
            "all warps must retire"
        );
        // Close each SM's books: everything after its last issue (or the
        // whole launch, if it never issued) is drain/imbalance idle time.
        for sm in 0..self.sm_breakdown.len() {
            let tail = match self.sm_last_issue[sm] {
                Some(prev) => self.end_time.saturating_sub(prev + 1),
                None => self.end_time,
            };
            self.sm_breakdown[sm].idle += tail;
        }
        let spans = self
            .warps
            .iter()
            .enumerate()
            .filter_map(|(wi, w)| {
                let start = w.first_issue?;
                let block = &self.blocks[w.block as usize];
                Some(WarpSpan {
                    sm: block.sm,
                    block: w.block,
                    warp_in_block: wi as u32 - block.warps[0],
                    start,
                    end: w.last_time.max(start + 1),
                    instructions: w.instructions,
                })
            })
            .collect();
        Ok((
            TimingReport {
                cycles: self.end_time,
                sm_instructions: self.sm_instructions,
                dram_busy_cycles: self.dram_busy,
                sm_breakdown: self.sm_breakdown,
            },
            spans,
        ))
    }

    fn completion_time(&mut self, t_iss: u64, op: Op) -> u64 {
        let cfg = self.cfg;
        match op {
            Op::Alu { .. } => t_iss + cfg.alu_latency,
            Op::LdGlobal { tx, .. } | Op::StGlobal { tx, .. } => {
                self.dram_service(t_iss, tx as u64) + cfg.mem_latency
            }
            Op::LdCached { hits, misses, .. } => {
                let hit_done = if hits > 0 {
                    t_iss + cfg.l2_hit_latency
                } else {
                    t_iss
                };
                let miss_done = if misses > 0 {
                    self.dram_service(t_iss, misses as u64) + cfg.mem_latency
                } else {
                    t_iss
                };
                hit_done.max(miss_done).max(t_iss + 1)
            }
            Op::Shared { cost, .. } => t_iss + cfg.shared_latency + (cost as u64).saturating_sub(1),
            Op::Atomic { tx, replays, .. } => {
                self.dram_service(t_iss, tx as u64)
                    + cfg.mem_latency
                    + replays as u64 * cfg.atomic_replay_cycles
            }
            Op::Bar => unreachable!("barriers handled by caller"),
            Op::San => unreachable!("sanitizer markers are skipped by normalize()"),
        }
    }

    /// Occupy the device-wide DRAM channel for `tx` transactions starting no
    /// earlier than `t`; returns the service completion time.
    fn dram_service(&mut self, t: u64, tx: u64) -> u64 {
        let service = tx * self.cfg.dram_cycles_per_transaction;
        self.dram_free = self.dram_free.max(t) + service;
        self.dram_busy += service;
        self.dram_free
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{BlockTrace, WarpTrace};

    fn alu_trace(n: usize) -> WarpTrace {
        WarpTrace {
            ops: vec![Op::Alu { active: 32 }; n],
        }
    }

    fn cfg() -> GpuConfig {
        GpuConfig::tiny_test()
    }

    fn one_block_input<'a>(warps: &'a [WarpTrace], threads: u32) -> TimingInput<'a> {
        TimingInput {
            blocks: vec![warps.iter().map(|w| vec![w]).collect()],
            block_threads: threads,
            shared_words_per_block: 0,
            queue: Vec::new(),
        }
    }

    #[test]
    fn empty_workload_is_zero_cycles() {
        let input = TimingInput {
            blocks: vec![],
            block_threads: 32,
            shared_words_per_block: 0,
            queue: Vec::new(),
        };
        assert_eq!(simulate(&input, &cfg()).unwrap(), 0);
    }

    #[test]
    fn single_warp_alu_chain_is_serial() {
        let t = [alu_trace(10)];
        let input = one_block_input(&t, 32);
        // Each ALU op: issue then alu_latency (4) before the next; final op
        // completes at ~10*4.
        let cycles = simulate(&input, &cfg()).unwrap();
        assert!((10 * 4..=10 * 4 + 10).contains(&cycles), "{cycles}");
    }

    #[test]
    fn more_warps_hide_alu_latency() {
        let one = [alu_trace(100)];
        let four: Vec<WarpTrace> = (0..4).map(|_| alu_trace(100)).collect();
        let c1 = simulate(&one_block_input(&one, 32), &cfg()).unwrap();
        let c4 = simulate(&one_block_input(&four, 128), &cfg()).unwrap();
        // 4 warps interleave in the latency shadow: far less than 4x slower.
        assert!(c4 < c1 * 2, "c1={c1} c4={c4}");
        assert!(
            c4 >= c1,
            "more total work cannot be faster: c1={c1} c4={c4}"
        );
    }

    #[test]
    fn memory_bound_workload_limited_by_dram() {
        // One warp, 50 loads of 32 transactions each = 1600 tx at 2
        // cycles/tx = 3200 cycles of pure DRAM service.
        let t = [WarpTrace {
            ops: vec![Op::LdGlobal { active: 32, tx: 32 }; 50],
        }];
        let cycles = simulate(&one_block_input(&t, 32), &cfg()).unwrap();
        assert!(cycles >= 3200, "{cycles}");
    }

    #[test]
    fn coalesced_loads_cheaper_than_scattered() {
        let coalesced = [WarpTrace {
            ops: vec![Op::LdGlobal { active: 32, tx: 1 }; 200],
        }];
        let scattered = [WarpTrace {
            ops: vec![Op::LdGlobal { active: 32, tx: 32 }; 200],
        }];
        let cc = simulate(&one_block_input(&coalesced, 32), &cfg()).unwrap();
        let cs = simulate(&one_block_input(&scattered, 32), &cfg()).unwrap();
        assert!(cs > cc, "scattered {cs} must exceed coalesced {cc}");
    }

    #[test]
    fn barrier_synchronizes_block() {
        // Warp 0 does 100 ALU ops then hits the barrier; warp 1 hits it
        // immediately. Both then do 1 op. Total must reflect warp 1 waiting.
        let mut w0 = alu_trace(100);
        w0.ops.push(Op::Bar);
        w0.ops.push(Op::Alu { active: 32 });
        let mut w1 = alu_trace(0);
        w1.ops.push(Op::Bar);
        w1.ops.push(Op::Alu { active: 32 });
        let warps = [w0, w1];
        let cycles = simulate(&one_block_input(&warps, 64), &cfg()).unwrap();
        assert!(cycles > 100, "{cycles}");
    }

    #[test]
    fn blocks_spread_across_sms() {
        // tiny_test has 2 SMs. Two 1-warp blocks with identical heavy work
        // should take about as long as one (they run on different SMs).
        let w = [alu_trace(1000)];
        let c1 = simulate(&one_block_input(&w, 32), &cfg()).unwrap();
        let t0 = alu_trace(1000);
        let t1 = alu_trace(1000);
        let input2 = TimingInput {
            blocks: vec![vec![vec![&t0]], vec![vec![&t1]]],
            block_threads: 32,
            shared_words_per_block: 0,
            queue: Vec::new(),
        };
        let c2 = simulate(&input2, &cfg()).unwrap();
        assert!(c2 <= c1 + c1 / 4, "c1={c1} c2={c2}");
    }

    #[test]
    fn excess_blocks_queue_for_slots() {
        // 2 SMs x 4 slots = 8 resident blocks; 16 blocks must take ~2x the
        // time of 8.
        let t = alu_trace(500);
        let mk = |n: usize| TimingInput {
            blocks: (0..n).map(|_| vec![vec![&t]]).collect(),
            block_threads: 32,
            shared_words_per_block: 0,
            queue: Vec::new(),
        };
        let c8 = simulate(&mk(8), &cfg()).unwrap();
        let c16 = simulate(&mk(16), &cfg()).unwrap();
        assert!(c16 > c8, "c8={c8} c16={c16}");
        assert!(c16 <= 2 * c8 + 100, "c8={c8} c16={c16}");
    }

    #[test]
    fn zero_occupancy_is_error() {
        let t = [alu_trace(1)];
        let mut input = one_block_input(&t, 32);
        input.shared_words_per_block = u32::MAX;
        assert!(matches!(
            simulate(&input, &cfg()),
            Err(TimingError::ZeroOccupancy { .. })
        ));
    }

    #[test]
    fn barrier_in_queue_task_rejected() {
        let task = WarpTrace { ops: vec![Op::Bar] };
        let input = TimingInput {
            blocks: vec![vec![vec![]]],
            block_threads: 32,
            shared_words_per_block: 0,
            queue: vec![&task],
        };
        assert!(matches!(
            simulate(&input, &cfg()),
            Err(TimingError::BarrierInQueueTask)
        ));
    }

    #[test]
    fn dynamic_queue_is_drained_and_balances() {
        // 8 imbalanced tasks; 2 resident warps pulling dynamically should
        // finish faster than a static split that puts all heavy tasks on one
        // warp.
        let heavy = alu_trace(400);
        let light = alu_trace(10);
        let tasks: Vec<&WarpTrace> = vec![
            &heavy, &heavy, &heavy, &heavy, &light, &light, &light, &light,
        ];
        let dynamic = TimingInput {
            blocks: vec![vec![vec![], vec![]]],
            block_threads: 64,
            shared_words_per_block: 0,
            queue: tasks.clone(),
        };
        let static_bad = TimingInput {
            blocks: vec![vec![
                vec![&heavy, &heavy, &heavy, &heavy],
                vec![&light, &light, &light, &light],
            ]],
            block_threads: 64,
            shared_words_per_block: 0,
            queue: Vec::new(),
        };
        let cd = simulate(&dynamic, &cfg()).unwrap();
        let cs = simulate(&static_bad, &cfg()).unwrap();
        assert!(cd < cs, "dynamic {cd} should beat bad static {cs}");
        // Pulling is not free: the 8 pulls split across 2 warps, so one
        // warp serializes at least 4 counter fetches into its chain.
        let fetch = cfg().mem_latency;
        assert!(
            cd >= 4 * fetch,
            "dynamic {cd} must include queue-fetch cost"
        );
    }

    #[test]
    fn queue_pull_charges_memory_fetch() {
        // One warp, empty fixed stream, 8 one-op tasks: every task arrives
        // via a queue pull, and each pull is a global atomicAdd fetch that
        // costs a DRAM transaction plus the full memory round-trip. The
        // compute itself (~8 ALU ops) is noise next to 8 fetches.
        let task = alu_trace(1);
        let input = TimingInput {
            blocks: vec![vec![vec![]]],
            block_threads: 32,
            shared_words_per_block: 0,
            queue: vec![&task; 8],
        };
        let c = cfg();
        let cycles = simulate(&input, &c).unwrap();
        assert!(
            cycles >= 8 * c.mem_latency,
            "8 queue pulls must cost at least 8 memory fetches: {cycles}"
        );
    }

    #[test]
    fn time_kernel_trace_wrapper() {
        let kt = KernelTrace {
            blocks: vec![BlockTrace {
                warps: vec![alu_trace(5), alu_trace(5)],
            }],
            block_threads: 64,
            shared_words_per_block: 0,
        };
        let cycles = time_kernel_trace(&kt, &cfg()).unwrap();
        assert!(cycles > 0);
    }

    #[test]
    fn monotone_in_work() {
        let short = [alu_trace(10)];
        let long = [alu_trace(20)];
        let cs = simulate(&one_block_input(&short, 32), &cfg()).unwrap();
        let cl = simulate(&one_block_input(&long, 32), &cfg()).unwrap();
        assert!(cl > cs);
    }

    #[test]
    fn report_conserves_instructions_and_dram() {
        let t = WarpTrace {
            ops: vec![
                Op::Alu { active: 32 },
                Op::LdGlobal { active: 32, tx: 4 },
                Op::Atomic {
                    active: 8,
                    tx: 2,
                    replays: 1,
                },
                Op::Alu { active: 16 },
            ],
        };
        let input = TimingInput {
            blocks: (0..6).map(|_| vec![vec![&t], vec![&t]]).collect(),
            block_threads: 64,
            shared_words_per_block: 0,
            queue: Vec::new(),
        };
        let cfg = cfg();
        let report = simulate_report(&input, &cfg).unwrap();
        let total: u64 = report.sm_instructions.iter().sum();
        assert_eq!(total, 12 * 4, "every op issued exactly once");
        // 12 warps x 6 tx each at 2 cycles/tx.
        assert_eq!(report.dram_busy_cycles, 12 * 6 * 2);
        assert!(report.dram_utilization() > 0.0 && report.dram_utilization() <= 1.0);
        assert!(report.sm_imbalance() >= 1.0);
    }

    #[test]
    fn report_on_empty_workload() {
        let input = TimingInput {
            blocks: vec![],
            block_threads: 32,
            shared_words_per_block: 0,
            queue: Vec::new(),
        };
        let r = simulate_report(&input, &cfg()).unwrap();
        assert_eq!(r.cycles, 0);
        assert_eq!(r.dram_utilization(), 0.0);
        assert_eq!(r.sm_imbalance(), 1.0);
    }

    #[test]
    fn single_sm_takes_all_instructions() {
        let mut one_sm = cfg();
        one_sm.num_sms = 1;
        let t = alu_trace(50);
        let input = TimingInput {
            blocks: vec![vec![vec![&t]]],
            block_threads: 32,
            shared_words_per_block: 0,
            queue: Vec::new(),
        };
        let r = simulate_report(&input, &one_sm).unwrap();
        assert_eq!(r.sm_instructions, vec![50]);
    }

    #[test]
    fn cached_hits_are_faster_than_misses() {
        let cfg = cfg();
        let hit = WarpTrace {
            ops: vec![
                Op::LdCached {
                    active: 32,
                    hits: 1,
                    misses: 0
                };
                50
            ],
        };
        let miss = WarpTrace {
            ops: vec![
                Op::LdCached {
                    active: 32,
                    hits: 0,
                    misses: 1
                };
                50
            ],
        };
        let time = |t: &WarpTrace| {
            simulate(
                &TimingInput {
                    blocks: vec![vec![vec![t]]],
                    block_threads: 32,
                    shared_words_per_block: 0,
                    queue: Vec::new(),
                },
                &cfg,
            )
            .unwrap()
        };
        assert!(
            time(&hit) < time(&miss),
            "hit {} vs miss {}",
            time(&hit),
            time(&miss)
        );
        // Misses consume DRAM bandwidth; hits must not.
        let report = simulate_report(
            &TimingInput {
                blocks: vec![vec![vec![&hit]]],
                block_threads: 32,
                shared_words_per_block: 0,
                queue: Vec::new(),
            },
            &cfg,
        )
        .unwrap();
        assert_eq!(report.dram_busy_cycles, 0);
    }

    #[test]
    fn wider_issue_port_helps_issue_bound_workloads() {
        // 8 warps of pure ALU work saturate a single-issue SM; doubling the
        // issue width should cut the time nearly in half.
        let t = alu_trace(500);
        let mk_cfg = |w: u32| {
            let mut c = cfg();
            c.num_sms = 1;
            c.max_warps_per_sm = 8;
            c.issue_width = w;
            c
        };
        let input = || TimingInput {
            blocks: vec![(0..8).map(|_| vec![&t]).collect()],
            block_threads: 256,
            shared_words_per_block: 0,
            queue: Vec::new(),
        };
        let c1 = simulate(&input(), &mk_cfg(1)).unwrap();
        let c2 = simulate(&input(), &mk_cfg(2)).unwrap();
        assert!(c2 < c1, "dual issue {c2} vs single {c1}");
        assert!(c2 * 3 > c1, "speedup bounded by 2x: {c1} -> {c2}");
    }

    #[test]
    fn san_markers_cost_zero_cycles() {
        let plain = [alu_trace(10)];
        let mut marked = alu_trace(10);
        marked.ops.insert(0, Op::San);
        marked.ops.insert(5, Op::San);
        marked.ops.push(Op::San);
        let m = [marked];
        let cfg = cfg();
        assert_eq!(
            simulate(&one_block_input(&m, 32), &cfg).unwrap(),
            simulate(&one_block_input(&plain, 32), &cfg).unwrap()
        );
        // A trace of only markers retires immediately.
        let only = [WarpTrace {
            ops: vec![Op::San; 3],
        }];
        assert_eq!(simulate(&one_block_input(&only, 32), &cfg).unwrap(), 0);
    }

    /// Every SM's stall buckets must sum exactly to the reported cycles.
    fn assert_buckets_partition(report: &TimingReport) {
        assert_eq!(
            report.sm_breakdown.len(),
            report.sm_instructions.len(),
            "one breakdown per SM"
        );
        for (sm, b) in report.sm_breakdown.iter().enumerate() {
            assert_eq!(
                b.total(),
                report.cycles,
                "SM {sm} buckets {b:?} must sum to {} cycles",
                report.cycles
            );
        }
    }

    #[test]
    fn stall_buckets_partition_cycles_across_workloads() {
        let cfg = cfg();
        // A mixed trace exercising every bucket source: ALU, global loads,
        // atomics with replays, shared-memory conflicts, and a barrier.
        let mut w0 = WarpTrace {
            ops: vec![
                Op::Alu { active: 32 },
                Op::LdGlobal { active: 32, tx: 8 },
                Op::Atomic {
                    active: 16,
                    tx: 4,
                    replays: 6,
                },
                Op::Shared {
                    active: 32,
                    cost: 7,
                },
            ],
        };
        w0.ops.push(Op::Bar);
        w0.ops.push(Op::Alu { active: 32 });
        let mut w1 = alu_trace(3);
        w1.ops.push(Op::Bar);
        w1.ops.push(Op::LdGlobal { active: 32, tx: 2 });
        let warps = [w0, w1];
        let report = simulate_report(&one_block_input(&warps, 64), &cfg).unwrap();
        assert_buckets_partition(&report);
        let total = report.breakdown_total();
        assert!(total.mem_stall > 0, "loads must show up as memory stalls");
        assert!(total.barrier_stall > 0, "barrier wait must be attributed");
        // The idle bucket absorbs the other SM (no block to run) entirely.
        assert!(total.idle >= report.cycles, "second SM idles the whole run");
    }

    #[test]
    fn stall_buckets_partition_with_dynamic_queue() {
        let heavy = alu_trace(400);
        let light = alu_trace(10);
        let tasks: Vec<&WarpTrace> = vec![&heavy, &heavy, &light, &light, &light];
        let input = TimingInput {
            blocks: vec![vec![vec![], vec![]]],
            block_threads: 64,
            shared_words_per_block: 0,
            queue: tasks,
        };
        let report = simulate_report(&input, &cfg()).unwrap();
        assert_buckets_partition(&report);
        // Queue pulls are memory fetches: they must be attributed.
        assert!(report.breakdown_total().mem_stall > 0);
    }

    #[test]
    fn stall_buckets_partition_on_empty_workload() {
        let input = TimingInput {
            blocks: vec![],
            block_threads: 32,
            shared_words_per_block: 0,
            queue: Vec::new(),
        };
        let report = simulate_report(&input, &cfg()).unwrap();
        assert_buckets_partition(&report);
        assert_eq!(report.breakdown_total(), StallBreakdown::default());
    }

    #[test]
    fn memory_bound_run_attributes_mem_stalls() {
        let t = [WarpTrace {
            ops: vec![Op::LdGlobal { active: 32, tx: 32 }; 20],
        }];
        let report = simulate_report(&one_block_input(&t, 32), &cfg()).unwrap();
        assert_buckets_partition(&report);
        let b = &report.sm_breakdown[0];
        assert!(
            b.mem_stall > b.issue,
            "a single-warp load chain is memory-stalled, not issue-bound: {b:?}"
        );
    }

    #[test]
    fn spans_cover_issuing_warps() {
        let warps = [alu_trace(10), alu_trace(30)];
        let (report, spans) = simulate_spans(&one_block_input(&warps, 64), &cfg()).unwrap();
        assert_eq!(spans.len(), 2);
        for s in &spans {
            assert_eq!(s.block, 0);
            assert!(s.start < s.end);
            assert!(s.end <= report.cycles);
        }
        assert_eq!(spans[0].warp_in_block, 0);
        assert_eq!(spans[1].warp_in_block, 1);
        assert_eq!(
            spans.iter().map(|s| s.instructions).sum::<u64>(),
            40,
            "span instruction counts cover the whole trace"
        );
        // Empty warps produce no span.
        let input = TimingInput {
            blocks: vec![vec![vec![], vec![]]],
            block_threads: 64,
            shared_words_per_block: 0,
            queue: Vec::new(),
        };
        let (_, none) = simulate_spans(&input, &cfg()).unwrap();
        assert!(none.is_empty());
    }

    #[test]
    fn accumulate_folds_reports() {
        let t = [alu_trace(10)];
        let r1 = simulate_report(&one_block_input(&t, 32), &cfg()).unwrap();
        let mut acc = TimingReport::default();
        acc.accumulate(&r1);
        acc.accumulate(&r1);
        assert_eq!(acc.cycles, 2 * r1.cycles);
        assert_eq!(
            acc.sm_instructions.iter().sum::<u64>(),
            2 * r1.sm_instructions.iter().sum::<u64>()
        );
        // The buckets-sum-to-cycles invariant survives accumulation.
        for b in &acc.sm_breakdown {
            assert_eq!(b.total(), acc.cycles);
        }
    }

    #[test]
    fn empty_warp_streams_retire() {
        // A block whose warps have nothing to do completes at cycle 0.
        let input = TimingInput {
            blocks: vec![vec![vec![], vec![]]],
            block_threads: 64,
            shared_words_per_block: 0,
            queue: Vec::new(),
        };
        assert_eq!(simulate(&input, &cfg()).unwrap(), 0);
    }
}
