//! Global-memory coalescing model.
//!
//! When a warp issues a load or store, the hardware inspects the byte
//! addresses of the active lanes and merges them into memory *transactions*
//! of `segment_bytes` each (128 B on the parts the paper targeted). A fully
//! coalesced access — 32 consecutive 4-byte words — costs one transaction;
//! a fully scattered access costs one transaction per active lane. This gap
//! is the second of the two pathologies the paper attacks (the first being
//! intra-warp workload imbalance).

use crate::lanes::WARP_SIZE;

/// Count the memory transactions needed to service the given active-lane
/// byte addresses with segments of `segment_bytes`.
///
/// Duplicate addresses and addresses within the same segment are merged,
/// matching the broadcast behaviour of real hardware. Returns 0 for an
/// empty address set.
pub fn transactions(addrs: impl IntoIterator<Item = u64>, segment_bytes: u32) -> u32 {
    debug_assert!(segment_bytes.is_power_of_two());
    let shift = segment_bytes.trailing_zeros();
    // A warp has at most 32 lanes, so a tiny linear-scan set beats hashing.
    let mut segs = [0u64; WARP_SIZE];
    let mut n = 0usize;
    'outer: for a in addrs {
        let seg = a >> shift;
        for &s in &segs[..n] {
            if s == seg {
                continue 'outer;
            }
        }
        segs[n] = seg;
        n += 1;
    }
    n as u32
}

/// Count the *distinct* addresses in an access pattern (duplicates merged,
/// the broadcast behaviour). This is the footprint a perfectly coalesced
/// layout of the same data would have to touch — the numerator of the
/// coalescing-efficiency lint shared by the sanitizer and the static
/// analyzer.
pub fn distinct_addrs(addrs: impl IntoIterator<Item = u64>) -> u32 {
    let mut seen = [0u64; WARP_SIZE];
    let mut n = 0usize;
    'outer: for a in addrs {
        for &s in &seen[..n] {
            if s == a {
                continue 'outer;
            }
        }
        seen[n] = a;
        n += 1;
    }
    n as u32
}

/// Minimum transactions needed to service `distinct` distinct words if they
/// were packed contiguously into segments of `segment_words`: the "ideal"
/// denominator of the coalescing-efficiency lint. An access that touches any
/// words at all costs at least one transaction; a broadcast (1 distinct
/// word) is already ideal at 1.
pub fn ideal_transactions(distinct: u32, segment_words: u32) -> u32 {
    if distinct == 0 {
        return 0;
    }
    distinct.div_ceil(segment_words.max(1)).max(1)
}

/// Transactions for a warp accessing `base + idx*4` for each active index —
/// the common case of indexing a word array.
pub fn transactions_words(
    base_byte: u64,
    idxs: impl IntoIterator<Item = u32>,
    segment_bytes: u32,
) -> u32 {
    transactions(
        idxs.into_iter().map(|i| base_byte + (i as u64) * 4),
        segment_bytes,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_access_is_free() {
        assert_eq!(transactions(std::iter::empty(), 128), 0);
    }

    #[test]
    fn fully_coalesced_is_one() {
        // 32 consecutive words starting at a segment boundary.
        let addrs = (0..32u64).map(|i| 4096 + i * 4);
        assert_eq!(transactions(addrs, 128), 1);
    }

    #[test]
    fn misaligned_consecutive_is_two() {
        // 32 consecutive words straddling a 128 B boundary.
        let addrs = (0..32u64).map(|i| 4096 + 64 + i * 4);
        assert_eq!(transactions(addrs, 128), 2);
    }

    #[test]
    fn fully_scattered_is_per_lane() {
        // Each lane hits its own segment.
        let addrs = (0..32u64).map(|i| i * 1024);
        assert_eq!(transactions(addrs, 128), 32);
    }

    #[test]
    fn broadcast_is_one() {
        let addrs = std::iter::repeat_n(4096u64, 32);
        assert_eq!(transactions(addrs, 128), 1);
    }

    #[test]
    fn smaller_segments_cost_more() {
        let addrs: Vec<u64> = (0..32u64).map(|i| i * 4).collect();
        assert_eq!(transactions(addrs.iter().copied(), 128), 1);
        assert_eq!(transactions(addrs.iter().copied(), 64), 2);
        assert_eq!(transactions(addrs.iter().copied(), 32), 4);
    }

    #[test]
    fn distinct_addrs_merges_duplicates() {
        assert_eq!(distinct_addrs(std::iter::empty()), 0);
        assert_eq!(distinct_addrs(std::iter::repeat_n(4096u64, 32)), 1);
        assert_eq!(distinct_addrs((0..32u64).map(|i| 4 * i)), 32);
        assert_eq!(distinct_addrs([8u64, 8, 12, 8, 12]), 2);
    }

    #[test]
    fn ideal_transactions_from_distinct_footprint() {
        assert_eq!(ideal_transactions(0, 32), 0);
        // A broadcast's footprint is one word: ideal is one transaction, not
        // ceil(active/segment_words).
        assert_eq!(ideal_transactions(1, 32), 1);
        assert_eq!(ideal_transactions(32, 32), 1);
        assert_eq!(ideal_transactions(33, 32), 2);
        assert_eq!(ideal_transactions(32, 8), 4);
        // Degenerate segment size.
        assert_eq!(ideal_transactions(5, 0), 5);
    }

    #[test]
    fn ideal_never_exceeds_actual_for_same_pattern() {
        // For any pattern, the ideal (distinct words packed contiguously)
        // costs at most what the actual layout costs.
        let patterns: [&[u64]; 4] = [
            &[4096; 8],
            &[0, 4, 8, 12, 1024, 1028],
            &[0, 512, 1024, 1536],
            &[128, 132, 136, 128, 132],
        ];
        for p in patterns {
            let actual = transactions(p.iter().copied(), 128);
            let ideal = ideal_transactions(distinct_addrs(p.iter().copied()), 32);
            assert!(ideal <= actual, "{p:?}: ideal {ideal} > actual {actual}");
        }
    }

    #[test]
    fn word_index_helper_matches() {
        let base = 256u64;
        let idxs = [0u32, 1, 2, 31, 32];
        let direct = transactions(idxs.iter().map(|&i| base + i as u64 * 4), 128);
        assert_eq!(transactions_words(base, idxs.iter().copied(), 128), direct);
    }
}
