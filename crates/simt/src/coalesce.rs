//! Global-memory coalescing model.
//!
//! When a warp issues a load or store, the hardware inspects the byte
//! addresses of the active lanes and merges them into memory *transactions*
//! of `segment_bytes` each (128 B on the parts the paper targeted). A fully
//! coalesced access — 32 consecutive 4-byte words — costs one transaction;
//! a fully scattered access costs one transaction per active lane. This gap
//! is the second of the two pathologies the paper attacks (the first being
//! intra-warp workload imbalance).

use crate::lanes::WARP_SIZE;

/// Count the memory transactions needed to service the given active-lane
/// byte addresses with segments of `segment_bytes`.
///
/// Duplicate addresses and addresses within the same segment are merged,
/// matching the broadcast behaviour of real hardware. Returns 0 for an
/// empty address set.
pub fn transactions(addrs: impl IntoIterator<Item = u64>, segment_bytes: u32) -> u32 {
    debug_assert!(segment_bytes.is_power_of_two());
    let shift = segment_bytes.trailing_zeros();
    // A warp has at most 32 lanes, so a tiny linear-scan set beats hashing.
    let mut segs = [0u64; WARP_SIZE];
    let mut n = 0usize;
    'outer: for a in addrs {
        let seg = a >> shift;
        for &s in &segs[..n] {
            if s == seg {
                continue 'outer;
            }
        }
        segs[n] = seg;
        n += 1;
    }
    n as u32
}

/// Transactions for a warp accessing `base + idx*4` for each active index —
/// the common case of indexing a word array.
pub fn transactions_words(
    base_byte: u64,
    idxs: impl IntoIterator<Item = u32>,
    segment_bytes: u32,
) -> u32 {
    transactions(
        idxs.into_iter().map(|i| base_byte + (i as u64) * 4),
        segment_bytes,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_access_is_free() {
        assert_eq!(transactions(std::iter::empty(), 128), 0);
    }

    #[test]
    fn fully_coalesced_is_one() {
        // 32 consecutive words starting at a segment boundary.
        let addrs = (0..32u64).map(|i| 4096 + i * 4);
        assert_eq!(transactions(addrs, 128), 1);
    }

    #[test]
    fn misaligned_consecutive_is_two() {
        // 32 consecutive words straddling a 128 B boundary.
        let addrs = (0..32u64).map(|i| 4096 + 64 + i * 4);
        assert_eq!(transactions(addrs, 128), 2);
    }

    #[test]
    fn fully_scattered_is_per_lane() {
        // Each lane hits its own segment.
        let addrs = (0..32u64).map(|i| i * 1024);
        assert_eq!(transactions(addrs, 128), 32);
    }

    #[test]
    fn broadcast_is_one() {
        let addrs = std::iter::repeat_n(4096u64, 32);
        assert_eq!(transactions(addrs, 128), 1);
    }

    #[test]
    fn smaller_segments_cost_more() {
        let addrs: Vec<u64> = (0..32u64).map(|i| i * 4).collect();
        assert_eq!(transactions(addrs.iter().copied(), 128), 1);
        assert_eq!(transactions(addrs.iter().copied(), 64), 2);
        assert_eq!(transactions(addrs.iter().copied(), 32), 4);
    }

    #[test]
    fn word_index_helper_matches() {
        let base = 256u64;
        let idxs = [0u32, 1, 2, 31, 32];
        let direct = transactions(idxs.iter().map(|&i| base + i as u64 * 4), 128);
        assert_eq!(transactions_words(base, idxs.iter().copied(), 128), direct);
    }
}
