//! Block-level kernel execution.
//!
//! A [`Kernel`] describes what one thread block does. The functional
//! executor calls [`Kernel::run_block`] once per launched block with a
//! [`BlockCtx`]; the kernel structures its work as *phases* — closures run
//! once per warp of the block — separated by [`BlockCtx::barrier`] calls.
//! This phase structure is how `__syncthreads` semantics are expressed: all
//! memory effects of a phase are visible after the barrier, and the timing
//! model makes the block's warps rendezvous there.

use crate::analyze::Analyzer;
use crate::cache::CacheModel;
use crate::config::GpuConfig;
use crate::fault::{self, AtomicDropPlan, SimtError};
use crate::lanes::{DeviceWord, WARP_SIZE};
use crate::mem::DeviceMem;
use crate::profile::Profiler;
use crate::sanitize::{BlockShadow, Sanitizer};
use crate::shared::{SharedMem, SharedPtr};
use crate::trace::{BlockTrace, Op, WarpTrace};
use crate::warp::{SanScope, WarpCtx, WarpId};
use std::panic::Location;

/// A device kernel: the code one thread block runs.
pub trait Kernel {
    /// Execute one block. Called once per block in the launch grid.
    fn run_block(&self, block: &mut BlockCtx<'_>);
}

impl<F: Fn(&mut BlockCtx<'_>)> Kernel for F {
    fn run_block(&self, block: &mut BlockCtx<'_>) {
        self(block)
    }
}

/// Execution context of one thread block.
pub struct BlockCtx<'a> {
    mem: &'a mut DeviceMem,
    cache: &'a mut CacheModel,
    shared: SharedMem,
    trace: BlockTrace,
    cfg: &'a GpuConfig,
    block_id: u32,
    num_blocks: u32,
    warps_per_block: u32,
    san: Option<&'a mut Sanitizer>,
    prof: Option<&'a mut Profiler>,
    anl: Option<&'a mut Analyzer>,
    shadow: BlockShadow,
    fault: Option<&'a mut Option<SimtError>>,
    chaos: Option<&'a mut AtomicDropPlan>,
}

impl<'a> BlockCtx<'a> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        mem: &'a mut DeviceMem,
        cache: &'a mut CacheModel,
        cfg: &'a GpuConfig,
        block_id: u32,
        num_blocks: u32,
        warps_per_block: u32,
        san: Option<&'a mut Sanitizer>,
        prof: Option<&'a mut Profiler>,
        anl: Option<&'a mut Analyzer>,
        fault: Option<&'a mut Option<SimtError>>,
        chaos: Option<&'a mut AtomicDropPlan>,
    ) -> Self {
        BlockCtx {
            mem,
            cache,
            shared: SharedMem::new(cfg.shared_words_per_sm),
            trace: BlockTrace {
                warps: vec![WarpTrace::new(); warps_per_block as usize],
            },
            cfg,
            block_id,
            num_blocks,
            warps_per_block,
            san,
            prof,
            anl,
            shadow: BlockShadow::default(),
            fault,
            chaos,
        }
    }

    /// This block's index in the grid.
    #[inline]
    pub fn block_id(&self) -> u32 {
        self.block_id
    }

    /// Number of blocks in the grid.
    #[inline]
    pub fn num_blocks(&self) -> u32 {
        self.num_blocks
    }

    /// Warps per block.
    #[inline]
    pub fn warps_per_block(&self) -> u32 {
        self.warps_per_block
    }

    /// Threads per block.
    #[inline]
    pub fn threads_per_block(&self) -> u32 {
        self.warps_per_block * WARP_SIZE as u32
    }

    /// Allocate zero-initialized block shared memory. Must be called outside
    /// phases (at block scope), like a `__shared__` declaration.
    ///
    /// Overflowing the block's shared-memory budget records a
    /// [`SimtError::SharedMemoryOverflow`] fault (failing the launch) and
    /// hands back a zero-length placeholder so the kernel can keep executing;
    /// outside a launch it panics, as CUDA would fail the launch outright.
    #[track_caller]
    pub fn shared_alloc<T: DeviceWord>(&mut self, len: u32) -> SharedPtr<T> {
        let site = Location::caller();
        match self.shared.try_alloc(len) {
            Ok(p) => p,
            Err((requested_words, used_words, capacity_words)) => {
                let err = SimtError::SharedMemoryOverflow {
                    requested_words,
                    used_words,
                    capacity_words,
                    block: self.block_id,
                    site,
                };
                match self.fault.as_deref_mut() {
                    Some(slot) => {
                        fault::record(slot, err);
                        SharedMem::null_ptr()
                    }
                    None => panic!("{err}"),
                }
            }
        }
    }

    /// Run a phase: `f` is invoked once per warp of the block, in warp-id
    /// order. Within a phase, warps may interleave arbitrarily on real
    /// hardware — kernels must not rely on cross-warp ordering inside a
    /// phase; cross-warp communication goes through a [`barrier`].
    ///
    /// [`barrier`]: BlockCtx::barrier
    pub fn phase(&mut self, mut f: impl FnMut(&mut WarpCtx<'_>)) {
        for w in 0..self.warps_per_block {
            let id = WarpId {
                block: self.block_id,
                warp_in_block: w,
                warps_per_block: self.warps_per_block,
                num_blocks: self.num_blocks,
            };
            let epoch = self.shadow.epoch;
            let scope = self.san.as_deref_mut().map(|san| SanScope {
                san,
                shadow: &mut self.shadow,
            });
            let mut ctx = WarpCtx::new_instrumented(
                self.mem,
                &mut self.shared,
                &mut self.trace.warps[w as usize],
                self.cache,
                self.cfg,
                id,
                scope,
                self.prof.as_deref_mut(),
                self.anl.as_deref_mut(),
                epoch,
                self.fault.as_deref_mut(),
                self.chaos.as_deref_mut(),
            );
            f(&mut ctx);
        }
    }

    /// `__syncthreads()`: every warp of the block rendezvouses here.
    #[track_caller]
    pub fn barrier(&mut self) {
        let site = Location::caller();
        for w in &mut self.trace.warps {
            w.ops.push(Op::Bar);
            if let Some(prof) = self.prof.as_deref_mut() {
                prof.note(site, "barrier", Op::Bar, self.cfg.segment_words());
            }
        }
        if let Some(anl) = self.anl.as_deref_mut() {
            anl.barrier(self.block_id, self.warps_per_block, site);
        }
        self.shadow.advance_epoch();
    }

    /// Shared-memory words this block has allocated so far.
    pub fn shared_words_used(&self) -> u32 {
        self.shared.used_words()
    }

    pub(crate) fn into_trace(self) -> (BlockTrace, u32) {
        let used = self.shared.used_words();
        (self.trace, used)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lanes::Lanes;
    use crate::mask::Mask;

    #[test]
    fn phase_runs_every_warp_in_order() {
        let mut mem = DeviceMem::new();
        let cfg = GpuConfig::tiny_test();
        let mut cache = CacheModel::new(0, 1, 128);
        let mut block = BlockCtx::new(
            &mut mem, &mut cache, &cfg, 3, 5, 4, None, None, None, None, None,
        );
        let mut seen = Vec::new();
        block.phase(|w| seen.push((w.id().block, w.id().warp_in_block)));
        assert_eq!(seen, vec![(3, 0), (3, 1), (3, 2), (3, 3)]);
    }

    #[test]
    fn barrier_recorded_in_every_warp() {
        let mut mem = DeviceMem::new();
        let cfg = GpuConfig::tiny_test();
        let mut cache = CacheModel::new(0, 1, 128);
        let mut block = BlockCtx::new(
            &mut mem, &mut cache, &cfg, 0, 1, 2, None, None, None, None, None,
        );
        block.phase(|w| w.alu_nop(Mask::FULL));
        block.barrier();
        let (trace, _) = block.into_trace();
        for w in &trace.warps {
            assert_eq!(w.ops.last(), Some(&Op::Bar));
            assert_eq!(w.ops.len(), 2);
        }
    }

    #[test]
    fn shared_memory_is_per_block_and_visible_across_phases() {
        let mut mem = DeviceMem::new();
        let cfg = GpuConfig::tiny_test();
        let mut cache = CacheModel::new(0, 1, 128);
        let mut block = BlockCtx::new(
            &mut mem, &mut cache, &cfg, 0, 1, 2, None, None, None, None, None,
        );
        let sp = block.shared_alloc::<u32>(64);
        block.phase(|w| {
            if w.id().warp_in_block == 0 {
                w.sh_st(Mask::FULL, sp, &Lanes::lane_ids(), &Lanes::splat(7u32));
            }
        });
        block.barrier();
        let mut got = 0;
        block.phase(|w| {
            if w.id().warp_in_block == 1 {
                got = w.sh_ld(Mask::lane(0), sp, &Lanes::splat(5u32)).get(0);
            }
        });
        assert_eq!(got, 7);
    }

    #[test]
    fn closure_kernels_implement_kernel() {
        let k = |b: &mut BlockCtx<'_>| {
            b.phase(|w| w.alu_nop(Mask::FULL));
        };
        let mut mem = DeviceMem::new();
        let cfg = GpuConfig::tiny_test();
        let mut cache = CacheModel::new(0, 1, 128);
        let mut block = BlockCtx::new(
            &mut mem, &mut cache, &cfg, 0, 1, 1, None, None, None, None, None,
        );
        k.run_block(&mut block);
        let (trace, used) = block.into_trace();
        assert_eq!(trace.warps[0].ops.len(), 1);
        assert_eq!(used, 0);
    }

    #[test]
    fn global_memory_effects_persist_across_phases() {
        let mut mem = DeviceMem::new();
        let p = mem.alloc::<u32>(64);
        let cfg = GpuConfig::tiny_test();
        let mut cache = CacheModel::new(0, 1, 128);
        let mut block = BlockCtx::new(
            &mut mem, &mut cache, &cfg, 0, 1, 2, None, None, None, None, None,
        );
        block.phase(|w| {
            let ids = w.global_thread_ids();
            w.st(Mask::FULL, p, &ids, &ids);
        });
        let (_, _) = block.into_trace();
        let host = mem.download(p);
        assert_eq!(host[63], 63);
        assert_eq!(host[0], 0);
        assert_eq!(host[33], 33);
    }
}
