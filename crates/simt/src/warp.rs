//! The warp execution context.
//!
//! [`WarpCtx`] is what a kernel's per-warp code runs against. Every method
//! that corresponds to a hardware instruction records one (or, for
//! multi-step primitives like scans, several) [`Op`](crate::trace::Op) in the
//! warp's trace, annotated with active lane count, coalesced transaction
//! count, bank conflicts, or atomic replays. The timing engine later replays
//! these traces.
//!
//! ## Programming model
//!
//! Kernels are written warp-synchronously: values are 32-wide
//! [`Lanes`](crate::lanes::Lanes) registers, control flow is expressed by
//! narrowing [`Mask`](crate::mask::Mask)s, and divergent loops are
//! `while mask.any() { ... }` — exactly the execution the SIMT hardware
//! performs. Costs are charged per *warp instruction*: a divergent loop that
//! runs 100 iterations for one lane and 2 for the rest charges ~100
//! iterations of instructions with mostly one active lane. That is the
//! workload-imbalance pathology the paper studies.
//!
//! ## Cost-model conventions
//!
//! * Register moves, constants, and host-visible scalars (`u32` locals in
//!   kernel code) are free — they model values the compiler keeps in
//!   registers or immediates.
//! * One `alu*` / comparison / ballot / shuffle call = one issued
//!   instruction with the given active mask.
//! * Reductions and scans cost `log2(width)` instructions, matching the
//!   shuffle-tree implementations used on real hardware.

use crate::analyze::{AccessKind, Analyzer, MemObs, Space};
use crate::cache::CacheModel;
use crate::coalesce::{distinct_addrs, transactions};
use crate::config::GpuConfig;
use crate::fault::{self, AddressSpace, AtomicDropPlan, SimtError, WatchdogKind};
use crate::lanes::{DeviceWord, Lanes, WARP_SIZE};
use crate::mask::Mask;
use crate::mem::{DevPtr, DeviceMem};
use crate::profile::Profiler;
use crate::sanitize::{BlockShadow, Sanitizer};
use crate::shared::{bank_conflict_cost, SharedMem, SharedPtr, NUM_BANKS};
use crate::trace::{Op, WarpTrace};
use std::panic::Location;

/// Identification of a warp within its launch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WarpId {
    /// Block index in the grid.
    pub block: u32,
    /// Warp index within the block.
    pub warp_in_block: u32,
    /// Warps per block at launch.
    pub warps_per_block: u32,
    /// Blocks in the grid.
    pub num_blocks: u32,
}

impl WarpId {
    /// Flat warp index across the whole grid.
    #[inline]
    pub fn global(&self) -> u32 {
        self.block * self.warps_per_block + self.warp_in_block
    }

    /// Total warps in the grid.
    #[inline]
    pub fn total_warps(&self) -> u32 {
        self.num_blocks * self.warps_per_block
    }
}

/// Borrowed sanitizer state a warp checks against: the launch-wide
/// [`Sanitizer`] plus this block's shared-memory shadow.
pub(crate) struct SanScope<'a> {
    pub(crate) san: &'a mut Sanitizer,
    pub(crate) shadow: &'a mut BlockShadow,
}

/// Per-warp execution context handed to kernel code.
pub struct WarpCtx<'a> {
    mem: &'a mut DeviceMem,
    shared: &'a mut SharedMem,
    trace: &'a mut WarpTrace,
    cache: &'a mut CacheModel,
    segment_bytes: u32,
    id: WarpId,
    san: Option<SanScope<'a>>,
    prof: Option<&'a mut Profiler>,
    /// Static analyzer observing abstract per-site access patterns.
    anl: Option<&'a mut Analyzer>,
    /// Barrier epoch of the current phase (from the block's shadow); the
    /// analyzer orders same-block accesses by it.
    epoch: u32,
    /// Launch-wide fault slot. `Some` on the `Gpu::launch` path: the first
    /// fault is recorded, the offending lanes are dropped, and the launch
    /// returns `Err`. `None` for bare (test-harness) contexts, which keep
    /// the historical panic-on-fault behavior.
    fault: Option<&'a mut Option<SimtError>>,
    /// Per-warp functional instruction budget (`watchdog.max_instructions`).
    budget: Option<u64>,
    /// Chaos mode: the launch's dropped-atomic plan, if that fault class is
    /// enabled.
    chaos: Option<&'a mut AtomicDropPlan>,
}

impl<'a> WarpCtx<'a> {
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn new(
        mem: &'a mut DeviceMem,
        shared: &'a mut SharedMem,
        trace: &'a mut WarpTrace,
        cache: &'a mut CacheModel,
        cfg: &GpuConfig,
        id: WarpId,
    ) -> Self {
        Self::new_instrumented(
            mem, shared, trace, cache, cfg, id, None, None, None, 0, None, None,
        )
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new_instrumented(
        mem: &'a mut DeviceMem,
        shared: &'a mut SharedMem,
        trace: &'a mut WarpTrace,
        cache: &'a mut CacheModel,
        cfg: &GpuConfig,
        id: WarpId,
        san: Option<SanScope<'a>>,
        prof: Option<&'a mut Profiler>,
        anl: Option<&'a mut Analyzer>,
        epoch: u32,
        fault: Option<&'a mut Option<SimtError>>,
        chaos: Option<&'a mut AtomicDropPlan>,
    ) -> Self {
        WarpCtx {
            mem,
            shared,
            trace,
            cache,
            segment_bytes: cfg.segment_bytes,
            id,
            san,
            prof,
            anl,
            epoch,
            fault,
            budget: cfg.watchdog.max_instructions,
            chaos,
        }
    }

    // ---------------------------------------------------------------- ids

    /// This warp's identification.
    #[inline]
    pub fn id(&self) -> WarpId {
        self.id
    }

    /// Lane-id register `[0, 1, .., 31]`.
    #[inline]
    pub fn lane_ids(&self) -> Lanes<u32> {
        Lanes::lane_ids()
    }

    /// Global thread ids of this warp's lanes
    /// (`global_warp * 32 + lane`).
    #[inline]
    pub fn global_thread_ids(&self) -> Lanes<u32> {
        let base = self.id.global() * WARP_SIZE as u32;
        Lanes::from_fn(|l| base + l as u32)
    }

    /// Total threads in the grid.
    #[inline]
    pub fn total_threads(&self) -> u32 {
        self.id.total_warps() * WARP_SIZE as u32
    }

    // ---------------------------------------------------------------- ALU

    /// Record an ALU instruction with the given active mask and no computed
    /// result (control-flow overhead, address arithmetic the model can't
    /// see, etc.).
    #[inline]
    #[track_caller]
    pub fn alu_nop(&mut self, mask: Mask) {
        self.push_alu(mask);
    }

    /// One ALU instruction computing a unary per-lane function.
    #[inline]
    #[track_caller]
    pub fn alu1<T: Copy, U: Copy + Default>(
        &mut self,
        mask: Mask,
        a: &Lanes<T>,
        f: impl FnMut(T) -> U,
    ) -> Lanes<U> {
        self.push_alu(mask);
        a.map(f)
    }

    /// One ALU instruction computing a binary per-lane function.
    #[inline]
    #[track_caller]
    pub fn alu2<T: Copy, U: Copy, V: Copy + Default>(
        &mut self,
        mask: Mask,
        a: &Lanes<T>,
        b: &Lanes<U>,
        f: impl FnMut(T, U) -> V,
    ) -> Lanes<V> {
        self.push_alu(mask);
        a.zip(b, f)
    }

    /// One ALU instruction evaluating a per-lane predicate; the result mask
    /// is the set of active lanes satisfying it (a compare + predicate
    /// register write).
    #[inline]
    #[track_caller]
    pub fn alu_pred<T: Copy>(
        &mut self,
        mask: Mask,
        a: &Lanes<T>,
        pred: impl FnMut(T) -> bool,
    ) -> Mask {
        if self.tripped(Location::caller()) {
            return Mask::NONE;
        }
        self.push_alu(mask);
        a.test(mask, pred)
    }

    /// Lane-wise `a + b` (one instruction).
    #[inline]
    #[track_caller]
    pub fn add(&mut self, mask: Mask, a: &Lanes<u32>, b: &Lanes<u32>) -> Lanes<u32> {
        self.alu2(mask, a, b, |x, y| x.wrapping_add(y))
    }

    /// Lane-wise `a + c` for scalar `c` (one instruction).
    #[inline]
    #[track_caller]
    pub fn add_scalar(&mut self, mask: Mask, a: &Lanes<u32>, c: u32) -> Lanes<u32> {
        self.alu1(mask, a, |x| x.wrapping_add(c))
    }

    /// Active lanes where `a < b` (one compare instruction).
    #[inline]
    #[track_caller]
    pub fn lt(&mut self, mask: Mask, a: &Lanes<u32>, b: &Lanes<u32>) -> Mask {
        if self.tripped(Location::caller()) {
            return Mask::NONE;
        }
        self.push_alu(mask);
        Mask::from_fn(|l| mask.get(l) && a.get(l) < b.get(l))
    }

    /// Active lanes where `a < c` (one compare instruction).
    #[inline]
    #[track_caller]
    pub fn lt_scalar(&mut self, mask: Mask, a: &Lanes<u32>, c: u32) -> Mask {
        self.alu_pred(mask, a, |x| x < c)
    }

    /// Active lanes where `a == c` (one compare instruction).
    #[inline]
    #[track_caller]
    pub fn eq_scalar(&mut self, mask: Mask, a: &Lanes<u32>, c: u32) -> Mask {
        self.alu_pred(mask, a, |x| x == c)
    }

    // ------------------------------------------------------ warp intrinsics

    /// `__ballot`: one instruction; returns the predicate mask itself (the
    /// predicate evaluation is the caller's compare instruction).
    #[inline]
    #[track_caller]
    pub fn ballot(&mut self, mask: Mask, pred: Mask) -> Mask {
        let site = Location::caller();
        if self.tripped(site) {
            return Mask::NONE;
        }
        self.check_empty_mask(mask, "ballot", site);
        if let Some(anl) = self.anl.as_deref_mut() {
            anl.collective(self.id, "ballot", site, mask.count(), (pred & mask).count());
        }
        self.push_alu(mask);
        pred & mask
    }

    /// `__any`: one instruction.
    #[inline]
    #[track_caller]
    pub fn any(&mut self, mask: Mask, pred: Mask) -> bool {
        let site = Location::caller();
        if self.tripped(site) {
            return false;
        }
        self.check_empty_mask(mask, "any", site);
        if let Some(anl) = self.anl.as_deref_mut() {
            anl.collective(self.id, "any", site, mask.count(), (pred & mask).count());
        }
        self.push_alu(mask);
        (pred & mask).any()
    }

    /// `__all`: one instruction.
    #[inline]
    #[track_caller]
    pub fn all(&mut self, mask: Mask, pred: Mask) -> bool {
        let site = Location::caller();
        if self.tripped(site) {
            return false;
        }
        self.check_empty_mask(mask, "all", site);
        if let Some(anl) = self.anl.as_deref_mut() {
            anl.collective(self.id, "all", site, mask.count(), (pred & mask).count());
        }
        self.push_alu(mask);
        (pred & mask) == mask
    }

    /// `__shfl`: each active lane reads the value of lane `src.get(lane)`
    /// (one instruction). An out-of-range source wraps modulo the warp
    /// width, matching CUDA's `srcLane % width` semantics. A source lane
    /// outside the active mask yields undefined data on hardware; here it
    /// deterministically yields `T::default()`, and the sanitizer flags it
    /// as a divergence hazard.
    #[inline]
    #[track_caller]
    pub fn shfl<T: Copy + Default>(
        &mut self,
        mask: Mask,
        vals: &Lanes<T>,
        src: &Lanes<u32>,
    ) -> Lanes<T> {
        let site = Location::caller();
        self.push_alu(mask);
        if let Some(scope) = &mut self.san {
            let mut new = 0;
            for l in mask.iter() {
                let s = src.get(l) as usize % WARP_SIZE;
                if !mask.get(s) {
                    new += scope
                        .san
                        .divergent_shfl(self.id, l as u32, s as u32, "shfl", site);
                }
            }
            for _ in 0..new {
                self.trace.ops.push(Op::San);
            }
        }
        if self.anl.is_some()
            && mask
                .iter()
                .any(|l| !mask.get(src.get(l) as usize % WARP_SIZE))
        {
            if let Some(anl) = self.anl.as_deref_mut() {
                anl.divergent_shuffle(self.id, "shfl", site);
            }
        }
        Lanes::from_fn(|l| {
            let s = src.get(l) as usize % WARP_SIZE;
            if mask.get(s) {
                vals.get(s)
            } else {
                T::default()
            }
        })
    }

    /// Broadcast lane `src_lane % 32`'s value to all lanes (one shuffle).
    /// Same inactive-source semantics as [`shfl`](WarpCtx::shfl): the
    /// sanitizer flags it and the result is `T::default()`.
    #[inline]
    #[track_caller]
    pub fn shfl_bcast<T: Copy + Default>(
        &mut self,
        mask: Mask,
        vals: &Lanes<T>,
        src_lane: usize,
    ) -> Lanes<T> {
        let site = Location::caller();
        self.push_alu(mask);
        let s = src_lane % WARP_SIZE;
        if mask.get(s) {
            return Lanes::splat(vals.get(s));
        }
        if let Some(scope) = &mut self.san {
            let new = match mask.leader() {
                Some(l) => {
                    scope
                        .san
                        .divergent_shfl(self.id, l as u32, s as u32, "shfl_bcast", site)
                }
                None => scope.san.empty_mask(self.id, "shfl_bcast", site),
            };
            for _ in 0..new {
                self.trace.ops.push(Op::San);
            }
        }
        if let Some(anl) = self.anl.as_deref_mut() {
            if mask.any() {
                anl.divergent_shuffle(self.id, "shfl_bcast", site);
            } else {
                anl.empty_collective(self.id, "shfl_bcast", site);
            }
        }
        Lanes::splat(T::default())
    }

    /// Warp-wide sum reduction via a shuffle tree: `log2(32) = 5`
    /// instructions. Returns the total of active lanes broadcast to all.
    #[track_caller]
    pub fn reduce_add(&mut self, mask: Mask, vals: &Lanes<u32>) -> u32 {
        self.check_empty_mask(mask, "reduce_add", Location::caller());
        self.charge_tree(mask, WARP_SIZE);
        vals.sum_active(mask) as u32
    }

    /// Warp-wide min reduction (5 instructions); `u32::MAX` if mask empty.
    #[track_caller]
    pub fn reduce_min(&mut self, mask: Mask, vals: &Lanes<u32>) -> u32 {
        self.check_empty_mask(mask, "reduce_min", Location::caller());
        self.charge_tree(mask, WARP_SIZE);
        vals.min_active(mask).unwrap_or(u32::MAX)
    }

    /// Warp-wide max reduction (5 instructions); 0 if mask empty.
    #[track_caller]
    pub fn reduce_max(&mut self, mask: Mask, vals: &Lanes<u32>) -> u32 {
        self.check_empty_mask(mask, "reduce_max", Location::caller());
        self.charge_tree(mask, WARP_SIZE);
        vals.max_active(mask).unwrap_or(0)
    }

    /// Exclusive prefix sum over active lanes (5 instructions). Inactive
    /// lanes receive the running sum of active lanes below them, which is
    /// what compaction code needs.
    #[track_caller]
    pub fn scan_add_exclusive(&mut self, mask: Mask, vals: &Lanes<u32>) -> Lanes<u32> {
        self.check_empty_mask(mask, "scan_add_exclusive", Location::caller());
        self.charge_tree(mask, WARP_SIZE);
        let mut acc = 0u32;
        Lanes::from_fn(|l| {
            let out = acc;
            if mask.get(l) {
                acc = acc.wrapping_add(vals.get(l));
            }
            out
        })
    }

    // ----------------------------------------------- segmented (sub-warp) ops

    /// Segmented sum reduction: the warp is split into aligned segments of
    /// `width` lanes (a power of two ≤ 32 — the *virtual warp* width) and
    /// each segment reduces independently. Costs `log2(width)`
    /// instructions; every lane of a segment receives its segment's total.
    #[track_caller]
    pub fn seg_reduce_add(&mut self, mask: Mask, vals: &Lanes<u32>, width: usize) -> Lanes<u32> {
        let site = Location::caller();
        if self.tripped(site) || !self.check_width(width, "seg_reduce_add", site) {
            return Lanes::splat(0u32);
        }
        self.check_empty_mask(mask, "seg_reduce_add", site);
        self.charge_tree(mask, width);
        let mut out = Lanes::splat(0u32);
        for seg in 0..WARP_SIZE / width {
            let base = seg * width;
            let mut sum = 0u32;
            for l in base..base + width {
                if mask.get(l) {
                    sum = sum.wrapping_add(vals.get(l));
                }
            }
            for l in base..base + width {
                out.set(l, sum);
            }
        }
        out
    }

    /// Segmented `f32` sum reduction — same shape and cost as
    /// [`seg_reduce_add`](WarpCtx::seg_reduce_add). Lanes sum in ascending
    /// lane order (deterministic despite float non-associativity).
    #[track_caller]
    pub fn seg_reduce_add_f32(
        &mut self,
        mask: Mask,
        vals: &Lanes<f32>,
        width: usize,
    ) -> Lanes<f32> {
        let site = Location::caller();
        if self.tripped(site) || !self.check_width(width, "seg_reduce_add_f32", site) {
            return Lanes::splat(0.0f32);
        }
        self.check_empty_mask(mask, "seg_reduce_add_f32", site);
        self.charge_tree(mask, width);
        let mut out = Lanes::splat(0.0f32);
        for seg in 0..WARP_SIZE / width {
            let base = seg * width;
            let mut sum = 0.0f32;
            for l in base..base + width {
                if mask.get(l) {
                    sum += vals.get(l);
                }
            }
            for l in base..base + width {
                out.set(l, sum);
            }
        }
        out
    }

    /// Segmented broadcast: every lane receives the value of its segment's
    /// first lane (one shuffle instruction). If a segment's base lane is
    /// outside the active mask, that segment's lanes receive `T::default()`
    /// (undefined data on hardware) and, when a lane of the segment was
    /// active, the sanitizer flags the divergence hazard.
    #[track_caller]
    pub fn seg_bcast<T: Copy + Default>(
        &mut self,
        mask: Mask,
        vals: &Lanes<T>,
        width: usize,
    ) -> Lanes<T> {
        let site = Location::caller();
        if self.tripped(site) || !self.check_width(width, "seg_bcast", site) {
            return Lanes::splat(T::default());
        }
        self.push_alu(mask);
        if let Some(scope) = &mut self.san {
            let mut new = 0;
            for seg in 0..WARP_SIZE / width {
                let base = seg * width;
                if mask.get(base) {
                    continue;
                }
                if let Some(l) = (base..base + width).find(|&l| mask.get(l)) {
                    new +=
                        scope
                            .san
                            .divergent_shfl(self.id, l as u32, base as u32, "seg_bcast", site);
                }
            }
            for _ in 0..new {
                self.trace.ops.push(Op::San);
            }
        }
        if self.anl.is_some()
            && (0..WARP_SIZE / width).any(|seg| {
                let base = seg * width;
                !mask.get(base) && (base..base + width).any(|l| mask.get(l))
            })
        {
            if let Some(anl) = self.anl.as_deref_mut() {
                anl.divergent_shuffle(self.id, "seg_bcast", site);
            }
        }
        Lanes::from_fn(|l| {
            let base = l / width * width;
            if mask.get(base) {
                vals.get(base)
            } else {
                T::default()
            }
        })
    }

    /// Segmented ballot: for each aligned `width`-lane segment, true if any
    /// active lane of the segment has its predicate bit set (one
    /// instruction). Result replicated across the segment as a mask.
    #[track_caller]
    pub fn seg_any(&mut self, mask: Mask, pred: Mask, width: usize) -> Mask {
        let site = Location::caller();
        if self.tripped(site) || !self.check_width(width, "seg_any", site) {
            return Mask::NONE;
        }
        self.check_empty_mask(mask, "seg_any", site);
        self.push_alu(mask);
        let hits = pred & mask;
        Mask::from_fn(|l| {
            let base = l / width * width;
            (base..base + width).any(|k| hits.get(k))
        })
    }

    // ---------------------------------------------------------- global memory

    /// Gather load: active lane `l` reads `ptr[idx.get(l)]`. One instruction;
    /// transactions per the coalescing model.
    #[track_caller]
    pub fn ld<T: DeviceWord>(&mut self, mask: Mask, ptr: DevPtr<T>, idx: &Lanes<u32>) -> Lanes<T> {
        let site = Location::caller();
        if self.tripped(site) {
            return Lanes::splat(T::default());
        }
        let mask = self.guard_global(mask, ptr, idx, "ld", site);
        let tx = self.mem_tx(mask, ptr, idx);
        let op = Op::LdGlobal {
            active: mask.count() as u8,
            tx,
        };
        self.trace.ops.push(op);
        self.prof_note(site, "ld", op);
        if let Some(scope) = &mut self.san {
            let epoch = scope.shadow.epoch;
            let distinct = distinct_addrs(mask.iter().map(|l| ptr.byte_addr(idx.get(l))));
            scope.san.coalesce_sample(
                self.id,
                "ld",
                site,
                mask.count(),
                tx as u32,
                distinct,
                self.segment_bytes / 4,
            );
            let mut new = 0;
            for l in mask.iter() {
                let w = ptr.base() + idx.get(l);
                let valid = self.mem.word_valid(w);
                new += scope
                    .san
                    .global_read(self.id, epoch, l as u32, w, valid, "ld", site);
            }
            for _ in 0..new {
                self.trace.ops.push(Op::San);
            }
        }
        self.anl_global(
            mask,
            ptr,
            idx,
            None,
            AccessKind::Read,
            "ld",
            site,
            Some(tx as u32),
        );
        let mut out = Lanes::splat(T::default());
        for l in mask.iter() {
            out.set(l, self.mem.read(ptr, idx.get(l)));
        }
        out
    }

    /// Scatter store: active lane `l` writes `vals.get(l)` to
    /// `ptr[idx.get(l)]`. Lanes commit in ascending order, so on address
    /// collisions the highest lane wins (CUDA leaves the winner undefined;
    /// we pick a deterministic one).
    #[track_caller]
    pub fn st<T: DeviceWord>(
        &mut self,
        mask: Mask,
        ptr: DevPtr<T>,
        idx: &Lanes<u32>,
        vals: &Lanes<T>,
    ) {
        let site = Location::caller();
        if self.tripped(site) {
            return;
        }
        let mask = self.guard_global(mask, ptr, idx, "st", site);
        let tx = self.mem_tx(mask, ptr, idx);
        let op = Op::StGlobal {
            active: mask.count() as u8,
            tx,
        };
        self.trace.ops.push(op);
        self.prof_note(site, "st", op);
        if let Some(scope) = &mut self.san {
            let epoch = scope.shadow.epoch;
            let distinct = distinct_addrs(mask.iter().map(|l| ptr.byte_addr(idx.get(l))));
            scope.san.coalesce_sample(
                self.id,
                "st",
                site,
                mask.count(),
                tx as u32,
                distinct,
                self.segment_bytes / 4,
            );
            let mut new = 0;
            for l in mask.iter() {
                let i = idx.get(l);
                new += scope.san.global_write(
                    self.id,
                    epoch,
                    l as u32,
                    ptr.base() + i,
                    vals.get(l).to_word(),
                    "st",
                    site,
                );
                // Intra-warp collision: a lower lane already targeted this
                // index with a different value in this same instruction.
                for k in mask.iter().take_while(|&k| k < l) {
                    if idx.get(k) == i && vals.get(k).to_word() != vals.get(l).to_word() {
                        new += scope.san.store_collision(self.id, l as u32, i, "st", site);
                        break;
                    }
                }
            }
            for _ in 0..new {
                self.trace.ops.push(Op::San);
            }
        }
        self.anl_global(
            mask,
            ptr,
            idx,
            Some(vals),
            AccessKind::Write,
            "st",
            site,
            Some(tx as u32),
        );
        for l in mask.iter() {
            self.mem.write(ptr, idx.get(l), vals.get(l));
        }
    }

    /// Read-only-cached gather load (the texture-memory path of paper-era
    /// kernels, or Fermi's L2): semantics of [`ld`](WarpCtx::ld), but each
    /// distinct segment probes the device cache; hits skip DRAM.
    #[track_caller]
    pub fn ld_cached<T: DeviceWord>(
        &mut self,
        mask: Mask,
        ptr: DevPtr<T>,
        idx: &Lanes<u32>,
    ) -> Lanes<T> {
        let site = Location::caller();
        if self.tripped(site) {
            return Lanes::splat(T::default());
        }
        let mask = self.guard_global(mask, ptr, idx, "ld_cached", site);
        // Distinct segments among the active lanes, like the coalescer.
        let shift = self.segment_bytes.trailing_zeros();
        let mut segs = [0u64; WARP_SIZE];
        let mut n = 0usize;
        'outer: for l in mask.iter() {
            let seg = ptr.byte_addr(idx.get(l)) >> shift;
            for &sv in &segs[..n] {
                if sv == seg {
                    continue 'outer;
                }
            }
            segs[n] = seg;
            n += 1;
        }
        let mut hits = 0u8;
        let mut misses = 0u8;
        for &seg in &segs[..n] {
            if self.cache.access(seg << shift) {
                hits += 1;
            } else {
                misses += 1;
            }
        }
        let op = Op::LdCached {
            active: mask.count() as u8,
            hits,
            misses,
        };
        self.trace.ops.push(op);
        self.prof_note(site, "ld_cached", op);
        if let Some(scope) = &mut self.san {
            let epoch = scope.shadow.epoch;
            let mut new = 0;
            for l in mask.iter() {
                let w = ptr.base() + idx.get(l);
                let valid = self.mem.word_valid(w);
                new += scope
                    .san
                    .global_read(self.id, epoch, l as u32, w, valid, "ld_cached", site);
            }
            for _ in 0..new {
                self.trace.ops.push(Op::San);
            }
        }
        self.anl_global(
            mask,
            ptr,
            idx,
            None,
            AccessKind::Read,
            "ld_cached",
            site,
            None,
        );
        let mut out = Lanes::splat(T::default());
        for l in mask.iter() {
            out.set(l, self.mem.read(ptr, idx.get(l)));
        }
        out
    }

    /// Uniform load: all active lanes read the same element (one
    /// instruction, one transaction). Models `ptr[c]` with scalar `c`.
    #[track_caller]
    pub fn ld_uniform<T: DeviceWord>(&mut self, mask: Mask, ptr: DevPtr<T>, idx: u32) -> T {
        let site = Location::caller();
        if self.tripped(site) {
            return T::default();
        }
        let op = Op::LdGlobal {
            active: mask.count() as u8,
            tx: 1,
        };
        self.trace.ops.push(op);
        self.prof_note(site, "ld_uniform", op);
        if !self.guard_global_scalar(mask, ptr, idx, "ld_uniform", site) {
            return T::default();
        }
        if let Some(scope) = &mut self.san {
            let epoch = scope.shadow.epoch;
            let lane = mask.leader().unwrap_or(0) as u32;
            let w = ptr.base() + idx;
            let valid = self.mem.word_valid(w);
            let new = scope
                .san
                .global_read(self.id, epoch, lane, w, valid, "ld_uniform", site);
            for _ in 0..new {
                self.trace.ops.push(Op::San);
            }
        }
        self.anl_global_scalar(mask, ptr, idx, None, AccessKind::Read, "ld_uniform", site);
        self.mem.read(ptr, idx)
    }

    /// Uniform store: the warp leader writes one element (one instruction,
    /// one transaction). Models `if (lane == 0) ptr[c] = v`.
    #[track_caller]
    pub fn st_uniform<T: DeviceWord>(&mut self, mask: Mask, ptr: DevPtr<T>, idx: u32, v: T) {
        if !mask.any() {
            return;
        }
        let site = Location::caller();
        if self.tripped(site) {
            return;
        }
        let op = Op::StGlobal { active: 1, tx: 1 };
        self.trace.ops.push(op);
        self.prof_note(site, "st_uniform", op);
        if !self.guard_global_scalar(mask, ptr, idx, "st_uniform", site) {
            return;
        }
        if let Some(scope) = &mut self.san {
            let epoch = scope.shadow.epoch;
            let lane = mask.leader().unwrap_or(0) as u32;
            let new = scope.san.global_write(
                self.id,
                epoch,
                lane,
                ptr.base() + idx,
                v.to_word(),
                "st_uniform",
                site,
            );
            for _ in 0..new {
                self.trace.ops.push(Op::San);
            }
        }
        self.anl_global_scalar(
            mask,
            ptr,
            idx,
            Some(v),
            AccessKind::Write,
            "st_uniform",
            site,
        );
        self.mem.write(ptr, idx, v);
    }

    // ---------------------------------------------------------------- atomics

    /// `atomicAdd` per active lane; returns each lane's fetched (pre-add)
    /// value. Lanes hitting the same address serialize; the replay count is
    /// `max_multiplicity − 1`.
    #[track_caller]
    pub fn atomic_add<T: DeviceWord + AtomicArith>(
        &mut self,
        mask: Mask,
        ptr: DevPtr<T>,
        idx: &Lanes<u32>,
        vals: &Lanes<T>,
    ) -> Lanes<T> {
        let site = Location::caller();
        self.atomic_rmw(mask, ptr, idx, vals, "atomic_add", site, |old, v| {
            old.atomic_add(v)
        })
    }

    /// `atomicMin` per active lane; returns fetched values.
    #[track_caller]
    pub fn atomic_min<T: DeviceWord + AtomicArith>(
        &mut self,
        mask: Mask,
        ptr: DevPtr<T>,
        idx: &Lanes<u32>,
        vals: &Lanes<T>,
    ) -> Lanes<T> {
        let site = Location::caller();
        self.atomic_rmw(mask, ptr, idx, vals, "atomic_min", site, |old, v| {
            old.atomic_min(v)
        })
    }

    /// `atomicOr` per active lane; returns fetched values. The workhorse
    /// of bitmask-frontier algorithms (multi-source BFS).
    #[track_caller]
    pub fn atomic_or(
        &mut self,
        mask: Mask,
        ptr: DevPtr<u32>,
        idx: &Lanes<u32>,
        vals: &Lanes<u32>,
    ) -> Lanes<u32> {
        let site = Location::caller();
        self.atomic_rmw(mask, ptr, idx, vals, "atomic_or", site, |old, v| old | v)
    }

    /// `atomicAnd` per active lane; returns fetched values.
    #[track_caller]
    pub fn atomic_and(
        &mut self,
        mask: Mask,
        ptr: DevPtr<u32>,
        idx: &Lanes<u32>,
        vals: &Lanes<u32>,
    ) -> Lanes<u32> {
        let site = Location::caller();
        self.atomic_rmw(mask, ptr, idx, vals, "atomic_and", site, |old, v| old & v)
    }

    /// `atomicExch` per active lane; returns fetched values.
    #[track_caller]
    pub fn atomic_exch<T: DeviceWord>(
        &mut self,
        mask: Mask,
        ptr: DevPtr<T>,
        idx: &Lanes<u32>,
        vals: &Lanes<T>,
    ) -> Lanes<T> {
        let site = Location::caller();
        self.atomic_rmw(mask, ptr, idx, vals, "atomic_exch", site, |_, v| v)
    }

    /// `atomicCAS` per active lane: if `ptr[idx] == cmp` store `new`;
    /// returns fetched values.
    #[track_caller]
    pub fn atomic_cas<T: DeviceWord>(
        &mut self,
        mask: Mask,
        ptr: DevPtr<T>,
        idx: &Lanes<u32>,
        cmp: &Lanes<T>,
        new: &Lanes<T>,
    ) -> Lanes<T> {
        let site = Location::caller();
        if self.tripped(site) {
            return Lanes::splat(T::default());
        }
        let mask = self.guard_global(mask, ptr, idx, "atomic_cas", site);
        let tx = self.mem_tx(mask, ptr, idx);
        let replays = self.atomic_replays(mask, idx);
        let op = Op::Atomic {
            active: mask.count() as u8,
            tx,
            replays,
        };
        self.trace.ops.push(op);
        self.prof_note(site, "atomic_cas", op);
        self.note_atomics(mask, ptr, idx, "atomic_cas", site, tx);
        let dropped_lane = match self.chaos.as_mut() {
            Some(plan) => plan.should_drop().then(|| mask.leader()).flatten(),
            None => None,
        };
        let mut out = Lanes::splat(T::default());
        for l in mask.iter() {
            let i = idx.get(l);
            let old = self.mem.read(ptr, i);
            out.set(l, old);
            if old == cmp.get(l) && dropped_lane != Some(l) {
                self.mem.write(ptr, i, new.get(l));
            }
        }
        out
    }

    /// Leader-only `atomicAdd` on a single counter, broadcast to the caller
    /// as a scalar. One instruction, one transaction, no replays. This is
    /// the work-queue fetch idiom from the paper's dynamic workload
    /// distribution.
    #[track_caller]
    pub fn atomic_add_uniform(&mut self, mask: Mask, ptr: DevPtr<u32>, idx: u32, v: u32) -> u32 {
        if !mask.any() {
            return 0;
        }
        let site = Location::caller();
        if self.tripped(site) {
            return 0;
        }
        let op = Op::Atomic {
            active: 1,
            tx: 1,
            replays: 0,
        };
        self.trace.ops.push(op);
        self.prof_note(site, "atomic_add_uniform", op);
        if !self.guard_global_scalar(mask, ptr, idx, "atomic_add_uniform", site) {
            return 0;
        }
        if let Some(scope) = &mut self.san {
            let epoch = scope.shadow.epoch;
            let lane = mask.leader().unwrap_or(0) as u32;
            let new = scope.san.global_atomic(
                self.id,
                epoch,
                lane,
                ptr.base() + idx,
                "atomic_add_uniform",
                site,
            );
            for _ in 0..new {
                self.trace.ops.push(Op::San);
            }
        }
        self.anl_global_scalar(
            mask,
            ptr,
            idx,
            None,
            AccessKind::Atomic,
            "atomic_add_uniform",
            site,
        );
        let old = self.mem.read(ptr, idx);
        let dropped = self.chaos.as_mut().is_some_and(|plan| plan.should_drop());
        if !dropped {
            self.mem.write(ptr, idx, old.wrapping_add(v));
        }
        old
    }

    #[allow(clippy::too_many_arguments)]
    fn atomic_rmw<T: DeviceWord>(
        &mut self,
        mask: Mask,
        ptr: DevPtr<T>,
        idx: &Lanes<u32>,
        vals: &Lanes<T>,
        op: &'static str,
        site: &'static Location<'static>,
        mut f: impl FnMut(T, T) -> T,
    ) -> Lanes<T> {
        if self.tripped(site) {
            return Lanes::splat(T::default());
        }
        let mask = self.guard_global(mask, ptr, idx, op, site);
        let tx = self.mem_tx(mask, ptr, idx);
        let replays = self.atomic_replays(mask, idx);
        let traced = Op::Atomic {
            active: mask.count() as u8,
            tx,
            replays,
        };
        self.trace.ops.push(traced);
        self.prof_note(site, op, traced);
        self.note_atomics(mask, ptr, idx, op, site, tx);
        let dropped_lane = match self.chaos.as_mut() {
            Some(plan) => plan.should_drop().then(|| mask.leader()).flatten(),
            None => None,
        };
        let mut out = Lanes::splat(T::default());
        for l in mask.iter() {
            let i = idx.get(l);
            let old = self.mem.read(ptr, i);
            out.set(l, old);
            if dropped_lane != Some(l) {
                self.mem.write(ptr, i, f(old, vals.get(l)));
            }
        }
        out
    }

    /// Sanitizer bookkeeping shared by the lane-wise atomic ops: coalescing
    /// sample plus per-lane atomic shadow updates.
    fn note_atomics<T: DeviceWord>(
        &mut self,
        mask: Mask,
        ptr: DevPtr<T>,
        idx: &Lanes<u32>,
        op: &'static str,
        site: &'static Location<'static>,
        tx: u8,
    ) {
        if let Some(scope) = &mut self.san {
            let epoch = scope.shadow.epoch;
            let distinct = distinct_addrs(mask.iter().map(|l| ptr.byte_addr(idx.get(l))));
            scope.san.coalesce_sample(
                self.id,
                op,
                site,
                mask.count(),
                tx as u32,
                distinct,
                self.segment_bytes / 4,
            );
            let mut new = 0;
            for l in mask.iter() {
                new += scope.san.global_atomic(
                    self.id,
                    epoch,
                    l as u32,
                    ptr.base() + idx.get(l),
                    op,
                    site,
                );
            }
            for _ in 0..new {
                self.trace.ops.push(Op::San);
            }
        }
        self.anl_global(
            mask,
            ptr,
            idx,
            None,
            AccessKind::Atomic,
            op,
            site,
            Some(tx as u32),
        );
    }

    // ------------------------------------------------------------ shared mem

    /// Shared-memory gather load with bank-conflict accounting.
    #[track_caller]
    pub fn sh_ld<T: DeviceWord>(
        &mut self,
        mask: Mask,
        ptr: SharedPtr<T>,
        idx: &Lanes<u32>,
    ) -> Lanes<T> {
        let site = Location::caller();
        if self.tripped(site) {
            return Lanes::splat(T::default());
        }
        let mask = self.guard_shared(mask, ptr, idx, "sh_ld", site);
        let cost = bank_conflict_cost(mask.iter().map(|l| ptr.word_of(idx.get(l)) as u32));
        let op = Op::Shared {
            active: mask.count() as u8,
            cost: cost.max(1) as u8,
        };
        self.trace.ops.push(op);
        self.prof_note(site, "sh_ld", op);
        if let Some(scope) = &mut self.san {
            let mut new = 0;
            if cost > 4 {
                new += scope.san.bank_conflict(self.id, cost, "sh_ld", site);
            }
            for l in mask.iter() {
                let w = ptr.base() + idx.get(l);
                new += scope
                    .san
                    .shared_read(scope.shadow, self.id, l as u32, w, "sh_ld", site);
            }
            for _ in 0..new {
                self.trace.ops.push(Op::San);
            }
        }
        self.anl_shared(mask, ptr, idx, None, AccessKind::Read, "sh_ld", site, cost);
        let mut out = Lanes::splat(T::default());
        for l in mask.iter() {
            out.set(l, T::from_word(self.shared.word(ptr.word_of(idx.get(l)))));
        }
        out
    }

    /// Shared-memory scatter store with bank-conflict accounting. Ascending
    /// lane order on collisions.
    #[track_caller]
    pub fn sh_st<T: DeviceWord>(
        &mut self,
        mask: Mask,
        ptr: SharedPtr<T>,
        idx: &Lanes<u32>,
        vals: &Lanes<T>,
    ) {
        let site = Location::caller();
        if self.tripped(site) {
            return;
        }
        let mask = self.guard_shared(mask, ptr, idx, "sh_st", site);
        let cost = bank_conflict_cost(mask.iter().map(|l| ptr.word_of(idx.get(l)) as u32));
        let op = Op::Shared {
            active: mask.count() as u8,
            cost: cost.max(1) as u8,
        };
        self.trace.ops.push(op);
        self.prof_note(site, "sh_st", op);
        if let Some(scope) = &mut self.san {
            let mut new = 0;
            if cost > 4 {
                new += scope.san.bank_conflict(self.id, cost, "sh_st", site);
            }
            for l in mask.iter() {
                let w = ptr.base() + idx.get(l);
                new += scope
                    .san
                    .shared_write(scope.shadow, self.id, l as u32, w, "sh_st", site);
            }
            for _ in 0..new {
                self.trace.ops.push(Op::San);
            }
        }
        self.anl_shared(
            mask,
            ptr,
            idx,
            Some(vals),
            AccessKind::Write,
            "sh_st",
            site,
            cost,
        );
        for l in mask.iter() {
            let w = ptr.word_of(idx.get(l));
            self.shared.set_word(w, vals.get(l).to_word());
        }
    }

    // ---------------------------------------------------------------- private

    /// Hand one lane-wise global access to the static analyzer: absolute
    /// word addresses, stored bit patterns, and validity of the words read,
    /// all sampled at the same moment the sanitizer would observe them.
    #[allow(clippy::too_many_arguments)]
    fn anl_global<T: DeviceWord>(
        &mut self,
        mask: Mask,
        ptr: DevPtr<T>,
        idx: &Lanes<u32>,
        vals: Option<&Lanes<T>>,
        kind: AccessKind,
        op: &'static str,
        site: &'static Location<'static>,
        coalesce_tx: Option<u32>,
    ) {
        if self.anl.is_none() {
            return;
        }
        let mut addrs = [(0usize, 0i64); WARP_SIZE];
        let mut values = [(0usize, 0i64); WARP_SIZE];
        let mut n = 0usize;
        let mut invalid = 0u32;
        for l in mask.iter() {
            let w = ptr.base() + idx.get(l);
            addrs[n] = (l, w as i64);
            if let Some(v) = vals {
                values[n] = (l, v.get(l).to_word() as i64);
            }
            if kind == AccessKind::Read && !self.mem.word_valid(w) {
                invalid += 1;
            }
            n += 1;
        }
        let coalesce = coalesce_tx.map(|tx| {
            (
                tx,
                distinct_addrs(mask.iter().map(|l| ptr.byte_addr(idx.get(l)))),
            )
        });
        if let Some(anl) = self.anl.as_deref_mut() {
            anl.mem_access(MemObs {
                id: self.id,
                epoch: self.epoch,
                kind,
                space: Space::Global,
                op,
                site,
                addrs: &addrs[..n],
                values: vals.map(|_| &values[..n]),
                lane_span: mask.span(),
                invalid,
                coalesce,
                segment_words: self.segment_bytes / 4,
                bank_cost: 1,
            });
        }
    }

    /// Hand one uniform (scalar-index) global access to the analyzer as a
    /// single leader-lane observation.
    #[allow(clippy::too_many_arguments)]
    fn anl_global_scalar<T: DeviceWord>(
        &mut self,
        mask: Mask,
        ptr: DevPtr<T>,
        idx: u32,
        val: Option<T>,
        kind: AccessKind,
        op: &'static str,
        site: &'static Location<'static>,
    ) {
        if self.anl.is_none() {
            return;
        }
        let lane = mask.leader().unwrap_or(0);
        let w = ptr.base() + idx;
        let invalid = (kind == AccessKind::Read && !self.mem.word_valid(w)) as u32;
        let addrs = [(lane, w as i64)];
        let values = val.map(|v| [(lane, v.to_word() as i64)]);
        if let Some(anl) = self.anl.as_deref_mut() {
            anl.mem_access(MemObs {
                id: self.id,
                epoch: self.epoch,
                kind,
                space: Space::Global,
                op,
                site,
                addrs: &addrs,
                values: values.as_ref().map(|a| &a[..]),
                lane_span: Some((lane, lane)),
                invalid,
                coalesce: None,
                segment_words: self.segment_bytes / 4,
                bank_cost: 1,
            });
        }
    }

    /// Hand one lane-wise shared access to the analyzer (which keeps its
    /// own per-block valid-bit shadow).
    #[allow(clippy::too_many_arguments)]
    fn anl_shared<T: DeviceWord>(
        &mut self,
        mask: Mask,
        ptr: SharedPtr<T>,
        idx: &Lanes<u32>,
        vals: Option<&Lanes<T>>,
        kind: AccessKind,
        op: &'static str,
        site: &'static Location<'static>,
        bank_cost: u32,
    ) {
        if self.anl.is_none() {
            return;
        }
        let mut addrs = [(0usize, 0i64); WARP_SIZE];
        let mut values = [(0usize, 0i64); WARP_SIZE];
        let mut n = 0usize;
        for l in mask.iter() {
            addrs[n] = (l, (ptr.base() + idx.get(l)) as i64);
            if let Some(v) = vals {
                values[n] = (l, v.get(l).to_word() as i64);
            }
            n += 1;
        }
        if let Some(anl) = self.anl.as_deref_mut() {
            anl.mem_access(MemObs {
                id: self.id,
                epoch: self.epoch,
                kind,
                space: Space::Shared,
                op,
                site,
                addrs: &addrs[..n],
                values: vals.map(|_| &values[..n]),
                lane_span: mask.span(),
                invalid: 0,
                coalesce: None,
                segment_words: self.segment_bytes / 4,
                bank_cost,
            });
        }
    }

    /// Route a fault to the launch's fault slot (keeping the first), or —
    /// for bare test contexts with no slot — abort like the hardware would.
    fn record_fault(&mut self, e: SimtError) {
        match &mut self.fault {
            Some(slot) => fault::record(slot, e),
            None => panic!("{e}"),
        }
    }

    /// Watchdog: true once this warp's trace has hit its instruction budget.
    /// Records the trip as a fault the first time; afterwards every op is
    /// suppressed and mask-producing ops return empty results, so kernel
    /// `while mask.any()` loops unwind instead of spinning forever.
    #[inline]
    fn tripped(&mut self, site: &'static Location<'static>) -> bool {
        let Some(budget) = self.budget else {
            return false;
        };
        let n = self.trace.ops.len() as u64;
        if n < budget {
            return false;
        }
        let e = SimtError::Watchdog(WatchdogKind::InstructionBudget {
            instructions: n,
            budget,
            block: self.id.block,
            warp: self.id.warp_in_block,
            site,
        });
        self.record_fault(e);
        true
    }

    /// Validate a virtual-warp width; on failure records
    /// [`SimtError::InvalidShuffle`] and tells the caller to bail out with a
    /// neutral result.
    fn check_width(
        &mut self,
        width: usize,
        op: &'static str,
        site: &'static Location<'static>,
    ) -> bool {
        if width.is_power_of_two() && width <= WARP_SIZE {
            return true;
        }
        let e = SimtError::InvalidShuffle {
            width: width as u32,
            block: self.id.block,
            warp: self.id.warp_in_block,
            op,
            site,
        };
        self.record_fault(e);
        false
    }

    #[inline]
    #[track_caller]
    fn push_alu(&mut self, mask: Mask) {
        if self.tripped(Location::caller()) {
            return;
        }
        let op = Op::Alu {
            active: mask.count() as u8,
        };
        self.trace.ops.push(op);
        if self.prof.is_some() {
            self.prof_note(Location::caller(), "alu", op);
        }
    }

    /// Record one traced op against its kernel call site in the profiler
    /// (no-op when profiling is off; pushes nothing into the trace).
    #[inline]
    fn prof_note(&mut self, site: &'static Location<'static>, op_name: &'static str, op: Op) {
        if let Some(prof) = self.prof.as_deref_mut() {
            prof.note(site, op_name, op, self.segment_bytes / 4);
        }
    }

    /// Warn on a warp collective executed under an empty active mask.
    fn check_empty_mask(&mut self, mask: Mask, op: &'static str, site: &'static Location<'static>) {
        if !mask.none() {
            return;
        }
        if let Some(scope) = &mut self.san {
            let new = scope.san.empty_mask(self.id, op, site);
            for _ in 0..new {
                self.trace.ops.push(Op::San);
            }
        }
        if let Some(anl) = self.anl.as_deref_mut() {
            anl.empty_collective(self.id, op, site);
        }
    }

    /// Bounds-check a lane-wise global access. With the sanitizer on,
    /// out-of-bounds lanes are reported as structured diagnostics and
    /// dropped from the returned mask; with it off, the first offender is
    /// recorded as a [`SimtError::OutOfBounds`] launch fault (the moral
    /// equivalent of `cudaErrorIllegalAddress`) and the lane is dropped.
    fn guard_global<T: DeviceWord>(
        &mut self,
        mask: Mask,
        ptr: DevPtr<T>,
        idx: &Lanes<u32>,
        op: &'static str,
        site: &'static Location<'static>,
    ) -> Mask {
        let mut ok = mask;
        for l in mask.iter() {
            let i = idx.get(l);
            if i < ptr.len() {
                continue;
            }
            if let Some(anl) = self.anl.as_deref_mut() {
                anl.oob(self.id, Space::Global, op, site);
            }
            match &mut self.san {
                Some(scope) => {
                    let new = scope
                        .san
                        .oob_global(self.id, l as u32, i, ptr.len(), op, site);
                    for _ in 0..new {
                        self.trace.ops.push(Op::San);
                    }
                }
                None => self.record_fault(SimtError::OutOfBounds {
                    space: AddressSpace::Global,
                    block: self.id.block,
                    warp: self.id.warp_in_block,
                    lane: Some(l as u32),
                    index: i as u64,
                    len: ptr.len() as u64,
                    op,
                    site,
                }),
            }
            ok = ok.with(l, false);
        }
        ok
    }

    /// Bounds-check a uniform (scalar-index) global access; false means the
    /// access was out of bounds and suppressed (diagnosed by the sanitizer
    /// when it is on, recorded as a launch fault otherwise).
    fn guard_global_scalar<T: DeviceWord>(
        &mut self,
        mask: Mask,
        ptr: DevPtr<T>,
        idx: u32,
        op: &'static str,
        site: &'static Location<'static>,
    ) -> bool {
        if idx < ptr.len() {
            return true;
        }
        let lane = mask.leader().unwrap_or(0);
        if let Some(anl) = self.anl.as_deref_mut() {
            anl.oob(self.id, Space::Global, op, site);
        }
        match &mut self.san {
            Some(scope) => {
                let new = scope
                    .san
                    .oob_global(self.id, lane as u32, idx, ptr.len(), op, site);
                for _ in 0..new {
                    self.trace.ops.push(Op::San);
                }
            }
            None => self.record_fault(SimtError::OutOfBounds {
                space: AddressSpace::Global,
                block: self.id.block,
                warp: self.id.warp_in_block,
                lane: Some(lane as u32),
                index: idx as u64,
                len: ptr.len() as u64,
                op,
                site,
            }),
        }
        false
    }

    /// Bounds-check a lane-wise shared-memory access (same policy as
    /// [`guard_global`](WarpCtx::guard_global), with the faulting bank in
    /// the message).
    fn guard_shared<T: DeviceWord>(
        &mut self,
        mask: Mask,
        ptr: SharedPtr<T>,
        idx: &Lanes<u32>,
        op: &'static str,
        site: &'static Location<'static>,
    ) -> Mask {
        let mut ok = mask;
        for l in mask.iter() {
            let i = idx.get(l);
            if i < ptr.len() {
                continue;
            }
            let bank = (ptr.base().wrapping_add(i)) % NUM_BANKS as u32;
            if let Some(anl) = self.anl.as_deref_mut() {
                anl.oob(self.id, Space::Shared, op, site);
            }
            match &mut self.san {
                Some(scope) => {
                    let new = scope
                        .san
                        .oob_shared(self.id, l as u32, i, ptr.len(), bank, op, site);
                    for _ in 0..new {
                        self.trace.ops.push(Op::San);
                    }
                }
                None => self.record_fault(SimtError::OutOfBounds {
                    space: AddressSpace::Shared,
                    block: self.id.block,
                    warp: self.id.warp_in_block,
                    lane: Some(l as u32),
                    index: i as u64,
                    len: ptr.len() as u64,
                    op,
                    site,
                }),
            }
            ok = ok.with(l, false);
        }
        ok
    }

    /// Charge a `log2(width)` shuffle tree.
    #[track_caller]
    fn charge_tree(&mut self, mask: Mask, width: usize) {
        for _ in 0..width.trailing_zeros() {
            self.push_alu(mask);
        }
    }

    fn mem_tx<T: DeviceWord>(&self, mask: Mask, ptr: DevPtr<T>, idx: &Lanes<u32>) -> u8 {
        transactions(
            mask.iter().map(|l| ptr.byte_addr(idx.get(l))),
            self.segment_bytes,
        ) as u8
    }

    fn atomic_replays(&self, mask: Mask, idx: &Lanes<u32>) -> u8 {
        // Max same-address multiplicity − 1: the hardware serializes lanes
        // that update the same location.
        let mut addrs = [0u32; WARP_SIZE];
        let mut counts = [0u8; WARP_SIZE];
        let mut n = 0usize;
        'outer: for l in mask.iter() {
            let a = idx.get(l);
            for k in 0..n {
                if addrs[k] == a {
                    counts[k] += 1;
                    continue 'outer;
                }
            }
            addrs[n] = a;
            counts[n] = 1;
            n += 1;
        }
        counts[..n]
            .iter()
            .copied()
            .max()
            .unwrap_or(1)
            .saturating_sub(1)
    }
}

/// Arithmetic used by atomic read-modify-write ops.
pub trait AtomicArith: Copy {
    /// `self + v` with wrapping semantics for integers.
    fn atomic_add(self, v: Self) -> Self;
    /// `min(self, v)`.
    fn atomic_min(self, v: Self) -> Self;
}

impl AtomicArith for u32 {
    #[inline]
    fn atomic_add(self, v: Self) -> Self {
        self.wrapping_add(v)
    }
    #[inline]
    fn atomic_min(self, v: Self) -> Self {
        self.min(v)
    }
}

impl AtomicArith for i32 {
    #[inline]
    fn atomic_add(self, v: Self) -> Self {
        self.wrapping_add(v)
    }
    #[inline]
    fn atomic_min(self, v: Self) -> Self {
        self.min(v)
    }
}

impl AtomicArith for f32 {
    #[inline]
    fn atomic_add(self, v: Self) -> Self {
        self + v
    }
    #[inline]
    fn atomic_min(self, v: Self) -> Self {
        self.min(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GpuConfig;

    fn ctx_parts() -> (DeviceMem, SharedMem, WarpTrace, CacheModel, GpuConfig) {
        let cfg = GpuConfig::fermi_c2050();
        (
            DeviceMem::new(),
            SharedMem::new(1024),
            WarpTrace::new(),
            CacheModel::new(cfg.l2_lines, cfg.l2_ways, cfg.segment_bytes),
            cfg,
        )
    }

    fn wid() -> WarpId {
        WarpId {
            block: 1,
            warp_in_block: 2,
            warps_per_block: 4,
            num_blocks: 3,
        }
    }

    #[test]
    fn warp_id_math() {
        let id = wid();
        assert_eq!(id.global(), 6);
        assert_eq!(id.total_warps(), 12);
    }

    #[test]
    fn global_thread_ids() {
        let (mut m, mut s, mut t, mut ch, cfg) = ctx_parts();
        let w = WarpCtx::new(&mut m, &mut s, &mut t, &mut ch, &cfg, wid());
        assert_eq!(w.global_thread_ids().get(0), 6 * 32);
        assert_eq!(w.global_thread_ids().get(31), 6 * 32 + 31);
        assert_eq!(w.total_threads(), 12 * 32);
    }

    #[test]
    fn coalesced_load_one_tx() {
        let (mut m, mut s, mut t, mut ch, cfg) = ctx_parts();
        let p = m.alloc_from(&(0..32u32).collect::<Vec<_>>());
        let mut w = WarpCtx::new(&mut m, &mut s, &mut t, &mut ch, &cfg, wid());
        let vals = w.ld(Mask::FULL, p, &Lanes::lane_ids());
        assert_eq!(vals.get(17), 17);
        assert_eq!(t.ops, vec![Op::LdGlobal { active: 32, tx: 1 }]);
    }

    #[test]
    fn scattered_load_many_tx() {
        let (mut m, mut s, mut t, mut ch, cfg) = ctx_parts();
        let p = m.alloc::<u32>(32 * 32);
        let mut w = WarpCtx::new(&mut m, &mut s, &mut t, &mut ch, &cfg, wid());
        let idx = Lanes::from_fn(|l| (l * 32) as u32); // one segment per lane
        let _ = w.ld(Mask::FULL, p, &idx);
        assert_eq!(t.ops, vec![Op::LdGlobal { active: 32, tx: 32 }]);
    }

    #[test]
    fn masked_store_only_writes_active() {
        let (mut m, mut s, mut t, mut ch, cfg) = ctx_parts();
        let p = m.alloc::<u32>(32);
        {
            let mut w = WarpCtx::new(&mut m, &mut s, &mut t, &mut ch, &cfg, wid());
            w.st(Mask::first(4), p, &Lanes::lane_ids(), &Lanes::splat(9u32));
        }
        let host = m.download(p);
        assert_eq!(&host[..6], &[9, 9, 9, 9, 0, 0]);
    }

    #[test]
    fn store_collision_highest_lane_wins() {
        let (mut m, mut s, mut t, mut ch, cfg) = ctx_parts();
        let p = m.alloc::<u32>(4);
        {
            let mut w = WarpCtx::new(&mut m, &mut s, &mut t, &mut ch, &cfg, wid());
            let idx = Lanes::splat(2u32);
            let vals = Lanes::from_fn(|l| l as u32);
            w.st(Mask::FULL, p, &idx, &vals);
        }
        assert_eq!(m.read(p, 2), 31);
    }

    #[test]
    fn atomic_add_returns_old_and_counts_replays() {
        let (mut m, mut s, mut t, mut ch, cfg) = ctx_parts();
        let p = m.alloc::<u32>(4);
        {
            let mut w = WarpCtx::new(&mut m, &mut s, &mut t, &mut ch, &cfg, wid());
            // All 32 lanes add 1 to the same counter: 31 replays.
            let old = w.atomic_add(Mask::FULL, p, &Lanes::splat(0u32), &Lanes::splat(1u32));
            assert_eq!(old.get(0), 0);
            assert_eq!(old.get(31), 31);
        }
        assert_eq!(m.read(p, 0), 32);
        match t.ops[0] {
            Op::Atomic { replays, .. } => assert_eq!(replays, 31),
            ref o => panic!("unexpected op {o:?}"),
        }
    }

    #[test]
    fn atomic_min_and_cas() {
        let (mut m, mut s, mut t, mut ch, cfg) = ctx_parts();
        let p = m.alloc_from(&[10u32, 20, 30, 40]);
        {
            let mut w = WarpCtx::new(&mut m, &mut s, &mut t, &mut ch, &cfg, wid());
            let idx = Lanes::from_fn(|l| (l % 4) as u32);
            let m4 = Mask::first(4);
            let _ = w.atomic_min(m4, p, &idx, &Lanes::splat(25u32));
            let old = w.atomic_cas(m4, p, &idx, &Lanes::splat(25u32), &Lanes::splat(0u32));
            assert_eq!(old.get(0), 10);
        }
        assert_eq!(m.download(p), vec![10, 20, 0, 0]); // 25s CAS'd to 0
    }

    #[test]
    fn atomic_or_and() {
        let (mut m, mut s, mut t, mut ch, cfg) = ctx_parts();
        let p = m.alloc::<u32>(2);
        {
            let mut w = WarpCtx::new(&mut m, &mut s, &mut t, &mut ch, &cfg, wid());
            // Each lane ORs its own bit into word 0.
            let bits = Lanes::from_fn(|l| 1u32 << l);
            let old = w.atomic_or(Mask::FULL, p, &Lanes::splat(0u32), &bits);
            assert_eq!(old.get(0), 0);
            assert_eq!(old.get(1), 1); // saw lane 0's bit
            let _ = w.atomic_and(
                Mask::first(1),
                p,
                &Lanes::splat(0u32),
                &Lanes::splat(0xFFu32),
            );
        }
        assert_eq!(m.read(p, 0), 0xFF);
    }

    #[test]
    fn atomic_add_uniform_fetches_once() {
        let (mut m, mut s, mut t, mut ch, cfg) = ctx_parts();
        let p = m.alloc::<u32>(1);
        {
            let mut w = WarpCtx::new(&mut m, &mut s, &mut t, &mut ch, &cfg, wid());
            assert_eq!(w.atomic_add_uniform(Mask::FULL, p, 0, 128), 0);
            assert_eq!(w.atomic_add_uniform(Mask::FULL, p, 0, 128), 128);
        }
        assert_eq!(m.read(p, 0), 256);
        assert_eq!(t.ops.len(), 2);
    }

    #[test]
    fn ballot_any_all() {
        let (mut m, mut s, mut t, mut ch, cfg) = ctx_parts();
        let mut w = WarpCtx::new(&mut m, &mut s, &mut t, &mut ch, &cfg, wid());
        let pred = Mask::first(8);
        assert_eq!(w.ballot(Mask::FULL, pred), pred);
        assert!(w.any(Mask::FULL, pred));
        assert!(!w.all(Mask::FULL, pred));
        assert!(w.all(Mask::first(8), pred));
        assert_eq!(t.ops.len(), 4);
    }

    #[test]
    fn reductions_and_scan() {
        let (mut m, mut s, mut t, mut ch, cfg) = ctx_parts();
        let mut w = WarpCtx::new(&mut m, &mut s, &mut t, &mut ch, &cfg, wid());
        let ids = Lanes::lane_ids();
        assert_eq!(w.reduce_add(Mask::FULL, &ids), (0..32).sum::<u32>());
        assert_eq!(w.reduce_min(Mask::first(8).not(), &ids), 8);
        assert_eq!(w.reduce_max(Mask::first(8), &ids), 7);
        let sc = w.scan_add_exclusive(Mask::FULL, &Lanes::splat(1u32));
        assert_eq!(sc.get(0), 0);
        assert_eq!(sc.get(31), 31);
        // 4 tree primitives × 5 instructions each.
        assert_eq!(t.ops.len(), 20);
    }

    #[test]
    fn segmented_ops() {
        let (mut m, mut s, mut t, mut ch, cfg) = ctx_parts();
        let mut w = WarpCtx::new(&mut m, &mut s, &mut t, &mut ch, &cfg, wid());
        let ids = Lanes::lane_ids();
        // Segments of 8: segment k sums 8 consecutive lane ids.
        let r = w.seg_reduce_add(Mask::FULL, &Lanes::splat(1u32), 8);
        for l in 0..WARP_SIZE {
            assert_eq!(r.get(l), 8);
        }
        let b = w.seg_bcast(Mask::FULL, &ids, 8);
        assert_eq!(b.get(0), 0);
        assert_eq!(b.get(7), 0);
        assert_eq!(b.get(8), 8);
        assert_eq!(b.get(31), 24);
        let a = w.seg_any(Mask::FULL, Mask::lane(9), 8);
        assert!(!a.get(0));
        assert!(a.get(8) && a.get(15));
        assert!(!a.get(16));
        // seg_reduce over width 8 = 3 instrs; bcast 1; seg_any 1.
        assert_eq!(t.ops.len(), 5);
    }

    #[test]
    fn shfl_and_bcast() {
        let (mut m, mut s, mut t, mut ch, cfg) = ctx_parts();
        let mut w = WarpCtx::new(&mut m, &mut s, &mut t, &mut ch, &cfg, wid());
        let ids = Lanes::lane_ids();
        let rev = Lanes::from_fn(|l| 31 - l as u32);
        let shuf = w.shfl(Mask::FULL, &ids, &rev);
        assert_eq!(shuf.get(0), 31);
        assert_eq!(shuf.get(31), 0);
        let b = w.shfl_bcast(Mask::FULL, &ids, 5);
        assert_eq!(b.get(0), 5);
        assert_eq!(b.get(31), 5);
    }

    #[test]
    fn shared_roundtrip_and_conflicts() {
        let (mut m, mut s, mut t, mut ch, cfg) = ctx_parts();
        let sp = s.alloc::<u32>(64);
        {
            let mut w = WarpCtx::new(&mut m, &mut s, &mut t, &mut ch, &cfg, wid());
            let ids = Lanes::lane_ids();
            w.sh_st(Mask::FULL, sp, &ids, &ids);
            let v = w.sh_ld(Mask::FULL, sp, &ids);
            assert_eq!(v.get(13), 13);
            // Stride-2: two-way conflict.
            let idx2 = Lanes::from_fn(|l| (l as u32 * 2) % 64);
            let _ = w.sh_ld(Mask::FULL, sp, &idx2);
        }
        match (t.ops[0], t.ops[1], t.ops[2]) {
            (
                Op::Shared { cost: 1, .. },
                Op::Shared { cost: 1, .. },
                Op::Shared { cost: 2, .. },
            ) => {}
            other => panic!("unexpected ops {other:?}"),
        }
    }

    #[test]
    fn ld_uniform_and_st_uniform() {
        let (mut m, mut s, mut t, mut ch, cfg) = ctx_parts();
        let p = m.alloc_from(&[7u32, 8]);
        {
            let mut w = WarpCtx::new(&mut m, &mut s, &mut t, &mut ch, &cfg, wid());
            assert_eq!(w.ld_uniform(Mask::FULL, p, 1), 8);
            w.st_uniform(Mask::first(3), p, 0, 99);
            // Empty mask: no write.
            w.st_uniform(Mask::NONE, p, 1, 1000);
        }
        assert_eq!(m.read(p, 0), 99);
        assert_eq!(m.read(p, 1), 8);
    }

    #[test]
    fn shfl_wraps_out_of_range_src() {
        let (mut m, mut s, mut t, mut ch, cfg) = ctx_parts();
        let mut w = WarpCtx::new(&mut m, &mut s, &mut t, &mut ch, &cfg, wid());
        let ids = Lanes::lane_ids();
        // CUDA __shfl reads srcLane % width, so 32 wraps to lane 0,
        // 33 to lane 1, and so on — not the reading lane's own value.
        let src = Lanes::from_fn(|l| (l as u32) + 32);
        let shuf = w.shfl(Mask::FULL, &ids, &src);
        for l in 0..WARP_SIZE {
            assert_eq!(shuf.get(l), l as u32, "lane {l} must wrap to {l}");
        }
        let far = w.shfl(Mask::FULL, &ids, &Lanes::splat(97u32)); // 97 % 32 = 1
        assert_eq!(far.get(0), 1);
        assert_eq!(far.get(31), 1);
    }

    #[test]
    fn empty_mask_uniform_ops_trace_nothing() {
        let (mut m, mut s, mut t, mut ch, cfg) = ctx_parts();
        let p = m.alloc_from(&[41u32, 7]);
        {
            let mut w = WarpCtx::new(&mut m, &mut s, &mut t, &mut ch, &cfg, wid());
            w.st_uniform(Mask::NONE, p, 0, 1000);
            assert_eq!(w.atomic_add_uniform(Mask::NONE, p, 0, 5), 0);
        }
        // A fully predicated-off uniform op must not reach the device:
        // no trace entries, no transactions, and memory untouched.
        assert!(
            t.ops.is_empty(),
            "empty-mask uniform ops traced {:?}",
            t.ops
        );
        assert_eq!(m.read(p, 0), 41);
    }

    #[test]
    #[should_panic(expected = "illegal device address")]
    fn oob_load_panics() {
        let (mut m, mut s, mut t, mut ch, cfg) = ctx_parts();
        let p = m.alloc::<u32>(4);
        let mut w = WarpCtx::new(&mut m, &mut s, &mut t, &mut ch, &cfg, wid());
        let _ = w.ld(Mask::FULL, p, &Lanes::splat(4u32));
    }

    #[test]
    fn alu_ops_record_active_counts() {
        let (mut m, mut s, mut t, mut ch, cfg) = ctx_parts();
        {
            let mut w = WarpCtx::new(&mut m, &mut s, &mut t, &mut ch, &cfg, wid());
            let ids = Lanes::lane_ids();
            let _ = w.add_scalar(Mask::first(5), &ids, 1);
            let _ = w.lt_scalar(Mask::first(10), &ids, 100);
        }
        assert_eq!(t.ops, vec![Op::Alu { active: 5 }, Op::Alu { active: 10 }]);
    }

    #[test]
    fn cached_load_hits_on_reuse() {
        let (mut m, mut s, mut t, mut ch, cfg) = ctx_parts();
        let p = m.alloc_from(&(0..64u32).collect::<Vec<_>>());
        {
            let mut w = WarpCtx::new(&mut m, &mut s, &mut t, &mut ch, &cfg, wid());
            let v1 = w.ld_cached(Mask::FULL, p, &Lanes::lane_ids());
            assert_eq!(v1.get(5), 5);
            let _ = w.ld_cached(Mask::FULL, p, &Lanes::lane_ids());
        }
        match (t.ops[0], t.ops[1]) {
            (
                Op::LdCached {
                    hits: 0, misses: 1, ..
                },
                Op::LdCached {
                    hits: 1, misses: 0, ..
                },
            ) => {}
            other => panic!("unexpected ops {other:?}"),
        }
    }

    #[test]
    fn lt_and_eq_masks() {
        let (mut m, mut s, mut t, mut ch, cfg) = ctx_parts();
        let mut w = WarpCtx::new(&mut m, &mut s, &mut t, &mut ch, &cfg, wid());
        let ids = Lanes::lane_ids();
        let m1 = w.lt_scalar(Mask::FULL, &ids, 4);
        assert_eq!(m1, Mask::first(4));
        let m2 = w.eq_scalar(Mask::first(8), &ids, 9);
        assert!(m2.none());
        let m3 = w.lt(Mask::FULL, &ids, &Lanes::splat(2u32));
        assert_eq!(m3, Mask::first(2));
    }
}
