//! Fault-tolerant execution: structured errors, watchdog budgets, and
//! deterministic fault injection.
//!
//! The functional executor used to `panic!` on malformed device programs
//! (out-of-bounds addresses, exhausted shared memory, bad shuffle widths) and
//! to loop forever on non-converging drivers. This module turns every such
//! condition into a [`SimtError`] value carrying the same block/warp/lane/site
//! attribution the sanitizer's diagnostics use, so a single bad kernel in a
//! 78-combo sweep produces a report instead of taking the process down.
//!
//! Three pieces live here:
//!
//! * [`SimtError`] — the error taxonomy surfaced through
//!   `LaunchError::Fault` by `Gpu::launch` and the driver loops in
//!   `maxwarp-core`.
//! * [`WatchdogConfig`] — optional cycle / instruction / iteration budgets
//!   (`GpuConfig::watchdog`, `MAXWARP_MAX_CYCLES`, `MAXWARP_MAX_ITERS`) that
//!   convert hangs into diagnosable [`SimtError::Watchdog`] values.
//! * [`FaultConfig`] + [`ChaosState`] — a seedable chaos mode
//!   (`GpuConfig::faults`, `MAXWARP_FAULTS=seed`) that injects bit-flips in
//!   device memory, dropped atomic updates, and scheduling perturbations at
//!   reproducible trace points. Same seed, same program → same injections,
//!   same outcome.

use std::fmt;
use std::panic::Location;

use serde::{Deserialize, Serialize};

// ---------------------------------------------------------------------------
// error taxonomy
// ---------------------------------------------------------------------------

/// Which address space an out-of-bounds access targeted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AddressSpace {
    Global,
    Shared,
}

impl AddressSpace {
    /// The wording the simulator has always used in its abort messages.
    fn label(self) -> &'static str {
        match self {
            AddressSpace::Global => "device",
            AddressSpace::Shared => "shared-memory",
        }
    }
}

/// What tripped the watchdog.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WatchdogKind {
    /// Cumulative simulated cycles across launches exceeded
    /// `WatchdogConfig::max_cycles`.
    CycleBudget { cycles: u64, budget: u64 },
    /// A single warp's functional trace exceeded
    /// `WatchdogConfig::max_instructions` — the classic symptom of a
    /// `while mask.any()` loop that never converges inside a kernel.
    InstructionBudget {
        instructions: u64,
        budget: u64,
        block: u32,
        warp: u32,
        site: &'static Location<'static>,
    },
    /// A driver fixpoint loop ran past its iteration bound
    /// (`WatchdogConfig::max_iterations` or the algorithm's theoretical cap).
    IterationBudget {
        algo: String,
        iterations: u32,
        budget: u32,
        site: &'static Location<'static>,
    },
    /// Some warps of a block parked on a barrier while the rest retired —
    /// on hardware this hangs the block forever.
    BarrierDeadlock {
        block: u32,
        parked_warps: Vec<u32>,
        retired_warps: u32,
    },
}

/// Structured error for everything that used to panic inside the simulator,
/// with the same attribution scheme as the sanitizer's diagnostics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimtError {
    /// A lane addressed past the end of a device or shared allocation.
    OutOfBounds {
        space: AddressSpace,
        block: u32,
        warp: u32,
        lane: Option<u32>,
        index: u64,
        len: u64,
        op: &'static str,
        site: &'static Location<'static>,
    },
    /// `shared_alloc` asked for more words than the block has left.
    SharedMemoryOverflow {
        requested_words: u32,
        used_words: u32,
        capacity_words: u32,
        block: u32,
        site: &'static Location<'static>,
    },
    /// `DeviceMem::try_alloc` overflowed the 32-bit word address space.
    AddressSpaceExhausted {
        requested_bytes: u64,
        available_bytes: u64,
    },
    /// A warp-level shuffle/segmented op was given an invalid width
    /// (not a power of two, or wider than the warp).
    InvalidShuffle {
        width: u32,
        block: u32,
        warp: u32,
        op: &'static str,
        site: &'static Location<'static>,
    },
    /// A watchdog budget tripped — the run would otherwise hang.
    Watchdog(WatchdogKind),
}

impl WatchdogKind {
    /// Stable lowercase label for metrics
    /// (`simt_watchdog_trips_total{kind=…}`).
    pub fn kind_label(&self) -> &'static str {
        match self {
            WatchdogKind::CycleBudget { .. } => "cycle_budget",
            WatchdogKind::InstructionBudget { .. } => "instruction_budget",
            WatchdogKind::IterationBudget { .. } => "iteration_budget",
            WatchdogKind::BarrierDeadlock { .. } => "barrier_deadlock",
        }
    }
}

impl SimtError {
    /// Stable lowercase label for metrics (`simt_faults_total{kind=…}`).
    pub fn kind_label(&self) -> &'static str {
        match self {
            SimtError::OutOfBounds { .. } => "out_of_bounds",
            SimtError::SharedMemoryOverflow { .. } => "shared_memory_overflow",
            SimtError::AddressSpaceExhausted { .. } => "address_space_exhausted",
            SimtError::InvalidShuffle { .. } => "invalid_shuffle",
            SimtError::Watchdog(_) => "watchdog",
        }
    }
}

impl fmt::Display for SimtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimtError::OutOfBounds {
                space,
                block,
                warp,
                lane,
                index,
                len,
                op,
                site,
            } => {
                write!(
                    f,
                    "illegal {} address: index {index} out of bounds for allocation of {len}",
                    space.label()
                )?;
                write!(f, "\n    at {site} (op `{op}`)")?;
                write!(f, "\n    block {block} warp {warp}")?;
                if let Some(l) = lane {
                    write!(f, " lane {l}")?;
                }
                Ok(())
            }
            SimtError::SharedMemoryOverflow {
                requested_words,
                used_words,
                capacity_words,
                block,
                site,
            } => write!(
                f,
                "shared memory exhausted: requested {requested_words} words, \
                 {used_words} of {capacity_words} in use\n    at {site}\n    block {block}"
            ),
            SimtError::AddressSpaceExhausted {
                requested_bytes,
                available_bytes,
            } => write!(
                f,
                "device memory address space exhausted: requested {requested_bytes} B, \
                 {available_bytes} B of address space left"
            ),
            SimtError::InvalidShuffle {
                width,
                block,
                warp,
                op,
                site,
            } => write!(
                f,
                "invalid shuffle width {width}: must be a power of two \
                 <= 32\n    at {site} (op `{op}`)\n    block {block} warp {warp}"
            ),
            SimtError::Watchdog(kind) => match kind {
                WatchdogKind::CycleBudget { cycles, budget } => write!(
                    f,
                    "watchdog: simulated cycle budget exceeded ({cycles} > {budget})"
                ),
                WatchdogKind::InstructionBudget {
                    instructions,
                    budget,
                    block,
                    warp,
                    site,
                } => write!(
                    f,
                    "watchdog: warp instruction budget exceeded \
                     ({instructions} > {budget})\n    at {site}\n    block {block} warp {warp}"
                ),
                WatchdogKind::IterationBudget {
                    algo,
                    iterations,
                    budget,
                    site,
                } => write!(
                    f,
                    "watchdog: {algo}: {iterations} driver iterations exceeds bound {budget} \
                     — kernel not converging\n    at {site}"
                ),
                WatchdogKind::BarrierDeadlock {
                    block,
                    parked_warps,
                    retired_warps,
                } => write!(
                    f,
                    "watchdog: barrier deadlock in block {block}: warps {parked_warps:?} \
                     parked on a barrier while {retired_warps} warp(s) retired without it"
                ),
            },
        }
    }
}

impl std::error::Error for SimtError {}

/// Record `err` into the launch's fault slot, keeping only the first fault
/// (later ones are usually knock-on effects of the first).
pub(crate) fn record(slot: &mut Option<SimtError>, err: SimtError) {
    if slot.is_none() {
        *slot = Some(err);
    }
}

// ---------------------------------------------------------------------------
// watchdog configuration
// ---------------------------------------------------------------------------

/// Optional execution budgets; `None` means unlimited (the default, which
/// keeps every existing run byte-identical).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WatchdogConfig {
    /// Budget on cumulative simulated cycles across all launches on a `Gpu`.
    /// Env override: `MAXWARP_MAX_CYCLES`.
    pub max_cycles: Option<u64>,
    /// Budget on a single warp's functional instruction count per launch —
    /// bounds in-kernel `while mask.any()` loops.
    pub max_instructions: Option<u64>,
    /// Budget on driver fixpoint-loop iterations; the effective bound is the
    /// minimum of this and the algorithm's theoretical cap.
    /// Env override: `MAXWARP_MAX_ITERS`.
    pub max_iterations: Option<u32>,
}

// ---------------------------------------------------------------------------
// deterministic fault injection (chaos mode)
// ---------------------------------------------------------------------------

/// Which fault classes chaos mode injects. `MAXWARP_FAULTS=seed` enables all
/// of them; `tool_chaos` exercises them one class at a time.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Seed for the injection RNG. The same seed over the same program
    /// produces the same injections at the same trace points.
    pub seed: u64,
    /// Flip one bit of one valid device-memory word at each launch boundary.
    pub bit_flips: bool,
    /// Drop the memory side-effect of one lane of one atomic per launch
    /// (a lost update).
    pub dropped_atomics: bool,
    /// Rotate per-block warp issue order in the timing model. Functional
    /// results are untouched — only cycle counts move.
    pub sched_perturb: bool,
}

impl FaultConfig {
    /// All fault classes enabled (what `MAXWARP_FAULTS=seed` selects).
    pub fn all(seed: u64) -> Self {
        FaultConfig {
            seed,
            bit_flips: true,
            dropped_atomics: true,
            sched_perturb: true,
        }
    }

    /// Only device-memory bit flips.
    pub fn bit_flips(seed: u64) -> Self {
        FaultConfig {
            seed,
            bit_flips: true,
            dropped_atomics: false,
            sched_perturb: false,
        }
    }

    /// Only dropped atomic updates.
    pub fn dropped_atomics(seed: u64) -> Self {
        FaultConfig {
            seed,
            bit_flips: false,
            dropped_atomics: true,
            sched_perturb: false,
        }
    }

    /// Only scheduling perturbations.
    pub fn sched_perturb(seed: u64) -> Self {
        FaultConfig {
            seed,
            bit_flips: false,
            dropped_atomics: false,
            sched_perturb: true,
        }
    }
}

/// Minimal xorshift64* generator — the simt crate deliberately has no RNG
/// dependency, and injection points must be reproducible from the seed alone.
#[derive(Clone, Debug)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    pub fn new(seed: u64) -> Self {
        // xorshift has an absorbing zero state; any nonzero constant works.
        XorShift64 {
            state: seed | 0x9E37_79B9_7F4A_7C15,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform-ish draw in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// Per-`Gpu` chaos bookkeeping: the RNG stream plus counters of what has been
/// injected so far (reported by `tool_chaos`).
#[derive(Debug)]
pub struct ChaosState {
    pub cfg: FaultConfig,
    pub(crate) rng: XorShift64,
    /// Launches seen (injection points are per launch boundary).
    pub launches: u64,
    /// Bit flips applied to device memory so far.
    pub bit_flips_injected: u64,
    /// Atomic lane-updates dropped so far.
    pub atomics_dropped: u64,
    /// Timing-schedule rotations applied so far.
    pub sched_perturbations: u64,
}

impl ChaosState {
    pub fn new(cfg: FaultConfig) -> Self {
        ChaosState {
            cfg,
            rng: XorShift64::new(cfg.seed),
            launches: 0,
            bit_flips_injected: 0,
            atomics_dropped: 0,
            sched_perturbations: 0,
        }
    }
}

/// Per-launch dropped-atomic plan, threaded into the warp contexts. The n-th
/// atomic warp-op of the launch loses its first active lane's update.
#[derive(Clone, Copy, Debug)]
pub(crate) struct AtomicDropPlan {
    /// Index (in launch-wide execution order) of the atomic op to sabotage.
    pub drop_at: u64,
    /// Running count of atomic warp-ops executed this launch.
    pub seen: u64,
    /// Whether the drop actually happened (for chaos accounting).
    pub dropped: bool,
}

impl AtomicDropPlan {
    pub fn new(drop_at: u64) -> Self {
        AtomicDropPlan {
            drop_at,
            seen: 0,
            dropped: false,
        }
    }

    /// Called once per atomic warp-op; returns true when this op is the
    /// designated victim.
    pub fn should_drop(&mut self) -> bool {
        let hit = self.seen == self.drop_at;
        self.seen += 1;
        if hit {
            self.dropped = true;
        }
        hit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xorshift_is_deterministic_and_nonzero() {
        let mut a = XorShift64::new(42);
        let mut b = XorShift64::new(42);
        for _ in 0..100 {
            let x = a.next_u64();
            assert_eq!(x, b.next_u64());
            assert_ne!(x, 0);
        }
        // Zero seed must still produce a live stream.
        let mut z = XorShift64::new(0);
        assert_ne!(z.next_u64(), z.next_u64());
    }

    #[test]
    fn xorshift_below_respects_bound() {
        let mut r = XorShift64::new(7);
        for _ in 0..1000 {
            assert!(r.below(13) < 13);
        }
    }

    #[test]
    fn record_keeps_first_fault() {
        let mut slot = None;
        record(
            &mut slot,
            SimtError::AddressSpaceExhausted {
                requested_bytes: 8,
                available_bytes: 4,
            },
        );
        record(
            &mut slot,
            SimtError::AddressSpaceExhausted {
                requested_bytes: 99,
                available_bytes: 0,
            },
        );
        match slot {
            Some(SimtError::AddressSpaceExhausted {
                requested_bytes, ..
            }) => assert_eq!(requested_bytes, 8),
            other => panic!("unexpected slot {other:?}"),
        }
    }

    #[test]
    fn atomic_drop_plan_fires_once() {
        let mut plan = AtomicDropPlan::new(2);
        assert!(!plan.should_drop());
        assert!(!plan.should_drop());
        assert!(plan.should_drop());
        assert!(!plan.should_drop());
        assert!(plan.dropped);
    }

    #[test]
    fn display_carries_attribution() {
        let e = SimtError::OutOfBounds {
            space: AddressSpace::Global,
            block: 3,
            warp: 1,
            lane: Some(7),
            index: 100,
            len: 64,
            op: "ld",
            site: std::panic::Location::caller(),
        };
        let s = e.to_string();
        assert!(s.contains("illegal device address"), "{s}");
        assert!(s.contains("block 3 warp 1 lane 7"), "{s}");
        assert!(s.contains("op `ld`"), "{s}");
    }

    #[test]
    fn watchdog_display_names_algo() {
        let e = SimtError::Watchdog(WatchdogKind::IterationBudget {
            algo: "bfs".to_string(),
            iterations: 12,
            budget: 10,
            site: std::panic::Location::caller(),
        });
        let s = e.to_string();
        assert!(s.contains("bfs"), "{s}");
        assert!(s.contains("not converging"), "{s}");
    }
}
