//! The simulated device: memory + kernel launches.

use crate::analyze::Analyzer;
use crate::cache::CacheModel;
use crate::config::GpuConfig;
use crate::fault::{AtomicDropPlan, ChaosState, FaultConfig, SimtError, WatchdogKind};
use crate::kernel::{BlockCtx, Kernel};
use crate::lanes::WARP_SIZE;
use crate::mem::DeviceMem;
use crate::profile::{ProfileReport, Profiler};
use crate::sanitize::{BlockShadow, Sanitizer};
use crate::shared::SharedMem;
use crate::stats::KernelStats;
use crate::timing::{self, TimingError, TimingInput, TimingReport, WarpSpan};
use crate::trace::{KernelTrace, Op, WarpTrace};
use crate::warp::{SanScope, WarpCtx, WarpId};
use std::panic::Location;

/// Launch-time errors (the simulator's `cudaGetLastError`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LaunchError {
    /// Block size must be a positive multiple of the 32-lane warp size and
    /// at most `max_threads_per_block`.
    InvalidBlockSize { threads: u32, max: u32 },
    /// Timing-model rejection (occupancy or malformed dynamic tasks).
    Timing(TimingError),
    /// The kernel faulted: an illegal access, resource exhaustion, or a
    /// tripped watchdog, with device-side attribution.
    Fault(SimtError),
}

impl std::fmt::Display for LaunchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LaunchError::InvalidBlockSize { threads, max } => write!(
                f,
                "invalid block size {threads}: must be a positive multiple of 32 and <= {max}"
            ),
            LaunchError::Timing(e) => write!(f, "{e}"),
            LaunchError::Fault(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for LaunchError {}

impl From<TimingError> for LaunchError {
    fn from(e: TimingError) -> Self {
        // A barrier deadlock is a device fault (watchdog class), not a
        // launch-configuration problem — surface it as such.
        match e {
            TimingError::BarrierDeadlock {
                block,
                parked_warps,
                retired_warps,
            } => {
                let fault = SimtError::Watchdog(WatchdogKind::BarrierDeadlock {
                    block,
                    parked_warps,
                    retired_warps,
                });
                crate::obs::fault_recorded(&fault);
                LaunchError::Fault(fault)
            }
            other => LaunchError::Timing(other),
        }
    }
}

impl From<SimtError> for LaunchError {
    fn from(e: SimtError) -> Self {
        // Every runtime fault funnels through this conversion (or the
        // barrier-deadlock arm above), making it the one chokepoint for the
        // process-wide fault counters.
        crate::obs::fault_recorded(&e);
        LaunchError::Fault(e)
    }
}

/// How warp-sized tasks are distributed over the resident warps
/// (see [`Gpu::launch_warp_tasks`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TaskSchedule {
    /// Each resident warp takes a contiguous range of tasks — the static
    /// partitioning a grid-stride-free CUDA kernel computes from its thread
    /// id.
    StaticBlocked,
    /// Tasks are dealt round-robin over resident warps.
    StaticCyclic,
    /// Warps fetch chunks from a global counter with `atomicAdd` as they go
    /// idle — the paper's *dynamic workload distribution*. Each task trace
    /// is prefixed with the atomic fetch it pays for.
    Dynamic,
}

/// The simulated GPU: configuration plus device memory.
///
/// ```
/// use maxwarp_simt::{Gpu, GpuConfig, Mask, Lanes};
///
/// let mut gpu = Gpu::new(GpuConfig::tiny_test());
/// let data = gpu.mem.alloc_from(&[1u32, 2, 3, 4]);
/// let out = gpu.mem.alloc::<u32>(4);
/// let stats = gpu
///     .launch(1, 32, &|b: &mut maxwarp_simt::BlockCtx<'_>| {
///         b.phase(|w| {
///             let idx = w.lane_ids();
///             let m = w.lt_scalar(Mask::FULL, &idx, 4);
///             let v = w.ld(m, data, &idx);
///             let doubled = w.alu1(m, &v, |x| x * 2);
///             w.st(m, out, &idx, &doubled);
///         });
///     })
///     .unwrap();
/// assert_eq!(gpu.mem.download(out), vec![2, 4, 6, 8]);
/// assert!(stats.cycles > 0);
/// ```
pub struct Gpu {
    /// Machine parameters.
    pub cfg: GpuConfig,
    /// Global device memory.
    pub mem: DeviceMem,
    /// Warp-hazard sanitizer shadow state, present when `cfg.sanitize` (or
    /// `MAXWARP_SANITIZE=1`) turned checking on at construction.
    san: Option<Box<Sanitizer>>,
    /// Cycle-attribution profiler, present when `cfg.profile` (or
    /// `MAXWARP_PROFILE=1`) turned profiling on at construction.
    prof: Option<Box<Profiler>>,
    /// Static abstract-interpretation analyzer, present when `cfg.analyze`
    /// (or `MAXWARP_ANALYZE=1`) turned analysis on at construction.
    anl: Option<Box<Analyzer>>,
    /// Timing detail accumulated across every launch on this device.
    timing_total: TimingReport,
    /// Timing detail of the most recent launch.
    last_timing: Option<TimingReport>,
    /// Deterministic fault-injection state, present when `cfg.faults` (or
    /// `MAXWARP_FAULTS=seed`) turned chaos mode on at construction.
    chaos: Option<ChaosState>,
}

impl Gpu {
    /// A device with the given configuration and empty memory. Setting the
    /// environment variable `MAXWARP_SANITIZE=1` forces the sanitizer on
    /// regardless of `cfg.sanitize`; `MAXWARP_PROFILE=1` likewise forces
    /// the profiler on.
    pub fn new(mut cfg: GpuConfig) -> Self {
        if std::env::var("MAXWARP_SANITIZE").is_ok_and(|v| v == "1") {
            cfg.sanitize = true;
        }
        if std::env::var("MAXWARP_PROFILE").is_ok_and(|v| v == "1") {
            cfg.profile = true;
        }
        if std::env::var("MAXWARP_ANALYZE").is_ok_and(|v| v == "1") {
            cfg.analyze = true;
        }
        if let Ok(v) = std::env::var("MAXWARP_FAULTS") {
            match v.parse::<u64>() {
                Ok(seed) => cfg.faults = Some(FaultConfig::all(seed)),
                Err(_) => eprintln!("MAXWARP_FAULTS={v}: not a u64 seed, ignoring"),
            }
        }
        if let Ok(v) = std::env::var("MAXWARP_MAX_CYCLES") {
            match v.parse::<u64>() {
                Ok(n) => cfg.watchdog.max_cycles = Some(n),
                Err(_) => eprintln!("MAXWARP_MAX_CYCLES={v}: not a u64, ignoring"),
            }
        }
        if let Ok(v) = std::env::var("MAXWARP_MAX_ITERS") {
            match v.parse::<u32>() {
                Ok(n) => cfg.watchdog.max_iterations = Some(n),
                Err(_) => eprintln!("MAXWARP_MAX_ITERS={v}: not a u32, ignoring"),
            }
        }
        let san = cfg.sanitize.then(|| Box::new(Sanitizer::new()));
        let prof = cfg.profile.then(|| Box::new(Profiler::new(&cfg)));
        let anl = cfg.analyze.then(|| Box::new(Analyzer::new()));
        let chaos = cfg.faults.map(ChaosState::new);
        Gpu {
            cfg,
            mem: DeviceMem::new(),
            san,
            prof,
            anl,
            timing_total: TimingReport::default(),
            last_timing: None,
            chaos,
        }
    }

    /// The sanitizer's accumulated diagnostics, if sanitizing.
    pub fn sanitizer(&self) -> Option<&Sanitizer> {
        self.san.as_deref()
    }

    /// Chaos-injection bookkeeping, present when fault injection is on.
    pub fn chaos(&self) -> Option<&ChaosState> {
        self.chaos.as_ref()
    }

    /// Label subsequent launches with a kernel name for sanitizer reports.
    /// No-op when the sanitizer is off.
    pub fn set_sanitize_context(&mut self, name: &str) {
        if let Some(san) = &mut self.san {
            san.set_context(name);
        }
    }

    /// The static analyzer's accumulated findings, if analyzing.
    pub fn analyzer(&self) -> Option<&Analyzer> {
        self.anl.as_deref()
    }

    /// Label subsequent launches with a kernel name for analyzer reports.
    /// No-op when the analyzer is off.
    pub fn set_analyze_context(&mut self, name: &str) {
        if let Some(anl) = &mut self.anl {
            anl.set_context(name);
        }
    }

    /// Whether the cycle-attribution profiler is on. Drivers can use this
    /// to skip building launch labels when nobody will read them.
    pub fn profiling(&self) -> bool {
        self.prof.is_some()
    }

    /// The profiler, if profiling.
    pub fn profiler(&self) -> Option<&Profiler> {
        self.prof.as_deref()
    }

    /// Label the whole profile (kernel/dataset/method). No-op when the
    /// profiler is off.
    pub fn set_profile_context(&mut self, name: &str) {
        if let Some(prof) = &mut self.prof {
            prof.set_context(name);
        }
    }

    /// Label the next launch in the profile timeline (e.g. `bfs level 3`).
    /// No-op when the profiler is off.
    pub fn set_profile_label(&mut self, label: &str) {
        if let Some(prof) = &mut self.prof {
            prof.set_launch_label(label);
        }
    }

    /// Snapshot the accumulated profile, if profiling.
    pub fn profile_report(&self) -> Option<ProfileReport> {
        self.prof.as_deref().map(Profiler::report)
    }

    /// Timing detail accumulated across every launch on this device
    /// (per-SM stall buckets sum to the total of all launch cycles).
    /// Available regardless of profiling.
    pub fn timing_total(&self) -> &TimingReport {
        &self.timing_total
    }

    /// Timing detail of the most recent launch, if any launch has run.
    pub fn last_timing(&self) -> Option<&TimingReport> {
        self.last_timing.as_ref()
    }

    /// Fold one launch's timing into the device totals and, when profiling,
    /// into the per-launch timeline.
    fn record_timing(&mut self, report: TimingReport, spans: Vec<WarpSpan>) {
        self.timing_total.accumulate(&report);
        if let Some(prof) = &mut self.prof {
            self.last_timing = Some(report.clone());
            prof.finish_launch(report, spans);
        } else {
            self.last_timing = Some(report);
        }
    }

    /// Per-launch chaos injection at the launch boundary: flip one bit of a
    /// valid device-memory word and/or arm a dropped-atomic plan, per the
    /// enabled fault classes. No-op (and no RNG draws) when chaos is off.
    fn chaos_prelaunch(&mut self) -> Option<AtomicDropPlan> {
        let chaos = self.chaos.as_mut()?;
        chaos.launches += 1;
        if chaos.cfg.bit_flips && self.mem.chaos_flip_bit(&mut chaos.rng).is_some() {
            chaos.bit_flips_injected += 1;
            crate::obs::chaos_injected("bit_flip");
        }
        if chaos.cfg.dropped_atomics {
            Some(AtomicDropPlan::new(chaos.rng.below(64)))
        } else {
            None
        }
    }

    /// Account a dropped-atomic plan that actually fired during the launch.
    fn chaos_postlaunch(&mut self, plan: Option<&AtomicDropPlan>) {
        if let (Some(chaos), Some(plan)) = (self.chaos.as_mut(), plan) {
            if plan.dropped {
                chaos.atomics_dropped += 1;
                crate::obs::chaos_injected("dropped_atomic");
            }
        }
    }

    /// Scheduling perturbation: rotate each block's warp streams before the
    /// timing phase. Functional results are already computed, so a correct
    /// kernel tolerates this by construction; only cycle counts may move.
    fn chaos_perturb_schedule(&mut self, trace: &mut KernelTrace) {
        let Some(chaos) = self.chaos.as_mut() else {
            return;
        };
        if !chaos.cfg.sched_perturb {
            return;
        }
        for bt in &mut trace.blocks {
            let n = bt.warps.len();
            if n > 1 {
                let r = chaos.rng.below(n as u64) as usize;
                if r > 0 {
                    bt.warps.rotate_left(r);
                    chaos.sched_perturbations += 1;
                    crate::obs::chaos_injected("sched_perturb");
                }
            }
        }
    }

    /// Trip the cumulative cycle watchdog, if one is configured.
    fn check_cycle_budget(&self) -> Result<(), LaunchError> {
        if let Some(budget) = self.cfg.watchdog.max_cycles {
            let cycles = self.timing_total.cycles;
            if cycles > budget {
                return Err(
                    SimtError::Watchdog(WatchdogKind::CycleBudget { cycles, budget }).into(),
                );
            }
        }
        Ok(())
    }

    /// Launch `kernel` on a grid of `grid_blocks` blocks of `block_threads`
    /// threads. Runs the functional phase (actual memory effects + traces),
    /// then the timing phase; returns combined statistics.
    pub fn launch<K: Kernel + ?Sized>(
        &mut self,
        grid_blocks: u32,
        block_threads: u32,
        kernel: &K,
    ) -> Result<KernelStats, LaunchError> {
        self.validate_block(block_threads)?;
        let warps_per_block = block_threads / WARP_SIZE as u32;

        let mut trace = KernelTrace {
            blocks: Vec::with_capacity(grid_blocks as usize),
            block_threads,
            shared_words_per_block: 0,
        };
        let mut cache =
            CacheModel::new(self.cfg.l2_lines, self.cfg.l2_ways, self.cfg.segment_bytes);
        let mut san = self.san.take();
        if let Some(s) = &mut san {
            s.begin_launch(self.mem.allocated_words());
        }
        let mut anl = self.anl.take();
        if let Some(a) = &mut anl {
            a.begin_launch();
        }
        let mut fault: Option<SimtError> = None;
        let mut chaos_plan = self.chaos_prelaunch();
        for b in 0..grid_blocks {
            let mut ctx = BlockCtx::new(
                &mut self.mem,
                &mut cache,
                &self.cfg,
                b,
                grid_blocks,
                warps_per_block,
                san.as_deref_mut(),
                self.prof.as_deref_mut(),
                anl.as_deref_mut(),
                Some(&mut fault),
                chaos_plan.as_mut(),
            );
            kernel.run_block(&mut ctx);
            let (bt, shared_used) = ctx.into_trace();
            trace.shared_words_per_block = trace.shared_words_per_block.max(shared_used);
            trace.blocks.push(bt);
        }
        if let Some(s) = &mut san {
            s.finish_launch();
        }
        if let Some(a) = &mut anl {
            a.finish_launch();
        }
        self.san = san;
        self.anl = anl;
        self.chaos_postlaunch(chaos_plan.as_ref());
        if let Some(e) = fault.take() {
            return Err(e.into());
        }

        let mut stats = KernelStats::from_trace(&trace);
        self.chaos_perturb_schedule(&mut trace);
        let (report, spans) = timing::time_kernel_trace_spans(&trace, &self.cfg)?;
        stats.cycles = report.cycles;
        self.record_timing(report, spans);
        self.check_cycle_budget()?;
        Ok(stats)
    }

    /// Launch warp-granular tasks: `f(warp, task_id)` runs once per task in
    /// `0..num_tasks`, each execution tracing one warp's work. The
    /// `schedule` decides how tasks map onto the `grid_blocks ×
    /// block_threads` resident warps at timing time.
    ///
    /// This is the vehicle for the paper's *dynamic workload distribution*
    /// study: the same functional work, scheduled statically or via an
    /// atomic work counter.
    #[track_caller]
    pub fn launch_warp_tasks(
        &mut self,
        grid_blocks: u32,
        block_threads: u32,
        num_tasks: u32,
        schedule: TaskSchedule,
        mut f: impl FnMut(&mut WarpCtx<'_>, u32),
    ) -> Result<KernelStats, LaunchError> {
        // Attribute the dynamic queue-fetch atomics to whoever launched the
        // task loop — kernel drivers, not this file.
        let launch_site = Location::caller();
        self.validate_block(block_threads)?;
        let warps_per_block = block_threads / WARP_SIZE as u32;
        let resident_warps = (grid_blocks * warps_per_block).max(1);

        // Functional phase: one trace per task. Shared memory is per-task
        // scratch (warp-private), sized by the per-SM budget.
        let mut cache =
            CacheModel::new(self.cfg.l2_lines, self.cfg.l2_ways, self.cfg.segment_bytes);
        let mut san = self.san.take();
        if let Some(s) = &mut san {
            s.begin_launch(self.mem.allocated_words());
        }
        let mut anl = self.anl.take();
        if let Some(a) = &mut anl {
            a.begin_launch();
        }
        let mut fault: Option<SimtError> = None;
        let mut chaos_plan = self.chaos_prelaunch();
        let mut tasks: Vec<WarpTrace> = Vec::with_capacity(num_tasks as usize);
        for task in 0..num_tasks {
            let mut wt = WarpTrace::new();
            if schedule == TaskSchedule::Dynamic {
                // The chunk fetch: one-lane atomicAdd on the work counter.
                let fetch = Op::Atomic {
                    active: 1,
                    tx: 1,
                    replays: 0,
                };
                wt.ops.push(fetch);
                if let Some(prof) = self.prof.as_deref_mut() {
                    prof.note(launch_site, "queue_fetch", fetch, self.cfg.segment_words());
                }
            }
            let mut shared = SharedMem::new(self.cfg.shared_words_per_sm);
            let id = WarpId {
                block: task,
                warp_in_block: 0,
                warps_per_block: 1,
                num_blocks: num_tasks.max(1),
            };
            // Each task's shared scratch is warp-private, so a fresh shadow
            // per task is the right race-detection scope.
            let mut shadow = BlockShadow::default();
            let scope = san.as_deref_mut().map(|san| SanScope {
                san,
                shadow: &mut shadow,
            });
            let mut ctx = WarpCtx::new_instrumented(
                &mut self.mem,
                &mut shared,
                &mut wt,
                &mut cache,
                &self.cfg,
                id,
                scope,
                self.prof.as_deref_mut(),
                anl.as_deref_mut(),
                0,
                Some(&mut fault),
                chaos_plan.as_mut(),
            );
            f(&mut ctx, task);
            tasks.push(wt);
        }
        if let Some(s) = &mut san {
            s.finish_launch();
        }
        if let Some(a) = &mut anl {
            a.finish_launch();
        }
        self.san = san;
        self.anl = anl;
        self.chaos_postlaunch(chaos_plan.as_ref());
        if let Some(e) = fault.take() {
            return Err(e.into());
        }

        // Scheduling perturbation rotates the task→warp assignment (static)
        // or the fetch order (dynamic); functional work already ran above.
        let sched_off = match self.chaos.as_mut() {
            Some(chaos) if chaos.cfg.sched_perturb && resident_warps > 1 => {
                let r = chaos.rng.below(resident_warps as u64) as u32;
                if r > 0 {
                    chaos.sched_perturbations += 1;
                    crate::obs::chaos_injected("sched_perturb");
                }
                r
            }
            _ => 0,
        };

        // Timing phase: build per-warp streams (static) or a queue (dynamic).
        let n_blocks = grid_blocks.max(1);
        let mut blocks: Vec<Vec<Vec<&WarpTrace>>> = (0..n_blocks)
            .map(|_| (0..warps_per_block).map(|_| Vec::new()).collect())
            .collect();
        let mut queue: Vec<&WarpTrace> = Vec::new();
        match schedule {
            TaskSchedule::StaticBlocked => {
                let per = (num_tasks as usize).div_ceil(resident_warps as usize);
                for (t, wt) in tasks.iter().enumerate() {
                    let w = ((t / per) as u32 + sched_off) % resident_warps;
                    blocks[(w / warps_per_block) as usize][(w % warps_per_block) as usize].push(wt);
                }
            }
            TaskSchedule::StaticCyclic => {
                for (t, wt) in tasks.iter().enumerate() {
                    let w = ((t as u32) + sched_off) % resident_warps;
                    blocks[(w / warps_per_block) as usize][(w % warps_per_block) as usize].push(wt);
                }
            }
            TaskSchedule::Dynamic => {
                queue = tasks.iter().collect();
                if !queue.is_empty() {
                    let r = sched_off as usize % queue.len();
                    queue.rotate_left(r);
                }
            }
        }

        let (report, spans) = timing::simulate_spans(
            &TimingInput {
                blocks,
                block_threads,
                shared_words_per_block: 0,
                queue,
            },
            &self.cfg,
        )?;

        // Statistics: per-task instruction counts are the imbalance
        // histogram of interest.
        let mut stats = KernelStats::default();
        for wt in &tasks {
            stats.warps += 1;
            stats.per_warp_instructions.push(wt.len() as u32);
        }
        let kt = KernelTrace {
            blocks: vec![crate::trace::BlockTrace { warps: tasks }],
            block_threads,
            shared_words_per_block: 0,
        };
        let mut agg = KernelStats::from_trace(&kt);
        agg.per_warp_instructions = stats.per_warp_instructions;
        agg.warps = stats.warps;
        agg.blocks = grid_blocks as u64;
        agg.cycles = report.cycles;
        self.record_timing(report, spans);
        self.check_cycle_budget()?;
        Ok(agg)
    }

    fn validate_block(&self, block_threads: u32) -> Result<(), LaunchError> {
        if block_threads == 0
            || !block_threads.is_multiple_of(WARP_SIZE as u32)
            || block_threads > self.cfg.max_threads_per_block
        {
            return Err(LaunchError::InvalidBlockSize {
                threads: block_threads,
                max: self.cfg.max_threads_per_block,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lanes::Lanes;
    use crate::mask::Mask;

    fn gpu() -> Gpu {
        Gpu::new(GpuConfig::tiny_test())
    }

    #[test]
    fn launch_validates_block_size() {
        let mut g = gpu();
        let k = |_: &mut BlockCtx<'_>| {};
        assert!(matches!(
            g.launch(1, 0, &k),
            Err(LaunchError::InvalidBlockSize { .. })
        ));
        assert!(matches!(
            g.launch(1, 33, &k),
            Err(LaunchError::InvalidBlockSize { .. })
        ));
        assert!(matches!(
            g.launch(1, 4096, &k),
            Err(LaunchError::InvalidBlockSize { .. })
        ));
        assert!(g.launch(1, 64, &k).is_ok());
    }

    #[test]
    fn saxpy_style_kernel_end_to_end() {
        let mut g = gpu();
        let n = 1000u32;
        let x = g.mem.alloc_from(&(0..n).collect::<Vec<_>>());
        let y = g.mem.alloc::<u32>(n);
        let block_threads = 64u32;
        let grid = n.div_ceil(block_threads);
        let stats = g
            .launch(grid, block_threads, &|b: &mut BlockCtx<'_>| {
                b.phase(|w| {
                    let tid = w.global_thread_ids();
                    let m = w.lt_scalar(Mask::FULL, &tid, n);
                    let v = w.ld(m, x, &tid);
                    let r = w.alu1(m, &v, |a| a * 3 + 1);
                    w.st(m, y, &tid, &r);
                });
            })
            .unwrap();
        let host = g.mem.download(y);
        for i in 0..n {
            assert_eq!(host[i as usize], i * 3 + 1);
        }
        assert_eq!(stats.blocks as u32, grid);
        assert!(stats.cycles > 0);
        assert!(stats.lane_utilization() > 0.9); // near-full warps
    }

    #[test]
    fn stats_cycles_scale_with_grid() {
        let mut g = gpu();
        let k = |b: &mut BlockCtx<'_>| {
            b.phase(|w| {
                for _ in 0..200 {
                    w.alu_nop(Mask::FULL);
                }
            });
        };
        let c1 = g.launch(1, 32, &k).unwrap().cycles;
        let c64 = g.launch(64, 32, &k).unwrap().cycles;
        assert!(c64 > c1, "64 blocks ({c64}) must exceed 1 block ({c1})");
    }

    #[test]
    fn warp_tasks_static_vs_dynamic_same_memory_effects() {
        for schedule in [
            TaskSchedule::StaticBlocked,
            TaskSchedule::StaticCyclic,
            TaskSchedule::Dynamic,
        ] {
            let mut g = gpu();
            let out = g.mem.alloc::<u32>(64);
            let stats = g
                .launch_warp_tasks(2, 64, 64, schedule, |w, task| {
                    w.st_uniform(Mask::FULL, out, task, task * 10);
                })
                .unwrap();
            let host = g.mem.download(out);
            for t in 0..64u32 {
                assert_eq!(host[t as usize], t * 10, "{schedule:?}");
            }
            assert_eq!(stats.warps, 64);
            assert!(stats.cycles > 0);
        }
    }

    #[test]
    fn dynamic_schedule_pays_fetch_atomics() {
        let mut g = gpu();
        let out = g.mem.alloc::<u32>(8);
        let s_static = g
            .launch_warp_tasks(1, 32, 8, TaskSchedule::StaticBlocked, |w, t| {
                w.st_uniform(Mask::FULL, out, t, 1);
            })
            .unwrap();
        let mut g2 = gpu();
        let out2 = g2.mem.alloc::<u32>(8);
        let s_dyn = g2
            .launch_warp_tasks(1, 32, 8, TaskSchedule::Dynamic, |w, t| {
                w.st_uniform(Mask::FULL, out2, t, 1);
            })
            .unwrap();
        assert_eq!(
            s_dyn.atomic_instructions,
            s_static.atomic_instructions + 8,
            "each dynamic task pays one fetch atomic"
        );
    }

    #[test]
    fn dynamic_beats_static_on_imbalanced_tasks() {
        // Task i does i*8 ALU ops: a strongly skewed workload. With 4
        // resident warps, dynamic distribution should beat blocked-static.
        let run = |schedule| {
            let mut g = gpu();
            g.launch_warp_tasks(1, 128, 64, schedule, |w, task| {
                for _ in 0..task * 8 {
                    w.alu_nop(Mask::FULL);
                }
            })
            .unwrap()
            .cycles
        };
        let c_static = run(TaskSchedule::StaticBlocked);
        let c_dyn = run(TaskSchedule::Dynamic);
        assert!(
            c_dyn < c_static,
            "dynamic {c_dyn} should beat static-blocked {c_static}"
        );
    }

    #[test]
    fn grid_zero_tasks_ok() {
        let mut g = gpu();
        let stats = g
            .launch_warp_tasks(1, 32, 0, TaskSchedule::Dynamic, |_, _| {})
            .unwrap();
        assert_eq!(stats.warps, 0);
        assert_eq!(stats.cycles, 0);
    }

    fn profiled_gpu() -> Gpu {
        let mut cfg = GpuConfig::tiny_test();
        cfg.profile = true;
        Gpu::new(cfg)
    }

    fn imbalanced_kernel(b: &mut BlockCtx<'_>) {
        let n = 64u32;
        b.phase(|w| {
            let tid = w.global_thread_ids();
            let m = w.lt_scalar(Mask::FULL, &tid, n);
            // Divergent loop: lane l of warp w spins tid%7 times.
            let mut iters = w.alu1(m, &tid, |x| x % 7);
            let mut live = w.alu_pred(m, &iters, |x| x > 0);
            while live.any() {
                w.alu_nop(live);
                iters = w.alu1(live, &iters, |x| x.saturating_sub(1));
                live = w.alu_pred(live, &iters, |x| x > 0);
            }
        });
        b.barrier();
        b.phase(|w| {
            let tid = w.global_thread_ids();
            let m = w.lt_scalar(Mask::FULL, &tid, n);
            w.alu_nop(m);
        });
    }

    #[test]
    fn profiling_leaves_stats_byte_identical() {
        let run = |mut g: Gpu| {
            let out = g.mem.alloc::<u32>(64);
            let stats = g
                .launch(2, 32, &|b: &mut BlockCtx<'_>| {
                    imbalanced_kernel(b);
                    b.phase(|w| {
                        let tid = w.global_thread_ids();
                        let m = w.lt_scalar(Mask::FULL, &tid, 64);
                        w.st(m, out, &tid, &tid);
                        w.atomic_add(m, out, &Lanes::splat(0), &Lanes::splat(1u32));
                    });
                })
                .unwrap();
            (stats, g.mem.download(out))
        };
        let (plain, mem_plain) = run(gpu());
        let (profiled, mem_prof) = run(profiled_gpu());
        assert_eq!(plain, profiled, "profiling must not perturb KernelStats");
        assert_eq!(mem_plain, mem_prof, "profiling must not perturb memory");
    }

    #[test]
    fn profile_report_attributes_sites_and_launches() {
        let mut g = profiled_gpu();
        g.set_profile_context("unit/imbalanced");
        g.set_profile_label("first");
        let s1 = g.launch(2, 32, &imbalanced_kernel).unwrap();
        let s2 = g.launch(2, 32, &imbalanced_kernel).unwrap();
        assert!(g.profiling());
        let r = g.profile_report().unwrap();
        assert_eq!(r.context, "unit/imbalanced");
        assert_eq!(r.launches.len(), 2);
        assert_eq!(r.launches[0].label, "first");
        assert_eq!(r.launches[1].label, "launch 1");
        assert_eq!(r.total_cycles, s1.cycles + s2.cycles);
        // Sites resolve to this test file, not to warp.rs internals.
        assert!(!r.sites.is_empty());
        for s in &r.sites {
            assert!(
                s.file.ends_with("device.rs"),
                "site {} must attribute to kernel code",
                s.location()
            );
        }
        // The divergent spin shows up as a low-lane-utilization alu site.
        assert!(r
            .sites
            .iter()
            .any(|s| s.op == "alu" && s.lane_utilization() < 0.9));
        assert!(r.sites.iter().any(|s| s.op == "barrier"));
        // Per-SM buckets sum to the accumulated cycles.
        for b in &r.timing.sm_breakdown {
            assert_eq!(b.total(), r.total_cycles);
        }
        // Spans live within their launch.
        for l in &r.launches {
            assert!(!l.spans.is_empty());
            for sp in &l.spans {
                assert!(sp.end <= l.cycles.max(sp.start + 1));
            }
        }
    }

    #[test]
    fn warp_tasks_profiled_identically_and_fetches_attributed() {
        let run = |mut g: Gpu| {
            let out = g.mem.alloc::<u32>(64);
            g.launch_warp_tasks(2, 64, 64, TaskSchedule::Dynamic, |w, task| {
                w.st_uniform(Mask::FULL, out, task, task);
            })
            .unwrap()
        };
        let plain = run(gpu());
        let mut g = profiled_gpu();
        let profiled = run({
            g.set_profile_context("unit/tasks");
            g
        });
        assert_eq!(plain, profiled);
    }

    #[test]
    fn queue_fetch_atomics_show_in_profile() {
        let mut g = profiled_gpu();
        let out = g.mem.alloc::<u32>(8);
        g.launch_warp_tasks(1, 32, 8, TaskSchedule::Dynamic, |w, t| {
            w.st_uniform(Mask::FULL, out, t, 1);
        })
        .unwrap();
        let r = g.profile_report().unwrap();
        let fetch = r.sites.iter().find(|s| s.op == "queue_fetch").unwrap();
        assert_eq!(fetch.instructions, 8);
        assert!(fetch.file.ends_with("device.rs"));
        assert_eq!(r.launches.len(), 1);
        assert!(!r.launches[0].spans.is_empty());
    }

    #[test]
    fn timing_totals_available_without_profiling() {
        let mut g = gpu();
        assert!(g.last_timing().is_none());
        let s = g.launch(1, 32, &imbalanced_kernel).unwrap();
        assert!(!g.profiling());
        assert!(g.profile_report().is_none());
        let last = g.last_timing().unwrap();
        assert_eq!(last.cycles, s.cycles);
        assert_eq!(g.timing_total().cycles, s.cycles);
        let s2 = g.launch(1, 32, &imbalanced_kernel).unwrap();
        assert_eq!(g.timing_total().cycles, s.cycles + s2.cycles);
        for b in &g.timing_total().sm_breakdown {
            assert_eq!(b.total(), g.timing_total().cycles);
        }
    }

    #[test]
    fn instruction_watchdog_trips_runaway_loop() {
        let mut cfg = GpuConfig::tiny_test();
        cfg.watchdog.max_instructions = Some(500);
        let mut g = Gpu::new(cfg);
        let err = g
            .launch(1, 32, &|b: &mut BlockCtx<'_>| {
                b.phase(|w| {
                    let x = w.lane_ids();
                    let mut live = Mask::FULL;
                    while live.any() {
                        w.alu_nop(live);
                        live = w.alu_pred(live, &x, |_| true); // never converges
                    }
                });
            })
            .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("watchdog"), "{msg}");
        match err {
            LaunchError::Fault(SimtError::Watchdog(WatchdogKind::InstructionBudget {
                budget,
                block,
                warp,
                ..
            })) => {
                assert_eq!(budget, 500);
                assert_eq!((block, warp), (0, 0));
            }
            other => panic!("expected instruction watchdog, got {other:?}"),
        }
    }

    #[test]
    fn cycle_watchdog_trips_cumulative_budget() {
        let mut cfg = GpuConfig::tiny_test();
        cfg.watchdog.max_cycles = Some(1);
        let mut g = Gpu::new(cfg);
        let err = g
            .launch(1, 32, &|b: &mut BlockCtx<'_>| {
                b.phase(|w| {
                    for _ in 0..100 {
                        w.alu_nop(Mask::FULL);
                    }
                });
            })
            .unwrap_err();
        assert!(matches!(
            err,
            LaunchError::Fault(SimtError::Watchdog(WatchdogKind::CycleBudget {
                budget: 1,
                ..
            }))
        ));
    }

    #[test]
    fn oob_store_faults_without_sanitizer() {
        let mut g = gpu();
        let buf = g.mem.alloc::<u32>(4);
        let r = g.launch(1, 32, &|b: &mut BlockCtx<'_>| {
            b.phase(|w| {
                let idx = w.lane_ids(); // lanes 4..32 address past the end
                w.st(Mask::FULL, buf, &idx, &idx);
            });
        });
        if g.sanitizer().is_some() {
            // Sanitizer mode diagnoses and drops the lanes; the launch runs on.
            assert!(r.is_ok());
        } else {
            let err = r.unwrap_err();
            let msg = err.to_string();
            assert!(msg.contains("illegal device address"), "{msg}");
            assert!(matches!(
                err,
                LaunchError::Fault(SimtError::OutOfBounds {
                    lane: Some(4),
                    index: 4,
                    len: 4,
                    ..
                })
            ));
        }
        // In both modes the in-bounds lanes landed and nothing panicked.
        assert_eq!(g.mem.download(buf), vec![0, 1, 2, 3]);
    }

    #[test]
    fn shared_overflow_faults_with_attribution() {
        let mut g = gpu();
        let err = g
            .launch(1, 32, &|b: &mut BlockCtx<'_>| {
                let huge = b.shared_alloc::<u32>(u32::MAX);
                b.phase(|w| {
                    let ids = w.lane_ids();
                    let _ = w.sh_ld(Mask::FULL, huge, &ids);
                });
            })
            .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("shared memory exhausted"), "{msg}");
        assert!(matches!(
            err,
            LaunchError::Fault(SimtError::SharedMemoryOverflow { block: 0, .. })
        ));
    }

    #[test]
    fn barrier_deadlock_surfaces_as_watchdog_fault() {
        // Hand-built traces: warp 0 parks at a barrier warp 1 never reaches.
        let mut parked = WarpTrace::new();
        parked.ops.push(Op::Bar);
        let mut retiring = WarpTrace::new();
        retiring.ops.push(Op::Alu { active: 32 });
        let err = timing::simulate(
            &TimingInput {
                blocks: vec![vec![vec![&parked], vec![&retiring]]],
                block_threads: 64,
                shared_words_per_block: 0,
                queue: vec![],
            },
            &GpuConfig::tiny_test(),
        )
        .unwrap_err();
        assert_eq!(
            err,
            TimingError::BarrierDeadlock {
                block: 0,
                parked_warps: vec![0],
                retired_warps: 1,
            }
        );
        let mapped = LaunchError::from(err);
        assert!(mapped.to_string().contains("barrier deadlock"));
        assert!(matches!(
            mapped,
            LaunchError::Fault(SimtError::Watchdog(WatchdogKind::BarrierDeadlock { .. }))
        ));
    }

    #[test]
    fn chaos_injection_is_deterministic() {
        let run = || {
            let mut cfg = GpuConfig::tiny_test();
            cfg.faults = Some(FaultConfig::all(42));
            let mut g = Gpu::new(cfg);
            let buf = g.mem.alloc_from(&[7u32; 256]);
            let _ = g.launch(2, 64, &|b: &mut BlockCtx<'_>| {
                b.phase(|w| {
                    let ids = w.global_thread_ids();
                    let m = w.lt_scalar(Mask::FULL, &ids, 256);
                    let _ = w.atomic_add(m, buf, &ids, &Lanes::splat(1u32));
                });
            });
            let chaos = g.chaos().unwrap();
            (
                g.mem.download(buf),
                chaos.launches,
                chaos.bit_flips_injected,
                chaos.atomics_dropped,
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same seed, same program => same injections");
        assert_eq!(a.1, 1);
        assert!(a.2 >= 1, "bit flip must have landed in allocated memory");
    }

    #[test]
    fn doc_example_compiles_and_runs() {
        let mut gpu = Gpu::new(GpuConfig::tiny_test());
        let data = gpu.mem.alloc_from(&[1u32, 2, 3, 4]);
        let out = gpu.mem.alloc::<u32>(4);
        let stats = gpu
            .launch(1, 32, &|b: &mut BlockCtx<'_>| {
                b.phase(|w| {
                    let idx = w.lane_ids();
                    let m = w.lt_scalar(Mask::FULL, &idx, 4);
                    let v = w.ld(m, data, &idx);
                    let doubled = w.alu1(m, &v, |x| x * 2);
                    w.st(m, out, &idx, &doubled);
                });
            })
            .unwrap();
        assert_eq!(gpu.mem.download(out), vec![2, 4, 6, 8]);
        assert!(stats.cycles > 0);
        let _ = Lanes::splat(0u32);
    }
}
