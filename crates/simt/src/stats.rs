//! Launch statistics: the quantities the paper's figures are made of.

use crate::trace::KernelTrace;
use serde::{Deserialize, Serialize};

/// Aggregated statistics of one kernel launch (functional + timing).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct KernelStats {
    /// Simulated execution cycles (timing model output).
    pub cycles: u64,
    /// Total warp instructions issued.
    pub instructions: u64,
    /// ALU instructions.
    pub alu_instructions: u64,
    /// Global loads + stores.
    pub mem_instructions: u64,
    /// Atomic instructions.
    pub atomic_instructions: u64,
    /// Shared-memory instructions.
    pub shared_instructions: u64,
    /// Barriers executed (per warp).
    pub barriers: u64,
    /// Coalesced global-memory transactions (cached loads contribute their
    /// misses).
    pub mem_transactions: u64,
    /// Read-only-cached load instructions.
    pub cached_load_instructions: u64,
    /// Segments served by the read-only cache.
    pub cache_hit_segments: u64,
    /// Segments that missed the read-only cache (went to DRAM).
    pub cache_miss_segments: u64,
    /// Extra serializations from same-address atomics.
    pub atomic_replays: u64,
    /// Extra bank passes from shared-memory conflicts (cost − 1 summed).
    pub shared_replay_passes: u64,
    /// Sum over instructions of active lanes (lane-utilization numerator).
    pub active_lane_sum: u64,
    /// Number of warps that executed.
    pub warps: u64,
    /// Number of blocks launched.
    pub blocks: u64,
    /// Instructions per warp — the workload-imbalance histogram source.
    pub per_warp_instructions: Vec<u32>,
}

impl KernelStats {
    /// Build the functional-side statistics from a trace (cycles = 0 until
    /// the timing engine fills them in).
    pub fn from_trace(trace: &KernelTrace) -> Self {
        let mut s = KernelStats {
            blocks: trace.blocks.len() as u64,
            ..KernelStats::default()
        };
        for (_, _, wt) in trace.iter_warps() {
            s.warps += 1;
            s.per_warp_instructions.push(wt.len() as u32);
            for op in &wt.ops {
                use crate::trace::Op::*;
                if matches!(op, San) {
                    continue;
                }
                s.instructions += 1;
                s.active_lane_sum += op.active_lanes() as u64;
                s.mem_transactions += op.transactions() as u64;
                match *op {
                    Alu { .. } => s.alu_instructions += 1,
                    LdCached { hits, misses, .. } => {
                        s.mem_instructions += 1;
                        s.cached_load_instructions += 1;
                        s.cache_hit_segments += hits as u64;
                        s.cache_miss_segments += misses as u64;
                    }
                    LdGlobal { .. } | StGlobal { .. } => s.mem_instructions += 1,
                    Shared { cost, .. } => {
                        s.shared_instructions += 1;
                        s.shared_replay_passes += (cost as u64).saturating_sub(1);
                    }
                    Atomic { replays, .. } => {
                        s.atomic_instructions += 1;
                        s.atomic_replays += replays as u64;
                    }
                    Bar => s.barriers += 1,
                    San => unreachable!("filtered above"),
                }
            }
        }
        s
    }

    /// SIMD lane utilization in `[0, 1]`: mean fraction of the 32 lanes that
    /// were active per issued instruction. The paper's "ALU utilization".
    pub fn lane_utilization(&self) -> f64 {
        if self.instructions == 0 {
            return 0.0;
        }
        self.active_lane_sum as f64 / (self.instructions as f64 * crate::lanes::WARP_SIZE as f64)
    }

    /// Mean transactions per global-memory instruction (1.0 = perfectly
    /// coalesced, 32.0 = fully scattered).
    pub fn tx_per_mem_instruction(&self) -> f64 {
        let mem = self.mem_instructions + self.atomic_instructions;
        if mem == 0 {
            return 0.0;
        }
        self.mem_transactions as f64 / mem as f64
    }

    /// Coefficient of variation of per-warp instruction counts — an
    /// aggregate inter-warp workload-imbalance measure.
    pub fn warp_imbalance_cv(&self) -> f64 {
        let n = self.per_warp_instructions.len();
        if n == 0 {
            return 0.0;
        }
        let mean = self
            .per_warp_instructions
            .iter()
            .map(|&x| x as f64)
            .sum::<f64>()
            / n as f64;
        if mean == 0.0 {
            return 0.0;
        }
        let var = self
            .per_warp_instructions
            .iter()
            .map(|&x| {
                let d = x as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / n as f64;
        var.sqrt() / mean
    }

    /// Max-over-mean of per-warp instruction counts: how much longer the
    /// busiest warp ran than the average one (≥ 1; 1 = perfectly balanced;
    /// 0.0 for a kernel that ran no warps at all).
    pub fn warp_imbalance_max_over_mean(&self) -> f64 {
        let n = self.per_warp_instructions.len();
        if n == 0 {
            return 0.0;
        }
        let sum: u64 = self.per_warp_instructions.iter().map(|&x| x as u64).sum();
        let mean = sum as f64 / n as f64;
        if mean == 0.0 {
            return 1.0;
        }
        let max = match self.per_warp_instructions.iter().max() {
            Some(&m) => m as f64,
            None => return 0.0,
        };
        max / mean
    }

    /// Accumulate another launch's statistics into this one (cycles add; the
    /// per-warp histogram concatenates). Used by multi-launch drivers (one
    /// BFS = one launch per level).
    pub fn accumulate(&mut self, other: &KernelStats) {
        self.cycles += other.cycles;
        self.instructions += other.instructions;
        self.alu_instructions += other.alu_instructions;
        self.mem_instructions += other.mem_instructions;
        self.atomic_instructions += other.atomic_instructions;
        self.shared_instructions += other.shared_instructions;
        self.barriers += other.barriers;
        self.mem_transactions += other.mem_transactions;
        self.cached_load_instructions += other.cached_load_instructions;
        self.cache_hit_segments += other.cache_hit_segments;
        self.cache_miss_segments += other.cache_miss_segments;
        self.atomic_replays += other.atomic_replays;
        self.shared_replay_passes += other.shared_replay_passes;
        self.active_lane_sum += other.active_lane_sum;
        self.warps += other.warps;
        self.blocks += other.blocks;
        self.per_warp_instructions
            .extend_from_slice(&other.per_warp_instructions);
    }

    /// Read-only-cache hit rate over cached loads (0 if none issued).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hit_segments + self.cache_miss_segments;
        if total == 0 {
            0.0
        } else {
            self.cache_hit_segments as f64 / total as f64
        }
    }

    /// Wall-clock-equivalent seconds at the given core clock.
    pub fn seconds_at(&self, clock_hz: u64) -> f64 {
        self.cycles as f64 / clock_hz as f64
    }
}

impl std::fmt::Display for KernelStats {
    /// One-line human summary: cycles, instruction mix, lane utilization,
    /// and memory traffic.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} cycles | {} instr (alu {}, mem {}, atomic {}, shared {}) | lane-util {:.1}% | {} tx",
            self.cycles,
            self.instructions,
            self.alu_instructions,
            self.mem_instructions,
            self.atomic_instructions,
            self.shared_instructions,
            self.lane_utilization() * 100.0,
            self.mem_transactions
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{BlockTrace, Op, WarpTrace};

    fn sample_trace() -> KernelTrace {
        KernelTrace {
            blocks: vec![BlockTrace {
                warps: vec![
                    WarpTrace {
                        ops: vec![
                            Op::Alu { active: 32 },
                            Op::LdGlobal { active: 16, tx: 16 },
                            Op::Atomic {
                                active: 4,
                                tx: 2,
                                replays: 3,
                            },
                            Op::Shared {
                                active: 32,
                                cost: 4,
                            },
                            Op::Bar,
                        ],
                    },
                    WarpTrace {
                        ops: vec![Op::Alu { active: 8 }],
                    },
                ],
            }],
            block_threads: 64,
            shared_words_per_block: 0,
        }
    }

    #[test]
    fn from_trace_counts() {
        let s = KernelStats::from_trace(&sample_trace());
        assert_eq!(s.instructions, 6);
        assert_eq!(s.alu_instructions, 2);
        assert_eq!(s.mem_instructions, 1);
        assert_eq!(s.atomic_instructions, 1);
        assert_eq!(s.shared_instructions, 1);
        assert_eq!(s.barriers, 1);
        assert_eq!(s.mem_transactions, 18);
        assert_eq!(s.atomic_replays, 3);
        assert_eq!(s.shared_replay_passes, 3);
        assert_eq!(s.warps, 2);
        assert_eq!(s.blocks, 1);
        assert_eq!(s.per_warp_instructions, vec![5, 1]);
    }

    #[test]
    fn utilization_bounds() {
        let s = KernelStats::from_trace(&sample_trace());
        let u = s.lane_utilization();
        assert!(u > 0.0 && u <= 1.0, "{u}");
        let empty = KernelStats::default();
        assert_eq!(empty.lane_utilization(), 0.0);
    }

    #[test]
    fn imbalance_measures() {
        let s = KernelStats::from_trace(&sample_trace());
        // warps have 5 and 1 instructions: mean 3, max 5.
        assert!((s.warp_imbalance_max_over_mean() - 5.0 / 3.0).abs() < 1e-12);
        assert!(s.warp_imbalance_cv() > 0.0);

        let balanced = KernelStats {
            per_warp_instructions: vec![4, 4, 4],
            ..Default::default()
        };
        assert_eq!(balanced.warp_imbalance_max_over_mean(), 1.0);
        assert_eq!(balanced.warp_imbalance_cv(), 0.0);
    }

    #[test]
    fn accumulate_adds() {
        let a = KernelStats::from_trace(&sample_trace());
        let mut acc = a.clone();
        acc.accumulate(&a);
        assert_eq!(acc.instructions, 2 * a.instructions);
        assert_eq!(acc.per_warp_instructions.len(), 4);
        assert_eq!(acc.warps, 4);
    }

    #[test]
    fn seconds_at_clock() {
        let s = KernelStats {
            cycles: 2_000_000,
            ..Default::default()
        };
        assert!((s.seconds_at(1_000_000_000) - 0.002).abs() < 1e-12);
    }

    #[test]
    fn cached_loads_aggregate() {
        let kt = KernelTrace {
            blocks: vec![BlockTrace {
                warps: vec![WarpTrace {
                    ops: vec![
                        Op::LdCached {
                            active: 32,
                            hits: 3,
                            misses: 1,
                        },
                        Op::LdCached {
                            active: 16,
                            hits: 0,
                            misses: 2,
                        },
                    ],
                }],
            }],
            block_threads: 32,
            shared_words_per_block: 0,
        };
        let s = KernelStats::from_trace(&kt);
        assert_eq!(s.cached_load_instructions, 2);
        assert_eq!(s.cache_hit_segments, 3);
        assert_eq!(s.cache_miss_segments, 3);
        assert_eq!(s.mem_transactions, 3, "only misses hit DRAM");
        assert!((s.cache_hit_rate() - 0.5).abs() < 1e-12);
        let mut acc = s.clone();
        acc.accumulate(&s);
        assert_eq!(acc.cache_hit_segments, 6);
    }

    #[test]
    fn san_markers_do_not_change_stats() {
        let mut with_markers = sample_trace();
        with_markers.blocks[0].warps[0].ops.insert(0, Op::San);
        with_markers.blocks[0].warps[1].ops.push(Op::San);
        assert_eq!(
            KernelStats::from_trace(&with_markers),
            KernelStats::from_trace(&sample_trace())
        );
    }

    #[test]
    fn empty_cache_hit_rate_is_zero() {
        assert_eq!(KernelStats::default().cache_hit_rate(), 0.0);
    }

    #[test]
    fn imbalance_of_zero_warp_kernel_is_zero() {
        // Regression: a launch that ran no warps (empty `KernelStats`) must
        // report 0.0 imbalance, not pretend to be perfectly balanced.
        let empty = KernelStats::default();
        assert!(empty.per_warp_instructions.is_empty());
        assert_eq!(empty.warp_imbalance_max_over_mean(), 0.0);
        assert_eq!(empty.warp_imbalance_cv(), 0.0);
    }

    #[test]
    fn display_summarizes() {
        let s = KernelStats::from_trace(&sample_trace());
        let line = s.to_string();
        assert!(line.contains("instr"));
        assert!(line.contains("lane-util"));
        assert!(line.contains("tx"));
        assert!(
            !line.contains("  "),
            "summary has a run of spaces: {line:?}"
        );
    }

    #[test]
    fn tx_per_mem() {
        let s = KernelStats::from_trace(&sample_trace());
        // 18 transactions over 2 global-memory instructions (ld + atomic).
        assert!((s.tx_per_mem_instruction() - 9.0).abs() < 1e-12);
    }
}
