//! GPU configuration: machine parameters for the functional and timing models.

use serde::{Deserialize, Serialize};

/// Machine description for the simulated GPU.
///
/// The defaults and presets are modeled on the paper-era parts (PPoPP 2011
/// used pre-Fermi/Fermi NVIDIA GPUs). Only parameters that the paper's
/// effects depend on are modeled: SM count, warp residency (latency hiding),
/// issue rate, ALU/memory latencies, DRAM bandwidth expressed as transaction
/// service rate, and the coalescing segment size.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GpuConfig {
    /// Human-readable name of the preset.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub num_sms: u32,
    /// Maximum resident warps per SM (occupancy ceiling).
    pub max_warps_per_sm: u32,
    /// Maximum resident blocks per SM.
    pub max_blocks_per_sm: u32,
    /// Maximum threads per block accepted by `launch`.
    pub max_threads_per_block: u32,
    /// Shared memory per SM in 32-bit words.
    pub shared_words_per_sm: u32,
    /// Core clock in Hz — used only to convert simulated cycles into
    /// wall-clock-equivalent throughput numbers (edges/second).
    pub clock_hz: u64,
    /// Cycles between issuing a dependent ALU instruction (pipeline depth).
    /// With enough resident warps this latency is hidden and throughput is
    /// one instruction per cycle per SM.
    pub alu_latency: u64,
    /// Minimum global-memory round-trip latency in cycles.
    pub mem_latency: u64,
    /// Shared-memory access latency in cycles.
    pub shared_latency: u64,
    /// DRAM service time per memory transaction (segment) in cycles, for the
    /// whole device. 1 means the device can retire one coalesced segment per
    /// core cycle (≈ 128 B/cycle ≈ 147 GB/s at 1.15 GHz, Fermi-class).
    pub dram_cycles_per_transaction: u64,
    /// Extra serialization cost per conflicting atomic (same-address replay).
    pub atomic_replay_cycles: u64,
    /// Size in bytes of a coalesced memory segment (transaction).
    pub segment_bytes: u32,
    /// Lines (of `segment_bytes`) in the device-wide read-only cache used
    /// by `ld_cached` (texture path / L2). 0 disables it.
    pub l2_lines: u32,
    /// Associativity of the read-only cache.
    pub l2_ways: u32,
    /// Latency of a read-only-cache hit, in cycles.
    pub l2_hit_latency: u64,
    /// Instructions the SM can issue per cycle. The model issues from one
    /// warp per slot (round-robin among ready warps).
    pub issue_width: u32,
    /// Enable the warp-hazard sanitizer (racecheck/memcheck shadow state).
    /// Also switched on by `MAXWARP_SANITIZE=1` in the environment. Purely
    /// observational: results and `KernelStats` are identical either way.
    pub sanitize: bool,
    /// Enable the cycle-attribution profiler (per-call-site hotspot table,
    /// per-SM stall breakdown, warp timeline). Also switched on by
    /// `MAXWARP_PROFILE=1` in the environment. Purely observational: results,
    /// `KernelStats`, and simulated cycles are identical either way.
    pub profile: bool,
    /// Enable the static abstract-interpretation analyzer (affine access
    /// forms, barrier convergence, may-happen-in-parallel races, coalescing
    /// and bank-conflict prediction). Also switched on by `MAXWARP_ANALYZE=1`
    /// in the environment. Purely observational: results and `KernelStats`
    /// are identical either way.
    #[serde(default)]
    pub analyze: bool,
    /// Watchdog budgets (cycles / instructions / driver iterations). All
    /// `None` by default — existing runs are byte-identical. Env overrides:
    /// `MAXWARP_MAX_CYCLES`, `MAXWARP_MAX_ITERS`.
    #[serde(default)]
    pub watchdog: crate::fault::WatchdogConfig,
    /// Deterministic fault injection (chaos mode). `None` (the default)
    /// injects nothing; `MAXWARP_FAULTS=seed` enables every fault class.
    #[serde(default)]
    pub faults: Option<crate::fault::FaultConfig>,
}

impl GpuConfig {
    /// Fermi-class Tesla C2050 — the kind of part the paper's follow-up work
    /// ran on. 14 SMs, 48 resident warps/SM, ~144 GB/s DRAM.
    pub fn fermi_c2050() -> Self {
        GpuConfig {
            name: "Fermi C2050 (simulated)".to_string(),
            num_sms: 14,
            max_warps_per_sm: 48,
            max_blocks_per_sm: 8,
            max_threads_per_block: 1024,
            shared_words_per_sm: 48 * 1024 / 4,
            clock_hz: 1_150_000_000,
            alu_latency: 12,
            mem_latency: 450,
            shared_latency: 30,
            dram_cycles_per_transaction: 1,
            atomic_replay_cycles: 20,
            segment_bytes: 128,
            // Fermi's 768 KB L2.
            l2_lines: 6144,
            l2_ways: 8,
            l2_hit_latency: 120,
            issue_width: 1,
            sanitize: false,
            profile: false,
            analyze: false,
            watchdog: crate::fault::WatchdogConfig::default(),
            faults: None,
        }
    }

    /// GT200-class GTX 280 — the generation the PPoPP'11 experiments used.
    /// 30 SMs, 32 resident warps/SM, stricter coalescing handled by the same
    /// segment model, longer memory latency.
    pub fn gtx280() -> Self {
        GpuConfig {
            name: "GTX 280 (simulated)".to_string(),
            num_sms: 30,
            max_warps_per_sm: 32,
            max_blocks_per_sm: 8,
            max_threads_per_block: 512,
            shared_words_per_sm: 16 * 1024 / 4,
            clock_hz: 1_296_000_000,
            alu_latency: 16,
            mem_latency: 550,
            shared_latency: 36,
            dram_cycles_per_transaction: 1,
            atomic_replay_cycles: 32,
            segment_bytes: 128,
            // GT200 has no L2; model its small texture caches.
            l2_lines: 512,
            l2_ways: 4,
            l2_hit_latency: 90,
            issue_width: 1,
            sanitize: false,
            profile: false,
            analyze: false,
            watchdog: crate::fault::WatchdogConfig::default(),
            faults: None,
        }
    }

    /// A deliberately tiny machine for unit tests: 2 SMs, 4 warps/SM. Small
    /// enough that hand-computed schedules are checkable.
    pub fn tiny_test() -> Self {
        GpuConfig {
            name: "tiny-test".to_string(),
            num_sms: 2,
            max_warps_per_sm: 8,
            max_blocks_per_sm: 4,
            max_threads_per_block: 256,
            shared_words_per_sm: 4096,
            clock_hz: 1_000_000_000,
            alu_latency: 4,
            mem_latency: 100,
            shared_latency: 10,
            dram_cycles_per_transaction: 2,
            atomic_replay_cycles: 8,
            segment_bytes: 128,
            l2_lines: 32,
            l2_ways: 2,
            l2_hit_latency: 10,
            issue_width: 1,
            sanitize: false,
            profile: false,
            analyze: false,
            watchdog: crate::fault::WatchdogConfig::default(),
            faults: None,
        }
    }

    /// Words of a segment (segment_bytes / 4).
    #[inline]
    pub fn segment_words(&self) -> u32 {
        self.segment_bytes / 4
    }

    /// Resident blocks per SM for a given block size (threads).
    ///
    /// `shared_words_per_block` is the shared memory the kernel allocates per
    /// block; 0 if none.
    pub fn blocks_per_sm(&self, threads_per_block: u32, shared_words_per_block: u32) -> u32 {
        let warps_per_block = threads_per_block.div_ceil(crate::lanes::WARP_SIZE as u32);
        let by_warps = self.max_warps_per_sm / warps_per_block.max(1);
        let by_blocks = self.max_blocks_per_sm;
        let by_shared = self
            .shared_words_per_sm
            .checked_div(shared_words_per_block)
            .unwrap_or(u32::MAX);
        by_warps.min(by_blocks).min(by_shared)
    }

    /// Occupancy in resident warps per SM for a block size.
    pub fn occupancy_warps(&self, threads_per_block: u32, shared_words_per_block: u32) -> u32 {
        let warps_per_block = threads_per_block.div_ceil(crate::lanes::WARP_SIZE as u32);
        self.blocks_per_sm(threads_per_block, shared_words_per_block) * warps_per_block
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        GpuConfig::fermi_c2050()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_sane() {
        for cfg in [
            GpuConfig::fermi_c2050(),
            GpuConfig::gtx280(),
            GpuConfig::tiny_test(),
        ] {
            assert!(cfg.num_sms > 0);
            assert!(cfg.max_warps_per_sm > 0);
            assert!(cfg.segment_bytes % 4 == 0);
            assert!(cfg.issue_width >= 1);
            assert!(cfg.mem_latency > cfg.alu_latency);
        }
    }

    #[test]
    fn occupancy_limited_by_warps() {
        let cfg = GpuConfig::fermi_c2050();
        // 256-thread blocks = 8 warps; 48/8 = 6 blocks, under the 8-block cap.
        assert_eq!(cfg.blocks_per_sm(256, 0), 6);
        assert_eq!(cfg.occupancy_warps(256, 0), 48);
    }

    #[test]
    fn occupancy_limited_by_block_cap() {
        let cfg = GpuConfig::fermi_c2050();
        // 32-thread blocks = 1 warp; warp limit allows 48 but cap is 8.
        assert_eq!(cfg.blocks_per_sm(32, 0), 8);
        assert_eq!(cfg.occupancy_warps(32, 0), 8);
    }

    #[test]
    fn occupancy_limited_by_shared() {
        let cfg = GpuConfig::fermi_c2050();
        let half = cfg.shared_words_per_sm / 2 + 1;
        assert_eq!(cfg.blocks_per_sm(64, half), 1);
    }

    #[test]
    fn default_is_fermi() {
        assert_eq!(GpuConfig::default().name, GpuConfig::fermi_c2050().name);
    }

    #[test]
    fn segment_words_matches_bytes() {
        assert_eq!(GpuConfig::fermi_c2050().segment_words(), 32);
    }
}
