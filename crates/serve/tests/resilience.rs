//! Service-resilience behavior: worker supervision, crash recovery,
//! retries, hedging, admission shedding, the circuit breaker with CPU
//! fallback, and the acceptance contract that every resilience feature is
//! pure policy — non-degraded results are byte-identical with the whole
//! stack on or off.

use maxwarp::Method;
use maxwarp_graph::hub_graph;
use maxwarp_serve::resilience::{Backoff, CrashPolicy, RestartPolicy};
use maxwarp_serve::{
    BreakerConfig, ChaosConfig, Priority, Query, Request, ResponseSource, RetryPolicy, ServeError,
    Server, ServerConfig, ShedConfig, ShedReason, WorkerHealth,
};
use maxwarp_simt::GpuConfig;
use std::time::Duration;

fn graph() -> maxwarp_graph::Csr {
    hub_graph(300, 2, 40, 3, 11)
}

fn pinned(h: maxwarp_serve::GraphHandle, q: Query) -> Request {
    let mut r = Request::new(h, q);
    r.method = Some(Method::Baseline);
    r
}

fn fast_backoff() -> Backoff {
    Backoff::new(Duration::from_micros(50), Duration::from_millis(2))
}

/// A worker that panics on batch pickup is restarted by the supervisor and
/// the in-flight request is requeued — until the per-request requeue
/// budget runs out, at which point the request fails with a structured
/// `WorkerCrashed` instead of hanging its ticket forever.
#[test]
fn supervisor_restarts_panicked_worker_and_bounds_requeues() {
    let mut cfg = ServerConfig::for_tests(GpuConfig::tiny_test());
    cfg.workers = 1;
    cfg.resilience.restart = RestartPolicy {
        max_restarts: 100,
        backoff: fast_backoff(),
    };
    cfg.resilience.crash = CrashPolicy::Requeue { max_requeues: 2 };
    cfg.chaos = Some(ChaosConfig {
        seed: 7,
        worker_panic: 1.0,
        ..ChaosConfig::default()
    });
    let server = Server::start(cfg);
    let h = server.register_graph("hub", graph());

    // Every pickup panics: requeue twice, then fail the request.
    match server.call(pinned(h, Query::Bfs { src: Some(0) })) {
        Err(ServeError::WorkerCrashed { requeues }) => assert_eq!(requeues, 2),
        other => panic!("expected WorkerCrashed after requeue budget, got {other:?}"),
    }

    // Stop injecting: the restarted worker serves normally.
    server.set_chaos(None);
    let ok = server
        .call(pinned(h, Query::Bfs { src: Some(0) }))
        .expect("restarted worker serves");
    assert!(!ok.degraded);

    let health = server.worker_health();
    assert!(
        matches!(health[0], WorkerHealth::Running { restarts } if restarts >= 3),
        "worker restarted at least once per panic, got {health:?}"
    );
    let snap = server.snapshot();
    assert!(snap.resilience.worker_panics >= 3);
    assert!(snap.resilience.worker_restarts >= 3);
    assert_eq!(snap.resilience.crash_requeued, 2);
    assert_eq!(snap.resilience.crash_failed, 1);
    server.shutdown();
}

/// When every worker exhausts its restart budget the pool is dead: queued
/// and future requests fail fast with `WorkersDead`, never hanging.
#[test]
fn dead_pool_fails_fast() {
    let mut cfg = ServerConfig::for_tests(GpuConfig::tiny_test());
    cfg.workers = 1;
    cfg.resilience.restart = RestartPolicy {
        max_restarts: 0,
        backoff: fast_backoff(),
    };
    cfg.chaos = Some(ChaosConfig {
        seed: 9,
        worker_panic: 1.0,
        ..ChaosConfig::default()
    });
    let server = Server::start(cfg);
    let h = server.register_graph("hub", graph());

    match server.call(pinned(h, Query::Cc)) {
        Err(ServeError::WorkersDead) | Err(ServeError::WorkerCrashed { .. }) => {}
        other => panic!("expected a structured crash error, got {other:?}"),
    }
    assert_eq!(server.workers_alive(), 0);
    match server.submit(pinned(h, Query::Cc)) {
        Err(ServeError::WorkersDead) => {}
        other => panic!("expected WorkersDead fast-fail, got {other:?}"),
    }
    server.shutdown();
}

/// Retries absorb transient launch faults: with a seeded fault rate and a
/// deep attempt budget, every request eventually succeeds and the retry
/// counters show real work was absorbed.
#[test]
fn retries_absorb_transient_faults() {
    let mut cfg = ServerConfig::for_tests(GpuConfig::tiny_test());
    cfg.workers = 1;
    cfg.resilience.retry = RetryPolicy {
        max_attempts: 12,
        backoff: fast_backoff(),
        hedge_after: None,
    };
    cfg.chaos = Some(ChaosConfig {
        seed: 21,
        launch_fault: 0.5,
        ..ChaosConfig::default()
    });
    let server = Server::start(cfg);
    let h = server.register_graph("hub", graph());

    for src in 0..6 {
        let r = server
            .call(pinned(h, Query::Bfs { src: Some(src) }))
            .expect("retries outlast seeded faults");
        assert!(!r.degraded);
        assert!(r.attempts >= 1);
    }
    let snap = server.snapshot();
    assert!(snap.resilience.retries > 0, "faults must have fired");
    assert!(snap.resilience.retry_successes > 0);
    assert_eq!(snap.failed, 0);
    server.shutdown();
}

/// A tripped circuit breaker routes requests to the CPU reference: the
/// response is flagged degraded, sourced `CpuFallback`, and carries the
/// same payload the device would have produced.
#[test]
fn breaker_trips_to_cpu_fallback() {
    let mut cfg = ServerConfig::for_tests(GpuConfig::tiny_test());
    cfg.workers = 1;
    cfg.resilience.breaker = Some(BreakerConfig {
        threshold: 2,
        cooldown: Duration::from_secs(30),
    });
    cfg.chaos = Some(ChaosConfig {
        seed: 3,
        launch_fault: 1.0,
        ..ChaosConfig::default()
    });
    let server = Server::start(cfg);
    let h = server.register_graph("hub", graph());

    // Two consecutive faults trip the (graph, bfs) breaker.
    for src in 0..2 {
        match server.call(pinned(h, Query::Bfs { src: Some(src) })) {
            Err(ServeError::Panicked(_)) => {}
            other => panic!("expected injected fault, got {other:?}"),
        }
    }

    let deg = server
        .call(pinned(h, Query::Bfs { src: Some(0) }))
        .expect("breaker fallback serves");
    assert!(deg.degraded);
    assert_eq!(deg.source, ResponseSource::CpuFallback);
    assert!(!deg.cached, "fallback results must not poison the cache");

    // The CPU reference computes the same answer the device would.
    let clean = Server::start(ServerConfig::for_tests(GpuConfig::tiny_test()));
    let hc = clean.register_graph("hub", graph());
    let want = clean.call(pinned(hc, Query::Bfs { src: Some(0) })).unwrap();
    assert_eq!(deg.data, want.data, "fallback payload matches the device");

    let snap = server.snapshot();
    assert!(snap.resilience.breaker_trips >= 1);
    assert!(snap.resilience.fallbacks >= 1);
    assert!(snap.resilience.degraded >= 1);
    clean.shutdown();
    server.shutdown();
}

/// Token-bucket admission control sheds a flooding tenant with a
/// structured reason while leaving its already-admitted work untouched.
#[test]
fn tenant_flood_is_shed_with_structured_reason() {
    let mut cfg = ServerConfig::for_tests(GpuConfig::tiny_test());
    cfg.workers = 1;
    cfg.paused = true;
    cfg.resilience.shed = Some(ShedConfig {
        high_watermark: 1.0,
        tenant_rate: 0.001,
        tenant_burst: 2.0,
    });
    let server = Server::start(cfg);
    let h = server.register_graph("hub", graph());

    let mut admitted = Vec::new();
    let mut shed = 0u64;
    for src in 0..5 {
        let mut req = pinned(h, Query::Bfs { src: Some(src) });
        req.tenant = Some("flood".to_string());
        match server.submit(req) {
            Ok(t) => admitted.push(t),
            Err(ServeError::Shed { reason }) => {
                assert_eq!(reason, ShedReason::TenantRate);
                shed += 1;
            }
            other => panic!("expected admit or shed, got {other:?}"),
        }
    }
    assert_eq!(admitted.len(), 2, "burst of 2 admits exactly 2");
    assert_eq!(shed, 3);

    server.resume();
    for t in admitted {
        t.wait().expect("admitted work completes");
    }
    assert_eq!(server.snapshot().resilience.shed_tenant, 3);
    server.shutdown();
}

/// Past the high-watermark the queue stops growing: a high-priority
/// arrival displaces the most recent low-priority occupant (which gets a
/// structured shed), while an equal-priority arrival is shed itself.
#[test]
fn queue_pressure_sheds_by_priority() {
    let mut cfg = ServerConfig::for_tests(GpuConfig::tiny_test());
    cfg.workers = 1;
    cfg.queue_capacity = 4;
    cfg.paused = true;
    cfg.resilience.shed = Some(ShedConfig {
        high_watermark: 0.5,
        tenant_rate: 1e9,
        tenant_burst: 1e9,
    });
    let server = Server::start(cfg);
    let h = server.register_graph("hub", graph());

    // Fill to the watermark (ceil(4 * 0.5) = 2) with normal priority.
    let keeper = server
        .submit(pinned(h, Query::Bfs { src: Some(0) }))
        .expect("below watermark");
    let victim = server
        .submit(pinned(h, Query::Bfs { src: Some(1) }))
        .expect("at watermark");

    // Equal priority at the watermark: the incoming request is shed.
    match server.submit(pinned(h, Query::Bfs { src: Some(2) })) {
        Err(ServeError::Shed { reason }) => assert_eq!(reason, ShedReason::QueuePressure),
        other => panic!("expected incoming shed, got {other:?}"),
    }

    // Higher priority displaces the most recent normal-priority occupant.
    let vip = server
        .submit(pinned(h, Query::Bfs { src: Some(3) }).with_priority(Priority::High))
        .expect("high priority displaces a victim");
    match victim.wait() {
        Err(ServeError::Shed { reason }) => assert_eq!(reason, ShedReason::QueuePressure),
        other => panic!("expected the victim to be shed, got {other:?}"),
    }

    server.resume();
    keeper.wait().expect("undisturbed occupant completes");
    vip.wait().expect("vip completes");
    assert_eq!(server.snapshot().resilience.shed_queue, 2);
    server.shutdown();
}

/// With every launch slowed past the hedge deadline, a duplicate fires and
/// the first result wins — exactly one response reaches the client.
#[test]
fn hedged_request_races_a_duplicate() {
    let mut cfg = ServerConfig::for_tests(GpuConfig::tiny_test());
    cfg.workers = 2;
    cfg.chaos = Some(ChaosConfig {
        seed: 5,
        slow_launch: 1.0,
        slow: Duration::from_millis(20),
        ..ChaosConfig::default()
    });
    let server = Server::start(cfg);
    let h = server.register_graph("hub", graph());

    let req = pinned(h, Query::Bfs { src: Some(0) })
        .with_retry(RetryPolicy::none().with_hedge(Duration::from_millis(1)));
    let r = server.call(req).expect("hedged request completes");
    assert!(!r.degraded);

    let snap = server.snapshot();
    assert!(snap.resilience.hedges >= 1, "the hedge must have fired");
    assert_eq!(snap.completed, 1, "exactly one client-visible completion");
    server.shutdown();
}

/// One poisoned request (a cycle deadline that trips the watchdog
/// immediately) inside a 4-request batch fails alone — its batch-mates
/// complete with correct results.
#[test]
fn poisoned_request_fails_alone_in_batch() {
    let mut cfg = ServerConfig::for_tests(GpuConfig::tiny_test());
    cfg.workers = 1;
    cfg.batch_max = 4;
    cfg.paused = true;
    let server = Server::start(cfg);
    let h = server.register_graph("hub", graph());

    let mut tickets = Vec::new();
    for src in 0..4u32 {
        let mut req = pinned(h, Query::Bfs { src: Some(src) });
        if src == 2 {
            req.deadline_cycles = Some(1); // poison: watchdog trips at once
        }
        tickets.push(server.submit(req).expect("queue has room"));
    }
    server.resume();

    let reference = Server::start(ServerConfig::for_tests(GpuConfig::tiny_test()));
    let hr = reference.register_graph("hub", graph());
    for (src, t) in tickets.into_iter().enumerate() {
        let src = src as u32;
        match t.wait() {
            Ok(r) => {
                assert_ne!(src, 2, "the poisoned request must not succeed");
                assert_eq!(r.batch_size, 4, "batch-mates stay batched");
                let want = reference
                    .call(pinned(hr, Query::Bfs { src: Some(src) }))
                    .unwrap();
                assert_eq!(r.data, want.data, "slot {src}");
                assert_eq!(r.stats, want.stats, "slot {src} stats");
            }
            Err(ServeError::Launch(_)) => {
                assert_eq!(src, 2, "only the poisoned request may fail");
            }
            other => panic!("unexpected outcome for slot {src}: {other:?}"),
        }
    }
    let snap = server.snapshot();
    assert_eq!(snap.completed, 3);
    assert_eq!(snap.failed, 1);
    reference.shutdown();
    server.shutdown();
}

/// Acceptance: resilience is pure policy. With retries, shedding headroom,
/// stale-TTL, and the breaker all enabled (but no faults), every response
/// is byte-identical — data, stats, iterations, method — to a server with
/// the whole stack off.
#[test]
fn resilience_stack_is_byte_identical_when_healthy() {
    let baseline = Server::start(ServerConfig::for_tests(GpuConfig::tiny_test()));

    let mut cfg = ServerConfig::for_tests(GpuConfig::tiny_test());
    cfg.resilience.retry = RetryPolicy::attempts(3);
    cfg.resilience.shed = Some(ShedConfig::default());
    cfg.resilience.stale_ttl = Some(Duration::from_secs(3600));
    cfg.resilience.breaker = Some(BreakerConfig::default());
    let armed = Server::start(cfg);

    let hb = baseline.register_graph("hub", graph());
    let ha = armed.register_graph("hub", graph());

    let queries = [
        Query::Bfs { src: None },
        Query::Bfs { src: Some(3) },
        Query::Sssp { src: None },
        Query::Cc,
        Query::Pagerank {
            iters: 3,
            damping: 0.85,
        },
    ];
    for q in queries {
        let want = baseline.call(pinned(hb, q.clone())).unwrap();
        let got = armed.call(pinned(ha, q.clone())).unwrap();
        assert!(!got.degraded, "{q:?} must not degrade on a healthy path");
        assert_eq!(got.data, want.data, "{q:?} payload");
        assert_eq!(got.stats, want.stats, "{q:?} KernelStats");
        assert_eq!(got.iterations, want.iterations, "{q:?} iterations");
        assert_eq!(got.method, want.method, "{q:?} method");
    }
    let snap = armed.snapshot();
    assert_eq!(snap.resilience.degraded, 0);
    assert_eq!(snap.resilience.fallbacks, 0);
    baseline.shutdown();
    armed.shutdown();
}
