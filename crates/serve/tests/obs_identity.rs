//! The pure-observer contract: metrics and span tracing must never change
//! what the service computes. A server with the registry recording and
//! tracing on produces byte-identical payloads and `KernelStats` to a
//! server with observation fully off — for every algorithm in the mix,
//! cold and cached.

use maxwarp_graph::{Dataset, Scale};
use maxwarp_serve::{Algo, Query, Request, Response, Server, ServerConfig};
use maxwarp_simt::GpuConfig;

fn server(obs: bool, trace: bool) -> Server {
    let mut cfg = ServerConfig::for_tests(GpuConfig::tiny_test());
    cfg.workers = 1;
    cfg.obs = obs;
    cfg.trace = trace;
    Server::start(cfg)
}

fn run_mix(s: &Server) -> Vec<Response> {
    let g = Dataset::Rmat.build(Scale::Tiny);
    let h = s.register_graph("rmat", g);
    let queries = [
        Query::canonical(Algo::Bfs),
        Query::canonical(Algo::Sssp),
        Query::canonical(Algo::Pagerank),
        Query::canonical(Algo::Cc),
    ];
    let mut out = Vec::new();
    // Two passes: cold runs, then cache hits — both must be identical
    // across observation modes.
    for _ in 0..2 {
        for q in &queries {
            out.push(
                s.call(Request::new(h, q.clone()))
                    .expect("mix query must succeed"),
            );
        }
    }
    out
}

#[test]
fn observed_and_unobserved_servers_agree_byte_for_byte() {
    let observed = server(true, true);
    let plain = server(false, false);
    let a = run_mix(&observed);
    let b = run_mix(&plain);

    assert_eq!(a.len(), b.len());
    for (ra, rb) in a.iter().zip(&b) {
        assert_eq!(ra.stats, rb.stats, "KernelStats must be byte-identical");
        assert_eq!(ra.data, rb.data, "payload must be byte-identical");
        assert_eq!(ra.iterations, rb.iterations);
        assert_eq!(ra.method, rb.method);
        assert_eq!(ra.cached, rb.cached);
    }

    // The observed server actually observed: series registered, spans
    // recorded — so the comparison above exercised the instrumented path.
    assert!(observed
        .registry()
        .series_of("serve_requests_submitted_total")
        .iter()
        .any(|(_, v)| *v > 0));
    assert!(!observed.tracer().spans().is_empty());
    // And the plain server recorded nothing.
    assert!(plain.tracer().spans().is_empty());

    observed.shutdown();
    plain.shutdown();
}
