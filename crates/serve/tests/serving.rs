//! Scheduler behavior under load: backpressure, batching, deadlines,
//! admission control, tenant accounting, and shutdown draining.

use maxwarp::Method;
use maxwarp_graph::hub_graph;
use maxwarp_serve::{Query, Request, ServeError, Server, ServerConfig};
use maxwarp_simt::GpuConfig;

fn graph() -> maxwarp_graph::Csr {
    hub_graph(300, 2, 40, 3, 11)
}

/// Pin the baseline so no test below depends on tuner probing.
fn pinned(h: maxwarp_serve::GraphHandle, q: Query) -> Request {
    let mut r = Request::new(h, q);
    r.method = Some(Method::Baseline);
    r
}

/// A paused single-worker server rejects the (capacity+1)-th submission
/// with structured backpressure — nothing dropped, nothing panicking —
/// and after `resume` every admitted request completes with the result
/// its slot asked for.
#[test]
fn saturation_gives_structured_backpressure() {
    let mut cfg = ServerConfig::for_tests(GpuConfig::tiny_test());
    cfg.workers = 1;
    cfg.queue_capacity = 4;
    cfg.paused = true;
    let server = Server::start(cfg);
    let h = server.register_graph("hub", graph());

    let tickets: Vec<_> = (0..4)
        .map(|i| {
            server
                .submit(pinned(h, Query::Bfs { src: Some(i) }))
                .expect("within capacity")
        })
        .collect();
    assert_eq!(server.queue_len(), 4);

    match server.submit(pinned(h, Query::Bfs { src: Some(4) })) {
        Err(ServeError::QueueFull { capacity }) => assert_eq!(capacity, 4),
        other => panic!("expected QueueFull, got {other:?}"),
    }

    server.resume();
    let responses: Vec<_> = tickets
        .into_iter()
        .map(|t| t.wait().expect("admitted requests complete"))
        .collect();

    // Slot alignment: response i is the answer to src=i. A fresh server
    // computes the reference for each slot.
    let reference = Server::start(ServerConfig::for_tests(GpuConfig::tiny_test()));
    let hr = reference.register_graph("hub", graph());
    for (i, resp) in responses.iter().enumerate() {
        let want = reference
            .call(pinned(
                hr,
                Query::Bfs {
                    src: Some(i as u32),
                },
            ))
            .unwrap();
        assert_eq!(resp.data, want.data, "slot {i} got the wrong result");
    }

    let snap = server.snapshot();
    assert_eq!(snap.submitted, 4);
    assert_eq!(snap.rejected_full, 1);
    assert_eq!(snap.completed, 4);
    assert_eq!(snap.failed, 0);

    reference.shutdown();
    server.shutdown();
}

/// Interleaved submissions for two graphs collapse into one batch per
/// graph when a single worker drains a pre-filled queue.
#[test]
fn same_graph_requests_batch() {
    let mut cfg = ServerConfig::for_tests(GpuConfig::tiny_test());
    cfg.workers = 1;
    cfg.batch_max = 8;
    cfg.paused = true;
    let server = Server::start(cfg);
    let h1 = server.register_graph("a", hub_graph(200, 1, 30, 2, 3));
    let h2 = server.register_graph("b", hub_graph(200, 1, 30, 2, 5));

    let mut tickets = Vec::new();
    for i in 0..3u32 {
        for &h in &[h1, h2] {
            tickets.push(
                server
                    .submit(pinned(h, Query::Bfs { src: Some(i) }))
                    .unwrap(),
            );
        }
    }
    server.resume();
    let responses: Vec<_> = tickets.into_iter().map(|t| t.wait().unwrap()).collect();

    for r in &responses {
        assert_eq!(r.batch_size, 3, "each graph's 3 requests share one batch");
    }
    let snap = server.snapshot();
    assert_eq!(snap.batches, 2);
    assert_eq!(snap.batched_requests, 6);
    server.shutdown();
}

/// A request with a tiny cycle budget trips the watchdog and fails with a
/// structured launch error; the worker survives and keeps serving.
#[test]
fn deadline_fails_request_not_worker() {
    let mut cfg = ServerConfig::for_tests(GpuConfig::tiny_test());
    cfg.workers = 1;
    let server = Server::start(cfg);
    let h = server.register_graph("hub", graph());

    let mut doomed = pinned(h, Query::Bfs { src: Some(0) });
    doomed.deadline_cycles = Some(1);
    match server.call(doomed) {
        Err(ServeError::Launch(_)) => {}
        other => panic!("expected a watchdog launch error, got {other:?}"),
    }

    // The failed run must not have been cached, and the worker still works.
    let ok = server.call(pinned(h, Query::Bfs { src: Some(0) })).unwrap();
    assert!(
        !ok.cached,
        "a deadline failure must never populate the cache"
    );

    let snap = server.snapshot();
    assert_eq!(snap.failed, 1);
    assert_eq!(snap.completed, 1);
    server.shutdown();
}

/// Admission control rejects bad requests before they occupy queue slots:
/// unknown graph handles and method/algorithm mismatches.
#[test]
fn invalid_requests_rejected_at_admission() {
    let empty = Server::start(ServerConfig::for_tests(GpuConfig::tiny_test()));
    let other = Server::start(ServerConfig::for_tests(GpuConfig::tiny_test()));
    let foreign = other.register_graph("hub", graph());

    // `empty` has no graphs: any handle is unknown to it.
    match empty.submit(Request::new(foreign, Query::Cc)) {
        Err(ServeError::UnknownGraph(_)) => {}
        other => panic!("expected UnknownGraph, got {other:?}"),
    }

    // Deferral on triangles is a capability violation.
    let mut bad = Request::new(foreign, Query::Triangles);
    bad.method = Method::parse("vw8+defer:64");
    assert!(bad.method.is_some(), "spec parses");
    match other.submit(bad) {
        Err(ServeError::Unsupported { algo, .. }) => {
            assert_eq!(algo, maxwarp_serve::Algo::Triangles)
        }
        other => panic!("expected Unsupported, got {other:?}"),
    }

    assert_eq!(empty.snapshot().rejected_invalid, 1);
    assert_eq!(other.snapshot().rejected_invalid, 1);
    assert_eq!(other.snapshot().submitted, 0, "nothing was enqueued");

    // An in-range check the admission gate can't see (source ≥ n) still
    // fails structurally, at execution time.
    let mut oob = Request::new(foreign, Query::Bfs { src: Some(10_000) });
    oob.method = Some(Method::Baseline);
    match other.call(oob) {
        Err(ServeError::BadRequest(_)) => {}
        other => panic!("expected BadRequest, got {other:?}"),
    }

    empty.shutdown();
    other.shutdown();
}

/// Tenant tags are counted per tenant, independent of success/failure.
#[test]
fn per_tenant_accounting() {
    let mut cfg = ServerConfig::for_tests(GpuConfig::tiny_test());
    cfg.workers = 1;
    let server = Server::start(cfg);
    let h = server.register_graph("hub", graph());

    for (tenant, src) in [("alice", 0u32), ("alice", 1), ("bob", 2)] {
        let mut r = pinned(h, Query::Bfs { src: Some(src) });
        r.tenant = Some(tenant.to_string());
        server.call(r).unwrap();
    }
    let snap = server.snapshot();
    assert_eq!(
        snap.per_tenant,
        vec![("alice".to_string(), 2), ("bob".to_string(), 1)]
    );
    server.shutdown();
}

/// Shutdown fails queued-but-unserved requests with `ShuttingDown` instead
/// of leaving their callers hanging.
#[test]
fn shutdown_drains_queue_with_structured_error() {
    let mut cfg = ServerConfig::for_tests(GpuConfig::tiny_test());
    cfg.workers = 1;
    cfg.paused = true;
    let server = Server::start(cfg);
    let h = server.register_graph("hub", graph());

    let t1 = server.submit(pinned(h, Query::Cc)).unwrap();
    let t2 = server.submit(pinned(h, Query::Kcore)).unwrap();
    server.shutdown();

    for t in [t1, t2] {
        match t.wait() {
            Err(ServeError::ShuttingDown) => {}
            other => panic!("expected ShuttingDown, got {other:?}"),
        }
    }
}
