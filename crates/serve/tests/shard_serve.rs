//! The sharded serve tier's identity contract: a server with
//! `shards = N > 1` routes BFS/SSSP/CC/PageRank through the
//! `maxwarp-shard` multi-device executor, yet every payload is
//! byte-identical to what a single-device server returns. Cache entries
//! are keyed under a sharded device fingerprint (no collisions with
//! single-device results), cache hits replay byte-identically, and
//! algorithms without a sharded path still serve fine.

use maxwarp_graph::{Dataset, Scale};
use maxwarp_serve::{Algo, Query, Request, Response, Server, ServerConfig};
use maxwarp_simt::GpuConfig;

fn server(shards: u32) -> Server {
    let mut cfg = ServerConfig::for_tests(GpuConfig::tiny_test());
    cfg.workers = 2; // exercise graph-affinity pickup on the sharded server
    cfg.shards = shards;
    Server::start(cfg)
}

fn run_mix(s: &Server) -> Vec<Response> {
    let h = s.register_graph("rmat", Dataset::Rmat.build(Scale::Tiny));
    [
        Query::canonical(Algo::Bfs),
        Query::canonical(Algo::Sssp),
        Query::canonical(Algo::Pagerank),
        Query::canonical(Algo::Cc),
    ]
    .iter()
    .map(|q| {
        s.call(Request::new(h, q.clone()))
            .expect("mix query must succeed")
    })
    .collect()
}

#[test]
fn sharded_server_payloads_match_single_device() {
    for shards in [2u32, 4] {
        let single = server(1);
        let sharded = server(shards);
        let a = run_mix(&single);
        let b = run_mix(&sharded);
        assert_eq!(a.len(), b.len());
        for (ra, rb) in a.iter().zip(&b) {
            // Payloads are byte-identical; merged multi-device stats are
            // deterministic but not comparable to a single device's.
            assert_eq!(ra.data, rb.data, "payload must survive sharding");
            assert_eq!(ra.method, rb.method);
        }
        single.shutdown();
        sharded.shutdown();
    }
}

#[test]
fn sharded_fingerprint_keeps_cache_spaces_apart() {
    let single = server(1);
    let sharded = server(4);
    assert_ne!(
        single.device_fingerprint(),
        sharded.device_fingerprint(),
        "sharded and single-device results must never share cache keys"
    );
    single.shutdown();
    sharded.shutdown();
}

#[test]
fn sharded_cache_hit_replays_byte_identically() {
    let s = server(4);
    let h = s.register_graph("rmat", Dataset::Rmat.build(Scale::Tiny));
    let req = Request::new(h, Query::canonical(Algo::Pagerank));
    let cold = s.call(req.clone()).expect("cold run");
    let warm = s.call(req).expect("cache hit");
    assert!(!cold.cached && warm.cached);
    assert_eq!(cold.data, warm.data);
    assert_eq!(cold.stats, warm.stats, "hits replay merged stats verbatim");
    assert_eq!(cold.iterations, warm.iterations);
    s.shutdown();
}

#[test]
fn non_shardable_algo_still_serves_on_sharded_server() {
    let single = server(1);
    let sharded = server(4);
    let q = Query::canonical(Algo::Kcore);
    let hs = single.register_graph("rmat", Dataset::Rmat.build(Scale::Tiny));
    let hm = sharded.register_graph("rmat", Dataset::Rmat.build(Scale::Tiny));
    let a = single.call(Request::new(hs, q.clone())).expect("single");
    let b = sharded.call(Request::new(hm, q)).expect("sharded server");
    // K-core has no sharded path: it transparently runs single-device,
    // so even the stats match.
    assert_eq!(a.data, b.data);
    assert_eq!(a.stats, b.stats);
    single.shutdown();
    sharded.shutdown();
}
