//! Crash-safe persistence: property tests that corrupt each persisted
//! artifact — the tuning table, the cache-warmup snapshot, and the
//! generated-graph disk cache — with truncation, bit flips, and partial
//! (torn) writes, then prove the service starts clean, quarantines the
//! damage, rebuilds, and serves byte-identical results.

use maxwarp::Method;
use maxwarp_graph::{csr_digest, hub_graph};
use maxwarp_serve::{Query, Request, Server, ServerConfig};
use maxwarp_simt::GpuConfig;
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

fn graph() -> maxwarp_graph::Csr {
    hub_graph(300, 2, 40, 3, 11)
}

fn pinned(h: maxwarp_serve::GraphHandle, q: Query) -> Request {
    let mut r = Request::new(h, q);
    r.method = Some(Method::Baseline);
    r
}

static CASE: AtomicUsize = AtomicUsize::new(0);

/// A fresh per-case scratch directory (proptest cases run sequentially but
/// must not see each other's files).
fn scratch(tag: &str) -> PathBuf {
    let n = CASE.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("maxwarp-recovery-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Apply one corruption to the file: `op` 0 truncates, 1 flips a bit,
/// 2 simulates a torn write (truncate + garbage tail). Positions are
/// derived from `pos`/`bit` so proptest explores headers, payload, and
/// checksums alike.
fn corrupt(path: &Path, op: u8, pos: u32, bit: u8) {
    let mut bytes = std::fs::read(path).expect("artifact exists before corruption");
    assert!(!bytes.is_empty(), "artifact must be non-trivial");
    let at = pos as usize % bytes.len();
    match op % 3 {
        0 => bytes.truncate(at),
        1 => bytes[at] ^= 1 << (bit % 8),
        _ => {
            bytes.truncate(at);
            bytes.extend_from_slice(&[0xA5; 9]);
        }
    }
    std::fs::write(path, bytes).unwrap();
}

fn has_quarantine(dir: &Path) -> bool {
    std::fs::read_dir(dir)
        .map(|entries| {
            entries
                .flatten()
                .any(|e| e.file_name().to_string_lossy().contains(".corrupt"))
        })
        .unwrap_or(false)
}

fn check_tuning_recovers(op: u8, pos: u32, bit: u8) {
    let dir = scratch("tuning");
    let path = dir.join("tuning.json");
    let mut cfg = ServerConfig::for_tests(GpuConfig::tiny_test());
    cfg.workers = 1;
    cfg.tuner_sample = 128;
    cfg.tuning_path = Some(path.clone());

    // Populate: one probed decision lands on disk.
    let first = Server::start(cfg.clone());
    let h = first.register_graph("hub", graph());
    let clean = first
        .call(Request::new(h, Query::Bfs { src: None }))
        .unwrap();
    first.shutdown();
    assert!(path.exists(), "tuner must persist its table");

    corrupt(&path, op, pos, bit);

    // Restart over the damaged table: clean start, quarantine, re-probe,
    // and the same payload as before.
    let second = Server::start(cfg);
    let h = second.register_graph("hub", graph());
    let again = second
        .call(Request::new(h, Query::Bfs { src: None }))
        .unwrap();
    assert_eq!(
        again.data, clean.data,
        "rebuilt tuner serves the same answer"
    );
    assert!(
        second.snapshot().tuner_probes > 0,
        "damaged table must be discarded, not trusted"
    );
    second.shutdown();
    assert!(has_quarantine(&dir), "corrupt table must be quarantined");
    let _ = std::fs::remove_dir_all(&dir);
}

fn check_warmup_recovers(op: u8, pos: u32, bit: u8) {
    let dir = scratch("warmup");
    let path = dir.join("warmup.snapshot");
    let mut cfg = ServerConfig::for_tests(GpuConfig::tiny_test());
    cfg.workers = 1;
    cfg.warmup_path = Some(path.clone());

    // Populate the cache and persist it at shutdown.
    let first = Server::start(cfg.clone());
    let h = first.register_graph("hub", graph());
    let clean = first.call(pinned(h, Query::Bfs { src: Some(0) })).unwrap();
    first.call(pinned(h, Query::Cc)).unwrap();
    first.shutdown();
    assert!(path.exists(), "shutdown must write the warmup snapshot");

    corrupt(&path, op, pos, bit);

    // Restart: nothing loads from the damaged snapshot, the file is
    // quarantined, and a recomputed response is byte-identical.
    let second = Server::start(cfg);
    let h = second.register_graph("hub", graph());
    let snap = second.snapshot();
    assert_eq!(
        snap.resilience.warmup_loaded, 0,
        "a damaged snapshot must load zero entries"
    );
    let again = second.call(pinned(h, Query::Bfs { src: Some(0) })).unwrap();
    assert!(!again.cached, "nothing was warmed from the corrupt file");
    assert_eq!(again.data, clean.data, "recomputed payload is identical");
    assert_eq!(again.stats, clean.stats, "recomputed stats are identical");
    second.shutdown();
    assert!(has_quarantine(&dir), "corrupt snapshot must be quarantined");
    let _ = std::fs::remove_dir_all(&dir);
}

fn check_graph_cache_recovers(op: u8, pos: u32, bit: u8) {
    let dir = scratch("graphcache");
    let key = "recovery-hub";
    let built = maxwarp_graph::cached_or_build_in(&dir, key, graph);
    let want = csr_digest(&built);

    // Exactly one cache entry was published; corrupt it.
    let entry = std::fs::read_dir(&dir)
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|x| x == "csr"))
        .expect("cache entry published");
    corrupt(&entry, op, pos, bit);

    // The next lookup quarantines, rebuilds, and republishes.
    let rebuilt = maxwarp_graph::cached_or_build_in(&dir, key, graph);
    assert_eq!(csr_digest(&rebuilt), want, "rebuilt graph is identical");
    assert!(has_quarantine(&dir), "corrupt entry must be quarantined");

    // The republished entry is clean: a third lookup must not build.
    let hit = maxwarp_graph::cached_or_build_in(&dir, key, || {
        panic!("republished entry must hit, not rebuild")
    });
    assert_eq!(csr_digest(&hit), want);
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn tuning_table_survives_corruption(op in any::<u8>(), pos in any::<u32>(), bit in any::<u8>()) {
        check_tuning_recovers(op, pos, bit);
    }

    #[test]
    fn warmup_snapshot_survives_corruption(op in any::<u8>(), pos in any::<u32>(), bit in any::<u8>()) {
        check_warmup_recovers(op, pos, bit);
    }

    #[test]
    fn graph_cache_survives_corruption(op in any::<u8>(), pos in any::<u32>(), bit in any::<u8>()) {
        check_graph_cache_recovers(op, pos, bit);
    }
}
