//! End-to-end autotuner behavior through the server: persistence across
//! server instances, method pinning, and agreement with the Fig. 3 sweep.

use maxwarp::{method_table, ExecConfig, Method};
use maxwarp_graph::{hub_graph, Dataset, Scale};
use maxwarp_serve::{probe_methods, Algo, GraphEntry, Query, Request, Server, ServerConfig, Tuner};
use maxwarp_simt::GpuConfig;
use std::path::PathBuf;

fn temp_tuning_path(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("maxwarp-serve-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join("tuning.json")
}

/// A server that probed a `(graph, algo)` pair persists the decision; a
/// second server with the same tuning path serves the same method without
/// a single probe.
#[test]
fn tuning_table_persists_across_servers() {
    let path = temp_tuning_path("persist");
    let _ = std::fs::remove_file(&path);
    let g = hub_graph(400, 2, 60, 3, 13);

    let mut cfg = ServerConfig::for_tests(GpuConfig::tiny_test());
    cfg.workers = 1;
    cfg.tuner_sample = 256;
    cfg.tuning_path = Some(path.clone());

    let first = Server::start(cfg.clone());
    let h = first.register_graph("hub", g.clone());
    let cold = first
        .call(Request::new(h, Query::Bfs { src: None }))
        .unwrap();
    let snap = first.snapshot();
    assert!(snap.tuner_probes > 0, "first sight must probe");
    assert_eq!(snap.tuner_decisions, 1);
    first.shutdown();

    let second = Server::start(cfg);
    let h = second.register_graph("hub", g);
    let warm = second
        .call(Request::new(h, Query::Bfs { src: None }))
        .unwrap();
    let snap = second.snapshot();
    assert_eq!(snap.tuner_probes, 0, "restart must not re-probe");
    assert_eq!(warm.method, cold.method, "same decision from disk");
    second.shutdown();

    let _ = std::fs::remove_dir_all(path.parent().unwrap());
}

/// A config-level method pin overrides tuning entirely: the response
/// carries the pinned method and the tuner never runs.
#[test]
fn method_pin_bypasses_tuner() {
    let mut cfg = ServerConfig::for_tests(GpuConfig::tiny_test());
    cfg.workers = 1;
    cfg.method_pin = Some(Method::warp(8));
    let server = Server::start(cfg);
    let h = server.register_graph("hub", hub_graph(300, 1, 40, 3, 17));

    let resp = server
        .call(Request::new(h, Query::Bfs { src: None }))
        .unwrap();
    assert_eq!(resp.method, Method::warp(8));
    let snap = server.snapshot();
    assert_eq!(snap.tuner_probes, 0);
    assert_eq!(snap.tuner_decisions, 0);
    server.shutdown();
}

/// Acceptance check from the issue: for the Fig. 3 RMAT dataset on the
/// figure device, the tuner's BFS choice agrees with the sweep's
/// best-cycles method. Both sides run through `probe_methods` — the exact
/// code path `fig3` uses per cell — so agreement is exact, not
/// approximate. The tuner's candidate set additionally contains dynamic
/// and deferral variants the sweep doesn't measure, so the comparison is
/// over the shared (plain) methods, with the tuner allowed to do strictly
/// better on its extras.
#[test]
fn tuner_choice_matches_fig3_sweep_on_rmat() {
    let exec = ExecConfig::default();
    let gpu = GpuConfig::fermi_c2050();
    let entry = GraphEntry::new("RMAT", Dataset::Rmat.build(Scale::Tiny));

    // The fig3 side: sweep the K ladder, keep the best.
    let sweep = probe_methods(&gpu, &exec, &entry, Algo::Bfs, &method_table::k_sweep());
    let sweep: Vec<(Method, u64)> = sweep
        .into_iter()
        .map(|(m, r)| (m, r.expect("sweep probe failed")))
        .collect();
    let (fig3_best, fig3_cycles) = sweep
        .iter()
        .min_by_key(|(_, c)| *c)
        .copied()
        .expect("non-empty sweep");

    // The tuner side: full-graph probing (sample target larger than the
    // graph disables sampling), no pin, no persistence.
    let mut tuner = Tuner::new(None, u32::MAX, None);
    let choice = tuner.choose(&gpu, &exec, &entry, Algo::Bfs);
    let record = tuner.entry(entry.digest, Algo::Bfs).expect("probed");

    // Every method both sides measured must agree cycle-for-cycle.
    let mut shared = 0;
    for (m, sweep_cycles) in &sweep {
        if let Some((_, tuner_cycles)) = record.probes.iter().find(|(spec, _)| *spec == m.spec()) {
            assert_eq!(
                tuner_cycles,
                sweep_cycles,
                "{} measured differently by fig3 and the tuner",
                m.spec()
            );
            shared += 1;
        }
    }
    assert!(shared >= 5, "baseline + vw4..vw32 are in both sets");

    // The winner over the shared methods is the same method on both sides.
    let shared_best = sweep
        .iter()
        .filter(|(m, _)| record.probes.iter().any(|(spec, _)| *spec == m.spec()))
        .min_by_key(|(_, c)| *c)
        .map(|(m, _)| *m)
        .unwrap();
    let tuner_shared_best = record
        .probes
        .iter()
        .filter(|(spec, _)| sweep.iter().any(|(m, _)| m.spec() == *spec))
        .min_by_key(|(_, c)| *c)
        .map(|(spec, _)| Method::parse(spec).unwrap())
        .unwrap();
    assert_eq!(shared_best, tuner_shared_best);

    // And the tuner's overall choice is at least as fast as the fig3 best:
    // equal to it, or one of the technique variants beating it.
    let (_, chosen_cycles) = record
        .probes
        .iter()
        .find(|(spec, _)| *spec == choice.method.spec())
        .expect("winner is a recorded probe");
    assert!(
        *chosen_cycles <= fig3_cycles,
        "tuner chose {} ({chosen_cycles} cyc) but fig3's best is {} ({fig3_cycles} cyc)",
        choice.method.spec(),
        fig3_best.spec()
    );
    if matches!(choice.method, Method::Baseline) || sweep.iter().any(|(m, _)| *m == choice.method) {
        assert_eq!(
            choice.method, fig3_best,
            "a plain-ladder winner must be the fig3 best exactly"
        );
    }
}
