//! Property tests of the result cache's core contract: a cache hit is
//! byte-identical — payload *and* kernel stats — to the cold run it
//! replaces, and any change to the graph, the query parameters, or the
//! device configuration misses.

use maxwarp::Method;
use maxwarp_graph::Csr;
use maxwarp_serve::{Query, Request, Server, ServerConfig};
use maxwarp_simt::GpuConfig;
use proptest::prelude::*;

/// A small arbitrary digraph: a vertex count plus a non-empty edge list.
fn arb_graph() -> impl Strategy<Value = Csr> {
    (2u32..64).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 1..128)
            .prop_map(move |edges| Csr::from_edges(n, &edges))
    })
}

/// One of the always-supported methods, picked by index.
fn arb_method() -> impl Strategy<Value = Method> {
    (0usize..4).prop_map(|i| {
        [
            Method::Baseline,
            Method::warp(4),
            Method::warp(8),
            Method::warp(32),
        ][i]
    })
}

/// One-worker hermetic server so every case is deterministic and cheap.
fn test_server() -> Server {
    let mut cfg = ServerConfig::for_tests(GpuConfig::tiny_test());
    cfg.workers = 1;
    Server::start(cfg)
}

fn pinned(h: maxwarp_serve::GraphHandle, q: &Query, m: Method) -> Request {
    let mut r = Request::new(h, q.clone());
    r.method = Some(m);
    r
}

/// Hit ≡ cold run, for both BFS (u32 payload) and PageRank (f32 payload),
/// across methods; and a *fresh* server's cold run produces the same bytes
/// the first server cached.
fn check_hit_identical(g: Csr, method: Method, use_pagerank: bool, src_pick: u32, iters: u32) {
    let query = if use_pagerank {
        Query::Pagerank {
            iters,
            damping: 0.85,
        }
    } else {
        Query::Bfs {
            src: Some(src_pick % g.num_vertices()),
        }
    };

    let a = test_server();
    let ha = a.register_graph("g", g.clone());
    let cold = a.call(pinned(ha, &query, method)).unwrap();
    let warm = a.call(pinned(ha, &query, method)).unwrap();
    prop_assert!(!cold.cached);
    prop_assert!(warm.cached);
    prop_assert_eq!(&cold.data, &warm.data);
    prop_assert_eq!(&cold.stats, &warm.stats);
    prop_assert_eq!(cold.iterations, warm.iterations);

    // A different server instance, same graph + query + device: its cold
    // run must equal what server A's cache replays.
    let b = test_server();
    let hb = b.register_graph("g", g);
    let cold_b = b.call(pinned(hb, &query, method)).unwrap();
    prop_assert!(!cold_b.cached);
    prop_assert_eq!(&cold_b.data, &warm.data);
    prop_assert_eq!(&cold_b.stats, &warm.stats);

    a.shutdown();
    b.shutdown();
}

/// Changing any key component — query parameters, the algorithm, the
/// method, or the graph itself — must miss; only the exact key hits.
fn check_key_changes_miss(g: Csr, method: Method, src_pick: u32) {
    let n = g.num_vertices();
    let src = src_pick % n;
    let server = test_server();
    let h = server.register_graph("g", g.clone());
    let bfs = |src| Query::Bfs { src: Some(src) };

    let first = server.call(pinned(h, &bfs(src), method)).unwrap();
    prop_assert!(!first.cached);

    // Same key: hit.
    prop_assert!(server.call(pinned(h, &bfs(src), method)).unwrap().cached);

    // Different source parameter: miss.
    let other_src = (src + 1) % n;
    prop_assert!(
        !server
            .call(pinned(h, &bfs(other_src), method))
            .unwrap()
            .cached
    );

    // Different algorithm, same parameters: miss.
    let queue = Query::BfsQueue { src: Some(src) };
    prop_assert!(!server.call(pinned(h, &queue, method)).unwrap().cached);

    // Different method: miss.
    let other = if method == Method::warp(8) {
        Method::warp(16)
    } else {
        Method::warp(8)
    };
    prop_assert!(!server.call(pinned(h, &bfs(src), other)).unwrap().cached);

    // A mutated graph (one extra vertex shifts the digest): miss, even
    // though the query and method are identical.
    let edges: Vec<(u32, u32)> = g.edges().collect();
    let mutated = Csr::from_edges(n + 1, &edges);
    let hm = server.register_graph("g-mut", mutated);
    prop_assert!(!server.call(pinned(hm, &bfs(src), method)).unwrap().cached);

    server.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn hit_is_byte_identical_to_cold_run(
        g in arb_graph(),
        method in arb_method(),
        pr in 0u32..2,
        src_pick in any::<u32>(),
        iters in 1u32..4,
    ) {
        check_hit_identical(g, method, pr == 1, src_pick, iters);
    }

    #[test]
    fn key_changes_always_miss(
        g in arb_graph(),
        method in arb_method(),
        src_pick in any::<u32>(),
    ) {
        check_key_changes_miss(g, method, src_pick);
    }
}

/// The device fingerprint is the fourth key component: two servers that
/// differ only in `GpuConfig` compute different keys for the same request.
#[test]
fn device_config_separates_cache_keys() {
    let g = maxwarp_graph::hub_graph(64, 1, 16, 2, 7);
    let tiny = Server::start(ServerConfig::for_tests(GpuConfig::tiny_test()));
    let fermi = Server::start(ServerConfig::for_tests(GpuConfig::fermi_c2050()));
    let ht = tiny.register_graph("g", g.clone());
    let hf = fermi.register_graph("g", g);

    let req = Request::new(ht, Query::Bfs { src: Some(0) });
    let kt = tiny.cache_key(&req, Method::warp(8)).unwrap();
    let req_f = Request::new(hf, Query::Bfs { src: Some(0) });
    let kf = fermi.cache_key(&req_f, Method::warp(8)).unwrap();

    assert_eq!(kt.graph, kf.graph, "same graph digest");
    assert_eq!(kt.query, kf.query, "same query digest");
    assert_eq!(kt.method, kf.method);
    assert_ne!(kt.device, kf.device, "device fingerprint must differ");
    assert_ne!(kt, kf);

    tiny.shutdown();
    fermi.shutdown();
}
