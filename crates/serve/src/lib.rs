//! # maxwarp-serve — a batched graph-query service over the SIMT simulator
//!
//! The paper benchmarks one kernel at a time; this crate asks what the
//! production shape of those kernels looks like: a **multi-tenant query
//! service**. Clients register graphs, then submit `(graph, algorithm,
//! params)` requests. A pool of workers — each driving its own simulated
//! GPU — executes them, and three mechanisms keep the service fast and
//! predictable:
//!
//! * **Scheduler** ([`scheduler`]) — a bounded submission queue with
//!   structured backpressure ([`ServeError::QueueFull`]), per-request
//!   cycle deadlines enforced through the simulator's watchdog, and
//!   batching of same-graph requests so the device upload is amortized.
//! * **Result cache** ([`cache`]) — keyed by graph digest × query digest ×
//!   method × device fingerprint. Because every execution runs on a fresh
//!   device cloned from a per-graph template (identical memory layout),
//!   cache hits are *byte-identical* to the cold runs they replace — stats
//!   included.
//! * **Online autotuner** ([`autotune`]) — first sight of a `(graph,
//!   algorithm)` pair probes the candidate methods from
//!   [`maxwarp::method_table`] on an induced subgraph sample, persists the
//!   evidence to `results/tuning.json`, and serves the winner thereafter.
//!   `MAXWARP_METHOD` pins a method globally.
//!
//! A fourth layer — **resilience** ([`resilience`]) — keeps the service
//! standing when things break: supervised workers (panic-isolated, bounded
//! restarts with backoff, crash recovery of in-flight requests),
//! per-request retry/backoff/hedging, admission control (per-tenant token
//! buckets + priority shedding past a queue high-watermark), graceful
//! degradation (stale-while-revalidate cache serving and a per-`(graph,
//! algorithm)` circuit breaker routing to the CPU reference), and
//! crash-safe persistence (tuning table and cache-warmup snapshot framed
//! through [`maxwarp_graph::atomic`]). Every resilience policy is strictly
//! *around* execution: non-degraded responses are byte-identical with the
//! features on or off.
//!
//! A fifth layer — **sharding** — scales individual graphs across `N`
//! simulated devices: with `MAXWARP_SHARDS > 1`, BFS/SSSP/CC/PageRank
//! requests run on the [`maxwarp_shard`] multi-device BSP executor behind
//! a [`ShardedTemplate`] (partition + per-shard uploads paid once per
//! graph, fresh fleet cloned per request), workers pick work with
//! graph-affinity, and the cache's device fingerprint folds the partition
//! spec so sharded and single-device results never collide. Payloads stay
//! byte-identical to single-device by the `maxwarp-shard` identity
//! contract; per-request stats carry the merged multi-device record
//! including modeled interconnect cycles.
//!
//! ## Quick start
//!
//! ```
//! use maxwarp_serve::{Query, Request, Server, ServerConfig};
//! use maxwarp_graph::{Dataset, Scale};
//! use maxwarp_simt::GpuConfig;
//!
//! let server = Server::start(ServerConfig::for_tests(GpuConfig::tiny_test()));
//! let g = server.register_graph("rmat", Dataset::Rmat.build(Scale::Tiny));
//!
//! let cold = server.call(Request::new(g, Query::Bfs { src: None })).unwrap();
//! let warm = server.call(Request::new(g, Query::Bfs { src: None })).unwrap();
//! assert!(!cold.cached && warm.cached);
//! assert_eq!(cold.data, warm.data); // byte-identical payload…
//! assert_eq!(cold.stats, warm.stats); // …and byte-identical stats.
//! server.shutdown();
//! ```
//!
//! ## Environment knobs
//!
//! | variable | effect |
//! |---|---|
//! | `MAXWARP_METHOD` | pin every request's method (`baseline`, `vw8`, `vw32+dyn`, `vw8+defer:512`, …) |
//! | `MAXWARP_TUNING` | tuning-table path (default `results/tuning.json`; `0`/`off` disables) |
//! | `MAXWARP_QUEUE_DEPTH` | submission-queue capacity (default 64) |
//! | `MAXWARP_CACHE_CAP` | result-cache entries (default 256; `0` disables) |
//! | `MAXWARP_GRAPH_CACHE` | generated-graph disk cache dir (default `target/graph-cache`; `0`/`off` disables) |
//! | `MAXWARP_OBS` | `0`/`off` disables the per-server metrics registry (default on) |
//! | `MAXWARP_OBS_TRACE` | `1` enables per-request span tracing (Chrome-trace export) |
//! | `MAXWARP_OBS_SPANS` | span buffer capacity (default 65536) |
//! | `MAXWARP_RETRY` | execution attempts per request (default 1 = retries off) |
//! | `MAXWARP_SHED` | queue high-watermark fraction for priority shedding (e.g. `0.75`; `0`/`off` keeps bare `QueueFull`) |
//! | `MAXWARP_STALE_TTL` | stale-while-revalidate TTL in ms (`0`/`off` disables) |
//! | `MAXWARP_BREAKER` | circuit-breaker trip threshold in consecutive faults (`0`/`off` disables) |
//! | `MAXWARP_WARMUP` | cache-warmup snapshot path (unset/`0`/`off` disables) |
//! | `MAXWARP_SHARDS` | shard devices per graph (default 1 = single-device; >1 routes BFS/SSSP/CC/PageRank to the multi-device BSP executor) |
//! | `MAXWARP_CUT` | vertex-to-shard cut strategy (`block`/`degree`/`bfs`) |
//! | `MAXWARP_LINK_BW` | interconnect bandwidth in bytes/cycle (default 16) |
//! | `MAXWARP_LINK_LAT` | interconnect per-round latency in cycles (default 600) |
//! | `MAXWARP_LINK_FANOUT` | shard devices sharing one link (default 2) |
//!
//! ## Observability
//!
//! Every [`Server`] owns a [`maxwarp_obs::Registry`] with the full
//! scheduler/cache/tuner series ([`metrics::ServeMetrics`]) and a
//! [`maxwarp_obs::Tracer`] that follows each request end-to-end
//! (`request` → `queue_wait`/`cache_lookup`/`template`/`execute`/
//! `cache_insert`/`reply`). Export via [`Server::prometheus_text`],
//! [`Server::metrics_json`], and [`Server::trace_json`]. All of it is a
//! pure observer: `KernelStats` and payloads are byte-identical with
//! observation on or off (`tests/obs_identity.rs`).

pub mod autotune;
pub mod cache;
pub mod exec;
pub mod json;
pub mod metrics;
pub mod request;
pub mod resilience;
pub mod scheduler;
pub mod stats;
pub mod store;

pub use autotune::{probe_methods, probe_one, Choice, ChoiceSource, TuneEntry, Tuner};
pub use cache::{
    gpu_fingerprint, sharded_fingerprint, CacheKey, CacheStats, CachedResult, Freshness,
    ResultCache,
};
pub use exec::{
    execute, execute_labeled, execute_sharded, sharded_supported, DeviceTemplate, ShardedTemplate,
};
pub use metrics::ServeMetrics;
pub use request::{
    Algo, Priority, Query, Request, Response, ResponseSource, ResultData, ServeError,
};
pub use resilience::{
    Backoff, BreakerConfig, BreakerState, ChaosConfig, CircuitBreaker, CrashPolicy,
    ResilienceConfig, RestartPolicy, RetryPolicy, ShedConfig, ShedReason, TokenBucket,
};
pub use scheduler::{
    ResilienceSnapshot, Server, ServerConfig, ServerSnapshot, Ticket, WorkerHealth,
};
pub use stats::{LatencyHistogram, LatencySummary};
pub use store::{GraphEntry, GraphHandle, GraphStore};
