//! The multi-tenant graph registry.
//!
//! Graphs are registered once and shared by every request that names their
//! handle. Registration precomputes everything queries may need — content
//! digest, seeded edge weights, the degree-sorted source list — so the hot
//! path never mutates an entry (the reverse graph, which only
//! direction-optimizing BFS wants, is built lazily but memoized behind a
//! `OnceLock`).

use maxwarp_graph::{random_weights, Csr};
use std::sync::{Arc, OnceLock, RwLock};

/// Opaque handle to a registered graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct GraphHandle(pub(crate) u32);

/// A registered graph and its derived data.
pub struct GraphEntry {
    /// Human name given at registration.
    pub name: String,
    /// The graph itself.
    pub csr: Csr,
    /// Stable content digest — cache and tuning-table key component.
    pub digest: u64,
    /// Deterministic edge weights (seeded from the digest) for SSSP/SpMV.
    pub weights: Vec<u32>,
    /// Vertex ids sorted by descending degree (ties by ascending id):
    /// `by_degree[0]` is the default BFS source, prefixes are the default
    /// betweenness / MS-BFS source sets.
    pub by_degree: Vec<u32>,
    reverse: OnceLock<Csr>,
}

impl GraphEntry {
    /// Build an entry (outside any store — the tuner uses free-standing
    /// entries for sampled subgraphs).
    pub fn new(name: impl Into<String>, csr: Csr) -> GraphEntry {
        let digest = csr.digest();
        let weights = random_weights_or_empty(&csr, digest);
        let mut by_degree: Vec<u32> = (0..csr.num_vertices()).collect();
        by_degree.sort_by_key(|&v| (std::cmp::Reverse(csr.degree(v)), v));
        GraphEntry {
            name: name.into(),
            csr,
            digest,
            weights,
            by_degree,
            reverse: OnceLock::new(),
        }
    }

    /// Default source: the highest-degree vertex (always inside the giant
    /// component on the paper's graph classes).
    pub fn source(&self) -> u32 {
        self.by_degree.first().copied().unwrap_or(0)
    }

    /// The first `k` highest-degree vertices.
    pub fn top_sources(&self, k: u32) -> &[u32] {
        &self.by_degree[..(k as usize).min(self.by_degree.len())]
    }

    /// The transposed graph, built on first use.
    pub fn reverse(&self) -> &Csr {
        self.reverse.get_or_init(|| self.csr.reverse())
    }
}

fn random_weights_or_empty(g: &Csr, seed: u64) -> Vec<u32> {
    if g.num_edges() == 0 {
        Vec::new()
    } else {
        random_weights(g, 15, seed)
    }
}

/// Registry of graphs, shared across worker threads.
#[derive(Default)]
pub struct GraphStore {
    entries: RwLock<Vec<Arc<GraphEntry>>>,
}

impl GraphStore {
    /// An empty store.
    pub fn new() -> GraphStore {
        GraphStore::default()
    }

    /// Register a graph, returning its handle. Registering the same graph
    /// twice yields two handles over the same content digest — cache and
    /// tuner state are keyed by digest, so the duplicates share results.
    pub fn register(&self, name: impl Into<String>, csr: Csr) -> GraphHandle {
        let mut entries = match self.entries.write() {
            Ok(g) => g,
            Err(_) => panic!("graph store poisoned"),
        };
        entries.push(Arc::new(GraphEntry::new(name, csr)));
        GraphHandle((entries.len() - 1) as u32)
    }

    /// Look a handle up.
    pub fn get(&self, h: GraphHandle) -> Option<Arc<GraphEntry>> {
        match self.entries.read() {
            Ok(g) => g.get(h.0 as usize).cloned(),
            Err(_) => panic!("graph store poisoned"),
        }
    }

    /// Number of registered graphs.
    pub fn len(&self) -> usize {
        match self.entries.read() {
            Ok(g) => g.len(),
            Err(_) => panic!("graph store poisoned"),
        }
    }

    /// True when no graph has been registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All handles in registration order.
    pub fn handles(&self) -> Vec<GraphHandle> {
        (0..self.len() as u32).map(GraphHandle).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxwarp_graph::hub_graph;

    #[test]
    fn register_and_lookup() {
        let store = GraphStore::new();
        assert!(store.is_empty());
        let g = hub_graph(200, 2, 50, 2, 3);
        let h = store.register("hub", g.clone());
        let entry = store.get(h).unwrap();
        assert_eq!(entry.name, "hub");
        assert_eq!(entry.digest, g.digest());
        assert_eq!(entry.weights.len() as u64, g.num_edges());
        assert!(store.get(GraphHandle(7)).is_none());
        assert_eq!(store.handles(), vec![h]);
    }

    #[test]
    fn source_is_max_degree_and_top_sources_sorted() {
        let g = hub_graph(300, 3, 80, 2, 5);
        let entry = GraphEntry::new("g", g.clone());
        assert_eq!(g.degree(entry.source()), g.max_degree());
        let top = entry.top_sources(4);
        assert_eq!(top.len(), 4);
        for w in top.windows(2) {
            assert!(
                g.degree(w[0]) > g.degree(w[1])
                    || (g.degree(w[0]) == g.degree(w[1]) && w[0] < w[1])
            );
        }
        // Request for more sources than vertices is clamped.
        assert_eq!(entry.top_sources(10_000).len(), 300);
    }

    #[test]
    fn reverse_is_memoized_transpose() {
        let g = Csr::from_edges(3, &[(0, 1), (1, 2)]);
        let entry = GraphEntry::new("g", g.clone());
        let r1 = entry.reverse() as *const Csr;
        let r2 = entry.reverse() as *const Csr;
        assert_eq!(r1, r2, "built once");
        assert_eq!(entry.reverse(), &g.reverse());
    }

    #[test]
    fn weights_are_digest_seeded_and_stable() {
        let g = hub_graph(100, 1, 30, 2, 9);
        let a = GraphEntry::new("a", g.clone());
        let b = GraphEntry::new("b", g);
        assert_eq!(a.weights, b.weights, "same content, same weights");
    }
}
