//! The online method autotuner.
//!
//! The paper's central result is that the best execution strategy depends on
//! the graph: hub-heavy graphs want large virtual warps (and outlier
//! deferral), near-regular graphs want small ones. The service therefore
//! does not hard-code a method. On first sight of a `(graph, algorithm)`
//! pair it probes the candidate methods from [`maxwarp::method_table`] on an
//! induced subgraph sample, records every probe's cycle count in a
//! persistent tuning table, and serves all subsequent requests with the
//! winner. The table survives restarts (`results/tuning.json` by default) so
//! a warm server never re-probes.
//!
//! `MAXWARP_METHOD` pins a method for every request (when the algorithm
//! supports it), bypassing both table and probes — the escape hatch for
//! experiments and regression hunts.

use crate::exec::{execute, DeviceTemplate};
use crate::json::{self, Value};
use crate::request::{Algo, Query, ServeError};
use crate::store::GraphEntry;
use maxwarp::{method_table, ExecConfig, Method};
use maxwarp_graph::{atomic, induced_sample, Csr};
use maxwarp_obs::Counter;
use maxwarp_simt::GpuConfig;
use std::collections::HashMap;
use std::path::{Path, PathBuf};

/// Default outlier-deferral threshold: well above the mean degree so only
/// the heavy tail defers (mirrors the bench suite's choice).
pub fn default_defer_threshold(g: &Csr) -> u32 {
    ((g.mean_degree() * 16.0) as u32).max(64)
}

/// Probe each method with the algorithm's canonical query on a fresh device
/// per method, returning simulated cycles.
///
/// The device image is built once and cloned per probe, which makes every
/// probe byte-identical to a standalone cold run of that method — the same
/// property the result cache relies on. Failed probes (watchdog, faults)
/// return the error instead of a count.
pub fn probe_methods(
    cfg: &GpuConfig,
    exec: &ExecConfig,
    entry: &GraphEntry,
    algo: Algo,
    methods: &[Method],
) -> Vec<(Method, Result<u64, ServeError>)> {
    let template = DeviceTemplate::build(cfg, entry, algo.needs_reverse());
    let query = Query::canonical(algo);
    methods
        .iter()
        .map(|&m| {
            let outcome =
                execute(cfg, exec, entry, &template, &query, m, None).map(|(_, run)| run.cycles());
            (m, outcome)
        })
        .collect()
}

/// [`probe_methods`] for a single method — the figure experiments use this
/// as their per-cell measurement so that the bench sweeps and the tuner's
/// probes are the same code path (and therefore the same cycle counts).
pub fn probe_one(
    cfg: &GpuConfig,
    exec: &ExecConfig,
    entry: &GraphEntry,
    algo: Algo,
    method: Method,
) -> Result<u64, ServeError> {
    let Some((_, result)) = probe_methods(cfg, exec, entry, algo, &[method]).pop() else {
        unreachable!("one probe in, one result out");
    };
    result
}

/// One tuning decision: the winning method and the evidence behind it.
#[derive(Clone, Debug, PartialEq)]
pub struct TuneEntry {
    /// Winning method spec (`Method::spec()`).
    pub winner: String,
    /// Every successful probe as `(method spec, cycles)`, in probe order.
    pub probes: Vec<(String, u64)>,
    /// Vertices in the probed sample.
    pub sample_n: u32,
    /// Edges in the probed sample.
    pub sample_m: u64,
}

/// Where a [`Tuner::choose`] decision came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChoiceSource {
    /// `MAXWARP_METHOD` (or an explicit pin) forced it.
    Pinned,
    /// Found in the tuning table — no probing.
    Table,
    /// Probed just now; the table was updated.
    Probed,
    /// Every probe failed; fell back to the baseline without recording.
    Fallback,
}

/// A resolved method plus its provenance.
#[derive(Clone, Copy, Debug)]
pub struct Choice {
    pub method: Method,
    pub source: ChoiceSource,
}

/// The tuning table plus probing machinery.
pub struct Tuner {
    table: HashMap<(u64, String), TuneEntry>,
    path: Option<PathBuf>,
    sample_target: u32,
    pin: Option<Method>,
    probes_run: Counter,
}

impl Tuner {
    /// Build a tuner. `path` is the persistent table (`None` disables
    /// persistence); an existing file is loaded, an unreadable one is
    /// ignored (the tuner re-probes — a torn write costs time, not
    /// correctness). `sample_target` bounds probe cost: graphs larger than
    /// this are probed through an induced subgraph of that many vertices.
    pub fn new(path: Option<PathBuf>, sample_target: u32, pin: Option<Method>) -> Tuner {
        let mut t = Tuner {
            table: HashMap::new(),
            path,
            sample_target,
            pin,
            probes_run: Counter::detached(),
        };
        if let Some(p) = t.path.clone() {
            t.load(&p);
        }
        t
    }

    /// The pinned method, if any.
    pub fn pin(&self) -> Option<Method> {
        self.pin
    }

    /// Number of probe executions performed by this tuner instance.
    pub fn probes_run(&self) -> u64 {
        self.probes_run.get()
    }

    /// Route probe accounting through a registry counter (the server
    /// passes its `serve_tuner_probes_total` series).
    pub fn set_probe_counter(&mut self, c: Counter) {
        self.probes_run = c;
    }

    /// Number of `(graph, algo)` decisions in the table.
    pub fn decisions(&self) -> usize {
        self.table.len()
    }

    /// Look up a recorded decision.
    pub fn entry(&self, graph_digest: u64, algo: Algo) -> Option<&TuneEntry> {
        self.table.get(&(graph_digest, algo.label().to_string()))
    }

    /// Resolve the method for `(entry, algo)`: pin, then table, then probe.
    pub fn choose(
        &mut self,
        cfg: &GpuConfig,
        exec: &ExecConfig,
        entry: &GraphEntry,
        algo: Algo,
    ) -> Choice {
        if let Some(p) = self.pin {
            if algo.supports(p) {
                return Choice {
                    method: p,
                    source: ChoiceSource::Pinned,
                };
            }
            // A pin the algorithm can't run falls through to tuning rather
            // than failing every request.
        }
        let key = (entry.digest, algo.label().to_string());
        if let Some(e) = self.table.get(&key) {
            if let Some(m) = Method::parse(&e.winner) {
                if algo.supports(m) {
                    return Choice {
                        method: m,
                        source: ChoiceSource::Table,
                    };
                }
            }
            // Corrupt or incompatible record: drop it and re-probe.
            self.table.remove(&key);
        }
        self.probe_and_record(cfg, exec, entry, algo)
    }

    fn probe_and_record(
        &mut self,
        cfg: &GpuConfig,
        exec: &ExecConfig,
        entry: &GraphEntry,
        algo: Algo,
    ) -> Choice {
        // Deterministic sample: seeded by graph content, so every server
        // instance probes the same subgraph and reaches the same winner.
        let (sample, _ids) = induced_sample(&entry.csr, self.sample_target, entry.digest);
        let sample_entry = if sample.num_vertices() == entry.csr.num_vertices() {
            None // probe the graph itself, skip rebuilding derived data
        } else {
            Some(GraphEntry::new(format!("{}#sample", entry.name), sample))
        };
        let probe_entry = sample_entry.as_ref().unwrap_or(entry);

        let threshold = default_defer_threshold(&probe_entry.csr);
        let candidates: Vec<Method> = method_table::candidates(threshold)
            .into_iter()
            .filter(|m| algo.supports(*m))
            .collect();
        let results = probe_methods(cfg, exec, probe_entry, algo, &candidates);
        self.probes_run.add(results.len() as u64);

        let probes: Vec<(String, u64)> = results
            .iter()
            .filter_map(|(m, r)| r.as_ref().ok().map(|&c| (m.spec(), c)))
            .collect();
        // Min cycles; ties break to the earlier (simpler) candidate.
        let winner = probes
            .iter()
            .min_by_key(|(_, c)| *c)
            .map(|(spec, _)| spec.clone());

        match winner {
            None => Choice {
                method: Method::Baseline,
                source: ChoiceSource::Fallback,
            },
            Some(spec) => {
                let Some(method) = Method::parse(&spec) else {
                    unreachable!("winner specs come from Method::spec() and round-trip");
                };
                self.table.insert(
                    (entry.digest, algo.label().to_string()),
                    TuneEntry {
                        winner: spec,
                        probes,
                        sample_n: probe_entry.csr.num_vertices(),
                        sample_m: probe_entry.csr.num_edges(),
                    },
                );
                self.persist();
                Choice {
                    method,
                    source: ChoiceSource::Probed,
                }
            }
        }
    }

    /// The table as a JSON document (what gets persisted).
    pub fn to_json(&self) -> Value {
        let mut keys: Vec<&(u64, String)> = self.table.keys().collect();
        keys.sort();
        let entries: Vec<Value> = keys
            .into_iter()
            .map(|k| {
                let e = &self.table[k];
                json::obj(vec![
                    ("graph", json::hex(k.0)),
                    ("algo", json::s(k.1.clone())),
                    ("winner", json::s(e.winner.clone())),
                    ("sample_n", json::n(e.sample_n)),
                    ("sample_m", json::n(e.sample_m as f64)),
                    (
                        "probes",
                        Value::Arr(
                            e.probes
                                .iter()
                                .map(|(spec, cycles)| {
                                    json::obj(vec![
                                        ("method", json::s(spec.clone())),
                                        ("cycles", json::n(*cycles as f64)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        json::obj(vec![
            ("version", json::n(1u32)),
            ("entries", Value::Arr(entries)),
        ])
    }

    fn persist(&self) {
        let Some(path) = &self.path else { return };
        // Crash-safe publish through the checksummed atomic store: a
        // concurrent reader sees the old table or the new one, never a torn
        // file, and a torn/bit-flipped file is detected (and quarantined)
        // at load instead of being parsed as garbage.
        if let Err(e) = atomic::write(path, self.to_json().to_json().as_bytes()) {
            eprintln!("[serve] tuning table write failed: {e}");
        }
    }

    fn load(&mut self, path: &Path) {
        let payload = match atomic::read_or_quarantine(path) {
            atomic::Recovered::Ok(p) => p,
            atomic::Recovered::Missing => return,
            atomic::Recovered::Quarantined(dst, msg) => {
                eprintln!(
                    "[serve] tuning table {} corrupt ({msg}); quarantined to {dst:?}, re-probing",
                    path.display()
                );
                return;
            }
        };
        let Ok(text) = String::from_utf8(payload) else {
            eprintln!("[serve] tuning table {} not utf-8", path.display());
            return;
        };
        let Ok(doc) = json::parse(&text) else {
            eprintln!(
                "[serve] ignoring unparseable tuning table {}",
                path.display()
            );
            return;
        };
        if doc.get("version").and_then(Value::as_u64) != Some(1) {
            eprintln!(
                "[serve] ignoring tuning table {} (unknown version)",
                path.display()
            );
            return;
        }
        let Some(entries) = doc.get("entries").and_then(Value::as_arr) else {
            return;
        };
        for e in entries {
            let (Some(graph), Some(algo), Some(winner)) = (
                e.get("graph").and_then(json::from_hex),
                e.get("algo").and_then(Value::as_str),
                e.get("winner").and_then(Value::as_str),
            ) else {
                continue;
            };
            let probes = e
                .get("probes")
                .and_then(Value::as_arr)
                .map(|ps| {
                    ps.iter()
                        .filter_map(|p| {
                            Some((
                                p.get("method")?.as_str()?.to_string(),
                                p.get("cycles")?.as_u64()?,
                            ))
                        })
                        .collect()
                })
                .unwrap_or_default();
            self.table.insert(
                (graph, algo.to_string()),
                TuneEntry {
                    winner: winner.to_string(),
                    probes,
                    sample_n: e.get("sample_n").and_then(Value::as_u64).unwrap_or(0) as u32,
                    sample_m: e.get("sample_m").and_then(Value::as_u64).unwrap_or(0),
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxwarp_graph::hub_graph;

    fn entry() -> GraphEntry {
        GraphEntry::new("hub", hub_graph(500, 2, 80, 3, 21))
    }

    fn cfg() -> GpuConfig {
        GpuConfig::tiny_test()
    }

    #[test]
    fn choose_probes_once_then_serves_from_table() {
        let e = entry();
        let exec = ExecConfig::default();
        let mut t = Tuner::new(None, 256, None);
        let first = t.choose(&cfg(), &exec, &e, Algo::Bfs);
        assert_eq!(first.source, ChoiceSource::Probed);
        let probes_after_first = t.probes_run();
        assert!(probes_after_first > 0);

        let second = t.choose(&cfg(), &exec, &e, Algo::Bfs);
        assert_eq!(second.source, ChoiceSource::Table);
        assert_eq!(second.method, first.method);
        assert_eq!(t.probes_run(), probes_after_first, "no re-probing");
    }

    #[test]
    fn same_seed_same_winner() {
        let e1 = entry();
        let e2 = entry();
        let exec = ExecConfig::default();
        let mut t1 = Tuner::new(None, 256, None);
        let mut t2 = Tuner::new(None, 256, None);
        let c1 = t1.choose(&cfg(), &exec, &e1, Algo::Bfs);
        let c2 = t2.choose(&cfg(), &exec, &e2, Algo::Bfs);
        assert_eq!(c1.method, c2.method, "deterministic tuning");
        assert_eq!(
            t1.entry(e1.digest, Algo::Bfs),
            t2.entry(e2.digest, Algo::Bfs),
            "identical evidence, not just identical winners"
        );
    }

    #[test]
    fn pin_bypasses_probing_unless_unsupported() {
        let e = entry();
        let exec = ExecConfig::default();
        let pin = Method::parse("vw8+defer:64").unwrap();
        let mut t = Tuner::new(None, 256, Some(pin));
        let c = t.choose(&cfg(), &exec, &e, Algo::Bfs);
        assert_eq!(c.source, ChoiceSource::Pinned);
        assert_eq!(c.method, pin);
        assert_eq!(t.probes_run(), 0);
        // Triangles can't defer: the pin falls through to tuning.
        let c = t.choose(&cfg(), &exec, &e, Algo::Triangles);
        assert_eq!(c.source, ChoiceSource::Probed);
        assert!(Algo::Triangles.supports(c.method));
    }

    #[test]
    fn table_round_trips_through_disk() {
        let dir = std::env::temp_dir().join(format!("maxwarp-tune-{}", std::process::id()));
        let path = dir.join("tuning.json");
        let _ = std::fs::remove_file(&path);
        let e = entry();
        let exec = ExecConfig::default();

        let mut warm = Tuner::new(Some(path.clone()), 256, None);
        let c = warm.choose(&cfg(), &exec, &e, Algo::Pagerank);
        assert_eq!(c.source, ChoiceSource::Probed);

        // A new tuner instance loads the decision instead of re-probing.
        let mut reloaded = Tuner::new(Some(path.clone()), 256, None);
        let c2 = reloaded.choose(&cfg(), &exec, &e, Algo::Pagerank);
        assert_eq!(c2.source, ChoiceSource::Table);
        assert_eq!(c2.method, c.method);
        assert_eq!(reloaded.probes_run(), 0);

        // Corruption degrades to re-probing, not a crash.
        std::fs::write(&path, "{ truncated").unwrap();
        let mut corrupt = Tuner::new(Some(path.clone()), 256, None);
        let c3 = corrupt.choose(&cfg(), &exec, &e, Algo::Pagerank);
        assert_eq!(c3.source, ChoiceSource::Probed);
        assert_eq!(c3.method, c.method);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn candidates_respect_capabilities() {
        let e = entry();
        let exec = ExecConfig::default();
        let mut t = Tuner::new(None, 128, None);
        // SpMV: no dynamic, no defer — the probe set must still be nonempty
        // and the winner legal.
        let c = t.choose(&cfg(), &exec, &e, Algo::Spmv);
        assert!(Algo::Spmv.supports(c.method));
        let rec = t.entry(e.digest, Algo::Spmv).unwrap();
        assert!(!rec.probes.is_empty());
        for (spec, _) in &rec.probes {
            assert!(Algo::Spmv.supports(Method::parse(spec).unwrap()));
        }
    }
}
