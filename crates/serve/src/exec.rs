//! Request execution against device templates.
//!
//! The cost the scheduler amortizes by batching is the *upload*: building the
//! device image of a graph (CSR arrays + weights, plus the transpose for
//! direction-optimizing BFS). A [`DeviceTemplate`] is that image, built once
//! per `(graph, reverse?)` pair; each request then runs on a **fresh** `Gpu`
//! whose memory is a clone of the template.
//!
//! The fresh-device-per-request rule is what makes the rest of the system
//! sound:
//!
//! * **Cache correctness** — allocations are segment-aligned and the L2 set
//!   index depends on absolute addresses, so cycle counts are only
//!   reproducible when the memory layout is identical. Cloning the template
//!   gives every request the exact layout a cold standalone run would see,
//!   which is why a cache hit can legally claim byte-identical stats.
//! * **Per-request deadlines** — the watchdog's cycle budget is cumulative
//!   per device; a fresh device scopes it to one request.

use crate::request::{Algo, Query, ResultData, ServeError};
use crate::store::GraphEntry;
use maxwarp::{
    run_betweenness, run_bfs, run_bfs_hybrid, run_bfs_queue, run_cc, run_coloring, run_kcore,
    run_msbfs, run_pagerank, run_spmv, run_sssp, run_triangles, AlgoRun, DeviceGraph, ExecConfig,
    GpuHybridConfig, Method,
};
use maxwarp_graph::Orientation;
use maxwarp_obs::Registry;
use maxwarp_shard::{
    run_bfs_sharded, run_cc_sharded, run_pagerank_sharded, run_sssp_sharded, LinkConfig,
    MultiDevice, Partition, PartitionSpec, ShardDevice,
};
use maxwarp_simt::{DeviceMem, Gpu, GpuConfig};

/// A graph uploaded to a device once, cloned per request.
pub struct DeviceTemplate {
    /// Device memory image after the upload(s).
    mem: DeviceMem,
    /// The forward graph (weights always uploaded — SSSP/SpMV need them,
    /// the rest ignore them).
    dg: DeviceGraph,
    /// The transposed graph, present when built with `needs_reverse`.
    rev: Option<DeviceGraph>,
}

impl DeviceTemplate {
    /// Upload `entry` (and its transpose if `needs_reverse`) on a fresh
    /// device built from `cfg`.
    pub fn build(cfg: &GpuConfig, entry: &GraphEntry, needs_reverse: bool) -> DeviceTemplate {
        let mut gpu = Gpu::new(cfg.clone());
        let dg = DeviceGraph::upload_weighted(&mut gpu, &entry.csr, &entry.weights);
        let rev = needs_reverse.then(|| DeviceGraph::upload(&mut gpu, entry.reverse()));
        DeviceTemplate {
            mem: gpu.mem.clone(),
            dg,
            rev,
        }
    }

    /// True if this template can serve `algo` (hybrid BFS needs the
    /// transpose).
    pub fn covers(&self, algo: Algo) -> bool {
        !algo.needs_reverse() || self.rev.is_some()
    }
}

/// A graph partitioned and uploaded across `N` shard devices once, cloned
/// into a fresh fleet per request.
///
/// The single-device fresh-`Gpu`-per-request rule applies per shard: each
/// request reconstructs every shard device from the template's memory
/// image, so allocation offsets — and therefore cycle counts — match a
/// cold sharded run exactly, keeping cache hits byte-identical.
pub struct ShardedTemplate {
    /// The edge-cut partition (host side, immutable).
    part: Partition,
    /// Per-shard device memory image after the local-graph upload.
    mems: Vec<DeviceMem>,
    /// Per-shard resident local graphs.
    dgs: Vec<DeviceGraph>,
}

impl ShardedTemplate {
    /// Partition `entry` per `spec` and upload each shard's local graph
    /// (always weighted — SSSP needs weights, the rest ignore them).
    pub fn build(cfg: &GpuConfig, entry: &GraphEntry, spec: &PartitionSpec) -> ShardedTemplate {
        let weights = (!entry.weights.is_empty()).then_some(entry.weights.as_slice());
        let part = Partition::new(&entry.csr, weights, spec);
        let md = MultiDevice::upload(cfg, part);
        let MultiDevice { part, devices } = md;
        let (mems, dgs) = devices
            .into_iter()
            .map(|d| (d.gpu.mem.clone(), d.dg))
            .unzip();
        ShardedTemplate { part, mems, dgs }
    }

    /// Shard count.
    pub fn num_shards(&self) -> u32 {
        self.mems.len() as u32
    }

    /// A fresh fleet cloned from the template images. `cfg` may differ
    /// from the build config only in observers/watchdog (the request
    /// deadline is composed into it).
    fn fleet(&self, cfg: &GpuConfig) -> MultiDevice {
        let devices = self
            .mems
            .iter()
            .zip(&self.dgs)
            .map(|(mem, dg)| {
                let mut gpu = Gpu::new(cfg.clone());
                gpu.mem = mem.clone();
                ShardDevice { gpu, dg: *dg }
            })
            .collect();
        MultiDevice {
            part: self.part.clone(),
            devices,
        }
    }
}

/// Whether the sharded BSP executor implements `algo`. The rest route to
/// the single-device path even on a sharded server.
pub fn sharded_supported(algo: Algo) -> bool {
    matches!(algo, Algo::Bfs | Algo::Sssp | Algo::Cc | Algo::Pagerank)
}

/// Resolve a query's source vertex, validating explicit ones.
fn resolve_src(entry: &GraphEntry, src: Option<u32>) -> Result<u32, ServeError> {
    let n = entry.csr.num_vertices();
    if n == 0 {
        return Err(ServeError::BadRequest("graph has no vertices".into()));
    }
    match src {
        None => Ok(entry.source()),
        Some(s) if s < n => Ok(s),
        Some(s) => Err(ServeError::BadRequest(format!(
            "source {s} out of range (n = {n})"
        ))),
    }
}

fn resolve_sources(entry: &GraphEntry, k: u32, max: u32) -> Result<Vec<u32>, ServeError> {
    if k == 0 {
        return Err(ServeError::BadRequest("num_sources must be >= 1".into()));
    }
    if k > max {
        return Err(ServeError::BadRequest(format!(
            "num_sources {k} exceeds limit {max}"
        )));
    }
    let top = entry.top_sources(k);
    if top.is_empty() {
        return Err(ServeError::BadRequest("graph has no vertices".into()));
    }
    Ok(top.to_vec())
}

/// Run one query on a fresh device cloned from `template`.
///
/// `deadline_cycles` is enforced through the device watchdog, composed (by
/// `min`) with any budget the config or environment already set.
pub fn execute(
    cfg: &GpuConfig,
    exec: &ExecConfig,
    entry: &GraphEntry,
    template: &DeviceTemplate,
    query: &Query,
    method: Method,
    deadline_cycles: Option<u64>,
) -> Result<(ResultData, AlgoRun), ServeError> {
    execute_labeled(
        cfg,
        exec,
        entry,
        template,
        query,
        method,
        deadline_cycles,
        None,
    )
}

/// [`execute`] with an optional profile-context label. When the device is
/// profiling, the label (the scheduler passes `req-<span> <algo> <method>`)
/// is stamped into the profiler's context, so the per-launch timeline
/// carries the request's span id — the correlation key between the serve
/// tracer's Chrome-trace export and the profiler's.
#[allow(clippy::too_many_arguments)]
pub fn execute_labeled(
    cfg: &GpuConfig,
    exec: &ExecConfig,
    entry: &GraphEntry,
    template: &DeviceTemplate,
    query: &Query,
    method: Method,
    deadline_cycles: Option<u64>,
    trace_label: Option<&str>,
) -> Result<(ResultData, AlgoRun), ServeError> {
    let algo = query.algo();
    if !algo.supports(method) {
        return Err(ServeError::Unsupported {
            algo,
            method: method.spec(),
        });
    }
    assert!(template.covers(algo), "scheduler built the wrong template");

    let mut gpu = Gpu::new(cfg.clone());
    if let Some(label) = trace_label {
        gpu.set_profile_context(label);
    }
    // Compose the per-request deadline with config/env budgets: tightest wins.
    gpu.cfg.watchdog.max_cycles = match (gpu.cfg.watchdog.max_cycles, deadline_cycles) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, b) => a.or(b),
    };

    // Triangle counting re-orients the graph on the host and uploads its own
    // forward graph — it runs templateless on the fresh device. Everything
    // else starts from the template's memory image.
    if algo != Algo::Triangles {
        gpu.mem = template.mem.clone();
    }
    let dg = &template.dg;

    let (data, run) = match query {
        Query::Bfs { src } => {
            let s = resolve_src(entry, *src)?;
            let out = run_bfs(&mut gpu, dg, s, method, exec)?;
            (ResultData::U32s(out.levels), out.run)
        }
        Query::BfsQueue { src } => {
            let s = resolve_src(entry, *src)?;
            let out = run_bfs_queue(&mut gpu, dg, s, method, exec)?;
            (ResultData::U32s(out.levels), out.run)
        }
        Query::BfsHybrid { src } => {
            let s = resolve_src(entry, *src)?;
            let Some(rev) = template.rev.as_ref() else {
                unreachable!("covers() checked above: hybrid templates carry a reverse graph");
            };
            let out = run_bfs_hybrid(
                &mut gpu,
                dg,
                rev,
                s,
                method,
                exec,
                &GpuHybridConfig::default(),
            )?;
            (ResultData::U32s(out.bfs.levels), out.bfs.run)
        }
        Query::Sssp { src } => {
            let s = resolve_src(entry, *src)?;
            let out = run_sssp(&mut gpu, dg, s, method, exec)?;
            (ResultData::U32s(out.dist), out.run)
        }
        Query::Cc => {
            let out = run_cc(&mut gpu, dg, method, exec)?;
            (ResultData::U32s(out.labels), out.run)
        }
        Query::Pagerank { iters, damping } => {
            if *iters == 0 {
                return Err(ServeError::BadRequest("pagerank iters must be >= 1".into()));
            }
            let out = run_pagerank(&mut gpu, dg, *iters, *damping, method, exec)?;
            (ResultData::F32s(out.ranks), out.run)
        }
        Query::Betweenness { num_sources } => {
            let sources = resolve_sources(entry, *num_sources, 256)?;
            let out = run_betweenness(&mut gpu, dg, &sources, method, exec)?;
            (ResultData::F32s(out.bc), out.run)
        }
        Query::Triangles => {
            let out = run_triangles(&mut gpu, &entry.csr, method, exec, Orientation::ByDegree)?;
            (ResultData::Count(out.count), out.run)
        }
        Query::Coloring => {
            let out = run_coloring(&mut gpu, dg, method, exec)?;
            (ResultData::U32s(out.colors), out.run)
        }
        Query::Kcore => {
            let out = run_kcore(&mut gpu, dg, method, exec)?;
            (ResultData::U32s(out.core), out.run)
        }
        Query::MsBfs { num_sources } => {
            let sources = resolve_sources(entry, *num_sources, 32)?;
            let out = run_msbfs(&mut gpu, dg, &sources, method, exec)?;
            (ResultData::U32Rows(out.levels), out.run)
        }
        Query::Spmv => {
            let values: Vec<f32> = entry.weights.iter().map(|&w| w as f32).collect();
            let x = vec![1.0f32; entry.csr.num_vertices() as usize];
            let out = run_spmv(&mut gpu, dg, &values, &x, method, exec)?;
            (ResultData::F32s(out.y), out.run)
        }
    };
    Ok((data, run))
}

/// Run one query on a fresh shard fleet cloned from `template`.
///
/// Only the algorithms in [`sharded_supported`] are accepted; the payload
/// is byte-identical to the single-device driver (the `maxwarp-shard`
/// identity contract) and the returned [`AlgoRun`] is the merged sharded
/// record — per-round critical-path cycles including modeled interconnect
/// time. Shard metrics land on `obs` when given (the scheduler passes the
/// server registry). `deadline_cycles` bounds each shard device's budget.
#[allow(clippy::too_many_arguments)]
pub fn execute_sharded(
    cfg: &GpuConfig,
    exec: &ExecConfig,
    entry: &GraphEntry,
    template: &ShardedTemplate,
    query: &Query,
    method: Method,
    deadline_cycles: Option<u64>,
    link: &LinkConfig,
    obs: Option<&Registry>,
) -> Result<(ResultData, AlgoRun), ServeError> {
    let algo = query.algo();
    if !algo.supports(method) {
        return Err(ServeError::Unsupported {
            algo,
            method: method.spec(),
        });
    }
    assert!(
        sharded_supported(algo),
        "scheduler routed {algo} to the sharded path"
    );

    let mut cfg = cfg.clone();
    cfg.watchdog.max_cycles = match (cfg.watchdog.max_cycles, deadline_cycles) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, b) => a.or(b),
    };
    let mut md = template.fleet(&cfg);

    let out = match query {
        Query::Bfs { src } => {
            let s = resolve_src(entry, *src)?;
            let out = run_bfs_sharded(&mut md, s, method, exec, link, obs)?;
            (ResultData::U32s(out.values), out.run)
        }
        Query::Sssp { src } => {
            let s = resolve_src(entry, *src)?;
            let out = run_sssp_sharded(&mut md, s, method, exec, link, obs)?;
            (ResultData::U32s(out.values), out.run)
        }
        Query::Cc => {
            let out = run_cc_sharded(&mut md, method, exec, link, obs)?;
            (ResultData::U32s(out.values), out.run)
        }
        Query::Pagerank { iters, damping } => {
            if *iters == 0 {
                return Err(ServeError::BadRequest("pagerank iters must be >= 1".into()));
            }
            let out = run_pagerank_sharded(&mut md, *iters, *damping, method, exec, link, obs)?;
            (ResultData::F32s(out.values), out.run)
        }
        _ => unreachable!("sharded_supported() checked above"),
    };
    let (data, sr) = out;
    Ok((data, sr.run))
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxwarp_graph::hub_graph;

    fn entry() -> GraphEntry {
        GraphEntry::new("hub", hub_graph(400, 2, 64, 3, 11))
    }

    fn cfg() -> GpuConfig {
        GpuConfig::tiny_test()
    }

    #[test]
    fn template_runs_are_identical_to_cold_runs() {
        let e = entry();
        let exec = ExecConfig::default();
        let t = DeviceTemplate::build(&cfg(), &e, false);
        let q = Query::Bfs { src: None };

        // Cold run: its own device, its own upload.
        let mut cold_gpu = Gpu::new(cfg());
        let cold_dg = DeviceGraph::upload_weighted(&mut cold_gpu, &e.csr, &e.weights);
        let cold = run_bfs(&mut cold_gpu, &cold_dg, e.source(), Method::warp(8), &exec).unwrap();

        // Two template runs in a row (as a batch of 2 would execute).
        for _ in 0..2 {
            let (data, run) = execute(&cfg(), &exec, &e, &t, &q, Method::warp(8), None).unwrap();
            assert_eq!(data, ResultData::U32s(cold.levels.clone()));
            assert_eq!(run.stats, cold.run.stats, "byte-identical stats");
            assert_eq!(run.iterations, cold.run.iterations);
        }
    }

    #[test]
    fn every_algo_executes_on_a_covering_template() {
        let e = entry();
        let exec = ExecConfig::default();
        let t = DeviceTemplate::build(&cfg(), &e, true);
        for algo in Algo::ALL {
            let q = Query::canonical(algo);
            let (data, run) = execute(&cfg(), &exec, &e, &t, &q, Method::Baseline, None).unwrap();
            assert!(run.cycles() > 0, "{algo}: no cycles simulated");
            assert!(v_len(&data) > 0, "{algo}: empty payload");
        }
    }

    fn v_len(d: &ResultData) -> usize {
        match d {
            ResultData::U32s(v) => v.len(),
            ResultData::F32s(v) => v.len(),
            ResultData::U32Rows(r) => r.len(),
            ResultData::Count(_) => 1,
        }
    }

    #[test]
    fn sharded_payloads_match_single_device() {
        let e = entry();
        let exec = ExecConfig::default();
        let t = DeviceTemplate::build(&cfg(), &e, false);
        let st = ShardedTemplate::build(&cfg(), &e, &PartitionSpec::block(4));
        let link = LinkConfig::default();
        let queries = [
            Query::Bfs { src: None },
            Query::Sssp { src: None },
            Query::Cc,
            Query::Pagerank {
                iters: 5,
                damping: 0.85,
            },
        ];
        for q in queries {
            let (single, _) = execute(&cfg(), &exec, &e, &t, &q, Method::warp(8), None).unwrap();
            let (sharded, run) = execute_sharded(
                &cfg(),
                &exec,
                &e,
                &st,
                &q,
                Method::warp(8),
                None,
                &link,
                None,
            )
            .unwrap();
            assert_eq!(single, sharded, "{}: payload identity", q.algo());
            assert!(run.cycles() > 0, "{}: no cycles simulated", q.algo());
        }
    }

    #[test]
    fn sharded_template_runs_are_deterministic() {
        // Two template runs must agree byte for byte (stats included) —
        // the property that lets sharded responses be cached.
        let e = entry();
        let exec = ExecConfig::default();
        let st = ShardedTemplate::build(&cfg(), &e, &PartitionSpec::block(2));
        let link = LinkConfig::default();
        let q = Query::Bfs { src: None };
        let run = || {
            execute_sharded(
                &cfg(),
                &exec,
                &e,
                &st,
                &q,
                Method::warp(8),
                None,
                &link,
                None,
            )
            .unwrap()
        };
        let (d1, r1) = run();
        let (d2, r2) = run();
        assert_eq!(d1, d2);
        assert_eq!(r1.stats, r2.stats);
        assert_eq!(r1.iterations, r2.iterations);
    }

    #[test]
    fn sharded_deadline_trips_watchdog() {
        let e = entry();
        let exec = ExecConfig::default();
        let st = ShardedTemplate::build(&cfg(), &e, &PartitionSpec::block(2));
        let err = execute_sharded(
            &cfg(),
            &exec,
            &e,
            &st,
            &Query::Cc,
            Method::Baseline,
            Some(10),
            &LinkConfig::default(),
            None,
        )
        .unwrap_err();
        assert!(matches!(err, ServeError::Launch(_)), "got {err:?}");
    }

    #[test]
    fn deadline_trips_watchdog() {
        let e = entry();
        let exec = ExecConfig::default();
        let t = DeviceTemplate::build(&cfg(), &e, false);
        let q = Query::Cc;
        let err = execute(&cfg(), &exec, &e, &t, &q, Method::Baseline, Some(10)).unwrap_err();
        assert!(matches!(err, ServeError::Launch(_)), "got {err:?}");
        // A generous deadline does not trip.
        execute(&cfg(), &exec, &e, &t, &q, Method::Baseline, Some(u64::MAX)).unwrap();
    }

    #[test]
    fn unsupported_and_bad_params_are_structured_errors() {
        let e = entry();
        let exec = ExecConfig::default();
        let t = DeviceTemplate::build(&cfg(), &e, false);
        let defer = Method::parse("vw8+defer:64").unwrap();
        assert!(matches!(
            execute(&cfg(), &exec, &e, &t, &Query::Triangles, defer, None),
            Err(ServeError::Unsupported { .. })
        ));
        assert!(matches!(
            execute(
                &cfg(),
                &exec,
                &e,
                &t,
                &Query::Bfs { src: Some(9999) },
                Method::Baseline,
                None
            ),
            Err(ServeError::BadRequest(_))
        ));
        assert!(matches!(
            execute(
                &cfg(),
                &exec,
                &e,
                &t,
                &Query::MsBfs { num_sources: 33 },
                Method::Baseline,
                None
            ),
            Err(ServeError::BadRequest(_))
        ));
    }
}
