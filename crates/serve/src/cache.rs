//! The result cache.
//!
//! Keyed by everything that influences a response byte-for-byte: graph
//! content digest, query digest (algo + params), *resolved* method spec, and
//! a fingerprint of the simulated device. Because the scheduler executes
//! every request on a fresh `Gpu` whose memory image is cloned from the
//! graph's device template, a cache hit really is byte-identical to the cold
//! run it replaced — the same `KernelStats`, the same payload — so hits can
//! be replayed without re-simulating.
//!
//! Eviction is LRU over a monotonic touch tick. Hit/miss/eviction counters
//! feed the server's JSON stats export.

use crate::json::{self, Value};
use crate::request::ResultData;
use maxwarp_obs::Counter;
use maxwarp_simt::{GpuConfig, KernelStats};
use std::collections::HashMap;

/// Full identity of a cacheable response.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Graph content digest ([`maxwarp_graph::csr_digest`]).
    pub graph: u64,
    /// Query digest: algorithm plus every parameter.
    pub query: u64,
    /// Resolved method spec (`Method::spec()`), never a wildcard.
    pub method: String,
    /// Device fingerprint ([`gpu_fingerprint`]).
    pub device: u64,
}

/// Fingerprint of the parts of a [`GpuConfig`] that can change results or
/// cycle counts.
///
/// Included: every functional/timing parameter and the fault-injection plan
/// (faults change payloads and stats). Excluded: `sanitize` and `profile`
/// (purely observational — the simt crate asserts byte-identical stats with
/// them on) and the watchdog (it only decides *whether* a run completes;
/// failed runs are never cached and hits consume no budget).
pub fn gpu_fingerprint(cfg: &GpuConfig) -> u64 {
    let mut h = maxwarp_graph::Fnv64::new();
    h.str(&cfg.name);
    for v in [
        cfg.num_sms,
        cfg.max_warps_per_sm,
        cfg.max_blocks_per_sm,
        cfg.max_threads_per_block,
        cfg.shared_words_per_sm,
        cfg.segment_bytes,
        cfg.l2_lines,
        cfg.l2_ways,
        cfg.issue_width,
    ] {
        h.u32(v);
    }
    for v in [
        cfg.clock_hz,
        cfg.alu_latency,
        cfg.mem_latency,
        cfg.shared_latency,
        cfg.dram_cycles_per_transaction,
        cfg.atomic_replay_cycles,
        cfg.l2_hit_latency,
    ] {
        h.u64(v);
    }
    match &cfg.faults {
        None => {
            h.byte(0);
        }
        Some(f) => {
            h.byte(1);
            h.u64(f.seed);
            h.byte(f.bit_flips as u8);
            h.byte(f.dropped_atomics as u8);
            h.byte(f.sched_perturb as u8);
        }
    }
    h.finish()
}

/// A cached response body.
#[derive(Clone, Debug)]
pub struct CachedResult {
    pub data: ResultData,
    pub stats: KernelStats,
    pub iterations: u32,
    /// Resolved method spec the result was produced with.
    pub method: String,
}

struct Entry {
    value: CachedResult,
    bytes: usize,
    touched: u64,
}

/// Running counters, exported in the server's stats JSON.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub insertions: u64,
    pub evictions: u64,
    /// Current number of cached entries.
    pub entries: u64,
    /// Approximate payload bytes currently held.
    pub bytes: u64,
}

impl CacheStats {
    /// Hits / (hits + misses); 0 when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    pub fn to_json(&self) -> Value {
        json::obj(vec![
            ("hits", json::n(self.hits as f64)),
            ("misses", json::n(self.misses as f64)),
            ("insertions", json::n(self.insertions as f64)),
            ("evictions", json::n(self.evictions as f64)),
            ("entries", json::n(self.entries as f64)),
            ("approx_bytes", json::n(self.bytes as f64)),
            ("hit_rate", json::n(self.hit_rate())),
        ])
    }
}

/// LRU map from [`CacheKey`] to [`CachedResult`], bounded by entry count.
///
/// The hit/miss/insertion/eviction counters are [`maxwarp_obs::Counter`]
/// handles: the server wires them to its metrics registry
/// ([`ResultCache::with_counters`]) so the cache's numbers are registry
/// series, not a parallel set of fields.
pub struct ResultCache {
    map: HashMap<CacheKey, Entry>,
    capacity: usize,
    tick: u64,
    hits: Counter,
    misses: Counter,
    insertions: Counter,
    evictions: Counter,
}

impl ResultCache {
    /// A cache holding at most `capacity` entries, counting on detached
    /// (unexported) counters. Capacity 0 disables caching (every lookup
    /// misses, inserts are dropped).
    pub fn new(capacity: usize) -> ResultCache {
        ResultCache::with_counters(
            capacity,
            Counter::detached(),
            Counter::detached(),
            Counter::detached(),
            Counter::detached(),
        )
    }

    /// A cache whose counters are registry handles (the server passes its
    /// `serve_cache_*_total` series).
    pub fn with_counters(
        capacity: usize,
        hits: Counter,
        misses: Counter,
        insertions: Counter,
        evictions: Counter,
    ) -> ResultCache {
        ResultCache {
            map: HashMap::new(),
            capacity,
            tick: 0,
            hits,
            misses,
            insertions,
            evictions,
        }
    }

    /// Look `key` up, refreshing its LRU position on hit.
    pub fn get(&mut self, key: &CacheKey) -> Option<CachedResult> {
        self.tick += 1;
        match self.map.get_mut(key) {
            Some(e) => {
                e.touched = self.tick;
                self.hits.inc();
                Some(e.value.clone())
            }
            None => {
                self.misses.inc();
                None
            }
        }
    }

    /// Insert a result, evicting the least-recently-touched entry if full.
    pub fn insert(&mut self, key: CacheKey, value: CachedResult) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            if let Some(victim) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.touched)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&victim);
                self.evictions.inc();
            }
        }
        let bytes = value.data.approx_bytes();
        self.insertions.inc();
        self.map.insert(
            key,
            Entry {
                value,
                bytes,
                touched: self.tick,
            },
        );
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            insertions: self.insertions.get(),
            evictions: self.evictions.get(),
            entries: self.map.len() as u64,
            bytes: self.map.values().map(|e| e.bytes as u64).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(q: u64) -> CacheKey {
        CacheKey {
            graph: 1,
            query: q,
            method: "vw8".into(),
            device: 2,
        }
    }

    fn result(iter: u32) -> CachedResult {
        CachedResult {
            data: ResultData::Count(iter as u64),
            stats: KernelStats::default(),
            iterations: iter,
            method: "vw8".into(),
        }
    }

    #[test]
    fn hit_returns_inserted_value_and_counts() {
        let mut c = ResultCache::new(4);
        assert!(c.get(&key(1)).is_none());
        c.insert(key(1), result(7));
        let hit = c.get(&key(1)).unwrap();
        assert_eq!(hit.iterations, 7);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (1, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = ResultCache::new(2);
        c.insert(key(1), result(1));
        c.insert(key(2), result(2));
        c.get(&key(1)); // 2 is now LRU
        c.insert(key(3), result(3));
        assert!(c.get(&key(1)).is_some());
        assert!(c.get(&key(2)).is_none(), "LRU entry evicted");
        assert!(c.get(&key(3)).is_some());
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.stats().entries, 2);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = ResultCache::new(0);
        c.insert(key(1), result(1));
        assert!(c.get(&key(1)).is_none());
        assert_eq!(c.stats().entries, 0);
    }

    #[test]
    fn fingerprint_separates_timing_and_faults_but_not_observers() {
        let base = GpuConfig::fermi_c2050();
        let f0 = gpu_fingerprint(&base);

        let mut observed = base.clone();
        observed.sanitize = true;
        observed.profile = true;
        observed.watchdog.max_cycles = Some(1);
        assert_eq!(
            gpu_fingerprint(&observed),
            f0,
            "observers and watchdog budgets don't change results"
        );

        let mut slower = base.clone();
        slower.mem_latency += 1;
        assert_ne!(gpu_fingerprint(&slower), f0);

        let mut faulty = base.clone();
        faulty.faults = Some(maxwarp_simt::FaultConfig::all(42));
        assert_ne!(gpu_fingerprint(&faulty), f0);

        assert_ne!(gpu_fingerprint(&GpuConfig::gtx280()), f0);
    }
}
