//! The result cache.
//!
//! Keyed by everything that influences a response byte-for-byte: graph
//! content digest, query digest (algo + params), *resolved* method spec, and
//! a fingerprint of the simulated device. Because the scheduler executes
//! every request on a fresh `Gpu` whose memory image is cloned from the
//! graph's device template, a cache hit really is byte-identical to the cold
//! run it replaced — the same `KernelStats`, the same payload — so hits can
//! be replayed without re-simulating.
//!
//! Eviction is LRU over a monotonic touch tick. Hit/miss/eviction counters
//! feed the server's JSON stats export.

use crate::json::{self, Value};
use crate::request::ResultData;
use maxwarp_obs::Counter;
use maxwarp_simt::{GpuConfig, KernelStats};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Full identity of a cacheable response.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Graph content digest ([`maxwarp_graph::csr_digest`]).
    pub graph: u64,
    /// Query digest: algorithm plus every parameter.
    pub query: u64,
    /// Resolved method spec (`Method::spec()`), never a wildcard.
    pub method: String,
    /// Device fingerprint ([`gpu_fingerprint`]).
    pub device: u64,
}

/// Fingerprint of the parts of a [`GpuConfig`] that can change results or
/// cycle counts.
///
/// Included: every functional/timing parameter and the fault-injection plan
/// (faults change payloads and stats). Excluded: `sanitize` and `profile`
/// (purely observational — the simt crate asserts byte-identical stats with
/// them on) and the watchdog (it only decides *whether* a run completes;
/// failed runs are never cached and hits consume no budget).
pub fn gpu_fingerprint(cfg: &GpuConfig) -> u64 {
    let mut h = maxwarp_graph::Fnv64::new();
    h.str(&cfg.name);
    for v in [
        cfg.num_sms,
        cfg.max_warps_per_sm,
        cfg.max_blocks_per_sm,
        cfg.max_threads_per_block,
        cfg.shared_words_per_sm,
        cfg.segment_bytes,
        cfg.l2_lines,
        cfg.l2_ways,
        cfg.issue_width,
    ] {
        h.u32(v);
    }
    for v in [
        cfg.clock_hz,
        cfg.alu_latency,
        cfg.mem_latency,
        cfg.shared_latency,
        cfg.dram_cycles_per_transaction,
        cfg.atomic_replay_cycles,
        cfg.l2_hit_latency,
    ] {
        h.u64(v);
    }
    match &cfg.faults {
        None => {
            h.byte(0);
        }
        Some(f) => {
            h.byte(1);
            h.u64(f.seed);
            h.byte(f.bit_flips as u8);
            h.byte(f.dropped_atomics as u8);
            h.byte(f.sched_perturb as u8);
        }
    }
    h.finish()
}

/// Device-fingerprint extension for sharded servers: folds the partition
/// spec and the interconnect model into the single-device fingerprint.
///
/// Payloads are byte-identical between the sharded and single-device paths
/// (the `maxwarp-shard` identity contract), but stats and cycle accounting
/// are not — so sharded and single-device results must never share a cache
/// entry, on disk (warmup snapshots) or in memory.
pub fn sharded_fingerprint(
    base: u64,
    shards: u32,
    cut: &str,
    link: &maxwarp_shard::LinkConfig,
) -> u64 {
    let mut h = maxwarp_graph::Fnv64::new();
    h.u64(base);
    h.str("shard");
    h.u32(shards);
    h.str(cut);
    h.u64(link.bytes_per_cycle);
    h.u64(link.latency_cycles);
    h.u32(link.devices_per_link);
    h.finish()
}

/// A cached response body.
#[derive(Clone, Debug)]
pub struct CachedResult {
    pub data: ResultData,
    pub stats: KernelStats,
    pub iterations: u32,
    /// Resolved method spec the result was produced with.
    pub method: String,
}

struct Entry {
    value: CachedResult,
    bytes: usize,
    touched: u64,
    /// When the entry was produced — drives stale-while-revalidate.
    inserted: Instant,
}

/// Age classification of a cache hit relative to a TTL.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Freshness {
    /// Within TTL (or no TTL configured): byte-identical replay.
    Fresh,
    /// Past TTL: still byte-identical to the run that produced it, but the
    /// server flags it `degraded` and refreshes in the background.
    Stale,
}

/// Running counters, exported in the server's stats JSON.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub insertions: u64,
    pub evictions: u64,
    /// Current number of cached entries.
    pub entries: u64,
    /// Approximate payload bytes currently held.
    pub bytes: u64,
}

impl CacheStats {
    /// Hits / (hits + misses); 0 when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    pub fn to_json(&self) -> Value {
        json::obj(vec![
            ("hits", json::n(self.hits as f64)),
            ("misses", json::n(self.misses as f64)),
            ("insertions", json::n(self.insertions as f64)),
            ("evictions", json::n(self.evictions as f64)),
            ("entries", json::n(self.entries as f64)),
            ("approx_bytes", json::n(self.bytes as f64)),
            ("hit_rate", json::n(self.hit_rate())),
        ])
    }
}

/// LRU map from [`CacheKey`] to [`CachedResult`], bounded by entry count.
///
/// The hit/miss/insertion/eviction counters are [`maxwarp_obs::Counter`]
/// handles: the server wires them to its metrics registry
/// ([`ResultCache::with_counters`]) so the cache's numbers are registry
/// series, not a parallel set of fields.
pub struct ResultCache {
    map: HashMap<CacheKey, Entry>,
    capacity: usize,
    tick: u64,
    hits: Counter,
    misses: Counter,
    insertions: Counter,
    evictions: Counter,
}

impl ResultCache {
    /// A cache holding at most `capacity` entries, counting on detached
    /// (unexported) counters. Capacity 0 disables caching (every lookup
    /// misses, inserts are dropped).
    pub fn new(capacity: usize) -> ResultCache {
        ResultCache::with_counters(
            capacity,
            Counter::detached(),
            Counter::detached(),
            Counter::detached(),
            Counter::detached(),
        )
    }

    /// A cache whose counters are registry handles (the server passes its
    /// `serve_cache_*_total` series).
    pub fn with_counters(
        capacity: usize,
        hits: Counter,
        misses: Counter,
        insertions: Counter,
        evictions: Counter,
    ) -> ResultCache {
        ResultCache {
            map: HashMap::new(),
            capacity,
            tick: 0,
            hits,
            misses,
            insertions,
            evictions,
        }
    }

    /// Look `key` up, refreshing its LRU position on hit.
    pub fn get(&mut self, key: &CacheKey) -> Option<CachedResult> {
        self.get_at(key, Instant::now(), None).map(|(v, _)| v)
    }

    /// Look `key` up with stale classification: a hit older than `ttl` (if
    /// one is given) is returned as [`Freshness::Stale`]. Stale entries are
    /// still served — the scheduler flags them `degraded` and refreshes in
    /// the background — so availability never regresses to a miss.
    pub fn get_at(
        &mut self,
        key: &CacheKey,
        now: Instant,
        ttl: Option<Duration>,
    ) -> Option<(CachedResult, Freshness)> {
        self.tick += 1;
        match self.map.get_mut(key) {
            Some(e) => {
                e.touched = self.tick;
                self.hits.inc();
                let fresh = match ttl {
                    Some(t) if now.saturating_duration_since(e.inserted) > t => Freshness::Stale,
                    _ => Freshness::Fresh,
                };
                Some((e.value.clone(), fresh))
            }
            None => {
                self.misses.inc();
                None
            }
        }
    }

    /// Insert a result, evicting the least-recently-touched entry if full.
    pub fn insert(&mut self, key: CacheKey, value: CachedResult) {
        self.insert_at(key, value, Instant::now());
    }

    /// [`insert`](ResultCache::insert) with an explicit timestamp (the
    /// scheduler passes one `now` per serve; tests pass synthetic clocks).
    pub fn insert_at(&mut self, key: CacheKey, value: CachedResult, now: Instant) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            if let Some(victim) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.touched)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&victim);
                self.evictions.inc();
            }
        }
        let bytes = value.data.approx_bytes();
        self.insertions.inc();
        self.map.insert(
            key,
            Entry {
                value,
                bytes,
                touched: self.tick,
                inserted: now,
            },
        );
    }

    /// Serialize every entry into the cache-warmup snapshot format: a
    /// versioned, deterministic (key-sorted) binary image. The caller
    /// frames it through `maxwarp_graph::atomic`, which adds the checksum
    /// and atomic publish — this layer only defines the payload.
    pub fn export_snapshot(&self) -> Vec<u8> {
        let mut keys: Vec<&CacheKey> = self.map.keys().collect();
        keys.sort_by(|a, b| {
            (a.graph, a.query, &a.method, a.device).cmp(&(b.graph, b.query, &b.method, b.device))
        });
        let mut w = Vec::new();
        put_u32(&mut w, SNAPSHOT_VERSION);
        put_u64(&mut w, keys.len() as u64);
        for k in keys {
            let e = &self.map[k];
            put_u64(&mut w, k.graph);
            put_u64(&mut w, k.query);
            put_u64(&mut w, k.device);
            put_str(&mut w, &k.method);
            put_u32(&mut w, e.value.iterations);
            put_str(&mut w, &e.value.method);
            put_stats(&mut w, &e.value.stats);
            put_data(&mut w, &e.value.data);
        }
        w
    }

    /// Load entries from a snapshot produced by
    /// [`export_snapshot`](ResultCache::export_snapshot), inserting them as
    /// fresh at `now`. Returns the number of entries imported. A snapshot
    /// from an unknown version (or with trailing garbage — the atomic layer
    /// already rules out corruption) imports nothing: warmup is an
    /// optimization, never load-bearing.
    pub fn import_snapshot(&mut self, bytes: &[u8], now: Instant) -> usize {
        let mut r = Reader { buf: bytes, at: 0 };
        let Some(version) = r.u32() else { return 0 };
        if version != SNAPSHOT_VERSION {
            return 0;
        }
        let Some(count) = r.u64() else { return 0 };
        let mut imported = 0;
        for _ in 0..count {
            let Some(entry) = read_entry(&mut r) else {
                break;
            };
            let (key, value) = entry;
            self.insert_at(key, value, now);
            imported += 1;
        }
        imported
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            insertions: self.insertions.get(),
            evictions: self.evictions.get(),
            entries: self.map.len() as u64,
            bytes: self.map.values().map(|e| e.bytes as u64).sum(),
        }
    }
}

/// Warmup-snapshot payload version (bumped on any layout change; old
/// snapshots are then ignored and the cache warms organically).
const SNAPSHOT_VERSION: u32 = 1;

fn put_u8(w: &mut Vec<u8>, v: u8) {
    w.push(v);
}
fn put_u32(w: &mut Vec<u8>, v: u32) {
    w.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(w: &mut Vec<u8>, v: u64) {
    w.extend_from_slice(&v.to_le_bytes());
}
fn put_str(w: &mut Vec<u8>, s: &str) {
    put_u32(w, s.len() as u32);
    w.extend_from_slice(s.as_bytes());
}

fn put_stats(w: &mut Vec<u8>, s: &KernelStats) {
    // Field-by-field (not a memcpy) so a struct change breaks the build
    // here instead of silently corrupting snapshots.
    for v in [
        s.cycles,
        s.instructions,
        s.alu_instructions,
        s.mem_instructions,
        s.atomic_instructions,
        s.shared_instructions,
        s.barriers,
        s.mem_transactions,
        s.cached_load_instructions,
        s.cache_hit_segments,
        s.cache_miss_segments,
        s.atomic_replays,
        s.shared_replay_passes,
        s.active_lane_sum,
        s.warps,
        s.blocks,
    ] {
        put_u64(w, v);
    }
    put_u32(w, s.per_warp_instructions.len() as u32);
    for &v in &s.per_warp_instructions {
        put_u32(w, v);
    }
}

fn put_data(w: &mut Vec<u8>, d: &ResultData) {
    match d {
        ResultData::U32s(v) => {
            put_u8(w, 0);
            put_u64(w, v.len() as u64);
            for &x in v {
                put_u32(w, x);
            }
        }
        ResultData::F32s(v) => {
            put_u8(w, 1);
            put_u64(w, v.len() as u64);
            for &x in v {
                put_u32(w, x.to_bits());
            }
        }
        ResultData::U32Rows(rows) => {
            put_u8(w, 2);
            put_u64(w, rows.len() as u64);
            for r in rows {
                put_u64(w, r.len() as u64);
                for &x in r {
                    put_u32(w, x);
                }
            }
        }
        ResultData::Count(c) => {
            put_u8(w, 3);
            put_u64(w, *c);
        }
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Option<&[u8]> {
        let end = self.at.checked_add(n)?;
        if end > self.buf.len() {
            return None;
        }
        let s = &self.buf[self.at..end];
        self.at = end;
        Some(s)
    }
    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }
    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
    fn u64(&mut self) -> Option<u64> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Some(u64::from_le_bytes(a))
    }
    fn str(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        // An implausible length means a layout drift, not a real string.
        if len > 1 << 20 {
            return None;
        }
        let b = self.take(len)?;
        String::from_utf8(b.to_vec()).ok()
    }
    /// Bounded element count: payloads are result vectors over graphs the
    /// process could actually hold, never multi-billion-entry claims.
    fn count(&mut self, elem_bytes: usize) -> Option<usize> {
        let n = self.u64()? as usize;
        if n.checked_mul(elem_bytes)? > self.buf.len() {
            return None;
        }
        Some(n)
    }
}

fn read_stats(r: &mut Reader) -> Option<KernelStats> {
    let mut s = KernelStats {
        cycles: r.u64()?,
        instructions: r.u64()?,
        alu_instructions: r.u64()?,
        mem_instructions: r.u64()?,
        atomic_instructions: r.u64()?,
        shared_instructions: r.u64()?,
        barriers: r.u64()?,
        mem_transactions: r.u64()?,
        cached_load_instructions: r.u64()?,
        cache_hit_segments: r.u64()?,
        cache_miss_segments: r.u64()?,
        atomic_replays: r.u64()?,
        shared_replay_passes: r.u64()?,
        active_lane_sum: r.u64()?,
        warps: r.u64()?,
        blocks: r.u64()?,
        per_warp_instructions: Vec::new(),
    };
    let n = r.u32()? as usize;
    if n * 4 > r.buf.len() {
        return None;
    }
    let mut per_warp = Vec::with_capacity(n);
    for _ in 0..n {
        per_warp.push(r.u32()?);
    }
    s.per_warp_instructions = per_warp;
    Some(s)
}

fn read_data(r: &mut Reader) -> Option<ResultData> {
    match r.u8()? {
        0 => {
            let n = r.count(4)?;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(r.u32()?);
            }
            Some(ResultData::U32s(v))
        }
        1 => {
            let n = r.count(4)?;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(f32::from_bits(r.u32()?));
            }
            Some(ResultData::F32s(v))
        }
        2 => {
            let rows_n = r.count(8)?;
            let mut rows = Vec::with_capacity(rows_n);
            for _ in 0..rows_n {
                let n = r.count(4)?;
                let mut v = Vec::with_capacity(n);
                for _ in 0..n {
                    v.push(r.u32()?);
                }
                rows.push(v);
            }
            Some(ResultData::U32Rows(rows))
        }
        3 => Some(ResultData::Count(r.u64()?)),
        _ => None,
    }
}

fn read_entry(r: &mut Reader) -> Option<(CacheKey, CachedResult)> {
    let key = CacheKey {
        graph: r.u64()?,
        query: r.u64()?,
        device: r.u64()?,
        method: r.str()?,
    };
    let iterations = r.u32()?;
    let method = r.str()?;
    let stats = read_stats(r)?;
    let data = read_data(r)?;
    Some((
        key,
        CachedResult {
            data,
            stats,
            iterations,
            method,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(q: u64) -> CacheKey {
        CacheKey {
            graph: 1,
            query: q,
            method: "vw8".into(),
            device: 2,
        }
    }

    fn result(iter: u32) -> CachedResult {
        CachedResult {
            data: ResultData::Count(iter as u64),
            stats: KernelStats::default(),
            iterations: iter,
            method: "vw8".into(),
        }
    }

    #[test]
    fn hit_returns_inserted_value_and_counts() {
        let mut c = ResultCache::new(4);
        assert!(c.get(&key(1)).is_none());
        c.insert(key(1), result(7));
        let hit = c.get(&key(1)).unwrap();
        assert_eq!(hit.iterations, 7);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (1, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = ResultCache::new(2);
        c.insert(key(1), result(1));
        c.insert(key(2), result(2));
        c.get(&key(1)); // 2 is now LRU
        c.insert(key(3), result(3));
        assert!(c.get(&key(1)).is_some());
        assert!(c.get(&key(2)).is_none(), "LRU entry evicted");
        assert!(c.get(&key(3)).is_some());
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.stats().entries, 2);
    }

    #[test]
    fn ttl_classifies_but_never_drops() {
        let mut c = ResultCache::new(4);
        let t0 = Instant::now();
        c.insert_at(key(1), result(7), t0);
        let ttl = Some(Duration::from_millis(100));
        let (_, fresh) = c
            .get_at(&key(1), t0 + Duration::from_millis(50), ttl)
            .unwrap();
        assert_eq!(fresh, Freshness::Fresh);
        let (v, fresh) = c
            .get_at(&key(1), t0 + Duration::from_millis(150), ttl)
            .unwrap();
        assert_eq!(fresh, Freshness::Stale, "past TTL is stale, not a miss");
        assert_eq!(v.iterations, 7, "stale replay is still the same bytes");
        // No TTL: never stale.
        let (_, fresh) = c
            .get_at(&key(1), t0 + Duration::from_secs(3600), None)
            .unwrap();
        assert_eq!(fresh, Freshness::Fresh);
        // A re-insert refreshes the clock.
        c.insert_at(key(1), result(8), t0 + Duration::from_millis(150));
        let (_, fresh) = c
            .get_at(&key(1), t0 + Duration::from_millis(200), ttl)
            .unwrap();
        assert_eq!(fresh, Freshness::Fresh);
    }

    #[test]
    fn snapshot_round_trips_every_payload_shape() {
        let mut c = ResultCache::new(16);
        let shapes = [
            ResultData::U32s(vec![0, 7, u32::MAX]),
            ResultData::F32s(vec![0.5, -1.25, f32::NAN]),
            ResultData::U32Rows(vec![vec![1, 2], vec![], vec![3]]),
            ResultData::Count(99),
        ];
        for (i, data) in shapes.iter().enumerate() {
            let stats = KernelStats {
                cycles: 1000 + i as u64,
                per_warp_instructions: vec![i as u32; 3],
                ..KernelStats::default()
            };
            c.insert(
                key(i as u64),
                CachedResult {
                    data: data.clone(),
                    stats,
                    iterations: i as u32,
                    method: format!("vw{}", 1 << i),
                },
            );
        }
        let snap = c.export_snapshot();
        // Deterministic bytes for the same content.
        assert_eq!(snap, c.export_snapshot());

        let mut warm = ResultCache::new(16);
        assert_eq!(warm.import_snapshot(&snap, Instant::now()), shapes.len());
        for (i, data) in shapes.iter().enumerate() {
            let hit = warm.get(&key(i as u64)).unwrap();
            match (&hit.data, data) {
                (ResultData::F32s(a), ResultData::F32s(b)) => {
                    // Bit-exact, including the NaN.
                    let ab: Vec<u32> = a.iter().map(|x| x.to_bits()).collect();
                    let bb: Vec<u32> = b.iter().map(|x| x.to_bits()).collect();
                    assert_eq!(ab, bb);
                }
                (got, want) => assert_eq!(got, want),
            }
            assert_eq!(hit.iterations, i as u32);
            assert_eq!(hit.stats.cycles, 1000 + i as u64);
            assert_eq!(hit.stats.per_warp_instructions, vec![i as u32; 3]);
        }

        // Unknown version or truncation imports nothing/partially, never
        // panics.
        let mut bad = snap.clone();
        bad[0] ^= 0xff;
        assert_eq!(
            ResultCache::new(16).import_snapshot(&bad, Instant::now()),
            0
        );
        for cut in [0, 3, snap.len() / 2] {
            let mut partial = ResultCache::new(16);
            let n = partial.import_snapshot(&snap[..cut], Instant::now());
            assert!(n <= shapes.len());
        }
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = ResultCache::new(0);
        c.insert(key(1), result(1));
        assert!(c.get(&key(1)).is_none());
        assert_eq!(c.stats().entries, 0);
    }

    #[test]
    fn sharded_fingerprint_separates_every_spec_dimension() {
        let base = gpu_fingerprint(&GpuConfig::tiny_test());
        let link = maxwarp_shard::LinkConfig::default();
        let f4 = sharded_fingerprint(base, 4, "block", &link);
        assert_ne!(f4, base, "sharded never collides with single-device");
        assert_ne!(f4, sharded_fingerprint(base, 2, "block", &link));
        assert_ne!(f4, sharded_fingerprint(base, 4, "degree", &link));
        let mut slow = link;
        slow.bytes_per_cycle = 1;
        assert_ne!(f4, sharded_fingerprint(base, 4, "block", &slow));
        assert_eq!(f4, sharded_fingerprint(base, 4, "block", &link));
    }

    #[test]
    fn fingerprint_separates_timing_and_faults_but_not_observers() {
        let base = GpuConfig::fermi_c2050();
        let f0 = gpu_fingerprint(&base);

        let mut observed = base.clone();
        observed.sanitize = true;
        observed.profile = true;
        observed.watchdog.max_cycles = Some(1);
        assert_eq!(
            gpu_fingerprint(&observed),
            f0,
            "observers and watchdog budgets don't change results"
        );

        let mut slower = base.clone();
        slower.mem_latency += 1;
        assert_ne!(gpu_fingerprint(&slower), f0);

        let mut faulty = base.clone();
        faulty.faults = Some(maxwarp_simt::FaultConfig::all(42));
        assert_ne!(gpu_fingerprint(&faulty), f0);

        assert_ne!(gpu_fingerprint(&GpuConfig::gtx280()), f0);
    }
}
