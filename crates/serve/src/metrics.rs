//! Server metrics: every counter the scheduler, cache, and tuner report,
//! pre-registered on one [`Registry`].
//!
//! This module is the single source of truth for serve-side stats. The
//! scheduler used to keep a hand-rolled `Counters` struct behind a mutex;
//! those numbers now live in registry series, so the same values feed the
//! [`crate::scheduler::ServerSnapshot`] JSON, the Prometheus text export,
//! and the bench harness — no parallel bookkeeping to drift apart.
//!
//! Hot-path discipline: everything touched per request is a pre-registered
//! handle (relaxed atomics, no locks). Only the per-tenant series take the
//! registry lock, because tenants are an open set — and only on the worker
//! thread, after the simulated execution that dominates service time.

use crate::request::Algo;
use maxwarp_obs::{Counter, Gauge, HistogramHandle, Registry};

fn algo_idx(algo: Algo) -> usize {
    Algo::ALL.iter().position(|a| *a == algo).unwrap_or(0)
}

/// Pre-registered handles for every fixed serve-side series.
#[derive(Clone)]
pub struct ServeMetrics {
    registry: Registry,
    /// `serve_requests_submitted_total` — admitted into the queue.
    pub submitted: Counter,
    /// `serve_requests_rejected_total{reason="queue_full"}` — backpressure
    /// rejections (nothing was enqueued).
    pub rejected_full: Counter,
    /// `serve_requests_rejected_total{reason="invalid"}` — failed admission
    /// validation (unknown graph, unsupported method pin).
    pub rejected_invalid: Counter,
    /// `serve_requests_completed_total`.
    pub completed: Counter,
    /// `serve_requests_failed_total` (all failure classes).
    pub failed: Counter,
    /// `serve_deadline_overruns_total` — failures whose cause was the
    /// per-request cycle deadline tripping the device watchdog.
    pub deadline_overruns: Counter,
    /// `serve_batches_total`.
    pub batches: Counter,
    /// `serve_batched_requests_total` — requests that shared a batch.
    pub batched_requests: Counter,
    /// `serve_templates_built_total` — device uploads paid.
    pub templates_built: Counter,
    /// `serve_queue_depth` — queued requests right now.
    pub queue_depth: Gauge,
    /// `serve_queue_depth_hwm` — deepest the queue has ever been.
    pub queue_depth_hwm: Gauge,
    /// `serve_queue_wait_us` — host time from enqueue to worker pickup.
    pub queue_wait: HistogramHandle,
    /// `serve_service_us` — host time executing (or replaying from cache).
    pub service: HistogramHandle,
    /// `serve_batch_size` — requests per served batch.
    pub batch_size: HistogramHandle,
    /// `serve_cache_hits_total` / misses / insertions / evictions.
    pub cache_hits: Counter,
    pub cache_misses: Counter,
    pub cache_insertions: Counter,
    pub cache_evictions: Counter,
    /// `serve_cache_entries` / `serve_cache_bytes` — current occupancy.
    pub cache_entries: Gauge,
    pub cache_bytes: Gauge,
    /// `serve_tuner_probes_total` — autotuner probe executions.
    pub tuner_probes: Counter,
    /// `serve_algo_service_us{algo=…}`, indexed in `Algo::ALL` order.
    per_algo_service: Vec<HistogramHandle>,
}

impl ServeMetrics {
    /// Register every fixed series on `registry`.
    pub fn new(registry: &Registry) -> ServeMetrics {
        let per_algo_service = Algo::ALL
            .iter()
            .map(|a| registry.histogram_with("serve_algo_service_us", &[("algo", a.label())]))
            .collect();
        ServeMetrics {
            submitted: registry.counter("serve_requests_submitted_total"),
            rejected_full: registry
                .counter_with("serve_requests_rejected_total", &[("reason", "queue_full")]),
            rejected_invalid: registry
                .counter_with("serve_requests_rejected_total", &[("reason", "invalid")]),
            completed: registry.counter("serve_requests_completed_total"),
            failed: registry.counter("serve_requests_failed_total"),
            deadline_overruns: registry.counter("serve_deadline_overruns_total"),
            batches: registry.counter("serve_batches_total"),
            batched_requests: registry.counter("serve_batched_requests_total"),
            templates_built: registry.counter("serve_templates_built_total"),
            queue_depth: registry.gauge("serve_queue_depth"),
            queue_depth_hwm: registry.gauge("serve_queue_depth_hwm"),
            queue_wait: registry.histogram("serve_queue_wait_us"),
            service: registry.histogram("serve_service_us"),
            batch_size: registry.histogram("serve_batch_size"),
            cache_hits: registry.counter("serve_cache_hits_total"),
            cache_misses: registry.counter("serve_cache_misses_total"),
            cache_insertions: registry.counter("serve_cache_insertions_total"),
            cache_evictions: registry.counter("serve_cache_evictions_total"),
            cache_entries: registry.gauge("serve_cache_entries"),
            cache_bytes: registry.gauge("serve_cache_bytes"),
            tuner_probes: registry.counter("serve_tuner_probes_total"),
            per_algo_service,
            registry: registry.clone(),
        }
    }

    /// The registry all these handles live on.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The per-algorithm service-latency histogram.
    pub fn algo_service(&self, algo: Algo) -> &HistogramHandle {
        &self.per_algo_service[algo_idx(algo)]
    }

    /// Per-tenant request counter (`serve_tenant_requests_total{tenant=…}`).
    /// Takes the registry lock — tenants are an open set.
    pub fn tenant_requests(&self, tenant: &str) -> Counter {
        self.registry
            .counter_with("serve_tenant_requests_total", &[("tenant", tenant)])
    }

    /// Per-tenant service-latency histogram
    /// (`serve_tenant_service_us{tenant=…}`).
    pub fn tenant_service(&self, tenant: &str) -> HistogramHandle {
        self.registry
            .histogram_with("serve_tenant_service_us", &[("tenant", tenant)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_algo_has_its_own_series() {
        let r = Registry::new();
        let m = ServeMetrics::new(&r);
        for a in Algo::ALL {
            m.algo_service(a).record(10);
        }
        let series = r.histograms_of("serve_algo_service_us");
        assert_eq!(series.len(), Algo::ALL.len());
        assert!(series.iter().all(|(_, h)| h.count == 1));
    }

    #[test]
    fn tenant_series_accumulate_per_label() {
        let r = Registry::new();
        let m = ServeMetrics::new(&r);
        m.tenant_requests("a").inc();
        m.tenant_requests("a").inc();
        m.tenant_requests("b").inc();
        let series = r.series_of("serve_tenant_requests_total");
        assert_eq!(series.len(), 2);
        let total: u64 = series.iter().map(|(_, v)| v).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn disabled_registry_silences_all_handles() {
        let r = Registry::new();
        let m = ServeMetrics::new(&r);
        r.set_enabled(false);
        m.submitted.inc();
        m.queue_wait.record(5);
        m.algo_service(Algo::Bfs).record(5);
        assert_eq!(m.submitted.get(), 0);
        assert_eq!(m.queue_wait.snapshot().count, 0);
    }
}
