//! Server metrics: every counter the scheduler, cache, and tuner report,
//! pre-registered on one [`Registry`].
//!
//! This module is the single source of truth for serve-side stats. The
//! scheduler used to keep a hand-rolled `Counters` struct behind a mutex;
//! those numbers now live in registry series, so the same values feed the
//! [`crate::scheduler::ServerSnapshot`] JSON, the Prometheus text export,
//! and the bench harness — no parallel bookkeeping to drift apart.
//!
//! Hot-path discipline: everything touched per request is a pre-registered
//! handle (relaxed atomics, no locks). Only the per-tenant series take the
//! registry lock, because tenants are an open set — and only on the worker
//! thread, after the simulated execution that dominates service time.

use crate::request::Algo;
use maxwarp_obs::{Counter, Gauge, HistogramHandle, Registry};

fn algo_idx(algo: Algo) -> usize {
    Algo::ALL.iter().position(|a| *a == algo).unwrap_or(0)
}

/// Pre-registered handles for every fixed serve-side series.
#[derive(Clone)]
pub struct ServeMetrics {
    registry: Registry,
    /// `serve_requests_submitted_total` — admitted into the queue.
    pub submitted: Counter,
    /// `serve_requests_rejected_total{reason="queue_full"}` — backpressure
    /// rejections (nothing was enqueued).
    pub rejected_full: Counter,
    /// `serve_requests_rejected_total{reason="invalid"}` — failed admission
    /// validation (unknown graph, unsupported method pin).
    pub rejected_invalid: Counter,
    /// `serve_requests_completed_total`.
    pub completed: Counter,
    /// `serve_requests_failed_total` (all failure classes).
    pub failed: Counter,
    /// `serve_deadline_overruns_total` — failures whose cause was the
    /// per-request cycle deadline tripping the device watchdog.
    pub deadline_overruns: Counter,
    /// `serve_batches_total`.
    pub batches: Counter,
    /// `serve_batched_requests_total` — requests that shared a batch.
    pub batched_requests: Counter,
    /// `serve_templates_built_total` — device uploads paid.
    pub templates_built: Counter,
    /// `serve_queue_depth` — queued requests right now.
    pub queue_depth: Gauge,
    /// `serve_queue_depth_hwm` — deepest the queue has ever been.
    pub queue_depth_hwm: Gauge,
    /// `serve_queue_wait_us` — host time from enqueue to worker pickup.
    pub queue_wait: HistogramHandle,
    /// `serve_service_us` — host time executing (or replaying from cache).
    pub service: HistogramHandle,
    /// `serve_batch_size` — requests per served batch.
    pub batch_size: HistogramHandle,
    /// `serve_cache_hits_total` / misses / insertions / evictions.
    pub cache_hits: Counter,
    pub cache_misses: Counter,
    pub cache_insertions: Counter,
    pub cache_evictions: Counter,
    /// `serve_cache_entries` / `serve_cache_bytes` — current occupancy.
    pub cache_entries: Gauge,
    pub cache_bytes: Gauge,
    /// `serve_tuner_probes_total` — autotuner probe executions.
    pub tuner_probes: Counter,
    /// `serve_retries_total` — extra execution attempts consumed.
    pub retries: Counter,
    /// `serve_retry_successes_total` — requests that succeeded on attempt
    /// two or later.
    pub retry_successes: Counter,
    /// `serve_hedges_total` — hedged duplicates actually launched.
    pub hedges: Counter,
    /// `serve_hedge_wins_total` — hedged duplicates that produced the
    /// winning response.
    pub hedge_wins: Counter,
    /// `serve_hedge_cancels_total` — hedge losers cancelled before (or
    /// discarded after) execution.
    pub hedge_cancels: Counter,
    /// `serve_shed_total{reason="tenant_rate"}` — token-bucket sheds.
    pub shed_tenant: Counter,
    /// `serve_shed_total{reason="queue_pressure"}` — watermark sheds.
    pub shed_queue: Counter,
    /// `serve_breaker_trips_total` — Closed→Open transitions.
    pub breaker_trips: Counter,
    /// `serve_breaker_open` — breaker keys currently open.
    pub breaker_open: Gauge,
    /// `serve_cpu_fallbacks_total` — responses served by the CPU reference
    /// path while a breaker was open.
    pub fallbacks: Counter,
    /// `serve_stale_served_total` — cache hits past TTL served degraded.
    pub stale_served: Counter,
    /// `serve_refreshes_total` — background refreshes enqueued for stale
    /// entries.
    pub refreshes: Counter,
    /// `serve_degraded_total` — all degraded responses (stale + fallback).
    pub degraded: Counter,
    /// `serve_worker_panics_total` — panics that escaped a request and
    /// crashed a worker (supervised).
    pub worker_panics: Counter,
    /// `serve_worker_restarts_total` — supervised restarts granted.
    pub worker_restarts: Counter,
    /// `serve_workers_dead` — slots that exhausted their restart budget.
    pub workers_dead: Gauge,
    /// `serve_crash_requeued_total` — in-flight requests of a crashed
    /// worker put back on the queue.
    pub crash_requeued: Counter,
    /// `serve_crash_failed_total` — in-flight requests of a crashed worker
    /// failed (policy or requeue budget).
    pub crash_failed: Counter,
    /// `serve_warmup_entries_total` — cache entries loaded from the warmup
    /// snapshot at startup.
    pub warmup_loaded: Counter,
    /// `serve_algo_service_us{algo=…}`, indexed in `Algo::ALL` order.
    per_algo_service: Vec<HistogramHandle>,
}

impl ServeMetrics {
    /// Register every fixed series on `registry`.
    pub fn new(registry: &Registry) -> ServeMetrics {
        let per_algo_service = Algo::ALL
            .iter()
            .map(|a| registry.histogram_with("serve_algo_service_us", &[("algo", a.label())]))
            .collect();
        ServeMetrics {
            submitted: registry.counter("serve_requests_submitted_total"),
            rejected_full: registry
                .counter_with("serve_requests_rejected_total", &[("reason", "queue_full")]),
            rejected_invalid: registry
                .counter_with("serve_requests_rejected_total", &[("reason", "invalid")]),
            completed: registry.counter("serve_requests_completed_total"),
            failed: registry.counter("serve_requests_failed_total"),
            deadline_overruns: registry.counter("serve_deadline_overruns_total"),
            batches: registry.counter("serve_batches_total"),
            batched_requests: registry.counter("serve_batched_requests_total"),
            templates_built: registry.counter("serve_templates_built_total"),
            queue_depth: registry.gauge("serve_queue_depth"),
            queue_depth_hwm: registry.gauge("serve_queue_depth_hwm"),
            queue_wait: registry.histogram("serve_queue_wait_us"),
            service: registry.histogram("serve_service_us"),
            batch_size: registry.histogram("serve_batch_size"),
            cache_hits: registry.counter("serve_cache_hits_total"),
            cache_misses: registry.counter("serve_cache_misses_total"),
            cache_insertions: registry.counter("serve_cache_insertions_total"),
            cache_evictions: registry.counter("serve_cache_evictions_total"),
            cache_entries: registry.gauge("serve_cache_entries"),
            cache_bytes: registry.gauge("serve_cache_bytes"),
            tuner_probes: registry.counter("serve_tuner_probes_total"),
            retries: registry.counter("serve_retries_total"),
            retry_successes: registry.counter("serve_retry_successes_total"),
            hedges: registry.counter("serve_hedges_total"),
            hedge_wins: registry.counter("serve_hedge_wins_total"),
            hedge_cancels: registry.counter("serve_hedge_cancels_total"),
            shed_tenant: registry.counter_with("serve_shed_total", &[("reason", "tenant_rate")]),
            shed_queue: registry.counter_with("serve_shed_total", &[("reason", "queue_pressure")]),
            breaker_trips: registry.counter("serve_breaker_trips_total"),
            breaker_open: registry.gauge("serve_breaker_open"),
            fallbacks: registry.counter("serve_cpu_fallbacks_total"),
            stale_served: registry.counter("serve_stale_served_total"),
            refreshes: registry.counter("serve_refreshes_total"),
            degraded: registry.counter("serve_degraded_total"),
            worker_panics: registry.counter("serve_worker_panics_total"),
            worker_restarts: registry.counter("serve_worker_restarts_total"),
            workers_dead: registry.gauge("serve_workers_dead"),
            crash_requeued: registry.counter("serve_crash_requeued_total"),
            crash_failed: registry.counter("serve_crash_failed_total"),
            warmup_loaded: registry.counter("serve_warmup_entries_total"),
            per_algo_service,
            registry: registry.clone(),
        }
    }

    /// The registry all these handles live on.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The per-algorithm service-latency histogram.
    pub fn algo_service(&self, algo: Algo) -> &HistogramHandle {
        &self.per_algo_service[algo_idx(algo)]
    }

    /// Per-tenant request counter (`serve_tenant_requests_total{tenant=…}`).
    /// Takes the registry lock — tenants are an open set.
    pub fn tenant_requests(&self, tenant: &str) -> Counter {
        self.registry
            .counter_with("serve_tenant_requests_total", &[("tenant", tenant)])
    }

    /// Per-tenant service-latency histogram
    /// (`serve_tenant_service_us{tenant=…}`).
    pub fn tenant_service(&self, tenant: &str) -> HistogramHandle {
        self.registry
            .histogram_with("serve_tenant_service_us", &[("tenant", tenant)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_algo_has_its_own_series() {
        let r = Registry::new();
        let m = ServeMetrics::new(&r);
        for a in Algo::ALL {
            m.algo_service(a).record(10);
        }
        let series = r.histograms_of("serve_algo_service_us");
        assert_eq!(series.len(), Algo::ALL.len());
        assert!(series.iter().all(|(_, h)| h.count == 1));
    }

    #[test]
    fn shed_reasons_share_one_series_family() {
        let r = Registry::new();
        let m = ServeMetrics::new(&r);
        m.shed_tenant.inc();
        m.shed_queue.add(2);
        let series = r.series_of("serve_shed_total");
        assert_eq!(series.len(), 2);
        let total: u64 = series.iter().map(|(_, v)| v).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn tenant_series_accumulate_per_label() {
        let r = Registry::new();
        let m = ServeMetrics::new(&r);
        m.tenant_requests("a").inc();
        m.tenant_requests("a").inc();
        m.tenant_requests("b").inc();
        let series = r.series_of("serve_tenant_requests_total");
        assert_eq!(series.len(), 2);
        let total: u64 = series.iter().map(|(_, v)| v).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn disabled_registry_silences_all_handles() {
        let r = Registry::new();
        let m = ServeMetrics::new(&r);
        r.set_enabled(false);
        m.submitted.inc();
        m.queue_wait.record(5);
        m.algo_service(Algo::Bfs).record(5);
        assert_eq!(m.submitted.get(), 0);
        assert_eq!(m.queue_wait.snapshot().count, 0);
    }
}
