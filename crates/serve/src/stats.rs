//! Latency accounting: percentile summaries for the server and loadgen.

use crate::json::{self, Value};
use std::time::Duration;

/// A set of observed durations with percentile queries. Samples are stored
/// raw (microseconds) — the workloads here are tens of thousands of
/// requests at most, so exact percentiles are affordable and reproducible.
#[derive(Clone, Debug, Default)]
pub struct LatencyHistogram {
    samples_us: Vec<u64>,
}

impl LatencyHistogram {
    pub fn new() -> LatencyHistogram {
        LatencyHistogram::default()
    }

    pub fn record(&mut self, d: Duration) {
        self.samples_us.push(d.as_micros() as u64);
    }

    pub fn len(&self) -> usize {
        self.samples_us.len()
    }

    pub fn is_empty(&self) -> bool {
        self.samples_us.is_empty()
    }

    /// Exact percentile (nearest-rank); 0 when empty.
    pub fn percentile_us(&self, p: f64) -> u64 {
        if self.samples_us.is_empty() {
            return 0;
        }
        let mut sorted = self.samples_us.clone();
        sorted.sort_unstable();
        let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
        sorted[rank.clamp(1, sorted.len()) - 1]
    }

    pub fn mean_us(&self) -> u64 {
        if self.samples_us.is_empty() {
            0
        } else {
            self.samples_us.iter().sum::<u64>() / self.samples_us.len() as u64
        }
    }

    pub fn max_us(&self) -> u64 {
        self.samples_us.iter().copied().max().unwrap_or(0)
    }

    /// Summary with the standard serving percentiles.
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            count: self.len() as u64,
            p50_us: self.percentile_us(50.0),
            p95_us: self.percentile_us(95.0),
            p99_us: self.percentile_us(99.0),
            mean_us: self.mean_us(),
            max_us: self.max_us(),
        }
    }
}

/// Point-in-time percentile summary.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LatencySummary {
    pub count: u64,
    pub p50_us: u64,
    pub p95_us: u64,
    pub p99_us: u64,
    pub mean_us: u64,
    pub max_us: u64,
}

impl LatencySummary {
    /// Summarize a registry histogram snapshot. The server's scheduler
    /// accounts latency on `maxwarp_obs` histograms (the single source of
    /// truth); this bridges those into the existing summary/JSON shape.
    /// Quantiles are bucketed (≤ 6.25 % high), mean and max are exact.
    pub fn from_hist(h: &maxwarp_obs::HistSnapshot) -> LatencySummary {
        let (p50, p95, p99) = h.percentiles();
        LatencySummary {
            count: h.count,
            p50_us: p50,
            p95_us: p95,
            p99_us: p99,
            mean_us: h.mean(),
            max_us: h.max,
        }
    }

    pub fn to_json(&self) -> Value {
        json::obj(vec![
            ("count", json::n(self.count as f64)),
            ("p50_us", json::n(self.p50_us as f64)),
            ("p95_us", json::n(self.p95_us as f64)),
            ("p99_us", json::n(self.p99_us as f64)),
            ("mean_us", json::n(self.mean_us as f64)),
            ("max_us", json::n(self.max_us as f64)),
        ])
    }
}

impl std::fmt::Display for LatencySummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "p50={}us p95={}us p99={}us mean={}us max={}us (n={})",
            self.p50_us, self.p95_us, self.p99_us, self.mean_us, self.max_us, self.count
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_nearest_rank() {
        let mut h = LatencyHistogram::new();
        for us in 1..=100u64 {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.percentile_us(50.0), 50);
        assert_eq!(h.percentile_us(95.0), 95);
        assert_eq!(h.percentile_us(99.0), 99);
        assert_eq!(h.percentile_us(100.0), 100);
        assert_eq!(h.mean_us(), 50); // (5050 / 100) truncated
        assert_eq!(h.max_us(), 100);
        assert_eq!(h.summary().count, 100);
    }

    #[test]
    fn empty_histogram_is_all_zeroes() {
        let h = LatencyHistogram::new();
        assert_eq!(h.summary(), LatencySummary::default());
    }

    #[test]
    fn single_sample() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_micros(7));
        let s = h.summary();
        assert_eq!((s.p50_us, s.p99_us, s.max_us), (7, 7, 7));
    }
}
