//! The request scheduler: bounded admission queue, supervised worker pool,
//! same-graph batching, resilience policy enforcement, and the glue
//! between cache, tuner, and executor.
//!
//! Life of a request:
//!
//! 1. **Admission** — `submit` validates the graph handle and any pinned
//!    method, charges the tenant's token bucket (when admission control is
//!    on), then tries to enqueue. With shedding off, a full queue is a
//!    structured [`ServeError::QueueFull`]; with shedding on, crossing the
//!    high-watermark starts priority triage — the queue stops growing, and
//!    a higher-priority arrival displaces the most recent lowest-priority
//!    occupant (who gets a structured [`ServeError::Shed`]). Either way,
//!    errors here mean nothing was enqueued.
//! 2. **Batching** — a worker pops the oldest request, then pulls up to
//!    `batch_max - 1` more requests *for the same graph* out of the queue
//!    (preserving arrival order for everyone else). The batch shares one
//!    device template, so the graph upload is paid once per graph rather
//!    than once per request.
//! 3. **Resolution** — the method comes from the request pin, the
//!    `MAXWARP_METHOD` override, the tuning table, or a fresh probe (in
//!    that order; see [`crate::autotune`]).
//! 4. **Cache** — the resolved `(graph, query, method, device)` key is
//!    looked up; hits replay the recorded payload and `KernelStats`
//!    (byte-identical by the template-layout argument in [`crate::exec`]).
//!    With a stale TTL configured, hits past it are still served — flagged
//!    `degraded` — while a background refresh re-executes.
//! 5. **Execution** — misses run on a fresh device with the request's
//!    deadline wired into the watchdog. Panics are caught per request; a
//!    poisoned request fails alone, the worker and its batch survive.
//!    Retriable faults (launch errors, panics) consume the request's retry
//!    budget with jittered backoff between attempts. With the circuit
//!    breaker on, K consecutive faults per `(graph, algorithm)` open the
//!    breaker and route requests to the CPU reference implementation
//!    (degraded, zeroed stats) until a half-open trial succeeds.
//!
//! ## Supervision
//!
//! A panic that escapes the per-request `catch_unwind` (a worker-level
//! crash — in production a driver bug, here injected by [`ChaosConfig`])
//! no longer poisons the server: each worker slot runs under a supervisor
//! that records the panic, recovers the slot's in-flight requests
//! (requeue-or-fail per [`CrashPolicy`]), and restarts the worker with
//! jittered backoff up to [`RestartPolicy::max_restarts`] times. A slot
//! out of budget is [`WorkerHealth::Dead`]; when every slot is dead the
//! queue is drained with [`ServeError::WorkersDead`] and new submissions
//! fail fast. Server locks recover from poisoning (`into_inner`) — a
//! crashed worker cannot take the service down with it.
//!
//! ## Hedging
//!
//! A request whose [`RetryPolicy::hedge_after`] elapses without a response
//! gets a duplicate enqueued by the hedger thread; whichever twin finishes
//! first wins the (single) reply channel and the loser is cancelled —
//! skipped if still queued, discarded at the send gate if it raced.
//!
//! ## Observability
//!
//! Every server owns a [`maxwarp_obs::Registry`] (so concurrent servers in
//! tests don't bleed into each other) holding all scheduler/cache/tuner
//! series — see [`crate::metrics::ServeMetrics`] for the inventory — and a
//! [`maxwarp_obs::Tracer`] that, when enabled, records one span tree per
//! request. Both are pure observers, and so is every resilience policy:
//! non-degraded responses stay byte-identical with every feature on or off
//! (asserted by `tests/obs_identity.rs` and `tests/resilience.rs`).

use crate::autotune::Tuner;
use crate::cache::{
    gpu_fingerprint, sharded_fingerprint, CacheKey, CacheStats, CachedResult, Freshness,
    ResultCache,
};
use crate::exec::{
    execute_labeled, execute_sharded, sharded_supported, DeviceTemplate, ShardedTemplate,
};
use crate::json::{self, Value};
use crate::metrics::ServeMetrics;
use crate::request::{Priority, Request, Response, ResponseSource, ResultData, ServeError};
use crate::resilience::{
    chaos_salt, BreakerState, ChaosConfig, CircuitBreaker, CrashPolicy, ResilienceConfig,
    RetryPolicy, ShedReason, TokenBucket,
};
use crate::stats::LatencySummary;
use crate::store::{GraphEntry, GraphHandle, GraphStore};
use maxwarp::{ExecConfig, Method};
use maxwarp_cpu::FallbackData;
use maxwarp_graph::{atomic as store_atomic, Csr};
use maxwarp_obs::{ActiveSpan, Registry, Tracer};
use maxwarp_shard::{CutStrategy, LinkConfig, PartitionSpec};
use maxwarp_simt::{GpuConfig, KernelStats, LaunchError, SimtError};
use std::collections::{HashMap, HashSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Lock a mutex, recovering from poisoning. A poisoned server lock means a
/// worker panicked while holding it; the supervisor restarts the worker,
/// and every guarded structure here is valid at every step (no multi-field
/// invariants span an unwind point), so the data is safe to keep serving.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// Server construction parameters. `ServerConfig::new` reads the
/// environment knobs; tests use [`ServerConfig::for_tests`] to stay
/// hermetic.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker threads (simulated GPUs served concurrently).
    pub workers: usize,
    /// Bounded submission-queue depth (`MAXWARP_QUEUE_DEPTH`).
    pub queue_capacity: usize,
    /// Maximum same-graph requests served per batch.
    pub batch_max: usize,
    /// Simulated device preset every worker runs.
    pub gpu: GpuConfig,
    /// Kernel launch geometry.
    pub exec: ExecConfig,
    /// Result-cache capacity in entries (`MAXWARP_CACHE_CAP`); 0 disables.
    pub cache_capacity: usize,
    /// Persistent tuning-table path (`MAXWARP_TUNING`; `0`/`off` disables).
    pub tuning_path: Option<PathBuf>,
    /// Probe-sample size for the autotuner (vertices).
    pub tuner_sample: u32,
    /// Method override applied to every request (`MAXWARP_METHOD`).
    pub method_pin: Option<Method>,
    /// Start with workers paused (deterministic queue tests); call
    /// [`Server::resume`] to begin draining.
    pub paused: bool,
    /// Deadline in simulated cycles for requests that don't carry one.
    pub default_deadline: Option<u64>,
    /// Whether the metrics registry records (`MAXWARP_OBS`; default on).
    pub obs: bool,
    /// Whether request span tracing records (`MAXWARP_OBS_TRACE`; default
    /// off — spans cost an allocation per stage).
    pub trace: bool,
    /// Resilience policy bundle (retry/hedge defaults, admission control,
    /// stale TTL, circuit breaker, supervision). The default is everything
    /// off except supervision — see [`ResilienceConfig`].
    pub resilience: ResilienceConfig,
    /// Cache-warmup snapshot path (`MAXWARP_WARMUP`; unset disables).
    /// Loaded at startup, written at shutdown, framed through the
    /// crash-safe [`maxwarp_graph::atomic`] store.
    pub warmup_path: Option<PathBuf>,
    /// Seeded fault injection for the chaos harness; `None` in production.
    pub chaos: Option<ChaosConfig>,
    /// Shard devices per graph (`MAXWARP_SHARDS`; default 1 =
    /// single-device). Above 1, BFS/SSSP/CC/PageRank requests run on the
    /// multi-device BSP executor (`maxwarp-shard`) — payloads stay
    /// byte-identical to single-device, the device fingerprint folds the
    /// partition spec so cache entries never collide, and workers pick
    /// work with graph affinity. Other algorithms stay single-device.
    pub shards: u32,
    /// Vertex-to-shard cut strategy (`MAXWARP_CUT`: `block`/`degree`/`bfs`).
    pub cut: CutStrategy,
    /// Interconnect model for the shard fabric (`MAXWARP_LINK_BW` /
    /// `MAXWARP_LINK_LAT` / `MAXWARP_LINK_FANOUT`).
    pub link: LinkConfig,
}

impl ServerConfig {
    /// Defaults plus environment overrides.
    pub fn new(gpu: GpuConfig) -> ServerConfig {
        let mut cfg = ServerConfig::for_tests(gpu);
        cfg.tuning_path = match std::env::var("MAXWARP_TUNING") {
            Ok(v) if v == "0" || v.eq_ignore_ascii_case("off") => None,
            Ok(v) => Some(PathBuf::from(v)),
            Err(_) => Some(PathBuf::from("results/tuning.json")),
        };
        if let Ok(v) = std::env::var("MAXWARP_QUEUE_DEPTH") {
            if let Ok(d) = v.parse() {
                cfg.queue_capacity = d;
            }
        }
        if let Ok(v) = std::env::var("MAXWARP_CACHE_CAP") {
            if let Ok(c) = v.parse() {
                cfg.cache_capacity = c;
            }
        }
        if let Ok(v) = std::env::var("MAXWARP_METHOD") {
            match Method::parse(&v) {
                Some(m) => cfg.method_pin = Some(m),
                None => eprintln!("[serve] ignoring unparseable MAXWARP_METHOD={v}"),
            }
        }
        if let Ok(v) = std::env::var("MAXWARP_OBS") {
            cfg.obs = !(v == "0" || v.eq_ignore_ascii_case("off"));
        }
        if let Ok(v) = std::env::var("MAXWARP_OBS_TRACE") {
            cfg.trace = v == "1" || v.eq_ignore_ascii_case("on");
        }
        cfg.warmup_path = match std::env::var("MAXWARP_WARMUP") {
            Ok(v) if v == "0" || v.eq_ignore_ascii_case("off") => None,
            Ok(v) => Some(PathBuf::from(v)),
            Err(_) => None,
        };
        cfg.resilience = ResilienceConfig::from_env();
        if let Ok(v) = std::env::var("MAXWARP_SHARDS") {
            if let Ok(s) = v.parse::<u32>() {
                cfg.shards = s.max(1);
            }
        }
        if let Ok(v) = std::env::var("MAXWARP_CUT") {
            cfg.cut = CutStrategy::parse(&v);
        }
        cfg.link = LinkConfig::from_env();
        cfg
    }

    /// Defaults with **no** environment reads, no tuning persistence, no
    /// warmup snapshot, and every resilience feature off.
    pub fn for_tests(gpu: GpuConfig) -> ServerConfig {
        ServerConfig {
            workers: 2,
            queue_capacity: 64,
            batch_max: 8,
            gpu,
            exec: ExecConfig::default(),
            cache_capacity: 256,
            tuning_path: None,
            tuner_sample: 4096,
            method_pin: None,
            paused: false,
            default_deadline: None,
            obs: true,
            trace: false,
            resilience: ResilienceConfig::default(),
            warmup_path: None,
            chaos: None,
            shards: 1,
            cut: CutStrategy::Block,
            link: LinkConfig::default(),
        }
    }
}

/// Health of one supervised worker slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkerHealth {
    /// Serving (possibly after restarts).
    Running {
        /// Supervised restarts this slot has consumed.
        restarts: u32,
    },
    /// Restart budget exhausted; the slot will never serve again.
    Dead {
        /// Restarts consumed before giving up.
        restarts: u32,
    },
}

/// Resilience counters in a [`ServerSnapshot`] — all read back from the
/// metrics registry.
#[derive(Clone, Copy, Debug, Default)]
pub struct ResilienceSnapshot {
    pub retries: u64,
    pub retry_successes: u64,
    pub hedges: u64,
    pub hedge_wins: u64,
    pub hedge_cancels: u64,
    pub shed_tenant: u64,
    pub shed_queue: u64,
    pub breaker_trips: u64,
    pub breaker_open: u64,
    pub fallbacks: u64,
    pub stale_served: u64,
    pub refreshes: u64,
    pub degraded: u64,
    pub worker_panics: u64,
    pub worker_restarts: u64,
    pub workers_dead: u64,
    pub crash_requeued: u64,
    pub crash_failed: u64,
    pub warmup_loaded: u64,
}

impl ResilienceSnapshot {
    pub fn to_json(&self) -> Value {
        json::obj(vec![
            ("retries", json::n(self.retries as f64)),
            ("retry_successes", json::n(self.retry_successes as f64)),
            ("hedges", json::n(self.hedges as f64)),
            ("hedge_wins", json::n(self.hedge_wins as f64)),
            ("hedge_cancels", json::n(self.hedge_cancels as f64)),
            ("shed_tenant", json::n(self.shed_tenant as f64)),
            ("shed_queue", json::n(self.shed_queue as f64)),
            ("breaker_trips", json::n(self.breaker_trips as f64)),
            ("breaker_open", json::n(self.breaker_open as f64)),
            ("fallbacks", json::n(self.fallbacks as f64)),
            ("stale_served", json::n(self.stale_served as f64)),
            ("refreshes", json::n(self.refreshes as f64)),
            ("degraded", json::n(self.degraded as f64)),
            ("worker_panics", json::n(self.worker_panics as f64)),
            ("worker_restarts", json::n(self.worker_restarts as f64)),
            ("workers_dead", json::n(self.workers_dead as f64)),
            ("crash_requeued", json::n(self.crash_requeued as f64)),
            ("crash_failed", json::n(self.crash_failed as f64)),
            ("warmup_loaded", json::n(self.warmup_loaded as f64)),
        ])
    }
}

/// Point-in-time view of everything the server counts. Assembled from the
/// server's metrics registry — there is no second set of books.
#[derive(Clone, Debug)]
pub struct ServerSnapshot {
    pub submitted: u64,
    pub rejected_full: u64,
    pub rejected_invalid: u64,
    pub completed: u64,
    pub failed: u64,
    /// Failures caused by the per-request cycle deadline (watchdog).
    pub deadline_overruns: u64,
    /// Batches served (each covers ≥ 1 request).
    pub batches: u64,
    /// Requests that shared a batch with at least one other request.
    pub batched_requests: u64,
    pub templates_built: u64,
    /// Requests queued right now.
    pub queue_depth: u64,
    /// Deepest the queue has ever been.
    pub queue_depth_hwm: u64,
    pub queue_wait: LatencySummary,
    pub service: LatencySummary,
    pub cache: CacheStats,
    pub tuner_decisions: u64,
    pub tuner_probes: u64,
    pub per_tenant: Vec<(String, u64)>,
    /// Retry/hedge/shed/breaker/supervision counters.
    pub resilience: ResilienceSnapshot,
}

impl ServerSnapshot {
    pub fn to_json(&self) -> Value {
        json::obj(vec![
            ("submitted", json::n(self.submitted as f64)),
            ("rejected_full", json::n(self.rejected_full as f64)),
            ("rejected_invalid", json::n(self.rejected_invalid as f64)),
            ("completed", json::n(self.completed as f64)),
            ("failed", json::n(self.failed as f64)),
            ("deadline_overruns", json::n(self.deadline_overruns as f64)),
            ("batches", json::n(self.batches as f64)),
            ("batched_requests", json::n(self.batched_requests as f64)),
            ("templates_built", json::n(self.templates_built as f64)),
            ("queue_depth", json::n(self.queue_depth as f64)),
            ("queue_depth_hwm", json::n(self.queue_depth_hwm as f64)),
            ("queue_wait", self.queue_wait.to_json()),
            ("service", self.service.to_json()),
            ("cache", self.cache.to_json()),
            ("tuner_decisions", json::n(self.tuner_decisions as f64)),
            ("tuner_probes", json::n(self.tuner_probes as f64)),
            (
                "per_tenant",
                Value::Obj(
                    self.per_tenant
                        .iter()
                        .map(|(t, c)| (t.clone(), json::n(*c as f64)))
                        .collect(),
                ),
            ),
            ("resilience", self.resilience.to_json()),
        ])
    }
}

/// Shared first-result-wins flag between a hedged request and its twin.
struct HedgeState {
    done: AtomicBool,
}

/// A registered hedge the hedger thread is timing.
struct HedgeEntry {
    due: Instant,
    req: Request,
    tx: mpsc::Sender<Result<Response, ServeError>>,
    state: Arc<HedgeState>,
}

struct Job {
    req: Request,
    enqueued: Instant,
    tx: mpsc::Sender<Result<Response, ServeError>>,
    /// Root span of the request's trace (no-op guard when tracing is off).
    span: ActiveSpan,
    /// `queue_wait` child span, open from enqueue to worker pickup.
    queue_span: ActiveSpan,
    /// Crash-recovery requeues this request has consumed.
    crash_requeues: u32,
    /// First-result-wins gate shared with a hedged twin, if any.
    hedge: Option<Arc<HedgeState>>,
    /// True for the hedged duplicate (the late twin).
    is_hedge_dup: bool,
    /// Set on internal background-refresh jobs: the cache key being
    /// refreshed. Internal jobs bypass the cache read, never reply to a
    /// client, and skip client-facing metrics.
    refresh_key: Option<CacheKey>,
}

/// What a crashed worker was holding — enough to requeue or fail each
/// in-flight request.
struct InflightStub {
    req: Request,
    tx: mpsc::Sender<Result<Response, ServeError>>,
    crash_requeues: u32,
    hedge: Option<Arc<HedgeState>>,
    is_hedge_dup: bool,
    refresh_key: Option<CacheKey>,
}

/// One supervised worker slot.
struct Slot {
    health: Mutex<WorkerHealth>,
    /// The jobs this slot's worker is currently serving (cleared as each
    /// completes); the supervisor recovers them after a crash.
    inflight: Mutex<Vec<Option<InflightStub>>>,
}

/// A submitted request's receipt; [`Ticket::wait`] blocks for the response.
pub struct Ticket {
    rx: mpsc::Receiver<Result<Response, ServeError>>,
}

impl Ticket {
    /// Block until the request completes (or the server drops it).
    pub fn wait(self) -> Result<Response, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::WorkerLost))
    }
}

impl std::fmt::Debug for Ticket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Ticket { .. }")
    }
}

struct Inner {
    cfg: ServerConfig,
    store: GraphStore,
    queue: Mutex<VecDeque<Job>>,
    cv: Condvar,
    cache: Mutex<ResultCache>,
    tuner: Mutex<Tuner>,
    /// Device templates keyed by `(handle, with_reverse)`.
    templates: Mutex<HashMap<(u32, bool), Arc<DeviceTemplate>>>,
    /// Sharded templates keyed by handle (the cut and shard count are fixed
    /// per server config). Built only when `cfg.shards > 1`.
    sharded_templates: Mutex<HashMap<u32, Arc<ShardedTemplate>>>,
    metrics: ServeMetrics,
    tracer: Tracer,
    shutdown: AtomicBool,
    paused: AtomicBool,
    /// Fingerprint of `cfg.gpu` — the device half of every cache key.
    device_fp: u64,
    /// Supervised worker slots (health + in-flight recovery state).
    slots: Vec<Slot>,
    /// Slots whose restart budget is exhausted.
    dead_workers: AtomicUsize,
    /// Per-tenant admission token buckets (admission control on only).
    buckets: Mutex<HashMap<String, TokenBucket>>,
    /// Per-(graph, algorithm) circuit breaker (consulted only when
    /// `cfg.resilience.breaker` is set).
    breaker: Mutex<CircuitBreaker>,
    /// Cache keys with a background refresh already queued (dedupe).
    refreshing: Mutex<HashSet<CacheKey>>,
    /// Hedges waiting for their deadline.
    hedges: Mutex<Vec<HedgeEntry>>,
    hedge_cv: Condvar,
    /// Fault-injection plan; swappable at runtime by the chaos harness.
    chaos: Mutex<Option<ChaosConfig>>,
    /// Sequence counters for the chaos decision streams (one per class of
    /// injection point so the streams stay independent).
    chaos_batch_seq: AtomicU64,
    chaos_exec_seq: AtomicU64,
}

/// The graph-query service: a [`GraphStore`], a bounded queue, and a pool
/// of supervised workers each driving a simulated GPU.
pub struct Server {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
    hedger: Option<JoinHandle<()>>,
}

impl Server {
    /// Start the worker pool (and load the warmup snapshot, if configured).
    pub fn start(cfg: ServerConfig) -> Server {
        // The device half of every cache key: a sharded server folds the
        // partition spec and interconnect model in, so sharded and
        // single-device results (identical payloads, different stats)
        // never share an entry.
        let device_fp = {
            let base = gpu_fingerprint(&cfg.gpu);
            if cfg.shards > 1 {
                sharded_fingerprint(base, cfg.shards, cfg.cut.label(), &cfg.link)
            } else {
                base
            }
        };
        let registry = Registry::new();
        registry.set_enabled(cfg.obs);
        let metrics = ServeMetrics::new(&registry);
        let tracer = Tracer::new(cfg.trace);
        let mut tuner = Tuner::new(cfg.tuning_path.clone(), cfg.tuner_sample, cfg.method_pin);
        tuner.set_probe_counter(metrics.tuner_probes.clone());
        let mut cache = ResultCache::with_counters(
            cfg.cache_capacity,
            metrics.cache_hits.clone(),
            metrics.cache_misses.clone(),
            metrics.cache_insertions.clone(),
            metrics.cache_evictions.clone(),
        );
        if let Some(path) = &cfg.warmup_path {
            match store_atomic::read_or_quarantine(path) {
                store_atomic::Recovered::Ok(payload) => {
                    let n = cache.import_snapshot(&payload, Instant::now());
                    metrics.warmup_loaded.add(n as u64);
                }
                store_atomic::Recovered::Missing => {}
                store_atomic::Recovered::Quarantined(dst, msg) => {
                    eprintln!(
                        "[serve] warmup snapshot corrupt ({msg}); quarantined to {:?}, starting cold",
                        dst
                    );
                }
            }
        }
        let slots = (0..cfg.workers.max(1))
            .map(|_| Slot {
                health: Mutex::new(WorkerHealth::Running { restarts: 0 }),
                inflight: Mutex::new(Vec::new()),
            })
            .collect();
        let breaker = CircuitBreaker::new(cfg.resilience.breaker.unwrap_or_default());
        let inner = Arc::new(Inner {
            cache: Mutex::new(cache),
            tuner: Mutex::new(tuner),
            store: GraphStore::new(),
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            templates: Mutex::new(HashMap::new()),
            sharded_templates: Mutex::new(HashMap::new()),
            metrics,
            tracer,
            shutdown: AtomicBool::new(false),
            paused: AtomicBool::new(cfg.paused),
            device_fp,
            slots,
            dead_workers: AtomicUsize::new(0),
            buckets: Mutex::new(HashMap::new()),
            breaker: Mutex::new(breaker),
            refreshing: Mutex::new(HashSet::new()),
            hedges: Mutex::new(Vec::new()),
            hedge_cv: Condvar::new(),
            chaos: Mutex::new(cfg.chaos),
            chaos_batch_seq: AtomicU64::new(0),
            chaos_exec_seq: AtomicU64::new(0),
            cfg,
        });
        let workers = (0..inner.slots.len())
            .map(|i| {
                let inner = Arc::clone(&inner);
                let spawned = std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_entry(&inner, i));
                match spawned {
                    Ok(h) => h,
                    Err(e) => panic!("spawn worker: {e}"),
                }
            })
            .collect();
        let hedger = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("serve-hedger".to_string())
                .spawn(move || hedger_loop(&inner))
                .ok()
        };
        Server {
            inner,
            workers,
            hedger,
        }
    }

    /// Register a graph for querying.
    pub fn register_graph(&self, name: impl Into<String>, csr: Csr) -> GraphHandle {
        self.inner.store.register(name, csr)
    }

    /// Look up a registered graph.
    pub fn graph(&self, h: GraphHandle) -> Option<Arc<GraphEntry>> {
        self.inner.store.get(h)
    }

    /// Admit a request. Errors here mean nothing was enqueued.
    pub fn submit(&self, req: Request) -> Result<Ticket, ServeError> {
        if self.inner.shutdown.load(Ordering::SeqCst) {
            return Err(ServeError::ShuttingDown);
        }
        if self.inner.dead_workers.load(Ordering::SeqCst) >= self.inner.slots.len() {
            return Err(ServeError::WorkersDead);
        }
        // Validate before taking a queue slot: a request that can never
        // execute should not consume capacity.
        if self.inner.store.get(req.graph).is_none() {
            self.inner.metrics.rejected_invalid.inc();
            return Err(ServeError::UnknownGraph(req.graph));
        }
        if let Some(m) = req.method {
            if !req.query.algo().supports(m) {
                self.inner.metrics.rejected_invalid.inc();
                return Err(ServeError::Unsupported {
                    algo: req.query.algo(),
                    method: m.spec(),
                });
            }
        }
        // Admission control: charge the tenant's token bucket.
        if let (Some(sc), Some(tenant)) = (&self.inner.cfg.resilience.shed, &req.tenant) {
            let now = Instant::now();
            let mut buckets = lock(&self.inner.buckets);
            let bucket = buckets
                .entry(tenant.clone())
                .or_insert_with(|| TokenBucket::new(sc.tenant_burst, sc.tenant_rate, now));
            if !bucket.try_take(now) {
                drop(buckets);
                self.inner.metrics.shed_tenant.inc();
                return Err(ServeError::Shed {
                    reason: ShedReason::TenantRate,
                });
            }
        }

        let (tx, rx) = mpsc::channel();
        let policy = req.retry.unwrap_or(self.inner.cfg.resilience.retry);
        // Prepare the hedge registration before `req` moves into the job.
        let hedge_plan = policy.hedge_after.map(|after| {
            (
                after,
                Arc::new(HedgeState {
                    done: AtomicBool::new(false),
                }),
                req.clone(),
            )
        });
        let mut span = self.inner.tracer.begin("request");
        span.arg("algo", req.query.algo().label());
        if let Some(t) = &req.tenant {
            span.arg("tenant", t.clone());
        }
        let queue_span = span.child("queue_wait");
        let job = Job {
            req,
            enqueued: Instant::now(),
            tx: tx.clone(),
            span,
            queue_span,
            crash_requeues: 0,
            hedge: hedge_plan.as_ref().map(|(_, s, _)| Arc::clone(s)),
            is_hedge_dup: false,
            refresh_key: None,
        };
        let cap = self.inner.cfg.queue_capacity;
        let victim = {
            let mut q = lock(&self.inner.queue);
            let victim = match &self.inner.cfg.resilience.shed {
                None => {
                    if q.len() >= cap {
                        drop(q);
                        self.inner.metrics.rejected_full.inc();
                        return Err(ServeError::QueueFull { capacity: cap });
                    }
                    q.push_back(job);
                    None
                }
                Some(sc) => {
                    let watermark =
                        ((cap as f64 * sc.high_watermark).ceil() as usize).clamp(1, cap);
                    if q.len() >= watermark {
                        // Above the watermark the queue stops growing:
                        // either the newcomer outranks the weakest occupant
                        // (displace the most recent of that class) or it is
                        // shed itself.
                        let min_pri = q.iter().map(|j| j.req.priority).min();
                        match min_pri {
                            Some(p) if p < job.req.priority => {
                                let idx = q.iter().rposition(|j| j.req.priority == p);
                                let victim = idx.and_then(|i| q.remove(i));
                                q.push_back(job);
                                victim
                            }
                            _ => {
                                drop(q);
                                self.inner.metrics.shed_queue.inc();
                                return Err(ServeError::Shed {
                                    reason: ShedReason::QueuePressure,
                                });
                            }
                        }
                    } else {
                        q.push_back(job);
                        None
                    }
                }
            };
            let depth = q.len() as u64;
            self.inner.metrics.queue_depth.set(depth);
            self.inner.metrics.queue_depth_hwm.set_max(depth);
            victim
        };
        if let Some(v) = victim {
            self.inner.metrics.shed_queue.inc();
            deliver(
                &v.tx,
                &v.hedge,
                Err(ServeError::Shed {
                    reason: ShedReason::QueuePressure,
                }),
            );
        }
        self.inner.metrics.submitted.inc();
        self.inner.cv.notify_one();
        if let Some((after, state, hedge_req)) = hedge_plan {
            lock(&self.inner.hedges).push(HedgeEntry {
                due: Instant::now() + after,
                req: hedge_req,
                tx,
                state,
            });
            self.inner.hedge_cv.notify_all();
        }
        Ok(Ticket { rx })
    }

    /// Submit and block for the response.
    pub fn call(&self, req: Request) -> Result<Response, ServeError> {
        self.submit(req)?.wait()
    }

    /// Unpause a server started with `paused: true`.
    pub fn resume(&self) {
        self.inner.paused.store(false, Ordering::SeqCst);
        self.inner.cv.notify_all();
    }

    /// Requests currently queued (not yet picked up by a worker).
    pub fn queue_len(&self) -> usize {
        lock(&self.inner.queue).len()
    }

    /// The device fingerprint used in this server's cache keys.
    pub fn device_fingerprint(&self) -> u64 {
        self.inner.device_fp
    }

    /// Health of every supervised worker slot.
    pub fn worker_health(&self) -> Vec<WorkerHealth> {
        self.inner.slots.iter().map(|s| *lock(&s.health)).collect()
    }

    /// Worker slots still able to serve.
    pub fn workers_alive(&self) -> usize {
        self.inner
            .slots
            .len()
            .saturating_sub(self.inner.dead_workers.load(Ordering::SeqCst))
    }

    /// Swap the fault-injection plan at runtime (chaos harness only).
    pub fn set_chaos(&self, chaos: Option<ChaosConfig>) {
        *lock(&self.inner.chaos) = chaos;
    }

    /// Write the cache-warmup snapshot now (also done at shutdown).
    /// Returns `false` when no warmup path is configured or the write
    /// failed.
    pub fn save_warmup(&self) -> bool {
        let Some(path) = &self.inner.cfg.warmup_path else {
            return false;
        };
        let snap = lock(&self.inner.cache).export_snapshot();
        match store_atomic::write(path, &snap) {
            Ok(()) => true,
            Err(e) => {
                eprintln!("[serve] warmup snapshot write failed: {e}");
                false
            }
        }
    }

    /// This server's metrics registry (one per server; servers in the same
    /// process don't share series).
    pub fn registry(&self) -> &Registry {
        self.inner.metrics.registry()
    }

    /// This server's request tracer (no-op unless `cfg.trace`).
    pub fn tracer(&self) -> &Tracer {
        &self.inner.tracer
    }

    /// Prometheus text exposition of every serve-side series, with the
    /// occupancy gauges (queue depth, cache entries/bytes) refreshed first.
    pub fn prometheus_text(&self) -> String {
        self.refresh_gauges();
        self.registry().prometheus_text()
    }

    /// JSON snapshot of the registry (counters/gauges/histogram summaries),
    /// with occupancy gauges refreshed first.
    pub fn metrics_json(&self) -> String {
        self.refresh_gauges();
        self.registry().snapshot_json()
    }

    /// Chrome-trace JSON of every recorded request span.
    pub fn trace_json(&self) -> String {
        self.inner.tracer.chrome_trace_json("maxwarp-serve")
    }

    fn refresh_gauges(&self) {
        let depth = lock(&self.inner.queue).len() as u64;
        self.inner.metrics.queue_depth.set(depth);
        let cache = lock(&self.inner.cache).stats();
        self.inner.metrics.cache_entries.set(cache.entries);
        self.inner.metrics.cache_bytes.set(cache.bytes);
        let open = lock(&self.inner.breaker).open_count();
        self.inner.metrics.breaker_open.set(open);
    }

    /// The cache key this server would use for `(graph, query, method)` —
    /// exposed for tests that reason about hit/miss identity.
    pub fn cache_key(&self, req: &Request, method: Method) -> Option<CacheKey> {
        let entry = self.inner.store.get(req.graph)?;
        Some(CacheKey {
            graph: entry.digest,
            query: req.query.digest(),
            method: method.spec(),
            device: self.inner.device_fp,
        })
    }

    /// Counters, cache, and tuner state in one snapshot, read back from the
    /// metrics registry.
    pub fn snapshot(&self) -> ServerSnapshot {
        self.refresh_gauges();
        let m = &self.inner.metrics;
        let cache = lock(&self.inner.cache).stats();
        let tuner = lock(&self.inner.tuner);
        let per_tenant = m
            .registry()
            .series_of("serve_tenant_requests_total")
            .into_iter()
            .filter_map(|(labels, v)| labels.into_iter().next().map(|(_, t)| (t, v)))
            .collect();
        ServerSnapshot {
            submitted: m.submitted.get(),
            rejected_full: m.rejected_full.get(),
            rejected_invalid: m.rejected_invalid.get(),
            completed: m.completed.get(),
            failed: m.failed.get(),
            deadline_overruns: m.deadline_overruns.get(),
            batches: m.batches.get(),
            batched_requests: m.batched_requests.get(),
            templates_built: m.templates_built.get(),
            queue_depth: lock(&self.inner.queue).len() as u64,
            queue_depth_hwm: m.queue_depth_hwm.get(),
            queue_wait: LatencySummary::from_hist(&m.queue_wait.snapshot()),
            service: LatencySummary::from_hist(&m.service.snapshot()),
            cache,
            tuner_decisions: tuner.decisions() as u64,
            tuner_probes: tuner.probes_run(),
            per_tenant,
            resilience: ResilienceSnapshot {
                retries: m.retries.get(),
                retry_successes: m.retry_successes.get(),
                hedges: m.hedges.get(),
                hedge_wins: m.hedge_wins.get(),
                hedge_cancels: m.hedge_cancels.get(),
                shed_tenant: m.shed_tenant.get(),
                shed_queue: m.shed_queue.get(),
                breaker_trips: m.breaker_trips.get(),
                breaker_open: m.breaker_open.get(),
                fallbacks: m.fallbacks.get(),
                stale_served: m.stale_served.get(),
                refreshes: m.refreshes.get(),
                degraded: m.degraded.get(),
                worker_panics: m.worker_panics.get(),
                worker_restarts: m.worker_restarts.get(),
                workers_dead: m.workers_dead.get(),
                crash_requeued: m.crash_requeued.get(),
                crash_failed: m.crash_failed.get(),
                warmup_loaded: m.warmup_loaded.get(),
            },
        }
    }

    /// Stop accepting work, finish in-flight batches, persist the warmup
    /// snapshot, fail queued requests with [`ServeError::ShuttingDown`],
    /// and join the workers.
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.cv.notify_all();
        self.inner.hedge_cv.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        if let Some(h) = self.hedger.take() {
            let _ = h.join();
        }
        self.save_warmup();
        let drained: Vec<Job> = {
            let mut q = lock(&self.inner.queue);
            q.drain(..).collect()
        };
        for job in drained {
            if let Some(k) = &job.refresh_key {
                lock(&self.inner.refreshing).remove(k);
                continue;
            }
            deliver(&job.tx, &job.hedge, Err(ServeError::ShuttingDown));
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if !self.workers.is_empty() || self.hedger.is_some() {
            self.shutdown_impl();
        }
    }
}

/// Send `result` to the client unless a hedged twin already won the
/// first-result-wins race. Returns whether this caller won.
fn deliver(
    tx: &mpsc::Sender<Result<Response, ServeError>>,
    hedge: &Option<Arc<HedgeState>>,
    result: Result<Response, ServeError>,
) -> bool {
    if let Some(h) = hedge {
        if h.done.swap(true, Ordering::AcqRel) {
            return false;
        }
    }
    let _ = tx.send(result);
    true
}

/// Supervisor for one worker slot: run the worker loop, and on a crash
/// recover its in-flight requests and restart it (bounded, with backoff).
fn worker_entry(inner: &Arc<Inner>, slot: usize) {
    loop {
        let run = catch_unwind(AssertUnwindSafe(|| worker_loop(inner, slot)));
        match run {
            Ok(()) => return, // clean shutdown
            Err(_) => {
                inner.metrics.worker_panics.inc();
                recover_inflight(inner, slot);
                let granted = {
                    let mut health = lock(&inner.slots[slot].health);
                    let restarts = match *health {
                        WorkerHealth::Running { restarts } | WorkerHealth::Dead { restarts } => {
                            restarts
                        }
                    };
                    if restarts >= inner.cfg.resilience.restart.max_restarts {
                        *health = WorkerHealth::Dead { restarts };
                        None
                    } else {
                        *health = WorkerHealth::Running {
                            restarts: restarts + 1,
                        };
                        Some(restarts)
                    }
                };
                match granted {
                    Some(prior) => {
                        inner.metrics.worker_restarts.inc();
                        std::thread::sleep(
                            inner
                                .cfg
                                .resilience
                                .restart
                                .backoff
                                .delay(prior, slot as u64),
                        );
                    }
                    None => {
                        let dead = inner.dead_workers.fetch_add(1, Ordering::SeqCst) + 1;
                        inner.metrics.workers_dead.set(dead as u64);
                        if dead >= inner.slots.len() {
                            // Nobody left to serve: drain the queue with a
                            // structured terminal error.
                            let drained: Vec<Job> = {
                                let mut q = lock(&inner.queue);
                                q.drain(..).collect()
                            };
                            for job in drained {
                                if let Some(k) = &job.refresh_key {
                                    lock(&inner.refreshing).remove(k);
                                    continue;
                                }
                                inner.metrics.failed.inc();
                                deliver(&job.tx, &job.hedge, Err(ServeError::WorkersDead));
                            }
                            inner.metrics.queue_depth.set(0);
                        }
                        return;
                    }
                }
            }
        }
    }
}

/// Requeue or fail everything a crashed worker was serving, per the crash
/// policy.
fn recover_inflight(inner: &Arc<Inner>, slot: usize) {
    let stubs: Vec<InflightStub> = {
        let mut inflight = lock(&inner.slots[slot].inflight);
        inflight.drain(..).flatten().collect()
    };
    for stub in stubs {
        if let Some(k) = &stub.refresh_key {
            // Background refresh: nobody is waiting; just release the
            // dedupe slot so a later stale hit can re-schedule it.
            lock(&inner.refreshing).remove(k);
            continue;
        }
        if let Some(h) = &stub.hedge {
            if h.done.load(Ordering::Acquire) {
                continue; // the twin already answered
            }
        }
        let requeue = match inner.cfg.resilience.crash {
            CrashPolicy::Requeue { max_requeues } => stub.crash_requeues < max_requeues,
            CrashPolicy::Fail => false,
        };
        if requeue {
            let span = inner.tracer.begin("requeue");
            let queue_span = span.child("queue_wait");
            {
                let mut q = lock(&inner.queue);
                q.push_front(Job {
                    req: stub.req,
                    enqueued: Instant::now(),
                    tx: stub.tx,
                    span,
                    queue_span,
                    crash_requeues: stub.crash_requeues + 1,
                    hedge: stub.hedge,
                    is_hedge_dup: stub.is_hedge_dup,
                    refresh_key: None,
                });
                inner.metrics.queue_depth.set(q.len() as u64);
            }
            inner.metrics.crash_requeued.inc();
            inner.cv.notify_one();
        } else {
            inner.metrics.crash_failed.inc();
            inner.metrics.failed.inc();
            deliver(
                &stub.tx,
                &stub.hedge,
                Err(ServeError::WorkerCrashed {
                    requeues: stub.crash_requeues,
                }),
            );
        }
    }
}

/// The hedger: watches registered hedges and enqueues the duplicate when a
/// deadline passes without a response.
fn hedger_loop(inner: &Arc<Inner>) {
    let mut hedges = lock(&inner.hedges);
    loop {
        if inner.shutdown.load(Ordering::SeqCst) {
            return;
        }
        hedges.retain(|e| !e.state.done.load(Ordering::Acquire));
        let now = Instant::now();
        let mut due = Vec::new();
        let mut i = 0;
        while i < hedges.len() {
            if hedges[i].due <= now {
                due.push(hedges.swap_remove(i));
            } else {
                i += 1;
            }
        }
        if !due.is_empty() {
            drop(hedges);
            for e in due {
                if e.state.done.load(Ordering::Acquire) {
                    continue;
                }
                let mut span = inner.tracer.begin("hedge");
                span.arg("algo", e.req.query.algo().label());
                let queue_span = span.child("queue_wait");
                let pushed = {
                    let mut q = lock(&inner.queue);
                    if q.len() >= inner.cfg.queue_capacity {
                        false // queue saturated; the primary is still in flight
                    } else {
                        q.push_back(Job {
                            req: e.req,
                            enqueued: Instant::now(),
                            tx: e.tx,
                            span,
                            queue_span,
                            crash_requeues: 0,
                            hedge: Some(e.state),
                            is_hedge_dup: true,
                            refresh_key: None,
                        });
                        inner.metrics.queue_depth.set(q.len() as u64);
                        true
                    }
                };
                if pushed {
                    inner.metrics.hedges.inc();
                    inner.cv.notify_one();
                }
            }
            hedges = lock(&inner.hedges);
            continue;
        }
        let timeout = hedges
            .iter()
            .map(|e| e.due.saturating_duration_since(now))
            .min()
            .unwrap_or(Duration::from_millis(50));
        let (guard, _) = inner
            .hedge_cv
            .wait_timeout(hedges, timeout.max(Duration::from_micros(100)))
            .unwrap_or_else(|p| p.into_inner());
        hedges = guard;
    }
}

fn worker_loop(inner: &Arc<Inner>, slot: usize) {
    loop {
        let batch = {
            let mut q = lock(&inner.queue);
            loop {
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if !inner.paused.load(Ordering::SeqCst) {
                    let next = pop_affine(&mut q, slot, inner.slots.len(), inner.cfg.shards > 1);
                    if let Some(first) = next {
                        let batch = extract_batch(&mut q, first, inner.cfg.batch_max);
                        inner.metrics.queue_depth.set(q.len() as u64);
                        break batch;
                    }
                }
                q = inner.cv.wait(q).unwrap_or_else(|p| p.into_inner());
            }
        };
        // Record what this worker is about to serve *before* any code that
        // can crash, so the supervisor can recover it.
        {
            let mut inflight = lock(&inner.slots[slot].inflight);
            inflight.clear();
            inflight.extend(batch.iter().map(|j| {
                Some(InflightStub {
                    req: j.req.clone(),
                    tx: j.tx.clone(),
                    crash_requeues: j.crash_requeues,
                    hedge: j.hedge.clone(),
                    is_hedge_dup: j.is_hedge_dup,
                    refresh_key: j.refresh_key.clone(),
                })
            }));
        }
        // Chaos: a worker-level panic, outside the per-request
        // catch_unwind — this genuinely crashes the worker and exercises
        // supervision + in-flight recovery.
        let panic_now = {
            let chaos = *lock(&inner.chaos);
            match chaos {
                Some(c) if c.worker_panic > 0.0 => {
                    let n = inner.chaos_batch_seq.fetch_add(1, Ordering::Relaxed);
                    c.roll(chaos_salt::WORKER_PANIC, n, c.worker_panic)
                }
                _ => false,
            }
        };
        if panic_now {
            panic!("chaos: injected worker panic");
        }
        serve_batch(inner, slot, batch);
        lock(&inner.slots[slot].inflight).clear();
    }
}

/// Pick the next job for worker `slot`. On a sharded server, workers
/// prefer the oldest queued job whose graph handle maps to their slot
/// (graph-affinity placement: the same worker set keeps serving the same
/// graphs, so a graph's shard-template clones stay off the other workers'
/// plates). When no affine job is queued the worker takes the queue head —
/// placement is work-conserving and never idles a worker.
fn pop_affine(q: &mut VecDeque<Job>, slot: usize, workers: usize, affinity: bool) -> Option<Job> {
    if affinity && workers > 1 {
        if let Some(i) = q
            .iter()
            .position(|j| j.req.graph.0 as usize % workers == slot)
        {
            return q.remove(i);
        }
    }
    q.pop_front()
}

/// Pull up to `batch_max - 1` additional same-graph jobs out of the queue,
/// preserving the relative order of everything left behind.
fn extract_batch(q: &mut VecDeque<Job>, first: Job, batch_max: usize) -> Vec<Job> {
    let handle = first.req.graph;
    let mut batch = vec![first];
    let mut i = 0;
    while i < q.len() && batch.len() < batch_max.max(1) {
        if q[i].req.graph == handle {
            if let Some(job) = q.remove(i) {
                batch.push(job);
            }
        } else {
            i += 1;
        }
    }
    batch
}

/// True when a failure's root cause is the per-request cycle deadline.
fn is_deadline_overrun(e: &ServeError) -> bool {
    matches!(
        e,
        ServeError::Launch(LaunchError::Fault(SimtError::Watchdog(_)))
    )
}

/// True when retrying could plausibly change the outcome (transient
/// execution faults; not validation or admission errors).
fn is_retriable(e: &ServeError) -> bool {
    matches!(e, ServeError::Launch(_) | ServeError::Panicked(_))
}

fn serve_batch(inner: &Arc<Inner>, slot: usize, batch: Vec<Job>) {
    let batch_size = batch.len() as u32;
    let m = &inner.metrics;
    m.batches.inc();
    m.batch_size.record(batch_size as u64);
    if batch_size > 1 {
        m.batched_requests.add(batch_size as u64);
    }
    let mut batch_span = inner.tracer.begin("batch");
    batch_span.arg("graph", format!("{}", batch[0].req.graph.0));
    batch_span.arg("size", format!("{batch_size}"));
    for (idx, job) in batch.into_iter().enumerate() {
        serve_job(inner, slot, idx, job, batch_size);
    }
    batch_span.finish();
}

/// Serve one job end to end: hedge gate, retry loop, metrics, reply.
fn serve_job(inner: &Arc<Inner>, slot: usize, idx: usize, job: Job, batch_size: u32) {
    let m = &inner.metrics;
    let clear_stub = |inner: &Arc<Inner>| {
        let mut inflight = lock(&inner.slots[slot].inflight);
        if let Some(s) = inflight.get_mut(idx) {
            *s = None;
        }
    };
    job.queue_span.finish();
    // A hedge loser still in the queue when its twin answered: cancel
    // without executing.
    if let Some(h) = &job.hedge {
        if h.done.load(Ordering::Acquire) {
            m.hedge_cancels.inc();
            clear_stub(inner);
            job.span.finish();
            return;
        }
    }
    let queue_wait = job.enqueued.elapsed();
    let started = Instant::now();
    let internal = job.refresh_key.is_some();
    let policy = job.req.retry.unwrap_or(inner.cfg.resilience.retry);
    let mut attempts: u32 = 0;
    let outcome = loop {
        attempts += 1;
        match serve_one(inner, &job.req, &job.span, internal) {
            Ok(s) => break Ok(s),
            Err(e) => {
                if is_retriable(&e) && attempts < policy.max_attempts.max(1) {
                    m.retries.inc();
                    let seed = job.req.query.digest() ^ u64::from(job.req.graph.0);
                    std::thread::sleep(policy.backoff.delay(attempts - 1, seed));
                    continue;
                }
                break Err(e);
            }
        }
    };
    let service = started.elapsed();

    if internal {
        // Background refresh: release the dedupe slot; no client, no
        // client-facing metrics.
        if let Some(k) = &job.refresh_key {
            lock(&inner.refreshing).remove(k);
        }
        clear_stub(inner);
        job.span.finish();
        return;
    }

    // First-result-wins: claim the reply channel before recording
    // client-facing metrics, so a hedge loser doesn't double-count.
    let won = match &job.hedge {
        Some(h) => !h.done.swap(true, Ordering::AcqRel),
        None => true,
    };
    if !won {
        m.hedge_cancels.inc();
        clear_stub(inner);
        job.span.finish();
        return;
    }
    if job.is_hedge_dup {
        m.hedge_wins.inc();
    }

    m.queue_wait.record_duration(queue_wait);
    m.service.record_duration(service);
    m.algo_service(job.req.query.algo())
        .record_duration(service);
    match &outcome {
        Ok(s) => {
            m.completed.inc();
            if attempts > 1 {
                m.retry_successes.inc();
            }
            if s.degraded {
                m.degraded.inc();
            }
        }
        Err(e) => {
            m.failed.inc();
            if is_deadline_overrun(e) {
                m.deadline_overruns.inc();
            }
        }
    }
    if let Some(t) = &job.req.tenant {
        m.tenant_requests(t).inc();
        m.tenant_service(t).record_duration(service);
    }

    let reply_span = job.span.child("reply");
    let span_id = job.span.id();
    let response = outcome.map(|s| Response {
        data: s.data,
        stats: s.stats,
        iterations: s.iterations,
        method: s.method,
        cached: matches!(s.source, ResponseSource::Cache | ResponseSource::StaleCache),
        source: s.source,
        degraded: s.degraded,
        attempts,
        queue_wait,
        service,
        batch_size,
        span: span_id,
    });
    let _ = job.tx.send(response);
    reply_span.finish();
    job.span.finish();
    clear_stub(inner);
}

/// One execution attempt's result, before it becomes a [`Response`].
struct Served {
    data: ResultData,
    stats: KernelStats,
    iterations: u32,
    method: Method,
    source: ResponseSource,
    degraded: bool,
}

fn serve_one(
    inner: &Arc<Inner>,
    req: &Request,
    span: &ActiveSpan,
    force_refresh: bool,
) -> Result<Served, ServeError> {
    let entry = inner
        .store
        .get(req.graph)
        .ok_or(ServeError::UnknownGraph(req.graph))?;
    let algo = req.query.algo();

    // Resolve the method: request pin beats the tuner (including the env
    // pin, which the tuner itself applies).
    let method = match req.method {
        Some(m) => m,
        None => {
            let tuner_span = span.child("tuner");
            let mut tuner = lock(&inner.tuner);
            let choice = tuner.choose(&inner.cfg.gpu, &inner.cfg.exec, &entry, algo);
            drop(tuner);
            tuner_span.finish();
            choice.method
        }
    };
    if !algo.supports(method) {
        return Err(ServeError::Unsupported {
            algo,
            method: method.spec(),
        });
    }

    let key = CacheKey {
        graph: entry.digest,
        query: req.query.digest(),
        method: method.spec(),
        device: inner.device_fp,
    };
    if !force_refresh {
        let mut lookup_span = span.child("cache_lookup");
        let hit = lock(&inner.cache).get_at(&key, Instant::now(), inner.cfg.resilience.stale_ttl);
        if let Some((hit, freshness)) = hit {
            lookup_span.arg(
                "outcome",
                if freshness == Freshness::Fresh {
                    "hit"
                } else {
                    "stale"
                },
            );
            lookup_span.finish();
            return match freshness {
                Freshness::Fresh => Ok(Served {
                    data: hit.data,
                    stats: hit.stats,
                    iterations: hit.iterations,
                    method,
                    source: ResponseSource::Cache,
                    degraded: false,
                }),
                Freshness::Stale => {
                    // Stale-while-revalidate: serve the (still
                    // byte-identical) old entry flagged degraded, and
                    // refresh in the background.
                    inner.metrics.stale_served.inc();
                    schedule_refresh(inner, req, &key);
                    Ok(Served {
                        data: hit.data,
                        stats: hit.stats,
                        iterations: hit.iterations,
                        method,
                        source: ResponseSource::StaleCache,
                        degraded: true,
                    })
                }
            };
        }
        lookup_span.arg("outcome", "miss");
        lookup_span.finish();
    }

    // Circuit breaker: an open breaker routes to the CPU reference
    // implementation (degraded) instead of burning device attempts on a
    // failing (graph, algorithm) pair.
    let bkey = (entry.digest, algo.label());
    if inner.cfg.resilience.breaker.is_some()
        && lock(&inner.breaker).admit(bkey, Instant::now()) == BreakerState::Open
    {
        if let Some(served) = cpu_fallback(&entry, &req.query) {
            inner.metrics.fallbacks.inc();
            return Ok(served);
        }
        // No CPU implementation for this algorithm: fall through to the
        // device rather than fail a request the breaker can't cover.
    }

    // Sharded servers route the BSP-capable algorithms to the multi-device
    // executor; everything else runs single-device even when sharding is on.
    let use_sharded = inner.cfg.shards > 1 && sharded_supported(algo);
    let mut template_span = span.child("template");
    let (template, sharded, built) = if use_sharded {
        let (t, built) = get_sharded_template(inner, req.graph, &entry);
        (None, Some(t), built)
    } else {
        let (t, built) = get_template(inner, req.graph, &entry, algo.needs_reverse());
        (Some(t), None, built)
    };
    template_span.arg("built", if built { "upload" } else { "clone" });
    if use_sharded {
        template_span.arg("shards", format!("{}", inner.cfg.shards));
    }
    template_span.finish();

    // Chaos: execution-level injections (inside the per-request unwind
    // boundary — they exercise retry, hedging, and the breaker without
    // crashing the worker).
    {
        let chaos = *lock(&inner.chaos);
        if let Some(c) = chaos {
            if c.slow_launch > 0.0 || c.launch_fault > 0.0 {
                let n = inner.chaos_exec_seq.fetch_add(1, Ordering::Relaxed);
                if c.roll(chaos_salt::SLOW_LAUNCH, n, c.slow_launch) {
                    std::thread::sleep(c.slow);
                }
                if c.roll(chaos_salt::LAUNCH_FAULT, n, c.launch_fault) {
                    breaker_fault(inner, bkey);
                    return Err(ServeError::Panicked(
                        "chaos: injected launch fault".to_string(),
                    ));
                }
            }
        }
    }

    let deadline = req.deadline_cycles.or(inner.cfg.default_deadline);
    let mut exec_span = span.child("execute");
    exec_span.arg("method", method.spec());
    // When profiling, stamp the request's span id into the profiler context
    // so device-side launch timelines correlate with this trace.
    let label = (inner.tracer.enabled() && inner.cfg.gpu.profile)
        .then(|| format!("req-{} {} {}", span.id(), algo.label(), method.spec()));
    let run = catch_unwind(AssertUnwindSafe(|| match (&template, &sharded) {
        (_, Some(st)) => execute_sharded(
            &inner.cfg.gpu,
            &inner.cfg.exec,
            &entry,
            st,
            &req.query,
            method,
            deadline,
            &inner.cfg.link,
            Some(inner.metrics.registry()),
        ),
        (Some(t), None) => execute_labeled(
            &inner.cfg.gpu,
            &inner.cfg.exec,
            &entry,
            t,
            &req.query,
            method,
            deadline,
            label.as_deref(),
        ),
        (None, None) => unreachable!("one template variant is always built"),
    }));
    let run = match run {
        Err(p) => {
            breaker_fault(inner, bkey);
            return Err(ServeError::Panicked(panic_message(&p)));
        }
        Ok(Err(e)) => {
            breaker_fault(inner, bkey);
            return Err(e);
        }
        Ok(Ok(r)) => {
            breaker_ok(inner, bkey);
            r
        }
    };
    exec_span.finish();

    let (data, algo_run) = run;
    let insert_span = span.child("cache_insert");
    lock(&inner.cache).insert(
        key,
        CachedResult {
            data: data.clone(),
            stats: algo_run.stats.clone(),
            iterations: algo_run.iterations,
            method: method.spec(),
        },
    );
    insert_span.finish();
    Ok(Served {
        data,
        stats: algo_run.stats,
        iterations: algo_run.iterations,
        method,
        source: ResponseSource::Device,
        degraded: false,
    })
}

/// Feed an execution fault to the breaker (no-op when disabled).
fn breaker_fault(inner: &Arc<Inner>, key: (u64, &'static str)) {
    if inner.cfg.resilience.breaker.is_none() {
        return;
    }
    let tripped = {
        let mut b = lock(&inner.breaker);
        let t = b.on_failure(key, Instant::now());
        inner.metrics.breaker_open.set(b.open_count());
        t
    };
    if tripped {
        inner.metrics.breaker_trips.inc();
    }
}

/// Feed an execution success to the breaker (no-op when disabled).
fn breaker_ok(inner: &Arc<Inner>, key: (u64, &'static str)) {
    if inner.cfg.resilience.breaker.is_none() {
        return;
    }
    let mut b = lock(&inner.breaker);
    b.on_success(key);
    inner.metrics.breaker_open.set(b.open_count());
}

/// Serve from the CPU reference implementation (breaker open). Stats are
/// zeroed — no device ran — and the result is **not** cached, preserving
/// the cache's byte-identity contract.
fn cpu_fallback(entry: &GraphEntry, query: &crate::request::Query) -> Option<Served> {
    use crate::request::Query;
    let algo = query.algo();
    let params = match query {
        Query::Bfs { src }
        | Query::BfsQueue { src }
        | Query::BfsHybrid { src }
        | Query::Sssp { src } => maxwarp_cpu::FallbackParams {
            src: src.unwrap_or(entry.source()),
            ..Default::default()
        },
        Query::Pagerank { iters, damping } => maxwarp_cpu::FallbackParams {
            iters: *iters,
            damping: *damping,
            ..Default::default()
        },
        _ => maxwarp_cpu::FallbackParams::default(),
    };
    let data = match maxwarp_cpu::fallback_run(algo.label(), &entry.csr, &entry.weights, params)? {
        FallbackData::U32s(v) => ResultData::U32s(v),
        FallbackData::F32s(v) => ResultData::F32s(v),
    };
    Some(Served {
        data,
        stats: KernelStats::default(),
        iterations: 0,
        method: Method::Baseline,
        source: ResponseSource::CpuFallback,
        degraded: true,
    })
}

/// Enqueue a background refresh for a stale cache entry (deduped per key;
/// dropped silently if the queue is saturated — the stale entry keeps
/// serving).
fn schedule_refresh(inner: &Arc<Inner>, req: &Request, key: &CacheKey) {
    {
        let mut refreshing = lock(&inner.refreshing);
        if !refreshing.insert(key.clone()) {
            return; // already scheduled
        }
    }
    let mut refresh_req = req.clone();
    refresh_req.retry = Some(RetryPolicy::none());
    refresh_req.priority = Priority::Low;
    refresh_req.tenant = None;
    // Internal job: the receiver is dropped immediately; nothing replies.
    let (tx, _rx) = mpsc::channel();
    let span = inner.tracer.begin("refresh");
    let queue_span = span.child("queue_wait");
    let pushed = {
        let mut q = lock(&inner.queue);
        if q.len() >= inner.cfg.queue_capacity {
            false
        } else {
            q.push_back(Job {
                req: refresh_req,
                enqueued: Instant::now(),
                tx,
                span,
                queue_span,
                crash_requeues: 0,
                hedge: None,
                is_hedge_dup: false,
                refresh_key: Some(key.clone()),
            });
            inner.metrics.queue_depth.set(q.len() as u64);
            true
        }
    };
    if pushed {
        inner.metrics.refreshes.inc();
        inner.cv.notify_one();
    } else {
        lock(&inner.refreshing).remove(key);
    }
}

/// Fetch or build the device template; the flag reports whether this call
/// paid the upload.
fn get_template(
    inner: &Arc<Inner>,
    handle: GraphHandle,
    entry: &GraphEntry,
    needs_reverse: bool,
) -> (Arc<DeviceTemplate>, bool) {
    let mut templates = lock(&inner.templates);
    if let Some(t) = templates.get(&(handle.0, needs_reverse)) {
        return (Arc::clone(t), false);
    }
    let t = Arc::new(DeviceTemplate::build(&inner.cfg.gpu, entry, needs_reverse));
    templates.insert((handle.0, needs_reverse), Arc::clone(&t));
    inner.metrics.templates_built.inc();
    (t, true)
}

/// Fetch or build the sharded template (partition + per-shard uploads);
/// the flag reports whether this call paid the partitioning/upload.
fn get_sharded_template(
    inner: &Arc<Inner>,
    handle: GraphHandle,
    entry: &GraphEntry,
) -> (Arc<ShardedTemplate>, bool) {
    let mut templates = lock(&inner.sharded_templates);
    if let Some(t) = templates.get(&handle.0) {
        return (Arc::clone(t), false);
    }
    let spec = PartitionSpec {
        shards: inner.cfg.shards,
        cut: inner.cfg.cut,
    };
    let t = Arc::new(ShardedTemplate::build(&inner.cfg.gpu, entry, &spec));
    templates.insert(handle.0, Arc::clone(&t));
    inner.metrics.templates_built.inc();
    (t, true)
}

fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
