//! The request scheduler: bounded admission queue, worker pool, same-graph
//! batching, and the glue between cache, tuner, and executor.
//!
//! Life of a request:
//!
//! 1. **Admission** — `submit` validates the graph handle and any pinned
//!    method, then tries to enqueue. A full queue is a structured
//!    [`ServeError::QueueFull`] *before* anything is enqueued: callers get
//!    backpressure they can retry on, never silent dropping.
//! 2. **Batching** — a worker pops the oldest request, then pulls up to
//!    `batch_max - 1` more requests *for the same graph* out of the queue
//!    (preserving arrival order for everyone else). The batch shares one
//!    device template, so the graph upload is paid once per graph rather
//!    than once per request.
//! 3. **Resolution** — the method comes from the request pin, the
//!    `MAXWARP_METHOD` override, the tuning table, or a fresh probe (in
//!    that order; see [`crate::autotune`]).
//! 4. **Cache** — the resolved `(graph, query, method, device)` key is
//!    looked up; hits replay the recorded payload and `KernelStats`
//!    (byte-identical by the template-layout argument in [`crate::exec`]).
//! 5. **Execution** — misses run on a fresh device with the request's
//!    deadline wired into the watchdog. Panics are caught per request; a
//!    poisoned request fails alone, the worker and its batch survive.

use crate::autotune::Tuner;
use crate::cache::{gpu_fingerprint, CacheKey, CacheStats, CachedResult, ResultCache};
use crate::exec::{execute, DeviceTemplate};
use crate::json::{self, Value};
use crate::request::{Request, Response, ServeError};
use crate::stats::{LatencyHistogram, LatencySummary};
use crate::store::{GraphEntry, GraphHandle, GraphStore};
use maxwarp::{ExecConfig, Method};
use maxwarp_graph::Csr;
use maxwarp_simt::GpuConfig;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Instant;

/// Lock a mutex, panicking on poisoning. A poisoned server lock means a
/// worker died outside the per-request `catch_unwind` — unrecoverable.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(_) => panic!("server lock poisoned"),
    }
}

/// Server construction parameters. `ServerConfig::new` reads the
/// environment knobs; tests use [`ServerConfig::for_tests`] to stay
/// hermetic.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker threads (simulated GPUs served concurrently).
    pub workers: usize,
    /// Bounded submission-queue depth (`MAXWARP_QUEUE_DEPTH`).
    pub queue_capacity: usize,
    /// Maximum same-graph requests served per batch.
    pub batch_max: usize,
    /// Simulated device preset every worker runs.
    pub gpu: GpuConfig,
    /// Kernel launch geometry.
    pub exec: ExecConfig,
    /// Result-cache capacity in entries (`MAXWARP_CACHE_CAP`); 0 disables.
    pub cache_capacity: usize,
    /// Persistent tuning-table path (`MAXWARP_TUNING`; `0`/`off` disables).
    pub tuning_path: Option<PathBuf>,
    /// Probe-sample size for the autotuner (vertices).
    pub tuner_sample: u32,
    /// Method override applied to every request (`MAXWARP_METHOD`).
    pub method_pin: Option<Method>,
    /// Start with workers paused (deterministic queue tests); call
    /// [`Server::resume`] to begin draining.
    pub paused: bool,
    /// Deadline in simulated cycles for requests that don't carry one.
    pub default_deadline: Option<u64>,
}

impl ServerConfig {
    /// Defaults plus environment overrides.
    pub fn new(gpu: GpuConfig) -> ServerConfig {
        let mut cfg = ServerConfig::for_tests(gpu);
        cfg.tuning_path = match std::env::var("MAXWARP_TUNING") {
            Ok(v) if v == "0" || v.eq_ignore_ascii_case("off") => None,
            Ok(v) => Some(PathBuf::from(v)),
            Err(_) => Some(PathBuf::from("results/tuning.json")),
        };
        if let Ok(v) = std::env::var("MAXWARP_QUEUE_DEPTH") {
            if let Ok(d) = v.parse() {
                cfg.queue_capacity = d;
            }
        }
        if let Ok(v) = std::env::var("MAXWARP_CACHE_CAP") {
            if let Ok(c) = v.parse() {
                cfg.cache_capacity = c;
            }
        }
        if let Ok(v) = std::env::var("MAXWARP_METHOD") {
            match Method::parse(&v) {
                Some(m) => cfg.method_pin = Some(m),
                None => eprintln!("[serve] ignoring unparseable MAXWARP_METHOD={v}"),
            }
        }
        cfg
    }

    /// Defaults with **no** environment reads and no tuning persistence.
    pub fn for_tests(gpu: GpuConfig) -> ServerConfig {
        ServerConfig {
            workers: 2,
            queue_capacity: 64,
            batch_max: 8,
            gpu,
            exec: ExecConfig::default(),
            cache_capacity: 256,
            tuning_path: None,
            tuner_sample: 4096,
            method_pin: None,
            paused: false,
            default_deadline: None,
        }
    }
}

/// Running server counters (behind the stats mutex).
#[derive(Default)]
struct Counters {
    submitted: u64,
    rejected_full: u64,
    rejected_invalid: u64,
    completed: u64,
    failed: u64,
    batches: u64,
    batched_requests: u64,
    templates_built: u64,
    queue_wait: LatencyHistogram,
    service: LatencyHistogram,
    per_tenant: BTreeMap<String, u64>,
}

/// Point-in-time view of everything the server counts.
#[derive(Clone, Debug)]
pub struct ServerSnapshot {
    pub submitted: u64,
    pub rejected_full: u64,
    pub rejected_invalid: u64,
    pub completed: u64,
    pub failed: u64,
    /// Batches served (each covers ≥ 1 request).
    pub batches: u64,
    /// Requests that shared a batch with at least one other request.
    pub batched_requests: u64,
    pub templates_built: u64,
    pub queue_wait: LatencySummary,
    pub service: LatencySummary,
    pub cache: CacheStats,
    pub tuner_decisions: u64,
    pub tuner_probes: u64,
    pub per_tenant: Vec<(String, u64)>,
}

impl ServerSnapshot {
    pub fn to_json(&self) -> Value {
        json::obj(vec![
            ("submitted", json::n(self.submitted as f64)),
            ("rejected_full", json::n(self.rejected_full as f64)),
            ("rejected_invalid", json::n(self.rejected_invalid as f64)),
            ("completed", json::n(self.completed as f64)),
            ("failed", json::n(self.failed as f64)),
            ("batches", json::n(self.batches as f64)),
            ("batched_requests", json::n(self.batched_requests as f64)),
            ("templates_built", json::n(self.templates_built as f64)),
            ("queue_wait", self.queue_wait.to_json()),
            ("service", self.service.to_json()),
            ("cache", self.cache.to_json()),
            ("tuner_decisions", json::n(self.tuner_decisions as f64)),
            ("tuner_probes", json::n(self.tuner_probes as f64)),
            (
                "per_tenant",
                Value::Obj(
                    self.per_tenant
                        .iter()
                        .map(|(t, c)| (t.clone(), json::n(*c as f64)))
                        .collect(),
                ),
            ),
        ])
    }
}

struct Job {
    req: Request,
    enqueued: Instant,
    tx: mpsc::Sender<Result<Response, ServeError>>,
}

/// A submitted request's receipt; [`Ticket::wait`] blocks for the response.
pub struct Ticket {
    rx: mpsc::Receiver<Result<Response, ServeError>>,
}

impl Ticket {
    /// Block until the request completes (or the server drops it).
    pub fn wait(self) -> Result<Response, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::WorkerLost))
    }
}

impl std::fmt::Debug for Ticket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Ticket { .. }")
    }
}

struct Inner {
    cfg: ServerConfig,
    store: GraphStore,
    queue: Mutex<VecDeque<Job>>,
    cv: Condvar,
    cache: Mutex<ResultCache>,
    tuner: Mutex<Tuner>,
    /// Device templates keyed by `(handle, with_reverse)`.
    templates: Mutex<HashMap<(u32, bool), Arc<DeviceTemplate>>>,
    counters: Mutex<Counters>,
    shutdown: AtomicBool,
    paused: AtomicBool,
    /// Fingerprint of `cfg.gpu` — the device half of every cache key.
    device_fp: u64,
}

/// The graph-query service: a [`GraphStore`], a bounded queue, and a pool
/// of workers each driving a simulated GPU.
pub struct Server {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Start the worker pool.
    pub fn start(cfg: ServerConfig) -> Server {
        let device_fp = gpu_fingerprint(&cfg.gpu);
        let inner = Arc::new(Inner {
            cache: Mutex::new(ResultCache::new(cfg.cache_capacity)),
            tuner: Mutex::new(Tuner::new(
                cfg.tuning_path.clone(),
                cfg.tuner_sample,
                cfg.method_pin,
            )),
            store: GraphStore::new(),
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            templates: Mutex::new(HashMap::new()),
            counters: Mutex::new(Counters::default()),
            shutdown: AtomicBool::new(false),
            paused: AtomicBool::new(cfg.paused),
            device_fp,
            cfg,
        });
        let workers = (0..inner.cfg.workers.max(1))
            .map(|i| {
                let inner = Arc::clone(&inner);
                let spawned = std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&inner));
                match spawned {
                    Ok(h) => h,
                    Err(e) => panic!("spawn worker: {e}"),
                }
            })
            .collect();
        Server { inner, workers }
    }

    /// Register a graph for querying.
    pub fn register_graph(&self, name: impl Into<String>, csr: Csr) -> GraphHandle {
        self.inner.store.register(name, csr)
    }

    /// Look up a registered graph.
    pub fn graph(&self, h: GraphHandle) -> Option<Arc<GraphEntry>> {
        self.inner.store.get(h)
    }

    /// Admit a request. Errors here mean nothing was enqueued.
    pub fn submit(&self, req: Request) -> Result<Ticket, ServeError> {
        if self.inner.shutdown.load(Ordering::SeqCst) {
            return Err(ServeError::ShuttingDown);
        }
        // Validate before taking a queue slot: a request that can never
        // execute should not consume capacity.
        if self.inner.store.get(req.graph).is_none() {
            self.count(|c| c.rejected_invalid += 1);
            return Err(ServeError::UnknownGraph(req.graph));
        }
        if let Some(m) = req.method {
            if !req.query.algo().supports(m) {
                self.count(|c| c.rejected_invalid += 1);
                return Err(ServeError::Unsupported {
                    algo: req.query.algo(),
                    method: m.spec(),
                });
            }
        }
        let (tx, rx) = mpsc::channel();
        {
            let mut q = lock(&self.inner.queue);
            if q.len() >= self.inner.cfg.queue_capacity {
                drop(q);
                self.count(|c| c.rejected_full += 1);
                return Err(ServeError::QueueFull {
                    capacity: self.inner.cfg.queue_capacity,
                });
            }
            q.push_back(Job {
                req,
                enqueued: Instant::now(),
                tx,
            });
        }
        self.count(|c| c.submitted += 1);
        self.inner.cv.notify_one();
        Ok(Ticket { rx })
    }

    /// Submit and block for the response.
    pub fn call(&self, req: Request) -> Result<Response, ServeError> {
        self.submit(req)?.wait()
    }

    /// Unpause a server started with `paused: true`.
    pub fn resume(&self) {
        self.inner.paused.store(false, Ordering::SeqCst);
        self.inner.cv.notify_all();
    }

    /// Requests currently queued (not yet picked up by a worker).
    pub fn queue_len(&self) -> usize {
        lock(&self.inner.queue).len()
    }

    /// The device fingerprint used in this server's cache keys.
    pub fn device_fingerprint(&self) -> u64 {
        self.inner.device_fp
    }

    /// The cache key this server would use for `(graph, query, method)` —
    /// exposed for tests that reason about hit/miss identity.
    pub fn cache_key(&self, req: &Request, method: Method) -> Option<CacheKey> {
        let entry = self.inner.store.get(req.graph)?;
        Some(CacheKey {
            graph: entry.digest,
            query: req.query.digest(),
            method: method.spec(),
            device: self.inner.device_fp,
        })
    }

    /// Counters, cache, and tuner state in one snapshot.
    pub fn snapshot(&self) -> ServerSnapshot {
        let c = lock(&self.inner.counters);
        let cache = lock(&self.inner.cache).stats();
        let tuner = lock(&self.inner.tuner);
        ServerSnapshot {
            submitted: c.submitted,
            rejected_full: c.rejected_full,
            rejected_invalid: c.rejected_invalid,
            completed: c.completed,
            failed: c.failed,
            batches: c.batches,
            batched_requests: c.batched_requests,
            templates_built: c.templates_built,
            queue_wait: c.queue_wait.summary(),
            service: c.service.summary(),
            cache,
            tuner_decisions: tuner.decisions() as u64,
            tuner_probes: tuner.probes_run(),
            per_tenant: c.per_tenant.iter().map(|(t, n)| (t.clone(), *n)).collect(),
        }
    }

    /// Stop accepting work, finish in-flight batches, fail queued requests
    /// with [`ServeError::ShuttingDown`], and join the workers.
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.cv.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        let mut q = lock(&self.inner.queue);
        while let Some(job) = q.pop_front() {
            let _ = job.tx.send(Err(ServeError::ShuttingDown));
        }
    }

    fn count(&self, f: impl FnOnce(&mut Counters)) {
        f(&mut lock(&self.inner.counters));
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if !self.workers.is_empty() {
            self.shutdown_impl();
        }
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        let batch = {
            let mut q = lock(&inner.queue);
            loop {
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if !inner.paused.load(Ordering::SeqCst) {
                    if let Some(first) = q.pop_front() {
                        break extract_batch(&mut q, first, inner.cfg.batch_max);
                    }
                }
                q = match inner.cv.wait(q) {
                    Ok(g) => g,
                    Err(_) => panic!("server lock poisoned"),
                };
            }
        };
        serve_batch(inner, batch);
    }
}

/// Pull up to `batch_max - 1` additional same-graph jobs out of the queue,
/// preserving the relative order of everything left behind.
fn extract_batch(q: &mut VecDeque<Job>, first: Job, batch_max: usize) -> Vec<Job> {
    let handle = first.req.graph;
    let mut batch = vec![first];
    let mut i = 0;
    while i < q.len() && batch.len() < batch_max.max(1) {
        if q[i].req.graph == handle {
            if let Some(job) = q.remove(i) {
                batch.push(job);
            }
        } else {
            i += 1;
        }
    }
    batch
}

fn serve_batch(inner: &Inner, batch: Vec<Job>) {
    let batch_size = batch.len() as u32;
    {
        let mut c = lock(&inner.counters);
        c.batches += 1;
        if batch_size > 1 {
            c.batched_requests += batch_size as u64;
        }
    }
    for job in batch {
        let queue_wait = job.enqueued.elapsed();
        let started = Instant::now();
        let outcome = serve_one(inner, &job.req);
        let service = started.elapsed();
        {
            let mut c = lock(&inner.counters);
            c.queue_wait.record(queue_wait);
            c.service.record(service);
            match &outcome {
                Ok(_) => c.completed += 1,
                Err(_) => c.failed += 1,
            }
            if let Some(t) = &job.req.tenant {
                *c.per_tenant.entry(t.clone()).or_insert(0) += 1;
            }
        }
        let response = outcome.map(|(data, stats, iterations, method, cached)| Response {
            data,
            stats,
            iterations,
            method,
            cached,
            queue_wait,
            service,
            batch_size,
        });
        let _ = job.tx.send(response);
    }
}

type Served = (
    crate::request::ResultData,
    maxwarp_simt::KernelStats,
    u32,
    Method,
    bool,
);

fn serve_one(inner: &Inner, req: &Request) -> Result<Served, ServeError> {
    let entry = inner
        .store
        .get(req.graph)
        .ok_or(ServeError::UnknownGraph(req.graph))?;
    let algo = req.query.algo();

    // Resolve the method: request pin beats the tuner (including the env
    // pin, which the tuner itself applies).
    let method = match req.method {
        Some(m) => m,
        None => {
            let mut tuner = lock(&inner.tuner);
            tuner
                .choose(&inner.cfg.gpu, &inner.cfg.exec, &entry, algo)
                .method
        }
    };
    if !algo.supports(method) {
        return Err(ServeError::Unsupported {
            algo,
            method: method.spec(),
        });
    }

    let key = CacheKey {
        graph: entry.digest,
        query: req.query.digest(),
        method: method.spec(),
        device: inner.device_fp,
    };
    if let Some(hit) = lock(&inner.cache).get(&key) {
        return Ok((hit.data, hit.stats, hit.iterations, method, true));
    }

    let template = get_template(inner, req.graph, &entry, algo.needs_reverse());
    let deadline = req.deadline_cycles.or(inner.cfg.default_deadline);
    let run = catch_unwind(AssertUnwindSafe(|| {
        execute(
            &inner.cfg.gpu,
            &inner.cfg.exec,
            &entry,
            &template,
            &req.query,
            method,
            deadline,
        )
    }))
    .map_err(|p| ServeError::Panicked(panic_message(&p)))??;

    let (data, algo_run) = run;
    lock(&inner.cache).insert(
        key,
        CachedResult {
            data: data.clone(),
            stats: algo_run.stats.clone(),
            iterations: algo_run.iterations,
            method: method.spec(),
        },
    );
    Ok((data, algo_run.stats, algo_run.iterations, method, false))
}

fn get_template(
    inner: &Inner,
    handle: GraphHandle,
    entry: &GraphEntry,
    needs_reverse: bool,
) -> Arc<DeviceTemplate> {
    let mut templates = lock(&inner.templates);
    if let Some(t) = templates.get(&(handle.0, needs_reverse)) {
        return Arc::clone(t);
    }
    let t = Arc::new(DeviceTemplate::build(&inner.cfg.gpu, entry, needs_reverse));
    templates.insert((handle.0, needs_reverse), Arc::clone(&t));
    lock(&inner.counters).templates_built += 1;
    t
}

fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
