//! The request scheduler: bounded admission queue, worker pool, same-graph
//! batching, and the glue between cache, tuner, and executor.
//!
//! Life of a request:
//!
//! 1. **Admission** — `submit` validates the graph handle and any pinned
//!    method, then tries to enqueue. A full queue is a structured
//!    [`ServeError::QueueFull`] *before* anything is enqueued: callers get
//!    backpressure they can retry on, never silent dropping.
//! 2. **Batching** — a worker pops the oldest request, then pulls up to
//!    `batch_max - 1` more requests *for the same graph* out of the queue
//!    (preserving arrival order for everyone else). The batch shares one
//!    device template, so the graph upload is paid once per graph rather
//!    than once per request.
//! 3. **Resolution** — the method comes from the request pin, the
//!    `MAXWARP_METHOD` override, the tuning table, or a fresh probe (in
//!    that order; see [`crate::autotune`]).
//! 4. **Cache** — the resolved `(graph, query, method, device)` key is
//!    looked up; hits replay the recorded payload and `KernelStats`
//!    (byte-identical by the template-layout argument in [`crate::exec`]).
//! 5. **Execution** — misses run on a fresh device with the request's
//!    deadline wired into the watchdog. Panics are caught per request; a
//!    poisoned request fails alone, the worker and its batch survive.
//!
//! ## Observability
//!
//! Every server owns a [`maxwarp_obs::Registry`] (so concurrent servers in
//! tests don't bleed into each other) holding all scheduler/cache/tuner
//! series — see [`crate::metrics::ServeMetrics`] for the inventory — and a
//! [`maxwarp_obs::Tracer`] that, when enabled, records one span tree per
//! request: `request` → `queue_wait` / `cache_lookup` / `template` /
//! `execute` / `cache_insert` / `reply`, plus one `batch` root per served
//! batch. Both are pure observers: disable them and responses stay
//! byte-identical (asserted by `tests/obs_identity.rs`).

use crate::autotune::Tuner;
use crate::cache::{gpu_fingerprint, CacheKey, CacheStats, CachedResult, ResultCache};
use crate::exec::{execute_labeled, DeviceTemplate};
use crate::json::{self, Value};
use crate::metrics::ServeMetrics;
use crate::request::{Request, Response, ServeError};
use crate::stats::LatencySummary;
use crate::store::{GraphEntry, GraphHandle, GraphStore};
use maxwarp::{ExecConfig, Method};
use maxwarp_graph::Csr;
use maxwarp_obs::{ActiveSpan, Registry, Tracer};
use maxwarp_simt::{GpuConfig, LaunchError, SimtError};
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Instant;

/// Lock a mutex, panicking on poisoning. A poisoned server lock means a
/// worker died outside the per-request `catch_unwind` — unrecoverable.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(_) => panic!("server lock poisoned"),
    }
}

/// Server construction parameters. `ServerConfig::new` reads the
/// environment knobs; tests use [`ServerConfig::for_tests`] to stay
/// hermetic.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker threads (simulated GPUs served concurrently).
    pub workers: usize,
    /// Bounded submission-queue depth (`MAXWARP_QUEUE_DEPTH`).
    pub queue_capacity: usize,
    /// Maximum same-graph requests served per batch.
    pub batch_max: usize,
    /// Simulated device preset every worker runs.
    pub gpu: GpuConfig,
    /// Kernel launch geometry.
    pub exec: ExecConfig,
    /// Result-cache capacity in entries (`MAXWARP_CACHE_CAP`); 0 disables.
    pub cache_capacity: usize,
    /// Persistent tuning-table path (`MAXWARP_TUNING`; `0`/`off` disables).
    pub tuning_path: Option<PathBuf>,
    /// Probe-sample size for the autotuner (vertices).
    pub tuner_sample: u32,
    /// Method override applied to every request (`MAXWARP_METHOD`).
    pub method_pin: Option<Method>,
    /// Start with workers paused (deterministic queue tests); call
    /// [`Server::resume`] to begin draining.
    pub paused: bool,
    /// Deadline in simulated cycles for requests that don't carry one.
    pub default_deadline: Option<u64>,
    /// Whether the metrics registry records (`MAXWARP_OBS`; default on).
    pub obs: bool,
    /// Whether request span tracing records (`MAXWARP_OBS_TRACE`; default
    /// off — spans cost an allocation per stage).
    pub trace: bool,
}

impl ServerConfig {
    /// Defaults plus environment overrides.
    pub fn new(gpu: GpuConfig) -> ServerConfig {
        let mut cfg = ServerConfig::for_tests(gpu);
        cfg.tuning_path = match std::env::var("MAXWARP_TUNING") {
            Ok(v) if v == "0" || v.eq_ignore_ascii_case("off") => None,
            Ok(v) => Some(PathBuf::from(v)),
            Err(_) => Some(PathBuf::from("results/tuning.json")),
        };
        if let Ok(v) = std::env::var("MAXWARP_QUEUE_DEPTH") {
            if let Ok(d) = v.parse() {
                cfg.queue_capacity = d;
            }
        }
        if let Ok(v) = std::env::var("MAXWARP_CACHE_CAP") {
            if let Ok(c) = v.parse() {
                cfg.cache_capacity = c;
            }
        }
        if let Ok(v) = std::env::var("MAXWARP_METHOD") {
            match Method::parse(&v) {
                Some(m) => cfg.method_pin = Some(m),
                None => eprintln!("[serve] ignoring unparseable MAXWARP_METHOD={v}"),
            }
        }
        if let Ok(v) = std::env::var("MAXWARP_OBS") {
            cfg.obs = !(v == "0" || v.eq_ignore_ascii_case("off"));
        }
        if let Ok(v) = std::env::var("MAXWARP_OBS_TRACE") {
            cfg.trace = v == "1" || v.eq_ignore_ascii_case("on");
        }
        cfg
    }

    /// Defaults with **no** environment reads and no tuning persistence.
    pub fn for_tests(gpu: GpuConfig) -> ServerConfig {
        ServerConfig {
            workers: 2,
            queue_capacity: 64,
            batch_max: 8,
            gpu,
            exec: ExecConfig::default(),
            cache_capacity: 256,
            tuning_path: None,
            tuner_sample: 4096,
            method_pin: None,
            paused: false,
            default_deadline: None,
            obs: true,
            trace: false,
        }
    }
}

/// Point-in-time view of everything the server counts. Assembled from the
/// server's metrics registry — there is no second set of books.
#[derive(Clone, Debug)]
pub struct ServerSnapshot {
    pub submitted: u64,
    pub rejected_full: u64,
    pub rejected_invalid: u64,
    pub completed: u64,
    pub failed: u64,
    /// Failures caused by the per-request cycle deadline (watchdog).
    pub deadline_overruns: u64,
    /// Batches served (each covers ≥ 1 request).
    pub batches: u64,
    /// Requests that shared a batch with at least one other request.
    pub batched_requests: u64,
    pub templates_built: u64,
    /// Requests queued right now.
    pub queue_depth: u64,
    /// Deepest the queue has ever been.
    pub queue_depth_hwm: u64,
    pub queue_wait: LatencySummary,
    pub service: LatencySummary,
    pub cache: CacheStats,
    pub tuner_decisions: u64,
    pub tuner_probes: u64,
    pub per_tenant: Vec<(String, u64)>,
}

impl ServerSnapshot {
    pub fn to_json(&self) -> Value {
        json::obj(vec![
            ("submitted", json::n(self.submitted as f64)),
            ("rejected_full", json::n(self.rejected_full as f64)),
            ("rejected_invalid", json::n(self.rejected_invalid as f64)),
            ("completed", json::n(self.completed as f64)),
            ("failed", json::n(self.failed as f64)),
            ("deadline_overruns", json::n(self.deadline_overruns as f64)),
            ("batches", json::n(self.batches as f64)),
            ("batched_requests", json::n(self.batched_requests as f64)),
            ("templates_built", json::n(self.templates_built as f64)),
            ("queue_depth", json::n(self.queue_depth as f64)),
            ("queue_depth_hwm", json::n(self.queue_depth_hwm as f64)),
            ("queue_wait", self.queue_wait.to_json()),
            ("service", self.service.to_json()),
            ("cache", self.cache.to_json()),
            ("tuner_decisions", json::n(self.tuner_decisions as f64)),
            ("tuner_probes", json::n(self.tuner_probes as f64)),
            (
                "per_tenant",
                Value::Obj(
                    self.per_tenant
                        .iter()
                        .map(|(t, c)| (t.clone(), json::n(*c as f64)))
                        .collect(),
                ),
            ),
        ])
    }
}

struct Job {
    req: Request,
    enqueued: Instant,
    tx: mpsc::Sender<Result<Response, ServeError>>,
    /// Root span of the request's trace (no-op guard when tracing is off).
    span: ActiveSpan,
    /// `queue_wait` child span, open from enqueue to worker pickup.
    queue_span: ActiveSpan,
}

/// A submitted request's receipt; [`Ticket::wait`] blocks for the response.
pub struct Ticket {
    rx: mpsc::Receiver<Result<Response, ServeError>>,
}

impl Ticket {
    /// Block until the request completes (or the server drops it).
    pub fn wait(self) -> Result<Response, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::WorkerLost))
    }
}

impl std::fmt::Debug for Ticket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Ticket { .. }")
    }
}

struct Inner {
    cfg: ServerConfig,
    store: GraphStore,
    queue: Mutex<VecDeque<Job>>,
    cv: Condvar,
    cache: Mutex<ResultCache>,
    tuner: Mutex<Tuner>,
    /// Device templates keyed by `(handle, with_reverse)`.
    templates: Mutex<HashMap<(u32, bool), Arc<DeviceTemplate>>>,
    metrics: ServeMetrics,
    tracer: Tracer,
    shutdown: AtomicBool,
    paused: AtomicBool,
    /// Fingerprint of `cfg.gpu` — the device half of every cache key.
    device_fp: u64,
}

/// The graph-query service: a [`GraphStore`], a bounded queue, and a pool
/// of workers each driving a simulated GPU.
pub struct Server {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Start the worker pool.
    pub fn start(cfg: ServerConfig) -> Server {
        let device_fp = gpu_fingerprint(&cfg.gpu);
        let registry = Registry::new();
        registry.set_enabled(cfg.obs);
        let metrics = ServeMetrics::new(&registry);
        let tracer = Tracer::new(cfg.trace);
        let mut tuner = Tuner::new(cfg.tuning_path.clone(), cfg.tuner_sample, cfg.method_pin);
        tuner.set_probe_counter(metrics.tuner_probes.clone());
        let inner = Arc::new(Inner {
            cache: Mutex::new(ResultCache::with_counters(
                cfg.cache_capacity,
                metrics.cache_hits.clone(),
                metrics.cache_misses.clone(),
                metrics.cache_insertions.clone(),
                metrics.cache_evictions.clone(),
            )),
            tuner: Mutex::new(tuner),
            store: GraphStore::new(),
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            templates: Mutex::new(HashMap::new()),
            metrics,
            tracer,
            shutdown: AtomicBool::new(false),
            paused: AtomicBool::new(cfg.paused),
            device_fp,
            cfg,
        });
        let workers = (0..inner.cfg.workers.max(1))
            .map(|i| {
                let inner = Arc::clone(&inner);
                let spawned = std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&inner));
                match spawned {
                    Ok(h) => h,
                    Err(e) => panic!("spawn worker: {e}"),
                }
            })
            .collect();
        Server { inner, workers }
    }

    /// Register a graph for querying.
    pub fn register_graph(&self, name: impl Into<String>, csr: Csr) -> GraphHandle {
        self.inner.store.register(name, csr)
    }

    /// Look up a registered graph.
    pub fn graph(&self, h: GraphHandle) -> Option<Arc<GraphEntry>> {
        self.inner.store.get(h)
    }

    /// Admit a request. Errors here mean nothing was enqueued.
    pub fn submit(&self, req: Request) -> Result<Ticket, ServeError> {
        if self.inner.shutdown.load(Ordering::SeqCst) {
            return Err(ServeError::ShuttingDown);
        }
        // Validate before taking a queue slot: a request that can never
        // execute should not consume capacity.
        if self.inner.store.get(req.graph).is_none() {
            self.inner.metrics.rejected_invalid.inc();
            return Err(ServeError::UnknownGraph(req.graph));
        }
        if let Some(m) = req.method {
            if !req.query.algo().supports(m) {
                self.inner.metrics.rejected_invalid.inc();
                return Err(ServeError::Unsupported {
                    algo: req.query.algo(),
                    method: m.spec(),
                });
            }
        }
        let (tx, rx) = mpsc::channel();
        let mut span = self.inner.tracer.begin("request");
        span.arg("algo", req.query.algo().label());
        if let Some(t) = &req.tenant {
            span.arg("tenant", t.clone());
        }
        let queue_span = span.child("queue_wait");
        {
            let mut q = lock(&self.inner.queue);
            if q.len() >= self.inner.cfg.queue_capacity {
                drop(q);
                self.inner.metrics.rejected_full.inc();
                return Err(ServeError::QueueFull {
                    capacity: self.inner.cfg.queue_capacity,
                });
            }
            q.push_back(Job {
                req,
                enqueued: Instant::now(),
                tx,
                span,
                queue_span,
            });
            let depth = q.len() as u64;
            self.inner.metrics.queue_depth.set(depth);
            self.inner.metrics.queue_depth_hwm.set_max(depth);
        }
        self.inner.metrics.submitted.inc();
        self.inner.cv.notify_one();
        Ok(Ticket { rx })
    }

    /// Submit and block for the response.
    pub fn call(&self, req: Request) -> Result<Response, ServeError> {
        self.submit(req)?.wait()
    }

    /// Unpause a server started with `paused: true`.
    pub fn resume(&self) {
        self.inner.paused.store(false, Ordering::SeqCst);
        self.inner.cv.notify_all();
    }

    /// Requests currently queued (not yet picked up by a worker).
    pub fn queue_len(&self) -> usize {
        lock(&self.inner.queue).len()
    }

    /// The device fingerprint used in this server's cache keys.
    pub fn device_fingerprint(&self) -> u64 {
        self.inner.device_fp
    }

    /// This server's metrics registry (one per server; servers in the same
    /// process don't share series).
    pub fn registry(&self) -> &Registry {
        self.inner.metrics.registry()
    }

    /// This server's request tracer (no-op unless `cfg.trace`).
    pub fn tracer(&self) -> &Tracer {
        &self.inner.tracer
    }

    /// Prometheus text exposition of every serve-side series, with the
    /// occupancy gauges (queue depth, cache entries/bytes) refreshed first.
    pub fn prometheus_text(&self) -> String {
        self.refresh_gauges();
        self.registry().prometheus_text()
    }

    /// JSON snapshot of the registry (counters/gauges/histogram summaries),
    /// with occupancy gauges refreshed first.
    pub fn metrics_json(&self) -> String {
        self.refresh_gauges();
        self.registry().snapshot_json()
    }

    /// Chrome-trace JSON of every recorded request span.
    pub fn trace_json(&self) -> String {
        self.inner.tracer.chrome_trace_json("maxwarp-serve")
    }

    fn refresh_gauges(&self) {
        let depth = lock(&self.inner.queue).len() as u64;
        self.inner.metrics.queue_depth.set(depth);
        let cache = lock(&self.inner.cache).stats();
        self.inner.metrics.cache_entries.set(cache.entries);
        self.inner.metrics.cache_bytes.set(cache.bytes);
    }

    /// The cache key this server would use for `(graph, query, method)` —
    /// exposed for tests that reason about hit/miss identity.
    pub fn cache_key(&self, req: &Request, method: Method) -> Option<CacheKey> {
        let entry = self.inner.store.get(req.graph)?;
        Some(CacheKey {
            graph: entry.digest,
            query: req.query.digest(),
            method: method.spec(),
            device: self.inner.device_fp,
        })
    }

    /// Counters, cache, and tuner state in one snapshot, read back from the
    /// metrics registry.
    pub fn snapshot(&self) -> ServerSnapshot {
        let m = &self.inner.metrics;
        let cache = lock(&self.inner.cache).stats();
        let tuner = lock(&self.inner.tuner);
        let per_tenant = m
            .registry()
            .series_of("serve_tenant_requests_total")
            .into_iter()
            .filter_map(|(labels, v)| labels.into_iter().next().map(|(_, t)| (t, v)))
            .collect();
        ServerSnapshot {
            submitted: m.submitted.get(),
            rejected_full: m.rejected_full.get(),
            rejected_invalid: m.rejected_invalid.get(),
            completed: m.completed.get(),
            failed: m.failed.get(),
            deadline_overruns: m.deadline_overruns.get(),
            batches: m.batches.get(),
            batched_requests: m.batched_requests.get(),
            templates_built: m.templates_built.get(),
            queue_depth: lock(&self.inner.queue).len() as u64,
            queue_depth_hwm: m.queue_depth_hwm.get(),
            queue_wait: LatencySummary::from_hist(&m.queue_wait.snapshot()),
            service: LatencySummary::from_hist(&m.service.snapshot()),
            cache,
            tuner_decisions: tuner.decisions() as u64,
            tuner_probes: tuner.probes_run(),
            per_tenant,
        }
    }

    /// Stop accepting work, finish in-flight batches, fail queued requests
    /// with [`ServeError::ShuttingDown`], and join the workers.
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.cv.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        let mut q = lock(&self.inner.queue);
        while let Some(job) = q.pop_front() {
            let _ = job.tx.send(Err(ServeError::ShuttingDown));
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if !self.workers.is_empty() {
            self.shutdown_impl();
        }
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        let batch = {
            let mut q = lock(&inner.queue);
            loop {
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if !inner.paused.load(Ordering::SeqCst) {
                    if let Some(first) = q.pop_front() {
                        let batch = extract_batch(&mut q, first, inner.cfg.batch_max);
                        inner.metrics.queue_depth.set(q.len() as u64);
                        break batch;
                    }
                }
                q = match inner.cv.wait(q) {
                    Ok(g) => g,
                    Err(_) => panic!("server lock poisoned"),
                };
            }
        };
        serve_batch(inner, batch);
    }
}

/// Pull up to `batch_max - 1` additional same-graph jobs out of the queue,
/// preserving the relative order of everything left behind.
fn extract_batch(q: &mut VecDeque<Job>, first: Job, batch_max: usize) -> Vec<Job> {
    let handle = first.req.graph;
    let mut batch = vec![first];
    let mut i = 0;
    while i < q.len() && batch.len() < batch_max.max(1) {
        if q[i].req.graph == handle {
            if let Some(job) = q.remove(i) {
                batch.push(job);
            }
        } else {
            i += 1;
        }
    }
    batch
}

/// True when a failure's root cause is the per-request cycle deadline.
fn is_deadline_overrun(e: &ServeError) -> bool {
    matches!(
        e,
        ServeError::Launch(LaunchError::Fault(SimtError::Watchdog(_)))
    )
}

fn serve_batch(inner: &Inner, batch: Vec<Job>) {
    let batch_size = batch.len() as u32;
    let m = &inner.metrics;
    m.batches.inc();
    m.batch_size.record(batch_size as u64);
    if batch_size > 1 {
        m.batched_requests.add(batch_size as u64);
    }
    let mut batch_span = inner.tracer.begin("batch");
    batch_span.arg("graph", format!("{}", batch[0].req.graph.0));
    batch_span.arg("size", format!("{batch_size}"));
    for job in batch {
        job.queue_span.finish();
        let queue_wait = job.enqueued.elapsed();
        let started = Instant::now();
        let outcome = serve_one(inner, &job.req, &job.span);
        let service = started.elapsed();

        m.queue_wait.record_duration(queue_wait);
        m.service.record_duration(service);
        m.algo_service(job.req.query.algo())
            .record_duration(service);
        match &outcome {
            Ok(_) => m.completed.inc(),
            Err(e) => {
                m.failed.inc();
                if is_deadline_overrun(e) {
                    m.deadline_overruns.inc();
                }
            }
        }
        if let Some(t) = &job.req.tenant {
            m.tenant_requests(t).inc();
            m.tenant_service(t).record_duration(service);
        }

        let reply_span = job.span.child("reply");
        let span_id = job.span.id();
        let response = outcome.map(|(data, stats, iterations, method, cached)| Response {
            data,
            stats,
            iterations,
            method,
            cached,
            queue_wait,
            service,
            batch_size,
            span: span_id,
        });
        let _ = job.tx.send(response);
        reply_span.finish();
        job.span.finish();
    }
    batch_span.finish();
}

type Served = (
    crate::request::ResultData,
    maxwarp_simt::KernelStats,
    u32,
    Method,
    bool,
);

fn serve_one(inner: &Inner, req: &Request, span: &ActiveSpan) -> Result<Served, ServeError> {
    let entry = inner
        .store
        .get(req.graph)
        .ok_or(ServeError::UnknownGraph(req.graph))?;
    let algo = req.query.algo();

    // Resolve the method: request pin beats the tuner (including the env
    // pin, which the tuner itself applies).
    let method = match req.method {
        Some(m) => m,
        None => {
            let tuner_span = span.child("tuner");
            let mut tuner = lock(&inner.tuner);
            let choice = tuner.choose(&inner.cfg.gpu, &inner.cfg.exec, &entry, algo);
            drop(tuner);
            tuner_span.finish();
            choice.method
        }
    };
    if !algo.supports(method) {
        return Err(ServeError::Unsupported {
            algo,
            method: method.spec(),
        });
    }

    let key = CacheKey {
        graph: entry.digest,
        query: req.query.digest(),
        method: method.spec(),
        device: inner.device_fp,
    };
    let mut lookup_span = span.child("cache_lookup");
    let hit = lock(&inner.cache).get(&key);
    if let Some(hit) = hit {
        lookup_span.arg("outcome", "hit");
        lookup_span.finish();
        return Ok((hit.data, hit.stats, hit.iterations, method, true));
    }
    lookup_span.arg("outcome", "miss");
    lookup_span.finish();

    let mut template_span = span.child("template");
    let (template, built) = get_template(inner, req.graph, &entry, algo.needs_reverse());
    template_span.arg("built", if built { "upload" } else { "clone" });
    template_span.finish();

    let deadline = req.deadline_cycles.or(inner.cfg.default_deadline);
    let mut exec_span = span.child("execute");
    exec_span.arg("method", method.spec());
    // When profiling, stamp the request's span id into the profiler context
    // so device-side launch timelines correlate with this trace.
    let label = (inner.tracer.enabled() && inner.cfg.gpu.profile)
        .then(|| format!("req-{} {} {}", span.id(), algo.label(), method.spec()));
    let run = catch_unwind(AssertUnwindSafe(|| {
        execute_labeled(
            &inner.cfg.gpu,
            &inner.cfg.exec,
            &entry,
            &template,
            &req.query,
            method,
            deadline,
            label.as_deref(),
        )
    }))
    .map_err(|p| ServeError::Panicked(panic_message(&p)))??;
    exec_span.finish();

    let (data, algo_run) = run;
    let insert_span = span.child("cache_insert");
    lock(&inner.cache).insert(
        key,
        CachedResult {
            data: data.clone(),
            stats: algo_run.stats.clone(),
            iterations: algo_run.iterations,
            method: method.spec(),
        },
    );
    insert_span.finish();
    Ok((data, algo_run.stats, algo_run.iterations, method, false))
}

/// Fetch or build the device template; the flag reports whether this call
/// paid the upload.
fn get_template(
    inner: &Inner,
    handle: GraphHandle,
    entry: &GraphEntry,
    needs_reverse: bool,
) -> (Arc<DeviceTemplate>, bool) {
    let mut templates = lock(&inner.templates);
    if let Some(t) = templates.get(&(handle.0, needs_reverse)) {
        return (Arc::clone(t), false);
    }
    let t = Arc::new(DeviceTemplate::build(&inner.cfg.gpu, entry, needs_reverse));
    templates.insert((handle.0, needs_reverse), Arc::clone(&t));
    inner.metrics.templates_built.inc();
    (t, true)
}

fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
