//! Resilience policies for the serve tier — declarative, deterministic,
//! and strictly *around* execution.
//!
//! Everything here is pure policy: retry budgets, backoff schedules,
//! admission token buckets, circuit-breaker state machines, worker restart
//! limits, and the seeded chaos-injection knobs the chaos harness drives.
//! None of it touches the simulator, so `KernelStats` for successfully
//! served requests are byte-identical with every feature on or off
//! (asserted by `tests/resilience.rs`).
//!
//! Determinism discipline: every randomized decision (backoff jitter,
//! chaos injection) is a pure function of a seed and a sequence number via
//! SplitMix64 — two runs with the same seed make the same decisions, which
//! is what lets `tool_chaos_serve` assert exact outcome accounting.

use std::collections::HashMap;
use std::time::{Duration, Instant};

/// SplitMix64 — the workspace's standard cheap mixer; used for jitter and
/// chaos decisions so they are reproducible from a seed.
pub fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Capped exponential backoff with deterministic jitter.
///
/// Attempt `k` sleeps for `base * 2^k`, capped at `cap`, then jittered
/// into `[delay/2, delay]` by a hash of `(seed, k)`. The half-floor keeps
/// retries from synchronizing (full jitter) while guaranteeing real
/// spacing (no zero-sleep hot spin — the bug this replaced in
/// `serve_loadgen`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Backoff {
    /// First-retry delay.
    pub base: Duration,
    /// Upper bound on any single delay.
    pub cap: Duration,
}

impl Backoff {
    pub fn new(base: Duration, cap: Duration) -> Backoff {
        Backoff { base, cap }
    }

    /// The jittered delay before retry number `attempt` (0-based).
    pub fn delay(&self, attempt: u32, seed: u64) -> Duration {
        let base = self.base.as_nanos().min(u64::MAX as u128) as u64;
        let cap = self.cap.as_nanos().min(u64::MAX as u128) as u64;
        let exp = base.saturating_shl(attempt.min(32)).min(cap.max(base));
        // Jitter into [exp/2, exp].
        let half = exp / 2;
        let jitter = if half == 0 {
            0
        } else {
            mix(seed ^ u64::from(attempt).wrapping_mul(0x2545f4914f6cdd1d)) % (half + 1)
        };
        Duration::from_nanos(half + jitter)
    }
}

impl Default for Backoff {
    fn default() -> Backoff {
        Backoff::new(Duration::from_micros(200), Duration::from_millis(50))
    }
}

trait SaturatingShl {
    fn saturating_shl(self, k: u32) -> Self;
}
impl SaturatingShl for u64 {
    fn saturating_shl(self, k: u32) -> u64 {
        if self == 0 {
            0
        } else if k >= self.leading_zeros() {
            u64::MAX
        } else {
            self << k
        }
    }
}

/// Per-request-class retry budget and hedging policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total execution attempts (1 = no retries).
    pub max_attempts: u32,
    /// Delay schedule between attempts.
    pub backoff: Backoff,
    /// Deadline-critical requests: after this much wall time without a
    /// response, launch a hedged duplicate; first result wins and the
    /// loser is cancelled (skipped if still queued, discarded if raced).
    pub hedge_after: Option<Duration>,
}

impl RetryPolicy {
    /// One attempt, no hedging — the default request class.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            backoff: Backoff::default(),
            hedge_after: None,
        }
    }

    /// `n` total attempts with the default backoff.
    pub fn attempts(n: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts: n.max(1),
            ..RetryPolicy::none()
        }
    }

    /// Attach a hedge deadline.
    pub fn with_hedge(mut self, after: Duration) -> RetryPolicy {
        self.hedge_after = Some(after);
        self
    }
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy::none()
    }
}

/// Why a request was shed instead of queued.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShedReason {
    /// The tenant exhausted its token bucket.
    TenantRate,
    /// Queue depth crossed the high-watermark and this request (or a
    /// lower-priority victim) lost the priority comparison.
    QueuePressure,
}

impl ShedReason {
    pub fn label(&self) -> &'static str {
        match self {
            ShedReason::TenantRate => "tenant_rate",
            ShedReason::QueuePressure => "queue_pressure",
        }
    }
}

/// Classic token bucket: `burst` capacity, refilled at `rate` tokens/sec.
#[derive(Clone, Debug)]
pub struct TokenBucket {
    burst: f64,
    rate: f64,
    tokens: f64,
    last: Instant,
}

impl TokenBucket {
    pub fn new(burst: f64, rate: f64, now: Instant) -> TokenBucket {
        TokenBucket {
            burst: burst.max(1.0),
            rate: rate.max(0.0),
            tokens: burst.max(1.0),
            last: now,
        }
    }

    /// Take one token if available; refills lazily from elapsed time.
    pub fn try_take(&mut self, now: Instant) -> bool {
        let dt = now.saturating_duration_since(self.last).as_secs_f64();
        self.last = now;
        self.tokens = (self.tokens + dt * self.rate).min(self.burst);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// Admission-control and load-shedding configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ShedConfig {
    /// Fraction of queue capacity at which priority shedding starts.
    pub high_watermark: f64,
    /// Per-tenant sustained admission rate (tokens/sec).
    pub tenant_rate: f64,
    /// Per-tenant burst allowance (bucket capacity).
    pub tenant_burst: f64,
}

impl Default for ShedConfig {
    fn default() -> ShedConfig {
        ShedConfig {
            high_watermark: 0.75,
            tenant_rate: 500.0,
            tenant_burst: 100.0,
        }
    }
}

/// Circuit-breaker configuration for one serve tier.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive launch faults that trip the breaker.
    pub threshold: u32,
    /// How long the breaker stays open before a half-open trial.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig {
            threshold: 3,
            cooldown: Duration::from_millis(250),
        }
    }
}

/// Observable breaker position for one `(graph, algorithm)` key.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests run on the device.
    Closed,
    /// Tripped: requests route to the CPU fallback.
    Open,
    /// Cooldown elapsed: this request is the single device trial.
    HalfOpen,
}

enum KeyState {
    Closed {
        consecutive: u32,
    },
    Open {
        since: Instant,
        trial_inflight: bool,
    },
}

/// Per-`(graph digest, algorithm)` circuit breaker: `Closed` →(K
/// consecutive launch faults)→ `Open` →(cooldown)→ `HalfOpen` trial →
/// `Closed` on success / back to `Open` on failure.
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    keys: HashMap<(u64, &'static str), KeyState>,
}

impl CircuitBreaker {
    pub fn new(cfg: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            cfg,
            keys: HashMap::new(),
        }
    }

    /// Gate a request. `HalfOpen` is returned to exactly one caller per
    /// cooldown window — that caller runs the device trial.
    pub fn admit(&mut self, key: (u64, &'static str), now: Instant) -> BreakerState {
        match self.keys.get_mut(&key) {
            None | Some(KeyState::Closed { .. }) => BreakerState::Closed,
            Some(KeyState::Open {
                since,
                trial_inflight,
            }) => {
                if now.saturating_duration_since(*since) >= self.cfg.cooldown && !*trial_inflight {
                    *trial_inflight = true;
                    BreakerState::HalfOpen
                } else {
                    BreakerState::Open
                }
            }
        }
    }

    /// A device run for `key` succeeded: close the breaker.
    pub fn on_success(&mut self, key: (u64, &'static str)) {
        self.keys.insert(key, KeyState::Closed { consecutive: 0 });
    }

    /// A device run for `key` faulted. Returns `true` when this failure
    /// newly trips the breaker (for the trip counter).
    pub fn on_failure(&mut self, key: (u64, &'static str), now: Instant) -> bool {
        let state = self
            .keys
            .entry(key)
            .or_insert(KeyState::Closed { consecutive: 0 });
        match state {
            KeyState::Closed { consecutive } => {
                *consecutive += 1;
                if *consecutive >= self.cfg.threshold.max(1) {
                    *state = KeyState::Open {
                        since: now,
                        trial_inflight: false,
                    };
                    true
                } else {
                    false
                }
            }
            KeyState::Open { .. } => {
                // A failed half-open trial (or a raced in-flight request):
                // restart the cooldown.
                *state = KeyState::Open {
                    since: now,
                    trial_inflight: false,
                };
                false
            }
        }
    }

    /// Number of keys currently open (feeds the `serve_breaker_open`
    /// gauge).
    pub fn open_count(&self) -> u64 {
        self.keys
            .values()
            .filter(|s| matches!(s, KeyState::Open { .. }))
            .count() as u64
    }
}

/// Bounded worker-restart policy for the supervision layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RestartPolicy {
    /// Restarts granted per worker slot before it is declared
    /// [`WorkerHealth::Dead`](crate::scheduler::WorkerHealth).
    pub max_restarts: u32,
    /// Delay schedule between restarts (jittered per slot).
    pub backoff: Backoff,
}

impl Default for RestartPolicy {
    fn default() -> RestartPolicy {
        RestartPolicy {
            max_restarts: 3,
            backoff: Backoff::new(Duration::from_millis(1), Duration::from_millis(100)),
        }
    }
}

/// What happens to the in-flight requests of a crashed worker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrashPolicy {
    /// Put them back at the head of the queue, at most `max_requeues`
    /// times per request (then fail them — bounds crash loops).
    Requeue { max_requeues: u32 },
    /// Fail them immediately with a structured error.
    Fail,
}

impl Default for CrashPolicy {
    fn default() -> CrashPolicy {
        CrashPolicy::Requeue { max_requeues: 2 }
    }
}

/// The whole resilience policy bundle one server runs with.
///
/// The default is **everything off** (legacy behavior): one attempt, no
/// hedge, bare `QueueFull` backpressure, no TTL, no breaker — existing
/// callers and tests see no change unless they opt in. Supervision
/// (restart + crash recovery) is always on; it has no behavioral cost
/// when nothing panics.
#[derive(Clone, Debug, Default)]
pub struct ResilienceConfig {
    /// Default per-request retry/hedge policy (`Request::retry` overrides).
    pub retry: RetryPolicy,
    /// Admission control + priority shedding; `None` keeps bare
    /// `QueueFull`.
    pub shed: Option<ShedConfig>,
    /// Stale-while-revalidate: cache hits older than this are served
    /// `degraded` while a background refresh runs; `None` = hits never
    /// expire.
    pub stale_ttl: Option<Duration>,
    /// Per-(graph, algorithm) circuit breaker; `None` disables.
    pub breaker: Option<BreakerConfig>,
    /// Worker supervision restart budget.
    pub restart: RestartPolicy,
    /// In-flight recovery policy for crashed workers.
    pub crash: CrashPolicy,
}

impl ResilienceConfig {
    /// Defaults plus the environment knobs:
    ///
    /// | variable | effect |
    /// |---|---|
    /// | `MAXWARP_RETRY` | max attempts per request (default 1 = off) |
    /// | `MAXWARP_SHED` | queue high-watermark fraction (e.g. `0.75`); `0`/`off` keeps bare `QueueFull` |
    /// | `MAXWARP_STALE_TTL` | stale-while-revalidate TTL in milliseconds; `0`/`off` disables |
    /// | `MAXWARP_BREAKER` | consecutive-fault trip threshold; `0`/`off` disables |
    pub fn from_env() -> ResilienceConfig {
        let mut cfg = ResilienceConfig::default();
        if let Ok(v) = std::env::var("MAXWARP_RETRY") {
            if let Ok(n) = v.parse::<u32>() {
                cfg.retry.max_attempts = n.max(1);
            }
        }
        if let Ok(v) = std::env::var("MAXWARP_SHED") {
            if v == "0" || v.eq_ignore_ascii_case("off") {
                cfg.shed = None;
            } else if let Ok(f) = v.parse::<f64>() {
                if f > 0.0 && f <= 1.0 {
                    cfg.shed = Some(ShedConfig {
                        high_watermark: f,
                        ..ShedConfig::default()
                    });
                }
            }
        }
        if let Ok(v) = std::env::var("MAXWARP_STALE_TTL") {
            cfg.stale_ttl = match v.parse::<u64>() {
                Ok(0) | Err(_) => None,
                Ok(ms) => Some(Duration::from_millis(ms)),
            };
        }
        if let Ok(v) = std::env::var("MAXWARP_BREAKER") {
            cfg.breaker = match v.parse::<u32>() {
                Ok(0) | Err(_) => None,
                Ok(k) => Some(BreakerConfig {
                    threshold: k,
                    ..BreakerConfig::default()
                }),
            };
        }
        cfg
    }
}

/// Seeded fault injection for the chaos harness. All decisions are pure
/// functions of `(seed, sequence number)`, so a scenario replays exactly.
///
/// Injection points sit deliberately on *opposite sides* of the
/// per-request `catch_unwind`: worker panics fire in the worker loop
/// (outside it — they genuinely crash the worker and exercise
/// supervision), slow launches fire inside `serve_one` (they exercise
/// hedging without killing anyone).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ChaosConfig {
    /// Seed for every injection decision.
    pub seed: u64,
    /// Probability (0..=1) that a batch pickup panics the worker.
    pub worker_panic: f64,
    /// Probability (0..=1) that an execution is delayed by `slow`.
    pub slow_launch: f64,
    /// The injected delay for slow launches.
    pub slow: Duration,
    /// Probability (0..=1) that an execution fails with an injected launch
    /// fault (drives the circuit breaker without touching the device).
    pub launch_fault: f64,
}

impl ChaosConfig {
    /// Deterministic biased coin: does event class `salt` fire at sequence
    /// number `n` with probability `p`?
    pub fn roll(&self, salt: u64, n: u64, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        let h = mix(self.seed ^ salt.wrapping_mul(0xd6e8feb86659fd93) ^ n);
        (h as f64) / (u64::MAX as f64) < p
    }
}

/// Salts for [`ChaosConfig::roll`] — one per event class so the streams
/// are independent.
pub mod chaos_salt {
    pub const WORKER_PANIC: u64 = 0x57_50;
    pub const SLOW_LAUNCH: u64 = 0x51_0e;
    pub const LAUNCH_FAULT: u64 = 0xfa_17;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_caps_and_jitters_within_bounds() {
        let b = Backoff::new(Duration::from_micros(100), Duration::from_millis(2));
        let mut prev_max = Duration::ZERO;
        for attempt in 0..12 {
            let nominal = Duration::from_micros(100 * (1u64 << attempt.min(10)))
                .min(Duration::from_millis(2));
            for seed in 0..50 {
                let d = b.delay(attempt, seed);
                assert!(d <= nominal, "attempt {attempt}: {d:?} > {nominal:?}");
                assert!(
                    d >= nominal / 2,
                    "attempt {attempt}: {d:?} < half of {nominal:?}"
                );
            }
            // The schedule is non-decreasing in its upper bound.
            assert!(nominal >= prev_max);
            prev_max = nominal;
        }
        // Deterministic per (attempt, seed).
        assert_eq!(b.delay(3, 42), b.delay(3, 42));
        // Cap is respected even for absurd attempts.
        assert!(b.delay(63, 1) <= Duration::from_millis(2));
    }

    #[test]
    fn token_bucket_enforces_burst_then_rate() {
        let t0 = Instant::now();
        let mut b = TokenBucket::new(3.0, 10.0, t0);
        assert!(b.try_take(t0) && b.try_take(t0) && b.try_take(t0));
        assert!(!b.try_take(t0), "burst exhausted");
        // 100 ms at 10/s refills exactly one token.
        let t1 = t0 + Duration::from_millis(100);
        assert!(b.try_take(t1));
        assert!(!b.try_take(t1));
        // A long idle period refills to burst, not beyond.
        let t2 = t1 + Duration::from_secs(60);
        assert!(b.try_take(t2) && b.try_take(t2) && b.try_take(t2));
        assert!(!b.try_take(t2));
    }

    #[test]
    fn breaker_trips_cools_down_and_half_opens() {
        let t0 = Instant::now();
        let cfg = BreakerConfig {
            threshold: 2,
            cooldown: Duration::from_millis(10),
        };
        let mut br = CircuitBreaker::new(cfg);
        let key = (7u64, "bfs");
        assert_eq!(br.admit(key, t0), BreakerState::Closed);
        assert!(!br.on_failure(key, t0), "first fault doesn't trip");
        assert!(br.on_failure(key, t0), "second fault trips");
        assert_eq!(br.open_count(), 1);
        assert_eq!(br.admit(key, t0), BreakerState::Open);

        // Cooldown elapses: exactly one caller gets the half-open trial.
        let t1 = t0 + Duration::from_millis(11);
        assert_eq!(br.admit(key, t1), BreakerState::HalfOpen);
        assert_eq!(br.admit(key, t1), BreakerState::Open, "only one trial");

        // Trial success closes; a success resets the consecutive count.
        br.on_success(key);
        assert_eq!(br.admit(key, t1), BreakerState::Closed);
        assert_eq!(br.open_count(), 0);
        assert!(!br.on_failure(key, t1), "count restarted after success");

        // A failed trial reopens with a fresh cooldown.
        assert!(br.on_failure(key, t1));
        let t2 = t1 + Duration::from_millis(11);
        assert_eq!(br.admit(key, t2), BreakerState::HalfOpen);
        assert!(!br.on_failure(key, t2), "reopen is not a new trip");
        assert_eq!(
            br.admit(key, t2 + Duration::from_millis(1)),
            BreakerState::Open
        );
    }

    #[test]
    fn other_keys_are_independent() {
        let t0 = Instant::now();
        let mut br = CircuitBreaker::new(BreakerConfig {
            threshold: 1,
            cooldown: Duration::from_secs(1),
        });
        br.on_failure((1, "bfs"), t0);
        assert_eq!(br.admit((1, "bfs"), t0), BreakerState::Open);
        assert_eq!(br.admit((1, "cc"), t0), BreakerState::Closed);
        assert_eq!(br.admit((2, "bfs"), t0), BreakerState::Closed);
    }

    #[test]
    fn chaos_rolls_are_deterministic_and_rate_accurate() {
        let c = ChaosConfig {
            seed: 99,
            worker_panic: 0.1,
            ..ChaosConfig::default()
        };
        let hits: Vec<bool> = (0..10_000)
            .map(|n| c.roll(chaos_salt::WORKER_PANIC, n, 0.1))
            .collect();
        let again: Vec<bool> = (0..10_000)
            .map(|n| c.roll(chaos_salt::WORKER_PANIC, n, 0.1))
            .collect();
        assert_eq!(hits, again, "same seed, same stream");
        let rate = hits.iter().filter(|&&h| h).count() as f64 / 10_000.0;
        assert!((rate - 0.1).abs() < 0.02, "empirical rate {rate}");
        // Different salts give different streams.
        let other: Vec<bool> = (0..10_000)
            .map(|n| c.roll(chaos_salt::SLOW_LAUNCH, n, 0.1))
            .collect();
        assert_ne!(hits, other);
        // Edge probabilities.
        assert!(!c.roll(1, 0, 0.0));
        assert!(c.roll(1, 0, 1.0));
    }

    #[test]
    fn env_parsing_covers_the_knob_grammar() {
        // from_env reads real process env; exercise the parsers directly
        // via a synthetic round trip instead (env mutation would race other
        // tests).
        let d = ResilienceConfig::default();
        assert_eq!(d.retry.max_attempts, 1);
        assert!(d.shed.is_none() && d.stale_ttl.is_none() && d.breaker.is_none());
        assert_eq!(d.crash, CrashPolicy::Requeue { max_requeues: 2 });
    }
}
