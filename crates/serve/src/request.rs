//! Query/request/response types of the serving API.

use crate::resilience::{RetryPolicy, ShedReason};
use crate::store::GraphHandle;
use maxwarp::Method;
use maxwarp_graph::Fnv64;
use maxwarp_simt::{KernelStats, LaunchError};
use std::time::Duration;

/// The twelve algorithms the service exposes — one per kernel family in
/// `maxwarp::kernels`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Algo {
    Bfs,
    BfsQueue,
    BfsHybrid,
    Sssp,
    Cc,
    Pagerank,
    Betweenness,
    Triangles,
    Coloring,
    Kcore,
    MsBfs,
    Spmv,
}

impl Algo {
    /// Every algorithm, in a stable order.
    pub const ALL: [Algo; 12] = [
        Algo::Bfs,
        Algo::BfsQueue,
        Algo::BfsHybrid,
        Algo::Sssp,
        Algo::Cc,
        Algo::Pagerank,
        Algo::Betweenness,
        Algo::Triangles,
        Algo::Coloring,
        Algo::Kcore,
        Algo::MsBfs,
        Algo::Spmv,
    ];

    /// Short stable name — used in tuning-table keys and reports.
    pub fn label(&self) -> &'static str {
        match self {
            Algo::Bfs => "bfs",
            Algo::BfsQueue => "bfs_queue",
            Algo::BfsHybrid => "bfs_hybrid",
            Algo::Sssp => "sssp",
            Algo::Cc => "cc",
            Algo::Pagerank => "pagerank",
            Algo::Betweenness => "betweenness",
            Algo::Triangles => "triangles",
            Algo::Coloring => "coloring",
            Algo::Kcore => "kcore",
            Algo::MsBfs => "msbfs",
            Algo::Spmv => "spmv",
        }
    }

    /// Parse a label produced by [`label`](Algo::label).
    pub fn parse(s: &str) -> Option<Algo> {
        Algo::ALL.iter().copied().find(|a| a.label() == s)
    }

    /// Whether this algorithm's kernels implement outlier deferral. The
    /// drivers of the remaining kernels assert it away.
    pub fn supports_defer(&self) -> bool {
        matches!(self, Algo::Bfs | Algo::Sssp | Algo::Cc | Algo::Pagerank)
    }

    /// Whether the dynamic workload distributor applies (every kernel
    /// except the two-phase scalar/vector SpMV).
    pub fn supports_dynamic(&self) -> bool {
        !matches!(self, Algo::Spmv)
    }

    /// True if `method` can legally run this algorithm.
    pub fn supports(&self, method: Method) -> bool {
        match method {
            Method::Baseline => true,
            Method::WarpCentric(o) => {
                (o.defer_threshold.is_none() || self.supports_defer())
                    && (!o.dynamic || self.supports_dynamic())
            }
        }
    }

    /// Whether execution needs the transposed graph on the device.
    pub(crate) fn needs_reverse(&self) -> bool {
        matches!(self, Algo::BfsHybrid)
    }
}

impl std::fmt::Display for Algo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// An algorithm plus its parameters. `None` sources default to the graph's
/// registered high-degree source vertex.
#[derive(Clone, Debug, PartialEq)]
pub enum Query {
    /// Level-synchronous BFS.
    Bfs { src: Option<u32> },
    /// Frontier-queue BFS.
    BfsQueue { src: Option<u32> },
    /// Direction-optimizing BFS.
    BfsHybrid { src: Option<u32> },
    /// Bellman-Ford SSSP over the graph's registered edge weights.
    Sssp { src: Option<u32> },
    /// Label-propagation connected components.
    Cc,
    /// Push-style PageRank.
    Pagerank { iters: u32, damping: f32 },
    /// Brandes betweenness from the top-degree `num_sources` vertices.
    Betweenness { num_sources: u32 },
    /// Forward-edge triangle count.
    Triangles,
    /// Luby-round greedy coloring.
    Coloring,
    /// Parallel-peel k-core decomposition.
    Kcore,
    /// Multi-source BFS from the top-degree `num_sources` (≤ 32) vertices.
    MsBfs { num_sources: u32 },
    /// CSR SpMV with the registered weights as values, x = 1.
    Spmv,
}

impl Query {
    /// Which algorithm this query runs.
    pub fn algo(&self) -> Algo {
        match self {
            Query::Bfs { .. } => Algo::Bfs,
            Query::BfsQueue { .. } => Algo::BfsQueue,
            Query::BfsHybrid { .. } => Algo::BfsHybrid,
            Query::Sssp { .. } => Algo::Sssp,
            Query::Cc => Algo::Cc,
            Query::Pagerank { .. } => Algo::Pagerank,
            Query::Betweenness { .. } => Algo::Betweenness,
            Query::Triangles => Algo::Triangles,
            Query::Coloring => Algo::Coloring,
            Query::Kcore => Algo::Kcore,
            Query::MsBfs { .. } => Algo::MsBfs,
            Query::Spmv => Algo::Spmv,
        }
    }

    /// The canonical query the autotuner probes candidates with — cheap,
    /// parameter-free defaults, since tuning decisions are per
    /// `(graph, algorithm)`, not per parameter set.
    pub fn canonical(algo: Algo) -> Query {
        match algo {
            Algo::Bfs => Query::Bfs { src: None },
            Algo::BfsQueue => Query::BfsQueue { src: None },
            Algo::BfsHybrid => Query::BfsHybrid { src: None },
            Algo::Sssp => Query::Sssp { src: None },
            Algo::Cc => Query::Cc,
            Algo::Pagerank => Query::Pagerank {
                iters: 5,
                damping: 0.85,
            },
            Algo::Betweenness => Query::Betweenness { num_sources: 4 },
            Algo::Triangles => Query::Triangles,
            Algo::Coloring => Query::Coloring,
            Algo::Kcore => Query::Kcore,
            Algo::MsBfs => Query::MsBfs { num_sources: 8 },
            Algo::Spmv => Query::Spmv,
        }
    }

    /// Content digest of the algorithm and every parameter — half of the
    /// result-cache key.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv64::new();
        h.str(self.algo().label());
        match self {
            Query::Bfs { src }
            | Query::BfsQueue { src }
            | Query::BfsHybrid { src }
            | Query::Sssp { src } => {
                h.u32(src.map_or(u32::MAX, |s| s));
            }
            Query::Pagerank { iters, damping } => {
                h.u32(*iters).f32(*damping);
            }
            Query::Betweenness { num_sources } | Query::MsBfs { num_sources } => {
                h.u32(*num_sources);
            }
            Query::Cc | Query::Triangles | Query::Coloring | Query::Kcore | Query::Spmv => {}
        }
        h.finish()
    }
}

/// Shedding priority class: under queue pressure, [`Priority::Low`] work
/// is dropped first (the derived `Ord` makes `Low < Normal < High`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    Low,
    #[default]
    Normal,
    High,
}

impl Priority {
    pub fn label(&self) -> &'static str {
        match self {
            Priority::Low => "low",
            Priority::Normal => "normal",
            Priority::High => "high",
        }
    }
}

/// One query against one registered graph.
#[derive(Clone, Debug)]
pub struct Request {
    /// Which registered graph to run on.
    pub graph: GraphHandle,
    /// The algorithm and its parameters.
    pub query: Query,
    /// Pinned method, or `None` to let the autotuner choose.
    pub method: Option<Method>,
    /// Per-request compute budget in simulated cycles, enforced through the
    /// device watchdog. Cache hits consume no budget. `None` falls back to
    /// the server's default deadline.
    pub deadline_cycles: Option<u64>,
    /// Optional tenant tag for per-tenant accounting (and, when admission
    /// control is on, the token-bucket key).
    pub tenant: Option<String>,
    /// Shedding priority under queue pressure.
    pub priority: Priority,
    /// Retry/hedge policy for this request; `None` uses the server's
    /// default class ([`crate::resilience::ResilienceConfig::retry`]).
    pub retry: Option<RetryPolicy>,
}

impl Request {
    /// A tuner-scheduled query with no deadline or tenant.
    pub fn new(graph: GraphHandle, query: Query) -> Request {
        Request {
            graph,
            query,
            method: None,
            deadline_cycles: None,
            tenant: None,
            priority: Priority::Normal,
            retry: None,
        }
    }

    /// Set the shedding priority.
    pub fn with_priority(mut self, p: Priority) -> Request {
        self.priority = p;
        self
    }

    /// Attach a per-request retry/hedge policy.
    pub fn with_retry(mut self, policy: RetryPolicy) -> Request {
        self.retry = Some(policy);
        self
    }
}

/// Algorithm output, by shape.
#[derive(Clone, Debug, PartialEq)]
pub enum ResultData {
    /// BFS levels / SSSP distances / CC labels / colors / core numbers.
    U32s(Vec<u32>),
    /// PageRank ranks / betweenness scores / SpMV output.
    F32s(Vec<f32>),
    /// Per-source level vectors (MS-BFS).
    U32Rows(Vec<Vec<u32>>),
    /// Triangle count.
    Count(u64),
}

impl ResultData {
    /// Content digest, for validation and reporting.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv64::new();
        match self {
            ResultData::U32s(v) => {
                h.byte(0).u64(v.len() as u64);
                for &x in v {
                    h.u32(x);
                }
            }
            ResultData::F32s(v) => {
                h.byte(1).u64(v.len() as u64);
                for &x in v {
                    h.f32(x);
                }
            }
            ResultData::U32Rows(rows) => {
                h.byte(2).u64(rows.len() as u64);
                for r in rows {
                    h.u64(r.len() as u64);
                    for &x in r {
                        h.u32(x);
                    }
                }
            }
            ResultData::Count(c) => {
                h.byte(3).u64(*c);
            }
        }
        h.finish()
    }

    /// Approximate payload size, for the cache's byte accounting.
    pub fn approx_bytes(&self) -> usize {
        match self {
            ResultData::U32s(v) => 4 * v.len(),
            ResultData::F32s(v) => 4 * v.len(),
            ResultData::U32Rows(rows) => rows.iter().map(|r| 4 * r.len() + 24).sum(),
            ResultData::Count(_) => 8,
        }
    }
}

/// Where a response's payload came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResponseSource {
    /// Executed on the simulated device this call.
    Device,
    /// Replayed from the result cache (fresh entry).
    Cache,
    /// Replayed from a cache entry past its TTL — `degraded: true`, a
    /// background refresh is running.
    StaleCache,
    /// Produced by the CPU reference implementation because the circuit
    /// breaker for this `(graph, algorithm)` is open — `degraded: true`,
    /// `stats` are zeroed (no device ran).
    CpuFallback,
}

impl ResponseSource {
    pub fn label(&self) -> &'static str {
        match self {
            ResponseSource::Device => "device",
            ResponseSource::Cache => "cache",
            ResponseSource::StaleCache => "stale_cache",
            ResponseSource::CpuFallback => "cpu_fallback",
        }
    }
}

/// A completed query: the payload plus everything a caller needs to reason
/// about how it was produced.
#[derive(Clone, Debug)]
pub struct Response {
    /// The algorithm output.
    pub data: ResultData,
    /// Kernel statistics accumulated over the run (the cached copy on a
    /// cache hit — byte-identical to the cold run's by construction).
    pub stats: KernelStats,
    /// Driver iterations (BFS levels, PR iterations, ...).
    pub iterations: u32,
    /// The method that produced the result (pinned or tuner-chosen).
    pub method: Method,
    /// True if served from the result cache.
    pub cached: bool,
    /// Which path produced the payload.
    pub source: ResponseSource,
    /// True for degraded serves: a stale cache replay or a CPU fallback.
    /// Non-degraded responses are byte-identical to a clean cold run;
    /// degraded ones trade that guarantee for availability.
    pub degraded: bool,
    /// Execution attempts consumed (1 = first try; >1 means retries).
    pub attempts: u32,
    /// Host time spent queued before a worker picked the request up.
    pub queue_wait: Duration,
    /// Host time spent executing (or fetching from cache).
    pub service: Duration,
    /// Number of requests in the batch this one was served in.
    pub batch_size: u32,
    /// Root span id of this request in the server's tracer (0 when request
    /// tracing is off). The same id appears in the Chrome-trace export and,
    /// when profiling, in the profiler's `req-<id>` context label — the
    /// correlation key between serve-side and device-side timelines.
    pub span: u64,
}

/// Structured service errors.
#[derive(Debug)]
pub enum ServeError {
    /// Admission control: the submission queue is at capacity. Back off and
    /// retry — nothing was enqueued.
    QueueFull {
        /// The configured queue depth that was exhausted.
        capacity: usize,
    },
    /// The request named a graph handle that was never registered.
    UnknownGraph(GraphHandle),
    /// The pinned method cannot run this algorithm (e.g. deferral on a
    /// kernel without an outlier pass).
    Unsupported {
        /// The requested algorithm.
        algo: Algo,
        /// The offending method spec.
        method: String,
    },
    /// Parameters out of range (e.g. a source vertex beyond `n`).
    BadRequest(String),
    /// The launch exceeded its cycle deadline (watchdog) or faulted.
    Launch(LaunchError),
    /// Execution panicked inside the simulator. The worker survived (panics
    /// are caught per request) and the panic message is preserved.
    Panicked(String),
    /// Admission control shed this request (or evicted it from the queue
    /// in favor of higher-priority work). Nothing was executed; the
    /// structured reason says which limit was hit.
    Shed {
        /// Which admission limit rejected the request.
        reason: ShedReason,
    },
    /// The worker executing this request crashed and the crash policy (or
    /// its requeue budget) did not re-admit it. `requeues` counts how many
    /// times it had already been recovered.
    WorkerCrashed {
        /// Crash-recovery requeues this request had consumed.
        requeues: u32,
    },
    /// Every worker slot has exhausted its restart budget; the service can
    /// no longer execute anything.
    WorkersDead,
    /// The server is shutting down; the request was not executed.
    ShuttingDown,
    /// The worker serving this request disappeared (a bug — workers are
    /// panic-isolated per request).
    WorkerLost,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::QueueFull { capacity } => {
                write!(
                    f,
                    "submission queue full ({capacity} requests); back off and retry"
                )
            }
            ServeError::UnknownGraph(h) => write!(f, "unknown graph handle {h:?}"),
            ServeError::Unsupported { algo, method } => {
                write!(f, "method {method} cannot run {algo}")
            }
            ServeError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServeError::Launch(e) => write!(f, "launch failed: {e}"),
            ServeError::Panicked(msg) => write!(f, "execution panicked: {msg}"),
            ServeError::Shed { reason } => {
                write!(f, "request shed by admission control ({})", reason.label())
            }
            ServeError::WorkerCrashed { requeues } => {
                write!(f, "worker crashed mid-request (after {requeues} requeues)")
            }
            ServeError::WorkersDead => {
                write!(f, "all worker slots dead (restart budgets exhausted)")
            }
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::WorkerLost => write!(f, "worker lost before responding"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<LaunchError> for ServeError {
    fn from(e: LaunchError) -> Self {
        ServeError::Launch(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for a in Algo::ALL {
            assert_eq!(Algo::parse(a.label()), Some(a));
        }
        assert_eq!(Algo::parse("nope"), None);
    }

    #[test]
    fn capability_matrix() {
        let defer = Method::parse("vw8+defer:64").unwrap();
        let dynq = Method::parse("vw32+dyn").unwrap();
        assert!(Algo::Bfs.supports(defer));
        assert!(!Algo::Triangles.supports(defer));
        assert!(!Algo::Spmv.supports(dynq));
        assert!(Algo::Kcore.supports(dynq));
        for a in Algo::ALL {
            assert!(a.supports(Method::Baseline));
            assert!(a.supports(Method::warp(8)));
        }
    }

    #[test]
    fn query_digest_separates_params() {
        let a = Query::Bfs { src: Some(3) };
        let b = Query::Bfs { src: Some(4) };
        let c = Query::BfsQueue { src: Some(3) };
        assert_ne!(a.digest(), b.digest());
        assert_ne!(a.digest(), c.digest(), "same params, different algo");
        assert_eq!(a.digest(), Query::Bfs { src: Some(3) }.digest());
        let p1 = Query::Pagerank {
            iters: 5,
            damping: 0.85,
        };
        let p2 = Query::Pagerank {
            iters: 5,
            damping: 0.86,
        };
        assert_ne!(p1.digest(), p2.digest());
    }

    #[test]
    fn priority_orders_low_normal_high() {
        assert!(Priority::Low < Priority::Normal && Priority::Normal < Priority::High);
        assert_eq!(Priority::default(), Priority::Normal);
    }

    #[test]
    fn canonical_queries_cover_all_algos() {
        for a in Algo::ALL {
            assert_eq!(Query::canonical(a).algo(), a);
        }
    }

    #[test]
    fn result_digest_discriminates_shape() {
        assert_ne!(
            ResultData::U32s(vec![1]).digest(),
            ResultData::F32s(vec![f32::from_bits(1)]).digest()
        );
        assert_ne!(
            ResultData::Count(0).digest(),
            ResultData::U32s(vec![]).digest()
        );
        assert_eq!(ResultData::U32s(vec![4]).approx_bytes(), 4);
    }
}
