//! Minimal JSON reader/writer for the persistent tuning table.
//!
//! The workspace has no serde codegen (vendored stubs only), so every crate
//! hand-rolls its JSON *output*. The tuning table is the first file we also
//! need to read back, hence this small recursive-descent parser. It covers
//! the JSON the tuner writes — objects, arrays, strings, integers, floats,
//! booleans, null — and is strict enough to reject truncated files (a torn
//! write degrades to re-probing, never to a crash).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value. Numbers keep their `f64` form; the tuner stores
/// anything that must survive exactly (u64 digests) as hex strings.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    /// `BTreeMap` so serialization order is deterministic.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(o) => Some(o),
            _ => None,
        }
    }

    /// Member lookup on an object; `None` on other shapes.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj().and_then(|o| o.get(key))
    }

    /// Serialize compactly (no whitespace). Deterministic: object keys are
    /// already sorted by the `BTreeMap`.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(a) => {
                out.push('[');
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Value::Obj(o) => {
                out.push('{');
                for (i, (k, v)) in o.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a complete JSON document. Trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            map.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut arr = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(arr));
        }
        loop {
            self.skip_ws();
            arr.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(arr));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            // Surrogates are not produced by our writer;
                            // map unpaired ones to the replacement char.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xc0) == 0x80 {
                        self.pos += 1;
                    }
                    if let Ok(frag) = std::str::from_utf8(&self.bytes[start..self.pos]) {
                        s.push_str(frag);
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| format!("bad number at byte {start}: {e}"))?
            .parse::<f64>()
            .map(Value::Num)
            .map_err(|e| format!("bad number at byte {start}: {e}"))
    }
}

/// Convenience: build an object from key/value pairs.
pub fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Convenience: a string value.
pub fn s(text: impl Into<String>) -> Value {
    Value::Str(text.into())
}

/// Convenience: a numeric value from anything that widens to f64.
pub fn n(x: impl Into<f64>) -> Value {
    Value::Num(x.into())
}

/// A `u64` that must round-trip exactly: stored as a hex string.
pub fn hex(x: u64) -> Value {
    Value::Str(format!("{x:016x}"))
}

/// Read a [`hex`]-encoded `u64` back.
pub fn from_hex(v: &Value) -> Option<u64> {
    u64::from_str_radix(v.as_str()?, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_document() {
        let doc = obj(vec![
            ("name", s("rmat-tiny")),
            ("digest", hex(0xdead_beef_0123_4567)),
            ("cycles", n(123456u32)),
            ("ratio", Value::Num(1.5)),
            ("flag", Value::Bool(true)),
            ("none", Value::Null),
            (
                "probes",
                Value::Arr(vec![
                    obj(vec![("m", s("vw8")), ("c", n(10u32))]),
                    obj(vec![("m", s("vw32+dyn")), ("c", n(7u32))]),
                ]),
            ),
        ]);
        let text = doc.to_json();
        let back = parse(&text).unwrap();
        assert_eq!(back, doc);
        assert_eq!(
            from_hex(back.get("digest").unwrap()),
            Some(0xdead_beef_0123_4567)
        );
        assert_eq!(back.get("cycles").unwrap().as_u64(), Some(123456));
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = parse(" { \"a\\n\\\"b\" : [ 1 , -2.5e1 , \"\\u0041\" ] } ").unwrap();
        let arr = v.get("a\n\"b").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(-25.0));
        assert_eq!(arr[2].as_str(), Some("A"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("{\"a\":1} x").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("{\"digest\": 0xff}").is_err());
    }

    #[test]
    fn serialization_is_deterministic() {
        let a = obj(vec![("z", n(1u32)), ("a", n(2u32))]);
        assert_eq!(a.to_json(), "{\"a\":2,\"z\":1}");
    }
}
