//! `tool_serve` — demo driver for the graph-query service.
//!
//! Registers the standard datasets, runs a representative query mix twice
//! (cold, then cached), and prints what the serving stack did: the method
//! the autotuner picked per `(graph, algorithm)`, cycle counts, cache
//! behavior, and the server counters. A JSON snapshot lands in
//! `results/serve_demo.json`.
//!
//! Usage: `tool_serve [tiny|small|medium]` (default tiny; also honors
//! `MAXWARP_SCALE`). Method resolution honors `MAXWARP_METHOD`; the tuning
//! table honors `MAXWARP_TUNING`.

use maxwarp_graph::{Dataset, Scale};
use maxwarp_serve::{Algo, Query, Request, Server, ServerConfig};
use maxwarp_simt::GpuConfig;

fn scale_from_args() -> Scale {
    let pick = |s: &str| match s.to_ascii_lowercase().as_str() {
        "tiny" => Some(Scale::Tiny),
        "small" => Some(Scale::Small),
        "medium" => Some(Scale::Medium),
        _ => None,
    };
    for arg in std::env::args().skip(1) {
        if let Some(s) = pick(&arg) {
            return s;
        }
    }
    std::env::var("MAXWARP_SCALE")
        .ok()
        .and_then(|v| pick(&v))
        .unwrap_or(Scale::Tiny)
}

fn main() {
    let scale = scale_from_args();
    let server = Server::start(ServerConfig::new(GpuConfig::fermi_c2050()));

    let datasets = [Dataset::Rmat, Dataset::WikiTalkLike, Dataset::Random];
    let handles: Vec<_> = datasets
        .iter()
        .map(|d| server.register_graph(d.name(), d.build_cached(scale)))
        .collect();

    let algos = [Algo::Bfs, Algo::Sssp, Algo::Pagerank, Algo::Cc];
    println!(
        "== serve demo: {} graphs x {} algorithms, two passes (cold, cached) ==",
        datasets.len(),
        algos.len()
    );
    println!(
        "{:<16} {:<10} {:<14} {:>12} {:>6} {:>7} {:>10} {:>10}",
        "graph", "algo", "method", "cycles", "iters", "cached", "wait_us", "svc_us"
    );

    for pass in 0..2 {
        for (d, &h) in datasets.iter().zip(&handles) {
            for algo in algos {
                let req = Request::new(h, Query::canonical(algo));
                match server.call(req) {
                    Ok(r) => println!(
                        "{:<16} {:<10} {:<14} {:>12} {:>6} {:>7} {:>10} {:>10}",
                        d.name(),
                        algo,
                        r.method.spec(),
                        r.stats.cycles,
                        r.iterations,
                        if r.cached { "hit" } else { "miss" },
                        r.queue_wait.as_micros(),
                        r.service.as_micros()
                    ),
                    Err(e) => println!("{:<16} {:<10} ERROR: {e}", d.name(), algo),
                }
            }
        }
        if pass == 0 {
            println!("-- second pass (every query should now hit the cache) --");
        }
    }

    let snap = server.snapshot();
    println!();
    println!(
        "cache: {} hits / {} misses (rate {:.2}), {} entries, ~{} bytes",
        snap.cache.hits,
        snap.cache.misses,
        snap.cache.hit_rate(),
        snap.cache.entries,
        snap.cache.bytes
    );
    println!(
        "tuner: {} decisions on record, {} probes run this process",
        snap.tuner_decisions, snap.tuner_probes
    );
    println!(
        "server: {} completed, {} failed, {} batches ({} requests rode a shared batch)",
        snap.completed, snap.failed, snap.batches, snap.batched_requests
    );
    println!("latency: service {}", snap.service);

    let json = snap.to_json().to_json();
    let path = std::path::Path::new("results").join("serve_demo.json");
    if std::fs::create_dir_all("results").is_ok() && std::fs::write(&path, &json).is_ok() {
        println!("snapshot -> {}", path.display());
    }

    // Registry exports: Prometheus text, JSON metrics snapshot, and the
    // request trace when MAXWARP_OBS_TRACE=1.
    let prom = std::path::Path::new("results").join("serve_demo.prom");
    if std::fs::write(&prom, server.prometheus_text()).is_ok() {
        println!("metrics -> {}", prom.display());
    }
    let metrics = std::path::Path::new("results").join("serve_demo_metrics.json");
    let _ = std::fs::write(&metrics, server.metrics_json());
    if server.tracer().enabled() {
        let trace = std::path::Path::new("results").join("serve_demo_trace.json");
        if std::fs::write(&trace, server.trace_json()).is_ok() {
            println!(
                "trace -> {} ({} spans)",
                trace.display(),
                server.tracer().len()
            );
        }
    }

    let failed = snap.failed;
    server.shutdown();
    if failed > 0 {
        std::process::exit(1);
    }
}
