//! `serve_loadgen` — zipf-mix load generator for the graph-query service.
//!
//! Builds a catalog of distinct queries (graphs × algorithms × source
//! variants), draws a zipf-distributed request stream over it (hot queries
//! repeat, tail queries stay cold — the distribution that makes a result
//! cache earn its keep), submits everything through the bounded queue with
//! retry-on-backpressure, and reports throughput, p50/p95/p99 latency,
//! cache hit rate, and the tuner's decisions.
//!
//! ```text
//! serve_loadgen [--requests N] [--seed S] [--scale tiny|small|medium]
//!               [--workers W] [--queue D] [--batch B] [--cache-cap C]
//!               [--theta T] [--shards K] [--big] [--out PATH]
//! ```
//!
//! Defaults: 500 requests, seed 1, tiny scale, 2 workers, queue 64,
//! batch 8, cache 256, zipf theta 1.1, output
//! `results/serve_load_<seed>.json`. Exits nonzero on any dropped or
//! failed request.
//!
//! `--shards K` serves BFS/SSSP/CC/PageRank on `K` shard devices per
//! graph (the `maxwarp-shard` BSP executor); `--big` adds an RMAT graph
//! with ≥ 10× the edges of the largest graph in the standard mix to the
//! catalog — the sharded-serve stress shape.

use maxwarp_graph::{Dataset, Scale};
use maxwarp_serve::json::{self, Value};
use maxwarp_serve::{
    Algo, Backoff, LatencyHistogram, LatencySummary, Query, Request, Response, ServeError, Server,
    ServerConfig, Ticket,
};
use maxwarp_simt::GpuConfig;
use std::time::Instant;

/// Label-keyed latency summaries of one histogram family from the server's
/// registry (`serve_algo_service_us{algo=…}` / `serve_tenant_service_us`
/// {tenant=…}`) — the per-algorithm / per-tenant breakdown.
fn breakdown(server: &Server, family: &str) -> Vec<(String, LatencySummary)> {
    server
        .registry()
        .histograms_of(family)
        .into_iter()
        .filter_map(|(labels, h)| {
            labels
                .into_iter()
                .next()
                .map(|(_, v)| (v, LatencySummary::from_hist(&h)))
        })
        .collect()
}

fn breakdown_json(rows: &[(String, LatencySummary)]) -> Value {
    Value::Obj(
        rows.iter()
            .map(|(label, s)| (label.clone(), s.to_json()))
            .collect(),
    )
}

/// SplitMix64 — enough RNG for a request stream, no dependency needed.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Zipf sampler over ranks `0..n`: P(rank) ∝ 1/(rank+1)^theta.
struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    fn new(n: usize, theta: f64) -> Zipf {
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 0..n {
            total += 1.0 / ((rank + 1) as f64).powf(theta);
            cumulative.push(total);
        }
        for c in &mut cumulative {
            *c /= total;
        }
        Zipf { cumulative }
    }

    fn draw(&self, rng: &mut Rng) -> usize {
        let u = rng.f64();
        self.cumulative
            .partition_point(|&c| c < u)
            .min(self.cumulative.len() - 1)
    }
}

struct Args {
    requests: usize,
    seed: u64,
    scale: Scale,
    workers: usize,
    queue: usize,
    batch: usize,
    cache_cap: usize,
    theta: f64,
    shards: u32,
    big: bool,
    out: Option<String>,
}

fn parse_args() -> Args {
    let mut a = Args {
        requests: 500,
        seed: 1,
        scale: Scale::Tiny,
        workers: 2,
        queue: 64,
        batch: 8,
        cache_cap: 256,
        theta: 1.1,
        shards: 1,
        big: false,
        out: None,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut val = || {
            argv.next()
                .unwrap_or_else(|| die(&format!("{flag} needs a value")))
        };
        match flag.as_str() {
            "--requests" => a.requests = parse(&val(), &flag),
            "--seed" => a.seed = parse(&val(), &flag),
            "--workers" => a.workers = parse(&val(), &flag),
            "--queue" => a.queue = parse(&val(), &flag),
            "--batch" => a.batch = parse(&val(), &flag),
            "--cache-cap" => a.cache_cap = parse(&val(), &flag),
            "--theta" => a.theta = parse(&val(), &flag),
            "--shards" => a.shards = parse::<u32>(&val(), &flag).max(1),
            "--big" => a.big = true,
            "--out" => a.out = Some(val()),
            "--scale" => {
                a.scale = match val().to_ascii_lowercase().as_str() {
                    "tiny" => Scale::Tiny,
                    "small" => Scale::Small,
                    "medium" => Scale::Medium,
                    other => die(&format!("unknown scale {other}")),
                }
            }
            other => die(&format!("unknown flag {other}")),
        }
    }
    a
}

fn parse<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse()
        .unwrap_or_else(|_| die(&format!("bad value {s} for {flag}")))
}

fn die(msg: &str) -> ! {
    eprintln!("serve_loadgen: {msg}");
    std::process::exit(2);
}

/// One catalog query for `(algo, variant)` on a graph with `n` vertices.
fn query_for(algo: Algo, variant: u32, n: u32) -> Query {
    let src = match variant {
        0 => None,
        _ => Some((variant * 97) % n.max(1)),
    };
    match algo {
        Algo::Bfs => Query::Bfs { src },
        Algo::BfsQueue => Query::BfsQueue { src },
        Algo::Sssp => Query::Sssp { src },
        Algo::Pagerank => Query::Pagerank {
            iters: 3 + variant,
            damping: 0.85,
        },
        Algo::Cc => Query::Cc,
        Algo::Kcore => Query::Kcore,
        _ => unreachable!("not in the loadgen mix"),
    }
}

/// An RMAT graph with at least `target` edges (the `--big` stress graph).
fn big_rmat(target: u64, seed: u64) -> maxwarp_graph::Csr {
    use maxwarp_graph::{rmat, RmatConfig};
    let mut scale = 64 - target.div_ceil(8).leading_zeros();
    loop {
        let g = rmat(&RmatConfig::classic(scale, 8, seed));
        if g.num_edges() >= target {
            return g;
        }
        scale += 1; // edge dedup undercut the nominal count; go bigger
    }
}

fn main() {
    let args = parse_args();
    let datasets = [
        Dataset::Rmat,
        Dataset::Random,
        Dataset::WikiTalkLike,
        Dataset::LiveJournalLike,
    ];
    let algos = [
        Algo::Bfs,
        Algo::BfsQueue,
        Algo::Sssp,
        Algo::Pagerank,
        Algo::Cc,
        Algo::Kcore,
    ];

    let mut cfg = ServerConfig::new(GpuConfig::fermi_c2050());
    cfg.workers = args.workers;
    cfg.queue_capacity = args.queue;
    cfg.batch_max = args.batch;
    cfg.cache_capacity = args.cache_cap;
    cfg.shards = args.shards;
    let server = Server::start(cfg);

    // Graph builds go through the on-disk graph cache (`MAXWARP_GRAPH_CACHE`)
    // — the second loadgen run skips generation entirely.
    let build_start = Instant::now();
    let handles: Vec<_> = datasets
        .iter()
        .map(|d| server.register_graph(d.name(), d.build_cached(args.scale)))
        .collect();
    // `--big`: one RMAT graph with >= 10x the edges of the largest graph in
    // the standard mix — the shape the sharded tier exists for.
    let big_handle = args.big.then(|| {
        let max_edges = handles
            .iter()
            .map(|&h| server.graph(h).expect("registered").csr.num_edges())
            .max()
            .unwrap_or(0);
        let g = big_rmat(max_edges.saturating_mul(10).max(1), 0xb16 ^ args.seed);
        let edges = g.num_edges();
        println!("big graph: rmat_big with {edges} edges (>= 10x the mix's largest, {max_edges})");
        server.register_graph("rmat_big", g)
    });
    let build_time = build_start.elapsed();

    // Distinct-query catalog: graphs × algorithms × 3 source variants.
    // Zipf over a shuffled catalog makes the hot set span graphs and algos.
    let mut catalog = Vec::new();
    let mut graphs: Vec<(_, &str)> = handles
        .iter()
        .zip(&datasets)
        .map(|(&h, d)| (h, d.name()))
        .collect();
    if let Some(hb) = big_handle {
        graphs.push((hb, "rmat_big"));
    }
    for &(h, name) in &graphs {
        let n = server.graph(h).expect("registered").csr.num_vertices();
        for algo in algos {
            for variant in 0..3u32 {
                catalog.push((h, name, query_for(algo, variant, n)));
            }
        }
    }
    // Parameterless algos produced duplicate variants; collapse them so the
    // catalog counts distinct queries only.
    catalog.dedup_by(|a, b| a.0 == b.0 && a.2 == b.2);

    let mut rng = Rng(args.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1);
    // Deterministic shuffle so zipf rank doesn't correlate with catalog order.
    for i in (1..catalog.len()).rev() {
        let j = (rng.next() % (i as u64 + 1)) as usize;
        catalog.swap(i, j);
    }
    let zipf = Zipf::new(catalog.len(), args.theta);

    println!(
        "== serve_loadgen: {} requests, zipf(theta={}) over {} distinct queries \
         ({} graphs x {} algos), {} shard(s), seed {} ==",
        args.requests,
        args.theta,
        catalog.len(),
        graphs.len(),
        algos.len(),
        args.shards,
        args.seed
    );

    let wall_start = Instant::now();
    let mut tickets: Vec<(usize, Ticket)> = Vec::with_capacity(args.requests);
    let mut retries = 0u64;
    let backoff = Backoff::default();
    for n in 0..args.requests {
        let idx = zipf.draw(&mut rng);
        let (h, name, query) = &catalog[idx];
        let mut req = Request::new(*h, query.clone());
        req.tenant = Some(name.to_string());
        let mut attempt = 0u32;
        loop {
            match server.submit(req.clone()) {
                Ok(t) => {
                    tickets.push((idx, t));
                    break;
                }
                Err(ServeError::QueueFull { .. }) => {
                    // Structured backpressure: capped exponential backoff
                    // with jitter, then retry — the request is never
                    // dropped, and distinct submitters don't re-collide
                    // in lockstep.
                    retries += 1;
                    std::thread::sleep(backoff.delay(attempt, args.seed ^ n as u64));
                    attempt = attempt.saturating_add(1);
                }
                Err(e) => die(&format!("unexpected admission error: {e}")),
            }
        }
    }

    let mut latency = LatencyHistogram::new();
    let mut wait_hist = LatencyHistogram::new();
    let mut completed = 0u64;
    let mut cached = 0u64;
    let mut errors: Vec<String> = Vec::new();
    let responses: Vec<(usize, Result<Response, ServeError>)> = tickets
        .into_iter()
        .map(|(idx, t)| (idx, t.wait()))
        .collect();
    let wall = wall_start.elapsed();

    for (idx, outcome) in &responses {
        match outcome {
            Ok(r) => {
                completed += 1;
                cached += r.cached as u64;
                latency.record(r.queue_wait + r.service);
                wait_hist.record(r.queue_wait);
            }
            Err(e) => errors.push(format!("{}: {e}", catalog[*idx].1)),
        }
    }

    let snap = server.snapshot();
    let lat = latency.summary();
    let wait = wait_hist.summary();
    let throughput = completed as f64 / wall.as_secs_f64().max(1e-9);

    println!("graph build (disk-cached): {} ms", build_time.as_millis());
    println!(
        "completed {completed}/{} in {:.2}s ({throughput:.1} req/s), {retries} \
         backpressure retries, 0 drops",
        args.requests,
        wall.as_secs_f64()
    );
    println!("latency (queue+service): {lat}");
    println!("queue wait:              {wait}");
    println!(
        "cache: {:.1}% hit rate ({} hits / {} lookups); tuner: {} decisions, {} probes",
        snap.cache.hit_rate() * 100.0,
        snap.cache.hits,
        snap.cache.hits + snap.cache.misses,
        snap.tuner_decisions,
        snap.tuner_probes
    );
    println!(
        "batches: {} ({} requests shared a batch); templates built: {}",
        snap.batches, snap.batched_requests, snap.templates_built
    );
    println!(
        "queue: depth high-watermark {}, {} backpressure rejections",
        snap.queue_depth_hwm, snap.rejected_full
    );

    // Server-side latency breakdown, straight from the registry histograms.
    let per_algo = breakdown(&server, "serve_algo_service_us");
    let per_tenant = breakdown(&server, "serve_tenant_service_us");
    println!("service latency by algorithm:");
    for (algo, s) in per_algo.iter().filter(|(_, s)| s.count > 0) {
        println!("  {algo:<12} {s}");
    }
    println!("service latency by tenant (graph):");
    for (tenant, s) in &per_tenant {
        println!("  {tenant:<12} {s}");
    }
    if !errors.is_empty() {
        println!("{} FAILED requests:", errors.len());
        for e in errors.iter().take(10) {
            println!("  {e}");
        }
    }

    let report = json::obj(vec![
        ("seed", json::n(args.seed as f64)),
        ("requests", json::n(args.requests as f64)),
        ("distinct_queries", json::n(catalog.len() as f64)),
        ("theta", json::n(args.theta)),
        ("completed", json::n(completed as f64)),
        ("errors", json::n(errors.len() as f64)),
        ("retries", json::n(retries as f64)),
        ("drops", json::n(0u32)),
        ("shards", json::n(args.shards as f64)),
        (
            "big_graph_edges",
            json::n(
                big_handle.map_or(0, |h| server.graph(h).map_or(0, |g| g.csr.num_edges())) as f64,
            ),
        ),
        ("wall_seconds", json::n(wall.as_secs_f64())),
        ("throughput_rps", json::n(throughput)),
        ("latency", lat.to_json()),
        ("queue_wait", wait.to_json()),
        ("cached_responses", json::n(cached as f64)),
        ("per_algo_service", breakdown_json(&per_algo)),
        ("per_tenant_service", breakdown_json(&per_tenant)),
        ("server", snap.to_json()),
    ]);
    let out = args
        .out
        .clone()
        .unwrap_or_else(|| format!("results/serve_load_{}.json", args.seed));
    let path = std::path::PathBuf::from(&out);
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(&path, report.to_json()) {
        Ok(()) => println!("report -> {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }

    // Registry exports next to the report: Prometheus text + JSON snapshot,
    // and the request trace when MAXWARP_OBS_TRACE is on.
    let prom_path = path.with_extension("prom");
    if std::fs::write(&prom_path, server.prometheus_text()).is_ok() {
        println!("metrics -> {}", prom_path.display());
    }
    let metrics_path = path.with_extension("metrics.json");
    let _ = std::fs::write(&metrics_path, server.metrics_json());
    if server.tracer().enabled() {
        let trace_path = path.with_extension("trace.json");
        if std::fs::write(&trace_path, server.trace_json()).is_ok() {
            println!(
                "trace -> {} ({} spans, {} dropped)",
                trace_path.display(),
                server.tracer().len(),
                server.tracer().dropped()
            );
        }
    }

    server.shutdown();
    if !errors.is_empty() || completed != args.requests as u64 {
        std::process::exit(1);
    }
}
