//! `tool_chaos_serve` — service-level chaos harness for the resilient
//! serve tier.
//!
//! Runs a seeded fault-injection campaign against a live [`Server`] and
//! asserts the service-level invariants the resilience layer promises:
//!
//! * **Zero lost requests** — every submitted request resolves to a
//!   success or a *structured* error (shed, crashed, workers-dead,
//!   launch fault); never a dropped channel.
//! * **Byte identity under faults** — every non-degraded success is
//!   byte-identical (payload digest and `KernelStats`) to the clean
//!   baseline run of the same query.
//! * **Clean recovery** — after the faults stop, a warm pass over the
//!   same workload matches the clean warm baseline's cache hit rate and
//!   wall time within 10%.
//!
//! Scenarios (all driven by one `--seed`, fully reproducible):
//!
//! | scenario | injects | exercises |
//! |---|---|---|
//! | `worker_panic_storm` | worker-level panics outside the request unwind | supervision, bounded restarts, in-flight requeue |
//! | `slow_launch_hedging` | random execution delays | hedged duplicates, first-result-wins |
//! | `launch_fault_breaker` | injected launch faults | retries, circuit breaker, CPU fallback degradation |
//! | `persistence_corruption` | truncation + bit flips on tuning/warmup files | crash-safe store, quarantine, rebuild |
//! | `tenant_flood` | one tenant flooding admission | token buckets, priority shedding |
//! | `deadline_storm` | tiny cycle deadlines on poisoned requests | per-request failure isolation in batches |
//! | `total_worker_loss` | certain panics with no restart budget | `WorkersDead` drain + fail-fast |
//!
//! ```text
//! tool_chaos_serve [--seed S] [--requests N] [--out PATH]
//! ```
//!
//! Writes `results/chaos_serve_<seed>.json` and exits nonzero if any
//! invariant is violated.

use maxwarp_graph::{Dataset, Scale};
use maxwarp_serve::json::{self, Value};
use maxwarp_serve::resilience::{Backoff, RestartPolicy};
use maxwarp_serve::{
    BreakerConfig, ChaosConfig, Priority, Query, Request, Response, ResponseSource, RetryPolicy,
    ServeError, Server, ServerConfig, ShedConfig, ShedReason, Ticket,
};
use maxwarp_simt::{GpuConfig, KernelStats};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// SplitMix64 request-stream RNG (same as serve_loadgen).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Zipf sampler over ranks `0..n`: P(rank) ∝ 1/(rank+1)^theta.
struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    fn new(n: usize, theta: f64) -> Zipf {
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 0..n {
            total += 1.0 / ((rank + 1) as f64).powf(theta);
            cumulative.push(total);
        }
        for c in &mut cumulative {
            *c /= total;
        }
        Zipf { cumulative }
    }

    fn draw(&self, rng: &mut Rng) -> usize {
        let u = rng.f64();
        self.cumulative
            .partition_point(|&c| c < u)
            .min(self.cumulative.len() - 1)
    }
}

/// The workload: a catalog of distinct queries over two graphs, plus a
/// zipf-drawn request stream over it.
struct Workload {
    graphs: Vec<(&'static str, maxwarp_graph::Csr)>,
    /// (graph index, query) per distinct catalog entry.
    catalog: Vec<(usize, Query)>,
    /// Catalog indices, in submission order.
    stream: Vec<usize>,
}

fn build_workload(seed: u64, requests: usize) -> Workload {
    let graphs = vec![
        ("rmat", Dataset::Rmat.build(Scale::Tiny)),
        ("wiki", Dataset::WikiTalkLike.build(Scale::Tiny)),
    ];
    let mut catalog = Vec::new();
    for gi in 0..graphs.len() {
        // Every query here has a CPU fallback, so the breaker scenario can
        // degrade any of them.
        catalog.push((gi, Query::Bfs { src: None }));
        catalog.push((gi, Query::Bfs { src: Some(1) }));
        catalog.push((gi, Query::Sssp { src: None }));
        catalog.push((gi, Query::Cc));
        catalog.push((
            gi,
            Query::Pagerank {
                iters: 3,
                damping: 0.85,
            },
        ));
    }
    let mut rng = Rng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1);
    let zipf = Zipf::new(catalog.len(), 1.1);
    let stream = (0..requests).map(|_| zipf.draw(&mut rng)).collect();
    Workload {
        graphs,
        catalog,
        stream,
    }
}

/// Clean-run identity of one catalog entry.
#[derive(Clone)]
struct CleanDigest {
    data: u64,
    stats: KernelStats,
    iterations: u32,
}

/// Structured-outcome tally for one scenario phase.
#[derive(Default)]
struct Tally {
    submitted: u64,
    ok: u64,
    ok_degraded: u64,
    shed_tenant: u64,
    shed_queue: u64,
    queue_full: u64,
    worker_crashed: u64,
    workers_dead: u64,
    launch_failed: u64,
    panicked: u64,
    other_errors: u64,
    /// Non-degraded successes whose payload or stats diverged from clean.
    mismatches: u64,
    max_attempts_seen: u32,
}

impl Tally {
    fn absorb(
        &mut self,
        idx: usize,
        outcome: &Result<Response, ServeError>,
        clean: &HashMap<usize, CleanDigest>,
        violations: &mut Vec<String>,
        scenario: &str,
    ) {
        match outcome {
            Ok(r) => {
                self.ok += 1;
                self.max_attempts_seen = self.max_attempts_seen.max(r.attempts);
                if r.degraded {
                    self.ok_degraded += 1;
                    if matches!(r.source, ResponseSource::Device | ResponseSource::Cache) {
                        violations.push(format!(
                            "{scenario}: degraded response with non-degraded source {:?}",
                            r.source
                        ));
                    }
                } else if let Some(c) = clean.get(&idx) {
                    if r.data.digest() != c.data
                        || r.stats != c.stats
                        || r.iterations != c.iterations
                    {
                        self.mismatches += 1;
                        violations.push(format!(
                            "{scenario}: catalog[{idx}] non-degraded response diverged from clean baseline"
                        ));
                    }
                }
            }
            Err(e) => match e {
                ServeError::Shed {
                    reason: ShedReason::TenantRate,
                } => self.shed_tenant += 1,
                ServeError::Shed {
                    reason: ShedReason::QueuePressure,
                } => self.shed_queue += 1,
                ServeError::QueueFull { .. } => self.queue_full += 1,
                ServeError::WorkerCrashed { .. } => self.worker_crashed += 1,
                ServeError::WorkersDead => self.workers_dead += 1,
                ServeError::Launch(_) => self.launch_failed += 1,
                ServeError::Panicked(_) => self.panicked += 1,
                ServeError::WorkerLost => {
                    self.other_errors += 1;
                    violations.push(format!(
                        "{scenario}: unstructured WorkerLost outcome (lost request)"
                    ));
                }
                _ => self.other_errors += 1,
            },
        }
    }

    fn to_json(&self) -> Value {
        json::obj(vec![
            ("submitted", json::n(self.submitted as f64)),
            ("ok", json::n(self.ok as f64)),
            ("ok_degraded", json::n(self.ok_degraded as f64)),
            ("shed_tenant", json::n(self.shed_tenant as f64)),
            ("shed_queue", json::n(self.shed_queue as f64)),
            ("queue_full", json::n(self.queue_full as f64)),
            ("worker_crashed", json::n(self.worker_crashed as f64)),
            ("workers_dead", json::n(self.workers_dead as f64)),
            ("launch_failed", json::n(self.launch_failed as f64)),
            ("panicked", json::n(self.panicked as f64)),
            ("other_errors", json::n(self.other_errors as f64)),
            ("mismatches", json::n(self.mismatches as f64)),
            ("max_attempts", json::n(self.max_attempts_seen as f64)),
        ])
    }

    fn accounted(&self) -> u64 {
        self.ok
            + self.shed_tenant
            + self.shed_queue
            + self.queue_full
            + self.worker_crashed
            + self.workers_dead
            + self.launch_failed
            + self.panicked
            + self.other_errors
    }
}

fn base_config() -> ServerConfig {
    let mut cfg = ServerConfig::for_tests(GpuConfig::tiny_test());
    cfg.workers = 2;
    cfg.queue_capacity = 64;
    cfg.batch_max = 4;
    cfg
}

fn start_with_graphs(
    cfg: ServerConfig,
    wl: &Workload,
) -> (Server, Vec<maxwarp_serve::GraphHandle>) {
    let server = Server::start(cfg);
    let handles = wl
        .graphs
        .iter()
        .map(|(name, csr)| server.register_graph(*name, csr.clone()))
        .collect();
    (server, handles)
}

/// Submit the stream (blocking retry on backpressure), wait for everything,
/// and tally outcomes.
#[allow(clippy::too_many_arguments)]
fn run_stream(
    server: &Server,
    handles: &[maxwarp_serve::GraphHandle],
    wl: &Workload,
    stream: &[usize],
    decorate: impl Fn(Request) -> Request,
    clean: &HashMap<usize, CleanDigest>,
    violations: &mut Vec<String>,
    scenario: &str,
) -> (Tally, Duration) {
    let start = Instant::now();
    let mut tickets: Vec<(usize, Option<Ticket>, Option<ServeError>)> = Vec::new();
    let mut tally = Tally::default();
    for &idx in stream {
        let (gi, query) = &wl.catalog[idx];
        let req = decorate(Request::new(handles[*gi], query.clone()));
        tally.submitted += 1;
        let mut backoff = 0u32;
        loop {
            match server.submit(req.clone()) {
                Ok(t) => {
                    tickets.push((idx, Some(t), None));
                    break;
                }
                Err(ServeError::QueueFull { .. }) if backoff < 200 => {
                    backoff += 1;
                    std::thread::sleep(Duration::from_micros(100 << backoff.min(6)));
                }
                Err(e) => {
                    tickets.push((idx, None, Some(e)));
                    break;
                }
            }
        }
    }
    for (idx, ticket, early) in tickets {
        let outcome = match (ticket, early) {
            (Some(t), _) => t.wait(),
            (None, Some(e)) => Err(e),
            (None, None) => unreachable!("ticket or admission error"),
        };
        tally.absorb(idx, &outcome, clean, violations, scenario);
    }
    (tally, start.elapsed())
}

fn no_decoration(r: Request) -> Request {
    r
}

struct ScenarioReport {
    name: &'static str,
    tally: Tally,
    wall: Duration,
    notes: Vec<(&'static str, f64)>,
}

impl ScenarioReport {
    fn to_json(&self) -> Value {
        let mut fields = vec![
            ("outcomes", self.tally.to_json()),
            ("wall_seconds", json::n(self.wall.as_secs_f64())),
        ];
        for (k, v) in &self.notes {
            fields.push((*k, json::n(*v)));
        }
        json::obj(fields)
    }
}

fn main() {
    let mut seed = 1u64;
    let mut requests = 160usize;
    let mut out: Option<String> = None;
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut val = || argv.next().unwrap_or_else(|| die("flag needs a value"));
        match flag.as_str() {
            "--seed" => seed = val().parse().unwrap_or_else(|_| die("bad --seed")),
            "--requests" => requests = val().parse().unwrap_or_else(|_| die("bad --requests")),
            "--out" => out = Some(val()),
            other => die(&format!("unknown flag {other}")),
        }
    }

    println!("== tool_chaos_serve: seed {seed}, {requests} requests per scenario ==");
    let wl = build_workload(seed, requests);
    let mut violations: Vec<String> = Vec::new();
    let mut scenarios: Vec<ScenarioReport> = Vec::new();

    // ---- Clean baseline: digests for every catalog entry, plus a warm
    // pass that sets the recovery bar. -------------------------------------
    let (clean_server, clean_handles) = start_with_graphs(base_config(), &wl);
    let mut clean: HashMap<usize, CleanDigest> = HashMap::new();
    for (idx, (gi, query)) in wl.catalog.iter().enumerate() {
        match clean_server.call(Request::new(clean_handles[*gi], query.clone())) {
            Ok(r) => {
                clean.insert(
                    idx,
                    CleanDigest {
                        data: r.data.digest(),
                        stats: r.stats,
                        iterations: r.iterations,
                    },
                );
            }
            Err(e) => die(&format!("clean baseline failed on catalog[{idx}]: {e}")),
        }
    }
    let (clean_tally, clean_warm_wall) = run_stream(
        &clean_server,
        &clean_handles,
        &wl,
        &wl.stream,
        no_decoration,
        &clean,
        &mut violations,
        "clean_warm",
    );
    let clean_snap = clean_server.snapshot();
    let clean_hit_rate = clean_snap.cache.hit_rate();
    if clean_tally.ok != clean_tally.submitted {
        violations.push("clean_warm: not every request succeeded".to_string());
    }
    clean_server.shutdown();
    println!(
        "clean baseline: {} catalog entries, warm pass {:.1} ms, hit rate {:.2}",
        wl.catalog.len(),
        clean_warm_wall.as_secs_f64() * 1e3,
        clean_hit_rate
    );

    // ---- Scenario 1: worker panic storm. --------------------------------
    {
        let mut cfg = base_config();
        // A storm needs a deep restart budget — the point is supervision at
        // scale, not the budget bound (scenario 7 covers that).
        cfg.resilience.restart = RestartPolicy {
            max_restarts: 1000,
            backoff: Backoff::new(Duration::from_micros(50), Duration::from_millis(2)),
        };
        let (server, handles) = start_with_graphs(cfg, &wl);
        server.set_chaos(Some(ChaosConfig {
            seed,
            worker_panic: 0.15,
            ..ChaosConfig::default()
        }));
        let (tally, wall) = run_stream(
            &server,
            &handles,
            &wl,
            &wl.stream,
            no_decoration,
            &clean,
            &mut violations,
            "worker_panic_storm",
        );
        let snap = server.snapshot();
        if snap.resilience.worker_panics == 0 {
            violations.push("worker_panic_storm: no panics injected (chaos inert)".to_string());
        }
        if snap.resilience.worker_restarts == 0 {
            violations.push("worker_panic_storm: no supervised restarts".to_string());
        }
        if tally.accounted() != tally.submitted {
            violations.push("worker_panic_storm: lost requests".to_string());
        }
        // Recovery: faults off, warm pass must match the clean bar.
        server.set_chaos(None);
        let (rec_tally, rec_wall) = run_stream(
            &server,
            &handles,
            &wl,
            &wl.stream,
            no_decoration,
            &clean,
            &mut violations,
            "worker_panic_storm/recovery",
        );
        if rec_tally.ok != rec_tally.submitted {
            violations.push("worker_panic_storm: recovery pass had failures".to_string());
        }
        let budget = clean_warm_wall.mul_f64(1.1) + Duration::from_millis(250);
        if rec_wall > budget {
            violations.push(format!(
                "worker_panic_storm: recovery wall {:?} exceeds clean {:?} (+10% & slack)",
                rec_wall, clean_warm_wall
            ));
        }
        scenarios.push(ScenarioReport {
            name: "worker_panic_storm",
            tally,
            wall,
            notes: vec![
                ("worker_panics", snap.resilience.worker_panics as f64),
                ("worker_restarts", snap.resilience.worker_restarts as f64),
                ("crash_requeued", snap.resilience.crash_requeued as f64),
                ("crash_failed", snap.resilience.crash_failed as f64),
                ("recovery_wall_seconds", rec_wall.as_secs_f64()),
            ],
        });
        server.shutdown();
    }

    // ---- Scenario 2: slow launches + hedging. ---------------------------
    {
        let (server, handles) = start_with_graphs(base_config(), &wl);
        server.set_chaos(Some(ChaosConfig {
            seed,
            slow_launch: 0.5,
            slow: Duration::from_millis(3),
            ..ChaosConfig::default()
        }));
        let hedge = RetryPolicy::attempts(1).with_hedge(Duration::from_millis(1));
        let (tally, wall) = run_stream(
            &server,
            &handles,
            &wl,
            &wl.stream,
            |r| r.with_retry(hedge),
            &clean,
            &mut violations,
            "slow_launch_hedging",
        );
        let snap = server.snapshot();
        if snap.resilience.hedges == 0 {
            violations.push("slow_launch_hedging: no hedges fired".to_string());
        }
        if tally.ok != tally.submitted {
            violations.push("slow_launch_hedging: hedged requests failed".to_string());
        }
        scenarios.push(ScenarioReport {
            name: "slow_launch_hedging",
            tally,
            wall,
            notes: vec![
                ("hedges", snap.resilience.hedges as f64),
                ("hedge_wins", snap.resilience.hedge_wins as f64),
                ("hedge_cancels", snap.resilience.hedge_cancels as f64),
            ],
        });
        server.shutdown();
    }

    // ---- Scenario 3: launch faults → retries, breaker, CPU fallback. ----
    {
        let mut cfg = base_config();
        cfg.resilience.retry = RetryPolicy::attempts(3);
        cfg.resilience.breaker = Some(BreakerConfig {
            threshold: 3,
            cooldown: Duration::from_millis(20),
        });
        let (server, handles) = start_with_graphs(cfg, &wl);
        server.set_chaos(Some(ChaosConfig {
            seed,
            launch_fault: 0.7,
            ..ChaosConfig::default()
        }));
        let (tally, wall) = run_stream(
            &server,
            &handles,
            &wl,
            &wl.stream,
            no_decoration,
            &clean,
            &mut violations,
            "launch_fault_breaker",
        );
        let snap = server.snapshot();
        if snap.resilience.retries == 0 {
            violations.push("launch_fault_breaker: no retries consumed".to_string());
        }
        if snap.resilience.breaker_trips == 0 {
            violations.push("launch_fault_breaker: breaker never tripped".to_string());
        }
        if snap.resilience.fallbacks == 0 {
            violations.push("launch_fault_breaker: CPU fallback never served".to_string());
        }
        if tally.accounted() != tally.submitted {
            violations.push("launch_fault_breaker: lost requests".to_string());
        }
        // Recovery: faults off; the breaker half-open trial must close it
        // and device serving must resume cleanly.
        server.set_chaos(None);
        std::thread::sleep(Duration::from_millis(25)); // let cooldowns lapse
        let (rec_tally, _) = run_stream(
            &server,
            &handles,
            &wl,
            &wl.stream,
            no_decoration,
            &clean,
            &mut violations,
            "launch_fault_breaker/recovery",
        );
        if rec_tally.ok != rec_tally.submitted {
            violations.push("launch_fault_breaker: recovery pass had failures".to_string());
        }
        scenarios.push(ScenarioReport {
            name: "launch_fault_breaker",
            tally,
            wall,
            notes: vec![
                ("retries", snap.resilience.retries as f64),
                ("retry_successes", snap.resilience.retry_successes as f64),
                ("breaker_trips", snap.resilience.breaker_trips as f64),
                ("fallbacks", snap.resilience.fallbacks as f64),
                ("degraded", snap.resilience.degraded as f64),
            ],
        });
        server.shutdown();
    }

    // ---- Scenario 4: persistence corruption. ----------------------------
    {
        let dir = std::env::temp_dir().join(format!("chaos_serve_{seed}_{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let tuning = dir.join("tuning.json");
        let warmup = dir.join("warmup.snapshot");
        let mut cfg = base_config();
        cfg.tuning_path = Some(tuning.clone());
        cfg.warmup_path = Some(warmup.clone());
        let (server, handles) = start_with_graphs(cfg.clone(), &wl);
        let (tally0, _) = run_stream(
            &server,
            &handles,
            &wl,
            &wl.stream,
            no_decoration,
            &clean,
            &mut violations,
            "persistence_corruption/populate",
        );
        if tally0.ok != tally0.submitted {
            violations.push("persistence_corruption: populate pass had failures".to_string());
        }
        server.shutdown(); // persists tuning + warmup snapshot

        // Corrupt both files: truncate the snapshot mid-payload, flip a bit
        // in the tuning table.
        let mut rng = Rng(seed ^ 0xfeed);
        for (path, mode) in [(&warmup, "truncate"), (&tuning, "bitflip")] {
            if let Ok(mut bytes) = std::fs::read(path) {
                match mode {
                    "truncate" => {
                        let keep = bytes.len() / 2;
                        bytes.truncate(keep);
                    }
                    _ => {
                        if !bytes.is_empty() {
                            let at = (rng.next() as usize) % bytes.len();
                            bytes[at] ^= 0x40;
                        }
                    }
                }
                let _ = std::fs::write(path, &bytes);
            } else {
                violations.push(format!(
                    "persistence_corruption: {} was never written",
                    path.display()
                ));
            }
        }

        // Restart on the corrupt files: must quarantine, start cold, and
        // serve byte-identical results.
        let start = Instant::now();
        let (server2, handles2) = start_with_graphs(cfg, &wl);
        let snap_before = server2.snapshot();
        if snap_before.resilience.warmup_loaded != 0 {
            violations
                .push("persistence_corruption: corrupt warmup snapshot was loaded".to_string());
        }
        let (tally, wall) = run_stream(
            &server2,
            &handles2,
            &wl,
            &wl.stream,
            no_decoration,
            &clean,
            &mut violations,
            "persistence_corruption",
        );
        let _ = start;
        if tally.ok != tally.submitted {
            violations
                .push("persistence_corruption: post-corruption pass had failures".to_string());
        }
        let quarantined = std::fs::read_dir(&dir)
            .map(|rd| {
                rd.flatten()
                    .filter(|e| e.path().extension().is_some_and(|x| x == "corrupt"))
                    .count()
            })
            .unwrap_or(0);
        if quarantined == 0 {
            violations.push("persistence_corruption: no quarantine files left behind".to_string());
        }
        scenarios.push(ScenarioReport {
            name: "persistence_corruption",
            tally,
            wall,
            notes: vec![("quarantined_files", quarantined as f64)],
        });
        server2.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    // ---- Scenario 5: tenant flood + priority shedding. ------------------
    {
        let mut cfg = base_config();
        cfg.queue_capacity = 16;
        cfg.paused = true; // hold the workers so queue pressure is real
        cfg.resilience.shed = Some(ShedConfig {
            high_watermark: 0.5,
            tenant_rate: 20.0,
            tenant_burst: 5.0,
        });
        let (server, handles) = start_with_graphs(cfg, &wl);
        let mut tally = Tally::default();
        let mut tickets: Vec<(usize, Ticket)> = Vec::new();
        let mut flood_sheds = 0u64;
        // The flood: one tenant hammers the service far past its bucket.
        for i in 0..100usize {
            let idx = wl.stream[i % wl.stream.len()];
            let (gi, query) = &wl.catalog[idx];
            let mut req = Request::new(handles[*gi], query.clone());
            req.tenant = Some("flood".to_string());
            tally.submitted += 1;
            match server.submit(req) {
                Ok(t) => tickets.push((idx, t)),
                Err(e) => {
                    if matches!(
                        e,
                        ServeError::Shed {
                            reason: ShedReason::TenantRate
                        }
                    ) {
                        flood_sheds += 1;
                    }
                    tally.absorb(idx, &Err(e), &clean, &mut violations, "tenant_flood");
                }
            }
        }
        // The VIP: high-priority work must still get through (displacing
        // queued flood work if needed).
        let mut vip_ok_submitted = 0u64;
        for i in 0..8usize {
            let idx = wl.catalog.len().min(i) % wl.catalog.len();
            let (gi, query) = &wl.catalog[idx];
            let mut req = Request::new(handles[*gi], query.clone()).with_priority(Priority::High);
            req.tenant = Some("vip".to_string());
            tally.submitted += 1;
            match server.submit(req) {
                Ok(t) => {
                    vip_ok_submitted += 1;
                    tickets.push((idx, t));
                }
                Err(e) => tally.absorb(idx, &Err(e), &clean, &mut violations, "tenant_flood"),
            }
        }
        server.resume();
        let start = Instant::now();
        for (idx, t) in tickets {
            tally.absorb(idx, &t.wait(), &clean, &mut violations, "tenant_flood");
        }
        let wall = start.elapsed();
        let snap = server.snapshot();
        if flood_sheds == 0 {
            violations.push("tenant_flood: token bucket never shed".to_string());
        }
        if snap.resilience.shed_queue == 0 {
            violations.push("tenant_flood: queue-pressure shedding never fired".to_string());
        }
        if vip_ok_submitted == 0 {
            violations.push("tenant_flood: no high-priority request was admitted".to_string());
        }
        if tally.accounted() != tally.submitted {
            violations.push("tenant_flood: lost requests".to_string());
        }
        scenarios.push(ScenarioReport {
            name: "tenant_flood",
            tally,
            wall,
            notes: vec![
                ("flood_tenant_sheds", flood_sheds as f64),
                ("queue_sheds", snap.resilience.shed_queue as f64),
                ("vip_admitted", vip_ok_submitted as f64),
            ],
        });
        server.shutdown();
    }

    // ---- Scenario 6: deadline storm (batch poison at scale). ------------
    {
        let (server, handles) = start_with_graphs(base_config(), &wl);
        let mut tally = Tally::default();
        let mut tickets: Vec<(usize, bool, Ticket)> = Vec::new();
        for (i, &idx) in wl.stream.iter().enumerate() {
            let (gi, query) = &wl.catalog[idx];
            let poisoned = i % 4 == 0;
            let mut req = Request::new(handles[*gi], query.clone());
            if poisoned {
                req.deadline_cycles = Some(1); // trips the watchdog instantly
            }
            tally.submitted += 1;
            match server.submit(req) {
                Ok(t) => tickets.push((idx, poisoned, t)),
                Err(e) => tally.absorb(idx, &Err(e), &clean, &mut violations, "deadline_storm"),
            }
        }
        let start = Instant::now();
        let mut poisoned_ok = 0u64;
        let mut healthy_failed = 0u64;
        for (idx, poisoned, t) in tickets {
            let outcome = t.wait();
            match (&outcome, poisoned) {
                // A poisoned request may legitimately succeed from cache
                // (hits consume no budget); device successes would mean
                // the deadline wasn't enforced.
                (Ok(r), true) if !r.cached => poisoned_ok += 1,
                (Err(_), false) => healthy_failed += 1,
                _ => {}
            }
            tally.absorb(idx, &outcome, &clean, &mut violations, "deadline_storm");
        }
        let wall = start.elapsed();
        if poisoned_ok > 0 {
            violations.push(format!(
                "deadline_storm: {poisoned_ok} poisoned requests executed past their deadline"
            ));
        }
        if healthy_failed > 0 {
            violations.push(format!(
                "deadline_storm: {healthy_failed} healthy batch-mates failed alongside poisoned ones"
            ));
        }
        if tally.accounted() != tally.submitted {
            violations.push("deadline_storm: lost requests".to_string());
        }
        scenarios.push(ScenarioReport {
            name: "deadline_storm",
            tally,
            wall,
            notes: vec![
                ("poisoned_ok", poisoned_ok as f64),
                ("healthy_failed", healthy_failed as f64),
            ],
        });
        server.shutdown();
    }

    // ---- Scenario 7: total worker loss. ---------------------------------
    {
        let mut cfg = base_config();
        cfg.workers = 1;
        cfg.resilience.restart = RestartPolicy {
            max_restarts: 0,
            backoff: Backoff::new(Duration::from_micros(50), Duration::from_millis(1)),
        };
        let (server, handles) = start_with_graphs(cfg, &wl);
        server.set_chaos(Some(ChaosConfig {
            seed,
            worker_panic: 1.0,
            ..ChaosConfig::default()
        }));
        let mut tally = Tally::default();
        let mut tickets = Vec::new();
        for &idx in wl.stream.iter().take(8) {
            let (gi, query) = &wl.catalog[idx];
            tally.submitted += 1;
            match server.submit(Request::new(handles[*gi], query.clone())) {
                Ok(t) => tickets.push((idx, t)),
                Err(e) => tally.absorb(idx, &Err(e), &clean, &mut violations, "total_worker_loss"),
            }
        }
        let start = Instant::now();
        for (idx, t) in tickets {
            tally.absorb(idx, &t.wait(), &clean, &mut violations, "total_worker_loss");
        }
        let wall = start.elapsed();
        if server.workers_alive() != 0 {
            violations.push("total_worker_loss: worker survived a certain panic".to_string());
        }
        // Fail-fast: new submissions get the structured terminal error.
        let (gi, query) = &wl.catalog[0];
        match server.submit(Request::new(handles[*gi], query.clone())) {
            Err(ServeError::WorkersDead) => {}
            other => violations.push(format!(
                "total_worker_loss: expected WorkersDead on submit, got {other:?}"
            )),
        }
        if tally.accounted() != tally.submitted {
            violations.push("total_worker_loss: lost requests".to_string());
        }
        scenarios.push(ScenarioReport {
            name: "total_worker_loss",
            tally,
            wall,
            notes: vec![],
        });
        server.shutdown();
    }

    // ---- Report. --------------------------------------------------------
    for s in &scenarios {
        println!(
            "{:<24} ok {:>4} degraded {:>3} shed {:>3} crashed {:>3} launch-fail {:>3} ({} ms)",
            s.name,
            s.tally.ok,
            s.tally.ok_degraded,
            s.tally.shed_tenant + s.tally.shed_queue,
            s.tally.worker_crashed + s.tally.workers_dead,
            s.tally.launch_failed + s.tally.panicked,
            s.wall.as_millis()
        );
    }
    let report = json::obj(
        vec![
            ("seed", json::n(seed as f64)),
            ("requests_per_scenario", json::n(requests as f64)),
            ("catalog_entries", json::n(wl.catalog.len() as f64)),
            (
                "clean_warm_wall_seconds",
                json::n(clean_warm_wall.as_secs_f64()),
            ),
            ("clean_hit_rate", json::n(clean_hit_rate)),
            (
                "violations",
                Value::Arr(violations.iter().map(json::s).collect()),
            ),
        ]
        .into_iter()
        .chain(scenarios.iter().map(|s| (s.name, s.to_json())))
        .collect(),
    );
    let out = out.unwrap_or_else(|| format!("results/chaos_serve_{seed}.json"));
    let path = std::path::PathBuf::from(&out);
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(&path, report.to_json()) {
        Ok(()) => println!("report -> {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }

    if violations.is_empty() {
        println!("CHAOS PASS: all scenarios held their invariants");
    } else {
        println!("CHAOS FAIL: {} violations", violations.len());
        for v in &violations {
            println!("  - {v}");
        }
        std::process::exit(1);
    }
}

fn die(msg: &str) -> ! {
    eprintln!("tool_chaos_serve: {msg}");
    std::process::exit(2);
}
