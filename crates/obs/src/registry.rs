//! The metrics registry: named counters, gauges, and histograms.
//!
//! Design split: **registration** (name → handle) takes a mutex on a
//! `BTreeMap`, once per metric per process/server — the cold path.
//! **Updates** go through cloned handles ([`Counter`], [`Gauge`],
//! [`HistogramHandle`]) that own an `Arc` to the underlying atomics — the
//! hot path is relaxed atomic ops, no locks, no allocation.
//!
//! Labels are first-class: `counter_with("serve_tenant_requests_total",
//! &[("tenant", "rmat")])` creates a distinct series per label set, keyed
//! deterministically (labels sorted). Exports:
//!
//! * [`Registry::prometheus_text`] — Prometheus text exposition format
//!   (counters/gauges as-is, histograms as `_bucket{le=…}` + `_sum` +
//!   `_count` plus precomputed `quantile` series).
//! * [`Registry::snapshot_json`] — a flat JSON snapshot for the repo's
//!   hand-rolled report files.
//!
//! Recording can be disabled process- or server-wide
//! ([`Registry::set_enabled`], `MAXWARP_OBS=0`): handles check one shared
//! `AtomicBool` and skip the update — this is how the bench harness
//! measures the registry's own overhead.

use crate::histogram::{HistSnapshot, Histogram};
use crate::json;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

/// Series key: metric name plus sorted label pairs.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct SeriesKey {
    name: String,
    labels: Vec<(String, String)>,
}

impl SeriesKey {
    fn new(name: &str, labels: &[(&str, &str)]) -> SeriesKey {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        SeriesKey {
            name: name.to_string(),
            labels,
        }
    }

    /// `name{k="v",…}` (or bare name without labels).
    fn render(&self) -> String {
        if self.labels.is_empty() {
            return self.name.clone();
        }
        let body: Vec<String> = self
            .labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\"", json::esc(v)))
            .collect();
        format!("{}{{{}}}", self.name, body.join(","))
    }
}

#[derive(Clone)]
enum Metric {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<Histogram>),
}

struct Inner {
    metrics: Mutex<BTreeMap<SeriesKey, Metric>>,
    enabled: Arc<AtomicBool>,
}

/// A set of named metrics with lock-free updates through handles.
#[derive(Clone)]
pub struct Registry {
    inner: Arc<Inner>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    match m.lock() {
        Ok(g) => g,
        // Registration closures never panic; poisoning here means a bug in
        // this module itself.
        Err(_) => panic!("metrics registry lock poisoned"),
    }
}

impl Registry {
    /// An enabled, empty registry.
    pub fn new() -> Registry {
        Registry {
            inner: Arc::new(Inner {
                metrics: Mutex::new(BTreeMap::new()),
                enabled: Arc::new(AtomicBool::new(true)),
            }),
        }
    }

    /// Whether handles record (shared by every handle from this registry).
    pub fn enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Enable/disable recording for every handle of this registry.
    pub fn set_enabled(&self, on: bool) {
        self.inner.enabled.store(on, Ordering::Relaxed);
    }

    /// Get-or-register a monotonic counter.
    pub fn counter(&self, name: &str) -> Counter {
        self.counter_with(name, &[])
    }

    /// Get-or-register a labeled counter series.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let key = SeriesKey::new(name, labels);
        let mut m = lock(&self.inner.metrics);
        let metric = m
            .entry(key)
            .or_insert_with(|| Metric::Counter(Arc::new(AtomicU64::new(0))));
        match metric {
            Metric::Counter(c) => Counter {
                cell: Arc::clone(c),
                enabled: Arc::clone(&self.inner.enabled),
            },
            // Same name registered as a different kind: return a detached
            // handle rather than corrupting the existing series.
            _ => Counter::detached(),
        }
    }

    /// Get-or-register a gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauge_with(name, &[])
    }

    /// Get-or-register a labeled gauge series.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let key = SeriesKey::new(name, labels);
        let mut m = lock(&self.inner.metrics);
        let metric = m
            .entry(key)
            .or_insert_with(|| Metric::Gauge(Arc::new(AtomicU64::new(0))));
        match metric {
            Metric::Gauge(g) => Gauge {
                cell: Arc::clone(g),
                enabled: Arc::clone(&self.inner.enabled),
            },
            _ => Gauge::detached(),
        }
    }

    /// Get-or-register a histogram.
    pub fn histogram(&self, name: &str) -> HistogramHandle {
        self.histogram_with(name, &[])
    }

    /// Get-or-register a labeled histogram series.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> HistogramHandle {
        let key = SeriesKey::new(name, labels);
        let mut m = lock(&self.inner.metrics);
        let metric = m
            .entry(key)
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())));
        match metric {
            Metric::Histogram(h) => HistogramHandle {
                hist: Arc::clone(h),
                enabled: Arc::clone(&self.inner.enabled),
            },
            _ => HistogramHandle::detached(),
        }
    }

    /// All counter/gauge series and their current values, key-sorted.
    pub fn scalar_values(&self) -> Vec<(String, u64, bool)> {
        lock(&self.inner.metrics)
            .iter()
            .filter_map(|(k, m)| match m {
                Metric::Counter(c) => Some((k.render(), c.load(Ordering::Relaxed), true)),
                Metric::Gauge(g) => Some((k.render(), g.load(Ordering::Relaxed), false)),
                Metric::Histogram(_) => None,
            })
            .collect()
    }

    /// All histogram series snapshots, key-sorted.
    pub fn histogram_values(&self) -> Vec<(String, HistSnapshot)> {
        lock(&self.inner.metrics)
            .iter()
            .filter_map(|(k, m)| match m {
                Metric::Histogram(h) => Some((k.render(), h.snapshot())),
                _ => None,
            })
            .collect()
    }

    /// Series matching `name` with their label sets and values (counters
    /// and gauges). Used for per-label breakdowns (tenants, algos).
    pub fn series_of(&self, name: &str) -> Vec<(Vec<(String, String)>, u64)> {
        lock(&self.inner.metrics)
            .iter()
            .filter_map(|(k, m)| {
                if k.name != name {
                    return None;
                }
                match m {
                    Metric::Counter(c) => Some((k.labels.clone(), c.load(Ordering::Relaxed))),
                    Metric::Gauge(g) => Some((k.labels.clone(), g.load(Ordering::Relaxed))),
                    Metric::Histogram(_) => None,
                }
            })
            .collect()
    }

    /// Histogram series matching `name` with their label sets.
    pub fn histograms_of(&self, name: &str) -> Vec<(Vec<(String, String)>, HistSnapshot)> {
        lock(&self.inner.metrics)
            .iter()
            .filter_map(|(k, m)| {
                if k.name != name {
                    return None;
                }
                match m {
                    Metric::Histogram(h) => Some((k.labels.clone(), h.snapshot())),
                    _ => None,
                }
            })
            .collect()
    }

    /// Prometheus text exposition format. Counters keep their `_total`
    /// names, histograms expand to `_bucket{le=…}`/`_sum`/`_count` plus
    /// precomputed `{quantile=…}` series (summary-style convenience).
    pub fn prometheus_text(&self) -> String {
        let mut out = String::new();
        let m = lock(&self.inner.metrics);
        let mut typed: BTreeMap<&str, &'static str> = BTreeMap::new();
        for (k, metric) in m.iter() {
            let t = match metric {
                Metric::Counter(_) => "counter",
                Metric::Gauge(_) => "gauge",
                Metric::Histogram(_) => "histogram",
            };
            typed.entry(k.name.as_str()).or_insert(t);
        }
        let mut last_name = "";
        for (k, metric) in m.iter() {
            if k.name != last_name {
                last_name = &k.name;
                out.push_str(&format!("# TYPE {} {}\n", k.name, typed[k.name.as_str()]));
            }
            match metric {
                Metric::Counter(c) => {
                    out.push_str(&format!("{} {}\n", k.render(), c.load(Ordering::Relaxed)));
                }
                Metric::Gauge(g) => {
                    out.push_str(&format!("{} {}\n", k.render(), g.load(Ordering::Relaxed)));
                }
                Metric::Histogram(h) => {
                    let snap = h.snapshot();
                    let with = |extra: &str| -> String {
                        let mut labels: Vec<String> = k
                            .labels
                            .iter()
                            .map(|(lk, lv)| format!("{lk}=\"{}\"", json::esc(lv)))
                            .collect();
                        if !extra.is_empty() {
                            labels.push(extra.to_string());
                        }
                        if labels.is_empty() {
                            String::new()
                        } else {
                            format!("{{{}}}", labels.join(","))
                        }
                    };
                    for (le, cum) in snap.cumulative_buckets() {
                        out.push_str(&format!(
                            "{}_bucket{} {}\n",
                            k.name,
                            with(&format!("le=\"{le}\"")),
                            cum
                        ));
                    }
                    out.push_str(&format!(
                        "{}_bucket{} {}\n",
                        k.name,
                        with("le=\"+Inf\""),
                        snap.count
                    ));
                    out.push_str(&format!("{}_sum{} {}\n", k.name, with(""), snap.sum));
                    out.push_str(&format!("{}_count{} {}\n", k.name, with(""), snap.count));
                    for (q, v) in [
                        (0.5, snap.quantile(50.0)),
                        (0.95, snap.quantile(95.0)),
                        (0.99, snap.quantile(99.0)),
                    ] {
                        out.push_str(&format!(
                            "{}{} {}\n",
                            k.name,
                            with(&format!("quantile=\"{q}\"")),
                            v
                        ));
                    }
                }
            }
        }
        out
    }

    /// Flat JSON snapshot: `{"counters":{…},"gauges":{…},"histograms":{…}}`
    /// with histogram entries summarized as count/sum/mean/max/p50/p95/p99.
    pub fn snapshot_json(&self) -> String {
        let mut out = String::from("{");
        json::key(&mut out, "counters");
        out.push('{');
        let scalars = self.scalar_values();
        let mut first = true;
        for (k, v, is_counter) in &scalars {
            if !is_counter {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            json::key(&mut out, k);
            json::u64v(&mut out, *v);
        }
        out.push_str("},");
        json::key(&mut out, "gauges");
        out.push('{');
        let mut first = true;
        for (k, v, is_counter) in &scalars {
            if *is_counter {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            json::key(&mut out, k);
            json::u64v(&mut out, *v);
        }
        out.push_str("},");
        json::key(&mut out, "histograms");
        out.push('{');
        let mut first = true;
        for (k, snap) in self.histogram_values() {
            if !first {
                out.push(',');
            }
            first = false;
            json::key(&mut out, &k);
            let (p50, p95, p99) = snap.percentiles();
            out.push('{');
            for (i, (field, v)) in [
                ("count", snap.count),
                ("sum", snap.sum),
                ("mean", snap.mean()),
                ("max", snap.max),
                ("p50", p50),
                ("p95", p95),
                ("p99", p99),
            ]
            .iter()
            .enumerate()
            {
                if i > 0 {
                    out.push(',');
                }
                json::key(&mut out, field);
                json::u64v(&mut out, *v);
            }
            out.push('}');
        }
        out.push_str("}}");
        out
    }
}

/// Handle to a monotonic counter. Cloning shares the underlying cell.
#[derive(Clone, Debug)]
pub struct Counter {
    cell: Arc<AtomicU64>,
    enabled: Arc<AtomicBool>,
}

impl Counter {
    /// A counter not connected to any registry (still functional — used
    /// when callers don't care about export).
    pub fn detached() -> Counter {
        Counter {
            cell: Arc::new(AtomicU64::new(0)),
            enabled: Arc::new(AtomicBool::new(true)),
        }
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// Handle to a gauge: set, add/sub, and high-watermark updates.
#[derive(Clone, Debug)]
pub struct Gauge {
    cell: Arc<AtomicU64>,
    enabled: Arc<AtomicBool>,
}

impl Gauge {
    pub fn detached() -> Gauge {
        Gauge {
            cell: Arc::new(AtomicU64::new(0)),
            enabled: Arc::new(AtomicBool::new(true)),
        }
    }

    #[inline]
    pub fn set(&self, v: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.cell.store(v, Ordering::Relaxed);
        }
    }

    /// Monotone update: keep the maximum ever set (high watermark).
    #[inline]
    pub fn set_max(&self, v: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.cell.fetch_max(v, Ordering::Relaxed);
        }
    }

    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// Handle to a shared histogram.
#[derive(Clone, Debug)]
pub struct HistogramHandle {
    hist: Arc<Histogram>,
    enabled: Arc<AtomicBool>,
}

impl HistogramHandle {
    pub fn detached() -> HistogramHandle {
        HistogramHandle {
            hist: Arc::new(Histogram::new()),
            enabled: Arc::new(AtomicBool::new(true)),
        }
    }

    #[inline]
    pub fn record(&self, v: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.hist.record(v);
        }
    }

    /// Record a duration as microseconds.
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_micros() as u64);
    }

    pub fn snapshot(&self) -> HistSnapshot {
        self.hist.snapshot()
    }
}

/// The process-wide registry: simulator-side counters (watchdog trips,
/// chaos injections, sanitizer/analyzer findings) land here. Initial
/// enablement honors `MAXWARP_OBS` (default on; `0`/`off` disables).
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let r = Registry::new();
        if let Ok(v) = std::env::var("MAXWARP_OBS") {
            if v == "0" || v.eq_ignore_ascii_case("off") {
                r.set_enabled(false);
            }
        }
        r
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_round_trip() {
        let r = Registry::new();
        let c = r.counter("requests_total");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Second lookup returns the same series.
        assert_eq!(r.counter("requests_total").get(), 5);

        let g = r.gauge("queue_depth");
        g.set(3);
        g.set_max(10);
        g.set_max(7);
        assert_eq!(g.get(), 10);
    }

    #[test]
    fn labeled_series_are_distinct_and_sorted() {
        let r = Registry::new();
        r.counter_with("t", &[("b", "2"), ("a", "1")]).inc();
        r.counter_with("t", &[("a", "1"), ("b", "2")]).inc();
        r.counter_with("t", &[("a", "9")]).add(7);
        let series = r.series_of("t");
        assert_eq!(series.len(), 2);
        // Label order normalized: both insertions hit one series.
        assert!(series.iter().any(|(_, v)| *v == 2));
        assert!(series.iter().any(|(_, v)| *v == 7));
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let r = Registry::new();
        let c = r.counter("c");
        let h = r.histogram("h");
        r.set_enabled(false);
        c.inc();
        h.record(9);
        assert_eq!(c.get(), 0);
        assert_eq!(h.snapshot().count, 0);
        r.set_enabled(true);
        c.inc();
        assert_eq!(c.get(), 1);
    }

    #[test]
    fn kind_conflicts_yield_detached_handles() {
        let r = Registry::new();
        r.counter("x").inc();
        let g = r.gauge("x"); // conflicting kind
        g.set(99);
        assert_eq!(r.counter("x").get(), 1, "existing series unharmed");
    }

    #[test]
    fn prometheus_text_shape() {
        let r = Registry::new();
        r.counter("reqs_total").add(3);
        r.gauge_with("depth", &[("q", "main")]).set(2);
        let h = r.histogram("lat_us");
        h.record(5);
        h.record(500);
        let text = r.prometheus_text();
        assert!(text.contains("# TYPE reqs_total counter"), "{text}");
        assert!(text.contains("reqs_total 3"));
        assert!(text.contains("depth{q=\"main\"} 2"));
        assert!(text.contains("# TYPE lat_us histogram"));
        assert!(text.contains("lat_us_bucket{le=\"5\"} 1"));
        assert!(text.contains("lat_us_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("lat_us_sum 505"));
        assert!(text.contains("lat_us_count 2"));
        assert!(text.contains("lat_us{quantile=\"0.99\"}"));
    }

    #[test]
    fn snapshot_json_is_valid_shape() {
        let r = Registry::new();
        r.counter("c_total").inc();
        r.gauge("g").set(4);
        r.histogram("h_us").record(100);
        let j = r.snapshot_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"c_total\":1"));
        assert!(j.contains("\"g\":4"));
        assert!(j.contains("\"count\":1"));
    }
}
