//! Log-bucketed latency histograms with exact merge semantics.
//!
//! Values (microseconds, cycles, bytes — any `u64`) land in log₂ buckets
//! with 16 linear sub-buckets per octave: relative quantile error is at
//! most 1/16 = 6.25 %, buckets 0–15 are exact, and the whole table is 976
//! buckets (≈ 8 KB of atomics per histogram).
//!
//! The shared [`Histogram`] records with relaxed atomics — no locks, no
//! allocation, safe from any thread. A [`HistSnapshot`] is the plain-data
//! copy used for quantile queries and merging. **Merge is bucket-wise
//! addition**, so it is associative and commutative, and the quantiles of
//! a merged snapshot are exactly the quantiles of one histogram that had
//! recorded every underlying sample — the property that lets per-worker or
//! per-algorithm histograms roll up into totals without approximation
//! beyond the fixed bucket width.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-bucket resolution: 2^4 = 16 linear sub-buckets per octave.
const SUB_LOG2: u32 = 4;
const SUB: u64 = 1 << SUB_LOG2;

/// Total bucket count for the full `u64` range: 16 exact buckets plus 60
/// octaves (msb 4..=63) of 16 sub-buckets each.
pub const BUCKETS: usize = (SUB + (64 - SUB_LOG2 as u64) * SUB) as usize;

/// Bucket index of a value. Values below 16 get exact buckets; larger
/// values share an octave-relative bucket of width `2^(msb-4)`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros() as u64;
        let sub = (v >> (msb - SUB_LOG2 as u64)) - SUB;
        (SUB + (msb - SUB_LOG2 as u64) * SUB + sub) as usize
    }
}

/// Inclusive lower bound of a bucket.
#[inline]
pub fn bucket_lower(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < SUB {
        idx
    } else {
        let rel = idx - SUB;
        let octave = rel / SUB + SUB_LOG2 as u64;
        let sub = rel % SUB;
        (SUB + sub) << (octave - SUB_LOG2 as u64)
    }
}

/// Inclusive upper bound of a bucket.
#[inline]
pub fn bucket_upper(idx: usize) -> u64 {
    if (idx as u64) < SUB {
        idx as u64
    } else {
        let rel = idx as u64 - SUB;
        let octave = rel / SUB + SUB_LOG2 as u64;
        let width = 1u64 << (octave - SUB_LOG2 as u64);
        bucket_lower(idx) + (width - 1)
    }
}

/// Shared, thread-safe histogram. All updates are relaxed atomics.
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one observation. Lock-free: three relaxed adds and one
    /// relaxed max.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Plain-data copy for quantile queries and merging.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of a [`Histogram`]: quantiles, mean, merge.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistSnapshot {
    pub buckets: Vec<u64>,
    pub count: u64,
    pub sum: u64,
    pub max: u64,
}

impl Default for HistSnapshot {
    fn default() -> Self {
        HistSnapshot::empty()
    }
}

impl HistSnapshot {
    pub fn empty() -> HistSnapshot {
        HistSnapshot {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Record into a snapshot directly (single-threaded use, e.g. tests and
    /// report assembly).
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.max = self.max.max(v);
    }

    /// Bucket-wise merge: exactly equivalent to having recorded `other`'s
    /// samples into `self`. Associative and commutative.
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Nearest-rank quantile (`p` in 0..=100). The returned value is the
    /// upper bound of the target rank's bucket, clamped to the observed
    /// maximum — monotone in `p`, exact for values below 16 and for the
    /// p100/max case, within 6.25 % otherwise. 0 when empty.
    pub fn quantile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((p / 100.0) * self.count as f64).ceil() as u64;
        let target = target.clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return bucket_upper(idx).min(self.max);
            }
        }
        self.max
    }

    /// Truncating mean; 0 when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// `(p50, p95, p99)` in one call — the serving summary.
    pub fn percentiles(&self) -> (u64, u64, u64) {
        (
            self.quantile(50.0),
            self.quantile(95.0),
            self.quantile(99.0),
        )
    }

    /// Cumulative `(upper_bound, cumulative_count)` pairs over non-empty
    /// buckets — the Prometheus `le` series.
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            if n > 0 {
                cum += n;
                out.push((bucket_upper(idx), cum));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        let s = h.snapshot();
        for v in 0..16usize {
            assert_eq!(s.buckets[v], 1, "bucket {v}");
        }
        assert_eq!(s.quantile(100.0), 15);
        assert_eq!(s.count, 16);
        assert_eq!(s.sum, 120);
    }

    #[test]
    fn bucket_bounds_partition_u64() {
        // Every bucket's upper + 1 is the next bucket's lower.
        for idx in 0..BUCKETS - 1 {
            assert_eq!(
                bucket_upper(idx) + 1,
                bucket_lower(idx + 1),
                "gap or overlap at bucket {idx}"
            );
        }
        assert_eq!(bucket_lower(0), 0);
        assert_eq!(bucket_upper(BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn index_respects_bounds() {
        for v in [
            0,
            1,
            15,
            16,
            17,
            31,
            32,
            1000,
            123_456_789,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let idx = bucket_index(v);
            assert!(
                bucket_lower(idx) <= v && v <= bucket_upper(idx),
                "v={v} idx={idx}"
            );
        }
    }

    #[test]
    fn quantile_error_bounded() {
        let h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        for (p, exact) in [(50.0, 5000u64), (95.0, 9500), (99.0, 9900)] {
            let got = s.quantile(p);
            let err = (got as f64 - exact as f64).abs() / exact as f64;
            assert!(err <= 0.0625, "p{p}: got {got}, exact {exact}, err {err}");
            assert!(got >= exact, "upper-bound semantics: p{p} {got} < {exact}");
        }
        assert_eq!(s.quantile(100.0), 10_000, "p100 is the exact max");
    }

    #[test]
    fn merge_equals_union() {
        let mut a = HistSnapshot::empty();
        let mut b = HistSnapshot::empty();
        let mut union = HistSnapshot::empty();
        for v in [3u64, 17, 900, 17, 65_535] {
            a.record(v);
            union.record(v);
        }
        for v in [1u64, 1_000_000, 42] {
            b.record(v);
            union.record(v);
        }
        a.merge(&b);
        assert_eq!(a, union);
    }

    #[test]
    fn empty_is_all_zero() {
        let s = HistSnapshot::empty();
        assert_eq!(s.quantile(50.0), 0);
        assert_eq!(s.mean(), 0);
        assert!(s.is_empty());
        assert!(s.cumulative_buckets().is_empty());
    }
}
