//! # maxwarp-obs — unified observability for the maxwarp stack
//!
//! The source paper's whole methodology is counter-driven: every figure is
//! a measured trajectory. This crate gives the repo the same discipline at
//! runtime — one registry of named metrics shared by the serving tier, the
//! simulator, and the benchmark harness, plus a structured span tracer that
//! follows a request end-to-end through the scheduler → batch → launch →
//! cache pipeline.
//!
//! Three pieces:
//!
//! * **[`Registry`]** ([`registry`]) — monotonic counters, gauges (with
//!   high-watermark semantics), and log-bucketed latency histograms.
//!   Registration takes a short lock; every *update* afterwards is a
//!   relaxed atomic on a pre-registered handle — the hot path is
//!   lock-free. Exports as Prometheus text format and as a JSON snapshot.
//! * **[`Histogram`]** ([`histogram`]) — log₂-bucketed with 16 sub-buckets
//!   per octave (≤ 6.25 % relative quantile error). Merging snapshots is
//!   bucket-wise addition, so `quantile(merge(a, b))` is *exactly* the
//!   quantile of recording both sample sets into one histogram — merge is
//!   associative and commutative by construction (proptested).
//! * **[`Tracer`]** ([`span`]) — begin/finish spans with parent links and
//!   key/value args; RAII guards close spans even when the traced code
//!   panics (the serve executor is panic-isolated). Exports Chrome
//!   trace-event JSON, the same format the simulator's profiler emits, so
//!   serve spans and per-launch timelines load into one Perfetto view.
//!
//! A process-wide registry ([`global`]) carries the simulator-side counters
//! (watchdog trips, chaos injections, sanitizer/analyzer findings); the
//! serving tier builds one [`Registry`] per server so concurrent servers
//! (tests) don't bleed into each other.
//!
//! Everything here is a **pure observer**: recording a metric or a span
//! never changes simulation results — `KernelStats` stay byte-identical
//! with observation on or off (asserted by `crates/serve/tests/
//! obs_identity.rs`).
//!
//! ## Environment knobs
//!
//! | variable | effect |
//! |---|---|
//! | `MAXWARP_OBS` | `0`/`off` disables all metric recording (default on) |
//! | `MAXWARP_OBS_TRACE` | `1` enables request span tracing in maxwarp-serve |
//! | `MAXWARP_OBS_SPANS` | span buffer capacity (default 65536; excess spans are counted, not stored) |

pub mod histogram;
pub mod json;
pub mod registry;
pub mod span;

pub use histogram::{HistSnapshot, Histogram, BUCKETS};
pub use registry::{global, Counter, Gauge, HistogramHandle, Registry};
pub use span::{ActiveSpan, Span, SpanId, Tracer};
