//! Tiny JSON *writer* for the registry/tracer exports.
//!
//! The workspace's serde is a vendored facade without derive codegen, and
//! this crate sits below every other maxwarp crate, so it carries its own
//! ~50-line emitter (same idiom as the profiler's exporter). Output is
//! deterministic: callers pass pre-ordered pairs.

use std::fmt::Write as _;

/// Escape a string for a JSON string literal.
pub fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// `"key":` fragment.
pub fn key(out: &mut String, k: &str) {
    out.push('"');
    out.push_str(&esc(k));
    out.push_str("\":");
}

/// Append a `u64` losslessly (JSON numbers only hold 2^53; larger values
/// are emitted as decimal strings so nothing silently rounds).
pub fn u64v(out: &mut String, v: u64) {
    if v < (1 << 53) {
        let _ = write!(out, "{v}");
    } else {
        let _ = write!(out, "\"{v}\"");
    }
}

/// Append an `f64` (finite → shortest repr, else null).
pub fn f64v(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// Append a quoted string value.
pub fn strv(out: &mut String, v: &str) {
    out.push('"');
    out.push_str(&esc(v));
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_and_numbers() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        let mut s = String::new();
        u64v(&mut s, 7);
        s.push(',');
        u64v(&mut s, u64::MAX);
        assert_eq!(s, format!("7,\"{}\"", u64::MAX));
        let mut f = String::new();
        f64v(&mut f, 1.5);
        f.push(',');
        f64v(&mut f, f64::NAN);
        assert_eq!(f, "1.5,null");
    }
}
