//! Structured span tracing: follow a request end-to-end.
//!
//! A [`Tracer`] hands out [`ActiveSpan`] guards. Each span has a unique id,
//! an optional parent id (so stages nest under their request), a name,
//! key/value args, and microsecond start/duration relative to the tracer's
//! epoch. Spans are recorded when the guard is **finished or dropped** —
//! dropping during a panic unwind still closes the span, which is what
//! keeps traces well-formed under the serve executor's per-request
//! `catch_unwind` isolation (proptested in `tests/properties.rs`).
//!
//! Guards are `Send`: a span can begin on the submitting thread (enqueue)
//! and finish on the worker that picked the job up — that's how queue-wait
//! is measured as a real span rather than a derived number.
//!
//! The buffer is bounded (`MAXWARP_OBS_SPANS`, default 65536): past the
//! cap, spans are counted as dropped instead of stored, so a long soak
//! can't grow memory without bound.
//!
//! Export is Chrome trace-event JSON (`chrome://tracing` / Perfetto) —
//! deliberately the same format as the simulator profiler's warp timeline,
//! so serve-side spans and device-side launch spans can be loaded into a
//! single view. Span ids appear as event args (`id`, `parent`), and the
//! serve executor stamps the same `req-<id>` label into the profiler's
//! context, which is the correlation key between the two timelines.

use crate::json;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

/// Unique span identifier (1-based; 0 means "no span").
pub type SpanId = u64;

/// A finished span.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Span {
    pub id: SpanId,
    /// Parent span id; `None` for roots.
    pub parent: Option<SpanId>,
    pub name: String,
    /// Microseconds since the tracer's epoch.
    pub start_us: u64,
    /// Span duration in microseconds.
    pub dur_us: u64,
    /// Key/value annotations (method, algo, cache outcome, …).
    pub args: Vec<(String, String)>,
}

struct Inner {
    epoch: Instant,
    next_id: AtomicU64,
    spans: Mutex<Vec<Span>>,
    dropped: AtomicU64,
    cap: usize,
    enabled: AtomicBool,
}

/// Span collector. Clone freely — clones share the buffer.
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<Inner>,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new(true)
    }
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    match m.lock() {
        Ok(g) => g,
        Err(_) => panic!("tracer lock poisoned"),
    }
}

impl Tracer {
    /// A tracer with the default (env-configurable) span cap.
    pub fn new(enabled: bool) -> Tracer {
        let cap = std::env::var("MAXWARP_OBS_SPANS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(65_536);
        Tracer::with_capacity(enabled, cap)
    }

    /// A tracer storing at most `cap` spans (excess counted as dropped).
    pub fn with_capacity(enabled: bool, cap: usize) -> Tracer {
        Tracer {
            inner: Arc::new(Inner {
                epoch: Instant::now(),
                next_id: AtomicU64::new(1),
                spans: Mutex::new(Vec::new()),
                dropped: AtomicU64::new(0),
                cap,
                enabled: AtomicBool::new(enabled),
            }),
        }
    }

    pub fn enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    pub fn set_enabled(&self, on: bool) {
        self.inner.enabled.store(on, Ordering::Relaxed);
    }

    /// Begin a root span. Disabled tracers return a no-op guard (id 0).
    pub fn begin(&self, name: &str) -> ActiveSpan {
        self.begin_child(name, None)
    }

    /// Begin a span under `parent` (`None` for a root).
    pub fn begin_child(&self, name: &str, parent: Option<SpanId>) -> ActiveSpan {
        if !self.enabled() {
            return ActiveSpan {
                tracer: None,
                id: 0,
                parent: None,
                name: String::new(),
                start: Instant::now(),
                args: Vec::new(),
                finished: true,
            };
        }
        ActiveSpan {
            tracer: Some(self.clone()),
            id: self.inner.next_id.fetch_add(1, Ordering::Relaxed),
            parent,
            name: name.to_string(),
            start: Instant::now(),
            args: Vec::new(),
            finished: false,
        }
    }

    fn record(&self, span: Span) {
        let mut spans = lock(&self.inner.spans);
        if spans.len() >= self.inner.cap {
            self.inner.dropped.fetch_add(1, Ordering::Relaxed);
        } else {
            spans.push(span);
        }
    }

    /// Spans recorded so far (clone of the buffer).
    pub fn spans(&self) -> Vec<Span> {
        lock(&self.inner.spans).clone()
    }

    pub fn len(&self) -> usize {
        lock(&self.inner.spans).len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Spans rejected because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// Chrome trace-event JSON (`{"traceEvents":[…]}`): one complete
    /// (`ph:"X"`) event per span, `ts`/`dur` in microseconds, span id and
    /// parent id in `args`. Events are sorted by start time so the file is
    /// deterministic for a given span set.
    pub fn chrome_trace_json(&self, process_name: &str) -> String {
        let mut spans = self.spans();
        spans.sort_by_key(|s| (s.start_us, s.id));
        let mut out = String::from("{\"traceEvents\":[");
        out.push_str(&format!(
            "{{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\",\"args\":{{\"name\":\"{}\"}}}}",
            json::esc(process_name)
        ));
        for s in &spans {
            out.push(',');
            out.push_str("{\"ph\":\"X\",\"pid\":1,\"tid\":");
            // One row per root request keeps concurrent requests visually
            // separate: spans ride their root ancestor's id as tid.
            json::u64v(&mut out, s.parent.unwrap_or(s.id));
            out.push_str(",\"name\":");
            json::strv(&mut out, &s.name);
            out.push_str(",\"ts\":");
            json::u64v(&mut out, s.start_us);
            out.push_str(",\"dur\":");
            json::u64v(&mut out, s.dur_us.max(1));
            out.push_str(",\"args\":{");
            json::key(&mut out, "id");
            json::u64v(&mut out, s.id);
            out.push(',');
            json::key(&mut out, "parent");
            json::u64v(&mut out, s.parent.unwrap_or(0));
            for (k, v) in &s.args {
                out.push(',');
                json::key(&mut out, k);
                json::strv(&mut out, v);
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }

    fn us_since_epoch(&self, t: Instant) -> u64 {
        t.duration_since(self.inner.epoch).as_micros() as u64
    }
}

/// An in-flight span. Finishes on [`finish`](ActiveSpan::finish) or drop
/// (including panic unwinds). `Send`, so it can cross threads with a job.
pub struct ActiveSpan {
    tracer: Option<Tracer>,
    id: SpanId,
    parent: Option<SpanId>,
    name: String,
    start: Instant,
    args: Vec<(String, String)>,
    finished: bool,
}

impl ActiveSpan {
    /// This span's id (0 for a no-op span from a disabled tracer) — pass
    /// as `parent` to `begin_child` for nesting, including across threads.
    pub fn id(&self) -> SpanId {
        self.id
    }

    /// Attach a key/value annotation.
    pub fn arg(&mut self, key: &str, value: impl Into<String>) {
        if self.tracer.is_some() {
            self.args.push((key.to_string(), value.into()));
        }
    }

    /// Begin a child of this span on the same tracer.
    pub fn child(&self, name: &str) -> ActiveSpan {
        match &self.tracer {
            Some(t) => t.begin_child(name, Some(self.id)),
            None => ActiveSpan {
                tracer: None,
                id: 0,
                parent: None,
                name: String::new(),
                start: Instant::now(),
                args: Vec::new(),
                finished: true,
            },
        }
    }

    /// Close the span now (drop also closes it).
    pub fn finish(mut self) {
        self.finish_inner();
    }

    fn finish_inner(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        if let Some(t) = self.tracer.take() {
            let start_us = t.us_since_epoch(self.start);
            let dur_us = self.start.elapsed().as_micros() as u64;
            t.record(Span {
                id: self.id,
                parent: self.parent,
                name: std::mem::take(&mut self.name),
                start_us,
                dur_us,
                args: std::mem::take(&mut self.args),
            });
        }
    }
}

impl Drop for ActiveSpan {
    fn drop(&mut self) {
        self.finish_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_record() {
        let t = Tracer::with_capacity(true, 100);
        let mut root = t.begin("request");
        root.arg("algo", "bfs");
        let child = root.child("launch");
        let cid = child.id();
        child.finish();
        let rid = root.id();
        root.finish();

        let spans = t.spans();
        assert_eq!(spans.len(), 2);
        let launch = spans.iter().find(|s| s.name == "launch").unwrap();
        assert_eq!(launch.parent, Some(rid));
        assert_eq!(launch.id, cid);
        let req = spans.iter().find(|s| s.name == "request").unwrap();
        assert_eq!(req.args, vec![("algo".to_string(), "bfs".to_string())]);
        assert!(req.start_us <= launch.start_us);
    }

    #[test]
    fn disabled_tracer_is_a_noop() {
        let t = Tracer::with_capacity(false, 100);
        let s = t.begin("x");
        assert_eq!(s.id(), 0);
        s.finish();
        assert!(t.is_empty());
    }

    #[test]
    fn drop_closes_spans_even_on_panic() {
        let t = Tracer::with_capacity(true, 100);
        let t2 = t.clone();
        let _ = std::panic::catch_unwind(move || {
            let _span = t2.begin("doomed");
            panic!("kernel exploded");
        });
        let spans = t.spans();
        assert_eq!(spans.len(), 1, "span closed during unwind");
        assert_eq!(spans[0].name, "doomed");
    }

    #[test]
    fn capacity_drops_are_counted() {
        let t = Tracer::with_capacity(true, 2);
        for i in 0..5 {
            t.begin(&format!("s{i}")).finish();
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 3);
    }

    #[test]
    fn chrome_trace_is_sorted_and_tagged() {
        let t = Tracer::with_capacity(true, 100);
        let root = t.begin("request");
        let c = root.child("stage");
        c.finish();
        root.finish();
        let json = t.chrome_trace_json("maxwarp-serve");
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"name\":\"request\""));
        assert!(json.contains("\"parent\":"));
        assert!(json.ends_with("]}"));
    }

    #[test]
    fn spans_cross_threads() {
        let t = Tracer::with_capacity(true, 100);
        let span = t.begin("queued");
        let id = span.id();
        let handle = std::thread::spawn(move || span.finish());
        handle.join().unwrap();
        assert_eq!(t.spans()[0].id, id);
    }
}
