//! Property tests of the histogram's exact-merge contract and the span
//! tracer's nesting discipline.
//!
//! The histogram properties pin what the Prometheus/JSON exporters lean
//! on: recording is a lossless partition of `u64` into buckets (count and
//! sum exact), merge is bucket-wise addition (associative, commutative,
//! exactly the union of the inputs), and quantiles are monotone with the
//! bucket's bounded relative error. The span properties pin that guards
//! close in LIFO order and survive panics — the panic-isolated serve exec
//! path relies on RAII close, not manual bookkeeping.

use maxwarp_obs::{HistSnapshot, Tracer};
use proptest::prelude::*;

/// Values capped so 256 of them cannot overflow the u64 `sum`.
fn arb_value() -> impl Strategy<Value = u64> {
    any::<u64>().prop_map(|v| v >> 9)
}

fn merged(parts: &[Vec<u64>]) -> HistSnapshot {
    let mut out = HistSnapshot::default();
    for part in parts {
        let mut h = HistSnapshot::default();
        for &v in part {
            h.record(v);
        }
        out.merge(&h);
    }
    out
}

proptest! {
    /// Merging per-shard histograms is exactly the union: same count, same
    /// sum, same max, same buckets as recording everything into one.
    #[test]
    fn merge_is_union(
        a in proptest::collection::vec(arb_value(), 0..64),
        b in proptest::collection::vec(arb_value(), 0..64),
        c in proptest::collection::vec(arb_value(), 0..64),
    ) {
        let mut all = HistSnapshot::default();
        for &v in a.iter().chain(&b).chain(&c) {
            all.record(v);
        }
        let shards = merged(&[a, b, c]);
        prop_assert_eq!(shards, all);
    }

    /// Merge order never matters: (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c) == (c ⊕ a) ⊕ b.
    #[test]
    fn merge_is_associative_and_commutative(
        a in proptest::collection::vec(arb_value(), 0..48),
        b in proptest::collection::vec(arb_value(), 0..48),
        c in proptest::collection::vec(arb_value(), 0..48),
    ) {
        let left = merged(&[a.clone(), b.clone(), c.clone()]);
        let right = merged(&[c.clone(), a.clone(), b.clone()]);
        prop_assert_eq!(&left, &right);

        // Explicit re-association: merge (b ⊕ c) into a as one unit.
        let mut bc = HistSnapshot::default();
        for &v in b.iter().chain(&c) {
            bc.record(v);
        }
        let mut ha = HistSnapshot::default();
        for &v in &a {
            ha.record(v);
        }
        ha.merge(&bc);
        prop_assert_eq!(&ha, &left);
    }

    /// Quantiles (percent in 0..=100) are monotone, the p100 case is the
    /// exact max, and the median carries the documented ≤6.25% relative
    /// overestimate (values below 16 are exact).
    #[test]
    fn quantiles_monotone_and_bounded(
        mut values in proptest::collection::vec(arb_value(), 1..256),
        qa in 0u64..=1000,
        qb in 0u64..=1000,
    ) {
        let mut h = HistSnapshot::default();
        for &v in &values {
            h.record(v);
        }
        let (qa, qb) = (qa as f64 / 10.0, qb as f64 / 10.0);
        let (lo, hi) = if qa <= qb { (qa, qb) } else { (qb, qa) };
        prop_assert!(h.quantile(lo) <= h.quantile(hi));

        values.sort_unstable();
        let exact_max = *values.last().unwrap();
        prop_assert_eq!(h.quantile(100.0), exact_max);
        // Nearest-rank with bucket upper bounds: never below the exact
        // value, never more than one sub-bucket above it.
        let exact = values[(values.len() - 1) / 2];
        let est = h.quantile(50.0);
        prop_assert!(est >= exact);
        let bound = (exact.max(16) as f64 * 1.0625).min(exact_max as f64);
        prop_assert!(
            (est as f64) <= bound.max(exact as f64),
            "p50: est {} exact {}",
            est,
            exact
        );
    }

    /// Bucket boundary values (powers of two and neighbors) are recovered
    /// exactly from a single-sample histogram: the bucket upper bound is
    /// clamped to the observed max.
    #[test]
    fn bucket_boundaries_round_trip(shift in 0u32..55, delta in 0u64..2) {
        let base = 1u64 << shift;
        let v = (base - 1) + delta;
        let mut h = HistSnapshot::default();
        h.record(v);
        prop_assert_eq!(h.quantile(50.0), v);
        prop_assert_eq!(h.count, 1);
        prop_assert_eq!(h.sum, v);
        prop_assert_eq!(h.max, v);
    }

    /// Spans close LIFO under arbitrary nesting depths, parents link
    /// correctly, and a panic mid-span still closes every open guard.
    #[test]
    fn span_nesting_and_panic_close(depth in 1usize..12, panic_at in 0usize..12) {
        let tracer = Tracer::with_capacity(true, 4096);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut guards: Vec<maxwarp_obs::ActiveSpan> = Vec::new();
            for level in 0..depth {
                let span = match guards.last() {
                    None => tracer.begin("root"),
                    Some(parent) => tracer.begin_child("child", Some(parent.id())),
                };
                guards.push(span);
                if level == panic_at {
                    panic!("mid-request failure");
                }
            }
        }));
        prop_assert_eq!(result.is_err(), panic_at < depth);

        let spans = tracer.spans();
        prop_assert_eq!(spans.len(), depth.min(panic_at + 1));
        // Every non-root span's parent is the span begun just before it.
        let mut prev: Option<u64> = None;
        for s in &spans {
            prop_assert_eq!(s.parent, prev);
            prev = Some(s.id);
        }
        // RAII close: children end no later than their parents recorded
        // durations allow (parent start <= child start).
        for s in &spans {
            if let Some(p) = s.parent {
                let parent = spans.iter().find(|x| x.id == p).unwrap();
                prop_assert!(parent.start_us <= s.start_us);
            }
        }
    }
}
